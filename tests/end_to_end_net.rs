//! End-to-end network integration: data-plane stub → RPC/event rings →
//! TCP proxy → NIC fabric → simulated client machine.

use std::sync::Arc;
use std::time::Duration;

use solros::control::Solros;
use solros::tcp_proxy::AddrHash;
use solros_machine::MachineConfig;
use solros_netdev::EndKind;

fn connect_client(
    fabric: &Arc<solros_netdev::Network>,
    port: u16,
    addr: u64,
) -> solros_netdev::ConnId {
    loop {
        match fabric.client_connect(port, addr) {
            Ok(c) => return c,
            Err(_) => std::thread::yield_now(),
        }
    }
}

fn client_recv(
    fabric: &Arc<solros_netdev::Network>,
    conn: solros_netdev::ConnId,
    want: usize,
) -> Vec<u8> {
    let mut out = Vec::new();
    while out.len() < want {
        match fabric.recv(conn, EndKind::Client, want - out.len()) {
            Ok(chunk) if chunk.is_empty() => std::thread::yield_now(),
            Ok(chunk) => out.extend(chunk),
            Err(e) => panic!("client recv: {e}"),
        }
    }
    out
}

#[test]
fn request_response_with_large_payloads() {
    let sys = Solros::boot(MachineConfig::small());
    let net = sys.data_plane(0).net().clone();
    let listener = net.listen(5000, 32).unwrap();

    let fabric = Arc::clone(sys.network());
    let client = std::thread::spawn(move || {
        let conn = connect_client(&fabric, 5000, 1);
        // 200 KB request (crosses many event-ring elements).
        let req: Vec<u8> = (0..200_000).map(|i| (i % 249) as u8).collect();
        fabric.send(conn, EndKind::Client, &req).unwrap();
        let reply = client_recv(&fabric, conn, req.len());
        assert_eq!(reply.len(), req.len());
        // The server echoes bytes incremented by one.
        assert!(reply
            .iter()
            .zip(req.iter())
            .all(|(r, q)| *r == q.wrapping_add(1)));
        fabric.close(conn, EndKind::Client).unwrap();
    });

    let (stream, _) = listener.accept_timeout(Duration::from_secs(10)).unwrap();
    let data = stream.recv_exact(200_000).expect("full request");
    let reply: Vec<u8> = data.iter().map(|b| b.wrapping_add(1)).collect();
    stream.send(&reply).unwrap();
    client.join().unwrap();
    sys.shutdown();
}

#[test]
fn eof_propagates_to_the_data_plane() {
    let sys = Solros::boot(MachineConfig::small());
    let net = sys.data_plane(0).net().clone();
    let listener = net.listen(5001, 8).unwrap();
    let fabric = Arc::clone(sys.network());
    let conn = connect_client(&fabric, 5001, 9);
    fabric.send(conn, EndKind::Client, b"tail").unwrap();
    fabric.close(conn, EndKind::Client).unwrap();

    let (stream, _) = listener.accept_timeout(Duration::from_secs(10)).unwrap();
    let mut buf = [0u8; 16];
    let n = stream.recv(&mut buf);
    assert_eq!(&buf[..n], b"tail");
    // After the data drains, recv reports end-of-stream.
    let n = stream.recv(&mut buf);
    assert_eq!(n, 0, "EOF after peer close");
    sys.shutdown();
}

#[test]
fn pluggable_content_based_balancing_is_sticky() {
    // §4.4.3: forwarding rules are pluggable; AddrHash pins a client to a
    // co-processor.
    let sys = Solros::boot_with_lb(MachineConfig::small(), Box::new(AddrHash));
    let l0 = sys.data_plane(0).net().listen(5002, 64).unwrap();
    let l1 = sys.data_plane(1).net().listen(5002, 64).unwrap();
    let fabric = Arc::clone(sys.network());

    // The same client address connects 6 times: all land on one listener.
    for _ in 0..6 {
        connect_client(&fabric, 5002, 0xBEEF);
    }
    std::thread::sleep(Duration::from_millis(200));
    let a0 = sys.tcp_proxy_stats(0).accepted[0].load(std::sync::atomic::Ordering::Relaxed);
    let a1 = sys.tcp_proxy_stats(0).accepted[1].load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(a0 + a1, 6);
    assert!(a0 == 6 || a1 == 6, "sticky hashing: got {a0}/{a1}");
    drop((l0, l1));
    sys.shutdown();
}

#[test]
fn rpc_polling_accept_and_recv_path() {
    // The non-evented path: Accept and Recv as explicit RPCs (§5's
    // one-to-one syscall mapping), used instead of the event channel.
    use solros_proto::net_msg::{NetRequest, NetResponse};
    use solros_proto::rpc_error::RpcErr;

    let sys = Solros::boot(MachineConfig::small());
    let net = sys.data_plane(0).net().clone();
    let listener = net.listen(5003, 8).unwrap();
    net.set_evented(listener.id(), false).unwrap();

    let fabric = Arc::clone(sys.network());
    let conn = connect_client(&fabric, 5003, 77);
    fabric.send(conn, EndKind::Client, b"poll me").unwrap();

    // Poll Accept until the proxy assigns the connection.
    let raw = |req: NetRequest| -> NetResponse { net.raw_call(req) };
    let conn_sock = loop {
        match raw(NetRequest::Accept {
            sock: listener.id(),
        }) {
            NetResponse::Accepted { conn, peer_addr } => {
                assert_eq!(peer_addr, 77);
                break conn;
            }
            NetResponse::Error {
                err: RpcErr::WouldBlock,
            } => std::thread::yield_now(),
            other => panic!("unexpected {other:?}"),
        }
    };
    // Poll Recv.
    let data = loop {
        match raw(NetRequest::Recv {
            sock: conn_sock,
            max: 64,
        }) {
            NetResponse::Data { data } if data.is_empty() => std::thread::yield_now(),
            NetResponse::Data { data } => break data,
            other => panic!("unexpected {other:?}"),
        }
    };
    assert_eq!(data, b"poll me");
    // Send via RPC and close.
    match raw(NetRequest::Send {
        sock: conn_sock,
        data: b"ok".to_vec(),
    }) {
        NetResponse::Sent { count } => assert_eq!(count, 2),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(client_recv(&fabric, conn, 2), b"ok");
    assert!(matches!(
        raw(NetRequest::Close { sock: conn_sock }),
        NetResponse::Ok
    ));
    sys.shutdown();
}

#[test]
fn many_connections_round_robin_across_four_coprocs() {
    let sys = Solros::boot(MachineConfig {
        sockets: 2,
        coprocs: 4,
        ssd_blocks: 4096,
        coproc_window_bytes: 1 << 20,
        host_cache_pages: 64,
    });
    let listeners: Vec<_> = (0..4)
        .map(|i| sys.data_plane(i).net().listen(5004, 256).unwrap())
        .collect();
    let fabric = Arc::clone(sys.network());
    for c in 0..40 {
        connect_client(&fabric, 5004, c);
    }
    // Wait for assignment.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let total: u64 = (0..4)
            .map(|i| sys.tcp_proxy_stats(0).accepted[i].load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        if total == 40 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::yield_now();
    }
    for i in 0..4 {
        assert_eq!(
            sys.tcp_proxy_stats(0).accepted[i].load(std::sync::atomic::Ordering::Relaxed),
            10,
            "round robin share for coproc {i}"
        );
    }
    drop(listeners);
    sys.shutdown();
}
