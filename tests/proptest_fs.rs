//! Property-based tests for the file system: random operation sequences
//! checked against an in-memory oracle.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use solros_fs::{FileSystem, FsError};
use solros_nvme::NvmeDevice;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write {
        file: u8,
        offset: u16,
        len: u16,
        fill: u8,
    },
    Read {
        file: u8,
        offset: u16,
        len: u16,
    },
    Truncate {
        file: u8,
        size: u16,
    },
    Unlink(u8),
    Sync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6).prop_map(Op::Create),
        (0u8..6, any::<u16>(), 0u16..5000, any::<u8>()).prop_map(|(file, offset, len, fill)| {
            Op::Write {
                file,
                offset: offset % 20_000,
                len,
                fill,
            }
        }),
        (0u8..6, any::<u16>(), 0u16..5000).prop_map(|(file, offset, len)| Op::Read {
            file,
            offset: offset % 30_000,
            len
        }),
        (0u8..6, 0u16..25_000).prop_map(|(file, size)| Op::Truncate { file, size }),
        (0u8..6).prop_map(Op::Unlink),
        Just(Op::Sync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The file system agrees with a byte-vector oracle over arbitrary
    /// operation sequences (including sparse writes and truncates).
    #[test]
    fn oracle_equivalence(ops in vec(op_strategy(), 1..60)) {
        let fs = FileSystem::mkfs(NvmeDevice::new(65_536), 256).unwrap();
        // file tag -> (ino, oracle contents)
        let mut oracle: HashMap<u8, (u64, Vec<u8>)> = HashMap::new();
        for op in ops {
            match op {
                Op::Create(tag) => {
                    let path = format!("/f{tag}");
                    match fs.create(&path) {
                        Ok(ino) => {
                            prop_assert!(!oracle.contains_key(&tag));
                            oracle.insert(tag, (ino, Vec::new()));
                        }
                        Err(FsError::Exists) => {
                            prop_assert!(oracle.contains_key(&tag));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("create: {e}"))),
                    }
                }
                Op::Write { file, offset, len, fill } => {
                    if len == 0 {
                        continue; // Zero-length writes are no-ops.
                    }
                    if let Some((ino, content)) = oracle.get_mut(&file) {
                        let data = vec![fill; len as usize];
                        fs.write(*ino, offset as u64, &data).unwrap();
                        let end = offset as usize + len as usize;
                        if content.len() < end {
                            content.resize(end, 0);
                        }
                        content[offset as usize..end].copy_from_slice(&data);
                    }
                }
                Op::Read { file, offset, len } => {
                    if let Some((ino, content)) = oracle.get(&file) {
                        let mut buf = vec![0u8; len as usize];
                        let n = fs.read(*ino, offset as u64, &mut buf).unwrap();
                        let off = offset as usize;
                        let want: &[u8] = if off >= content.len() {
                            &[]
                        } else {
                            &content[off..(off + len as usize).min(content.len())]
                        };
                        prop_assert_eq!(n, want.len());
                        prop_assert_eq!(&buf[..n], want);
                    }
                }
                Op::Truncate { file, size } => {
                    if let Some((ino, content)) = oracle.get_mut(&file) {
                        fs.truncate(*ino, size as u64).unwrap();
                        if (size as usize) < content.len() {
                            content.truncate(size as usize);
                        } else {
                            content.resize(size as usize, 0);
                        }
                    }
                }
                Op::Unlink(tag) => {
                    let path = format!("/f{tag}");
                    match fs.unlink(&path) {
                        Ok(()) => {
                            prop_assert!(oracle.remove(&tag).is_some());
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(!oracle.contains_key(&tag));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unlink: {e}"))),
                    }
                }
                Op::Sync => fs.sync().unwrap(),
            }
        }
        // Structural consistency after arbitrary operation sequences.
        let report = fs.fsck().expect("fsck clean");
        prop_assert_eq!(report.files as usize, oracle.len());
        // Final verification of every live file.
        for (tag, (ino, content)) in &oracle {
            let st = fs.stat(&format!("/f{tag}")).unwrap();
            prop_assert_eq!(st.size, content.len() as u64);
            let mut buf = vec![0u8; content.len()];
            let n = fs.read(*ino, 0, &mut buf).unwrap();
            prop_assert_eq!(n, content.len());
            prop_assert_eq!(&buf, content);
        }
    }

    /// Remount preserves every file exactly (metadata durability).
    #[test]
    fn remount_durability(files in vec((1usize..30_000, any::<u8>()), 1..5)) {
        let dev = NvmeDevice::new(65_536);
        let mut expect = Vec::new();
        {
            let fs = FileSystem::mkfs(Arc::clone(&dev), 64).unwrap();
            for (i, (size, fill)) in files.iter().enumerate() {
                let ino = fs.create(&format!("/file{i}")).unwrap();
                let data = vec![*fill; *size];
                fs.write(ino, 0, &data).unwrap();
                expect.push(data);
            }
            fs.sync().unwrap();
        }
        let fs = FileSystem::mount(dev, 64).unwrap();
        for (i, data) in expect.iter().enumerate() {
            let st = fs.stat(&format!("/file{i}")).unwrap();
            prop_assert_eq!(st.size, data.len() as u64);
            let mut buf = vec![0u8; data.len()];
            fs.read(st.ino, 0, &mut buf).unwrap();
            prop_assert_eq!(&buf, data);
        }
    }

    /// fiemap covers exactly the requested in-file range, with no overlap
    /// between different files' extents.
    #[test]
    fn fiemap_coverage_and_disjointness(
        sizes in vec(1usize..60_000, 2..5),
        probe in 0u64..60_000,
    ) {
        let fs = FileSystem::mkfs(NvmeDevice::new(65_536), 64).unwrap();
        let mut all_blocks = std::collections::HashSet::new();
        for (i, size) in sizes.iter().enumerate() {
            let ino = fs.create(&format!("/f{i}")).unwrap();
            fs.write(ino, 0, &vec![1u8; *size]).unwrap();
            let map = fs.fiemap(ino, 0, *size as u64).unwrap();
            let blocks: u64 = map.iter().map(|e| e.len as u64).sum();
            prop_assert_eq!(blocks, (*size as u64).div_ceil(4096), "file {}", i);
            for e in &map {
                for b in e.start..e.start + e.len as u64 {
                    prop_assert!(all_blocks.insert(b), "block {} shared", b);
                }
            }
            // A probe subrange maps to a subset of the file's blocks.
            let sub = fs.fiemap(ino, probe.min(*size as u64), 4096).unwrap();
            let sub_blocks: u64 = sub.iter().map(|e| e.len as u64).sum();
            prop_assert!(sub_blocks <= 2);
        }
    }
}
