//! The example applications produce identical results on every I/O stack
//! (the paper runs the same binaries on Solros and the stock Phi).

use std::sync::Arc;

use solros::control::Solros;
use solros_apps::image_search::ImageDb;
use solros_apps::{generate_corpus, CorpusSpec, TextIndexer};
use solros_baseline::{FileStore, HostCentric, NfsClient, VirtioFs};
use solros_fs::FileSystem;
use solros_machine::{MachineConfig, WindowAlloc};
use solros_nvme::NvmeDevice;
use solros_pcie::{PcieCounters, Side, Window};

fn fresh_fs() -> Arc<FileSystem> {
    Arc::new(FileSystem::mkfs(NvmeDevice::new(65_536), 512).unwrap())
}

fn host_centric() -> Arc<HostCentric> {
    let counters = Arc::new(PcieCounters::new());
    Arc::new(HostCentric::new(
        fresh_fs(),
        Window::new(8 << 20, Side::Coproc, counters),
        Arc::new(WindowAlloc::new(8 << 20)),
    ))
}

#[test]
fn text_indexing_identical_on_all_stacks() {
    let spec = CorpusSpec {
        docs: 24,
        doc_bytes: 6_000,
        vocab: 800,
        skew: 0.8,
        seed: 99,
    };

    // Solros (full system).
    let sys = Solros::boot(MachineConfig::small());
    let solros_fs = Arc::clone(sys.data_plane(0).fs());
    generate_corpus(&*solros_fs, "/c", &spec).unwrap();
    let (idx_solros, st_solros) = TextIndexer::new(solros_fs, 4).run("/c").unwrap();

    // Baselines.
    let virtio = Arc::new(VirtioFs::new(fresh_fs()));
    generate_corpus(&*virtio, "/c", &spec).unwrap();
    let (idx_virtio, st_virtio) = TextIndexer::new(virtio, 4).run("/c").unwrap();

    let nfs = Arc::new(NfsClient::new(fresh_fs()));
    generate_corpus(&*nfs, "/c", &spec).unwrap();
    let (idx_nfs, st_nfs) = TextIndexer::new(nfs, 4).run("/c").unwrap();

    let hc = host_centric();
    generate_corpus(&*hc, "/c", &spec).unwrap();
    let (idx_hc, st_hc) = TextIndexer::new(hc, 4).run("/c").unwrap();

    assert_eq!(idx_solros, idx_virtio);
    assert_eq!(idx_solros, idx_nfs);
    assert_eq!(idx_solros, idx_hc);
    assert_eq!(st_solros, st_virtio);
    assert_eq!(st_solros, st_nfs);
    assert_eq!(st_solros, st_hc);
    assert_eq!(st_solros.docs, spec.docs);
    sys.shutdown();
}

#[test]
fn image_search_identical_on_all_stacks() {
    let n = 800;
    let seed = 1234;
    let query = ImageDb::<VirtioFs>::vector_for_seed(n, seed, 321);

    // Solros.
    let sys = Solros::boot(MachineConfig::small());
    let solros_fs = Arc::clone(sys.data_plane(0).fs());
    let db = ImageDb::new(solros_fs, "/db");
    db.build(n, seed).unwrap();
    let (hits_solros, bytes) = db.search(&query, 7, 4).unwrap();
    assert_eq!(hits_solros[0].id, 321);
    assert_eq!(bytes as usize, n * solros_apps::image_search::VEC_BYTES);

    // Virtio.
    let virtio = Arc::new(VirtioFs::new(fresh_fs()));
    let db = ImageDb::new(virtio, "/db");
    db.build(n, seed).unwrap();
    let (hits_virtio, _) = db.search(&query, 7, 4).unwrap();

    // Host-centric.
    let hc = host_centric();
    let db = ImageDb::new(hc, "/db");
    db.build(n, seed).unwrap();
    let (hits_hc, _) = db.search(&query, 7, 2).unwrap();

    assert_eq!(hits_solros, hits_virtio);
    assert_eq!(hits_solros, hits_hc);
    sys.shutdown();
}

#[test]
fn filestore_trait_api_consistency() {
    // Every stack honours the same error and size semantics.
    let sys = Solros::boot(MachineConfig::small());
    let stacks: Vec<(&str, Arc<dyn FileStore>)> = vec![
        (
            "solros",
            Arc::clone(sys.data_plane(0).fs()) as Arc<dyn FileStore>,
        ),
        ("virtio", Arc::new(VirtioFs::new(fresh_fs()))),
        ("nfs", Arc::new(NfsClient::new(fresh_fs()))),
        ("host-centric", host_centric()),
    ];
    for (name, s) in &stacks {
        assert!(s.open("/missing", false).is_err(), "{name}");
        let h = s.create("/x").unwrap();
        assert_eq!(s.write_at(h, 3, b"abc").unwrap(), 3, "{name}");
        assert_eq!(s.size_of("/x").unwrap(), 6, "{name}");
        let mut buf = [0u8; 6];
        assert_eq!(s.read_at(h, 0, &mut buf).unwrap(), 6, "{name}");
        assert_eq!(&buf, b"\0\0\0abc", "{name}");
        s.mkdir("/d").unwrap();
        assert!(s.readdir("/").unwrap().contains(&"d".to_string()), "{name}");
    }
    sys.shutdown();
}
