//! System lifecycle: persistence across reboots and multi-co-processor
//! application scaling on one shared file system.

use std::sync::Arc;

use solros::control::Solros;
use solros_apps::{distributed_index, generate_corpus, CorpusSpec, TextIndexer};
use solros_machine::MachineConfig;

#[test]
fn files_survive_a_reboot() {
    let cfg = MachineConfig::small();
    let payload: Vec<u8> = (0..150_000).map(|i| (i % 251) as u8).collect();

    // First boot: create state through the data plane and sync.
    let nvme = {
        let sys = Solros::boot(cfg.clone());
        let fs = sys.data_plane(0).fs();
        fs.mkdir("/persist").unwrap();
        let f = fs.create("/persist/state.bin").unwrap();
        fs.write_at(f, 0, &payload).unwrap();
        fs.fsync(f).unwrap();
        let nvme = Arc::clone(&sys.machine().nvme);
        sys.shutdown();
        nvme
    };

    // Second boot: mount the same device; the other co-processor reads.
    let sys = Solros::boot_mounted(cfg, nvme).expect("remount");
    let fs = sys.data_plane(1).fs();
    let (f, size) = fs.open("/persist/state.bin", false, false, false).unwrap();
    assert_eq!(size, payload.len() as u64);
    let back = fs.read_to_vec(f, 0, payload.len()).unwrap();
    assert_eq!(back, payload);
    // And the remounted system keeps working for new writes.
    let g = fs.create("/persist/second-boot").unwrap();
    fs.write_at(g, 0, b"still alive").unwrap();
    assert_eq!(fs.read_to_vec(g, 0, 11).unwrap(), b"still alive");
    sys.shutdown();
}

#[test]
fn distributed_indexing_across_data_planes() {
    // One corpus on the shared file system, indexed by both co-processors
    // in parallel (each through its own stub/proxy/rings), merged.
    let sys = Solros::boot(MachineConfig::small());
    let spec = CorpusSpec {
        docs: 16,
        doc_bytes: 5_000,
        vocab: 600,
        skew: 0.8,
        seed: 5,
    };
    let fs0 = Arc::clone(sys.data_plane(0).fs());
    let fs1 = Arc::clone(sys.data_plane(1).fs());
    generate_corpus(&*fs0, "/corpus", &spec).unwrap();

    let (single, _) = TextIndexer::new(Arc::clone(&fs0), 2)
        .run("/corpus")
        .unwrap();
    let (dist, stats) = distributed_index(&[fs0, fs1], "/corpus", 2).unwrap();
    assert_eq!(single, dist, "sharded result identical to single-card");
    assert_eq!(stats.docs, spec.docs);
    // Both proxies actually served part of the work.
    use std::sync::atomic::Ordering;
    let r0 = sys.fs_proxy_stats(0).rpcs.load(Ordering::Relaxed);
    let r1 = sys.fs_proxy_stats(1).rpcs.load(Ordering::Relaxed);
    assert!(r0 > 0 && r1 > 0, "both proxies participated: {r0}/{r1}");
    sys.shutdown();
}
