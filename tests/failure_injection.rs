//! Failure-injection integration tests: device faults, connection
//! teardown, and transport backpressure on the full system.

use std::sync::Arc;
use std::time::Duration;

use solros::control::Solros;
use solros_machine::MachineConfig;
use solros_netdev::EndKind;
use solros_proto::rpc_error::RpcErr;

#[test]
fn nvme_faults_are_retried_transparently() {
    let sys = Solros::boot(MachineConfig::small());
    let fs = sys.data_plane(0).fs();
    let f = fs.create("/flaky").unwrap();
    let data = vec![0x42u8; 128 * 1024];
    fs.write_at(f, 0, &data).unwrap();
    sys.host_fs().cache().invalidate_ino(f.0);

    // Two transient media errors: the proxy's retry absorbs them.
    sys.machine().nvme.inject_faults(2);
    let back = fs.read_to_vec(f, 0, data.len()).unwrap();
    assert_eq!(back, data);
    assert!(sys.machine().nvme.stats().failures >= 2);
    sys.shutdown();
}

#[test]
fn persistent_nvme_failure_surfaces_as_io_error() {
    let sys = Solros::boot(MachineConfig::small());
    let fs = sys.data_plane(0).fs();
    let f = fs.create("/doomed").unwrap();
    fs.write_at(f, 0, &vec![1u8; 4096]).unwrap();
    sys.host_fs().cache().invalidate_ino(f.0);

    // More failures than the retry budget: the error must reach the app.
    sys.machine().nvme.inject_faults(50);
    let err = fs.read_to_vec(f, 0, 4096).unwrap_err();
    assert_eq!(err, RpcErr::Io);
    // Clear the injector; the system recovers.
    sys.machine().nvme.inject_faults(0);
    let back = fs.read_to_vec(f, 0, 4096).unwrap();
    assert_eq!(back, vec![1u8; 4096]);
    sys.shutdown();
}

#[test]
fn send_after_peer_close_reports_reset() {
    let sys = Solros::boot(MachineConfig::small());
    let net = sys.data_plane(0).net().clone();
    let listener = net.listen(6001, 8).unwrap();
    let fabric = Arc::clone(sys.network());
    let conn = loop {
        if let Ok(c) = fabric.client_connect(6001, 5) {
            break c;
        }
        std::thread::yield_now();
    };
    let (stream, _) = listener.accept_timeout(Duration::from_secs(10)).unwrap();
    // The client half-closes its write side; the server can still send.
    fabric.close(conn, EndKind::Client).unwrap();
    assert!(stream.send(b"still fine").unwrap() > 0);
    // The server closes too; now its sends fail.
    let id = stream.id();
    stream.close().unwrap();
    use solros_proto::net_msg::{NetRequest, NetResponse};
    let resp = net.raw_call(NetRequest::Send {
        sock: id,
        data: b"x".to_vec(),
    });
    assert!(
        matches!(
            resp,
            NetResponse::Error {
                err: RpcErr::NotConnected
            }
        ),
        "got {resp:?}"
    );
    sys.shutdown();
}

#[test]
fn connect_to_closed_port_refused() {
    let sys = Solros::boot(MachineConfig::small());
    let net = sys.data_plane(0).net();
    let err = match net.connect(1, 59999) {
        Err(e) => e,
        Ok(_) => panic!("connect to a closed port must fail"),
    };
    assert_eq!(err, RpcErr::ConnRefused);
    sys.shutdown();
}

#[test]
fn oversized_send_chunks_through_the_bounded_ring() {
    // Ring elements are bounded (64 KiB ring, 16 KiB max element); a
    // 1 MiB send must chunk transparently and deliver every byte.
    let sys = Solros::boot(MachineConfig::small());
    let net = sys.data_plane(0).net().clone();
    let listener = net.listen(6002, 8).unwrap();
    let fabric = Arc::clone(sys.network());
    let conn = loop {
        if let Ok(c) = fabric.client_connect(6002, 5) {
            break c;
        }
        std::thread::yield_now();
    };
    let (stream, _) = listener.accept_timeout(Duration::from_secs(10)).unwrap();
    let big: Vec<u8> = (0..1usize << 20).map(|i| (i % 241) as u8).collect();
    assert_eq!(stream.send(&big).unwrap(), big.len());
    let mut got = Vec::new();
    while got.len() < big.len() {
        match fabric.recv(conn, EndKind::Client, 64 * 1024) {
            Ok(chunk) if chunk.is_empty() => std::thread::yield_now(),
            Ok(chunk) => got.extend(chunk),
            Err(e) => panic!("client recv: {e}"),
        }
    }
    assert_eq!(got, big);
    sys.shutdown();
}

#[test]
fn ring_backpressure_recovers() {
    // Flood one co-processor's FS proxy with concurrent small writes so
    // the request ring repeatedly fills; everything must still complete.
    let sys = Solros::boot(MachineConfig::small());
    let fs = Arc::clone(sys.data_plane(0).fs());
    fs.mkdir("/flood").unwrap();
    std::thread::scope(|s| {
        for t in 0..8 {
            let fs = Arc::clone(&fs);
            s.spawn(move || {
                let f = fs.create(&format!("/flood/{t}")).unwrap();
                for i in 0..50u64 {
                    fs.write_at(f, i * 512, &[t as u8; 512]).unwrap();
                }
                assert_eq!(fs.fstat(f).unwrap().size, 50 * 512);
            });
        }
    });
    sys.shutdown();
}
