//! Property-based tests for the RPC wire protocol: arbitrary messages
//! round-trip exactly, and arbitrary bytes never panic the decoder.

use proptest::collection::vec;
use proptest::prelude::*;
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_proto::net_msg::{NetEvent, NetRequest, NetResponse};
use solros_proto::rpc_error::RpcErr;

fn path_strategy() -> impl Strategy<Value = String> {
    "[a-z0-9/._-]{0,64}"
}

fn fs_request_strategy() -> impl Strategy<Value = FsRequest> {
    prop_oneof![
        (path_strategy(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
            |(path, create, truncate, buffered)| FsRequest::Open {
                path,
                create,
                truncate,
                buffered
            }
        ),
        path_strategy().prop_map(|path| FsRequest::Create { path }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(ino, offset, count, buf_addr)| FsRequest::Read {
                ino,
                offset,
                count,
                buf_addr
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(ino, offset, count, buf_addr)| FsRequest::Write {
                ino,
                offset,
                count,
                buf_addr
            }
        ),
        path_strategy().prop_map(|path| FsRequest::Stat { path }),
        any::<u64>().prop_map(|ino| FsRequest::Fstat { ino }),
        path_strategy().prop_map(|path| FsRequest::Unlink { path }),
        path_strategy().prop_map(|path| FsRequest::Mkdir { path }),
        path_strategy().prop_map(|path| FsRequest::Readdir { path }),
        (path_strategy(), path_strategy()).prop_map(|(from, to)| FsRequest::Rename { from, to }),
        (any::<u64>(), any::<u64>()).prop_map(|(ino, size)| FsRequest::Truncate { ino, size }),
        any::<u64>().prop_map(|ino| FsRequest::Fsync { ino }),
    ]
}

fn net_request_strategy() -> impl Strategy<Value = NetRequest> {
    prop_oneof![
        Just(NetRequest::Socket),
        (any::<u64>(), any::<u16>()).prop_map(|(sock, port)| NetRequest::Bind { sock, port }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(sock, backlog)| NetRequest::Listen { sock, backlog }),
        any::<u64>().prop_map(|sock| NetRequest::Accept { sock }),
        (any::<u64>(), any::<u64>(), any::<u16>())
            .prop_map(|(sock, addr, port)| NetRequest::Connect { sock, addr, port }),
        (any::<u64>(), vec(any::<u8>(), 0..512))
            .prop_map(|(sock, data)| NetRequest::Send { sock, data }),
        (any::<u64>(), any::<u32>()).prop_map(|(sock, max)| NetRequest::Recv { sock, max }),
        any::<u64>().prop_map(|sock| NetRequest::Close { sock }),
        (any::<u64>(), any::<u32>(), any::<u64>())
            .prop_map(|(sock, opt, val)| NetRequest::Setsockopt { sock, opt, val }),
        (any::<u64>(), 0u8..3).prop_map(|(sock, how)| NetRequest::Shutdown { sock, how }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fs_requests_roundtrip(req in fs_request_strategy(), tag in any::<u32>()) {
        let buf = req.encode(tag);
        let (t, got) = FsRequest::decode(&buf).unwrap();
        prop_assert_eq!(t, tag);
        prop_assert_eq!(got, req);
    }

    #[test]
    fn net_requests_roundtrip(req in net_request_strategy(), tag in any::<u32>()) {
        let buf = req.encode(tag);
        let (t, got) = NetRequest::decode(&buf).unwrap();
        prop_assert_eq!(t, tag);
        prop_assert_eq!(got, req);
    }

    #[test]
    fn responses_and_events_roundtrip(
        names in vec("[a-z]{1,12}", 0..8),
        count in any::<u64>(),
        data in vec(any::<u8>(), 0..256),
        sock in any::<u64>(),
    ) {
        for resp in [
            FsResponse::Open { ino: count, size: count ^ 7 },
            FsResponse::Read { count },
            FsResponse::Readdir { names: names.clone() },
            FsResponse::Error { err: RpcErr::NoSpace },
        ] {
            let buf = resp.encode(5);
            prop_assert_eq!(FsResponse::decode(&buf).unwrap().1, resp);
        }
        for resp in [
            NetResponse::Data { data: data.clone() },
            NetResponse::Sent { count },
            NetResponse::Ok,
        ] {
            let buf = resp.encode(5);
            prop_assert_eq!(NetResponse::decode(&buf).unwrap().1, resp);
        }
        for ev in [
            NetEvent::Data { sock, data: data.clone() },
            NetEvent::Accepted { listen: sock, conn: sock ^ 1, peer_addr: count },
            NetEvent::Closed { sock },
        ] {
            let buf = ev.encode();
            prop_assert_eq!(NetEvent::decode(&buf).unwrap(), ev);
        }
    }

    /// Arbitrary bytes never panic any decoder — they produce errors.
    #[test]
    fn fuzz_decoders_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        let _ = FsRequest::decode(&bytes);
        let _ = FsResponse::decode(&bytes);
        let _ = NetRequest::decode(&bytes);
        let _ = NetResponse::decode(&bytes);
        let _ = NetEvent::decode(&bytes);
    }

    /// Truncations of valid frames are always rejected, never misparsed.
    #[test]
    fn truncations_rejected(req in fs_request_strategy(), cut in 1usize..16) {
        let buf = req.encode(1);
        if cut < buf.len() {
            let truncated = &buf[..buf.len() - cut];
            prop_assert!(FsRequest::decode(truncated).is_err());
        }
    }
}
