//! End-to-end file-system integration: data-plane stub → RPC rings →
//! control-plane proxy → NVMe device, on a full booted machine.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use solros::control::Solros;
use solros_machine::MachineConfig;
use solros_proto::rpc_error::RpcErr;

fn boot_paper_like() -> Solros {
    // 4 co-processors, two of them across the QPI boundary from the SSD.
    Solros::boot(MachineConfig {
        sockets: 2,
        coprocs: 4,
        ssd_blocks: 32_768,
        coproc_window_bytes: 4 << 20,
        host_cache_pages: 256,
    })
}

#[test]
fn shared_namespace_across_coprocs() {
    let sys = boot_paper_like();
    // Co-processor 0 writes; co-processor 3 (other socket) reads.
    let fs0 = sys.data_plane(0).fs();
    let fs3 = sys.data_plane(3).fs();
    fs0.mkdir("/shared").unwrap();
    let f = fs0.create("/shared/data").unwrap();
    let payload: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
    fs0.write_at(f, 0, &payload).unwrap();

    let (f3, size) = fs3.open("/shared/data", false, false, false).unwrap();
    assert_eq!(size, payload.len() as u64);
    let back = fs3.read_to_vec(f3, 0, payload.len()).unwrap();
    assert_eq!(back, payload);
    sys.shutdown();
}

#[test]
fn same_socket_uses_p2p_cross_socket_demotes() {
    let sys = boot_paper_like();
    let payload = vec![3u8; 64 * 1024];

    // Co-processor 0 shares the SSD's socket: P2P.
    let fs0 = sys.data_plane(0).fs();
    let f = fs0.create("/p2p-file").unwrap();
    fs0.write_at(f, 0, &payload).unwrap();
    let s0 = sys.fs_proxy_stats(0);
    assert!(
        s0.p2p_writes.load(Ordering::Relaxed) >= 1,
        "same-socket write should be P2P"
    );

    // Co-processor 2 is across QPI: every transfer demotes to buffered.
    let fs2 = sys.data_plane(2).fs();
    let f2 = fs2.create("/buffered-file").unwrap();
    fs2.write_at(f2, 0, &payload).unwrap();
    let _ = fs2.read_to_vec(f2, 0, payload.len()).unwrap();
    let s2 = sys.fs_proxy_stats(2);
    assert_eq!(s2.p2p_writes.load(Ordering::Relaxed), 0);
    assert_eq!(s2.p2p_reads.load(Ordering::Relaxed), 0);
    assert!(s2.buffered_writes.load(Ordering::Relaxed) >= 1);
    assert!(s2.buffered_reads.load(Ordering::Relaxed) >= 1);
    sys.shutdown();
}

#[test]
fn p2p_read_coalesces_interrupts() {
    let sys = boot_paper_like();
    let fs = sys.data_plane(0).fs();
    let f = fs.create("/big").unwrap();
    let payload = vec![9u8; 512 * 1024];
    fs.write_at(f, 0, &payload).unwrap();
    // Cold-cache read: one RPC = one vectored batch = one interrupt.
    sys.host_fs().cache().invalidate_ino(f.0);
    let before = sys.machine().nvme.stats();
    let back = fs.read_to_vec(f, 0, payload.len()).unwrap();
    assert_eq!(back, payload);
    let after = sys.machine().nvme.stats();
    assert_eq!(after.interrupts - before.interrupts, 1, "coalesced batch");
    assert_eq!(after.doorbells - before.doorbells, 1);
    assert!(after.commands - before.commands >= 4, "4 MDTS commands");
    sys.shutdown();
}

#[test]
fn o_buffer_forces_buffered_path() {
    let sys = boot_paper_like();
    let fs = sys.data_plane(0).fs();
    let (f, _) = fs.open("/obuf", true, false, true).unwrap();
    fs.write_at(f, 0, &vec![1u8; 8192]).unwrap();
    sys.host_fs().cache().invalidate_ino(f.0);
    let _ = fs.read_to_vec(f, 0, 8192).unwrap();
    let s = sys.fs_proxy_stats(0);
    assert_eq!(s.p2p_reads.load(Ordering::Relaxed), 0);
    assert!(s.buffered_reads.load(Ordering::Relaxed) >= 1);
    sys.shutdown();
}

#[test]
fn metadata_operations_through_the_stub() {
    let sys = Solros::boot(MachineConfig::small());
    let fs = sys.data_plane(0).fs();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    let f = fs.create("/a/b/c.txt").unwrap();
    fs.write_at(f, 0, b"0123456789").unwrap();

    assert_eq!(fs.readdir("/a").unwrap(), vec!["b"]);
    let st = fs.stat("/a/b/c.txt").unwrap();
    assert_eq!(st.size, 10);
    assert!(!st.is_dir);
    assert!(fs.stat("/a").unwrap().is_dir);

    fs.rename("/a/b/c.txt", "/a/renamed").unwrap();
    assert_eq!(fs.stat("/a/b/c.txt").unwrap_err(), RpcErr::NotFound);
    fs.truncate(f, 4).unwrap();
    assert_eq!(fs.fstat(f).unwrap().size, 4);
    fs.fsync(f).unwrap();
    fs.unlink("/a/renamed").unwrap();
    assert_eq!(fs.readdir("/a").unwrap(), vec!["b"]);
    // Errors map across the wire.
    assert_eq!(fs.mkdir("/a").unwrap_err(), RpcErr::Exists);
    assert_eq!(fs.readdir("/missing").unwrap_err(), RpcErr::NotFound);
    sys.shutdown();
}

#[test]
fn concurrent_coprocs_and_threads() {
    let sys = Solros::boot(MachineConfig::small());
    std::thread::scope(|s| {
        for cp in 0..sys.coprocs() {
            let fs = Arc::clone(sys.data_plane(cp).fs());
            s.spawn(move || {
                let dir = format!("/cp{cp}");
                fs.mkdir(&dir).unwrap();
                std::thread::scope(|inner| {
                    for t in 0..4 {
                        let fs = Arc::clone(&fs);
                        let dir = dir.clone();
                        inner.spawn(move || {
                            let path = format!("{dir}/t{t}");
                            let f = fs.create(&path).unwrap();
                            let data = vec![(cp * 10 + t) as u8; 20_000];
                            fs.write_at(f, 0, &data).unwrap();
                            let back = fs.read_to_vec(f, 0, data.len()).unwrap();
                            assert_eq!(back, data);
                        });
                    }
                });
            });
        }
    });
    sys.shutdown();
}

#[test]
fn cache_shared_between_coprocs() {
    let sys = Solros::boot(MachineConfig::small());
    let fs0 = sys.data_plane(0).fs();
    let fs1 = sys.data_plane(1).fs();
    let f = fs0.create("/warm").unwrap();
    fs0.write_at(f, 0, &vec![7u8; 16 * 1024]).unwrap();
    // Write-through warmed the host cache: coproc 1's read is buffered
    // (cache hit), not P2P — the shared-cache optimization of §4.3.2.
    let (f1, _) = fs1.open("/warm", false, false, false).unwrap();
    let _ = fs1.read_to_vec(f1, 0, 16 * 1024).unwrap();
    let s1 = sys.fs_proxy_stats(1);
    assert_eq!(s1.p2p_reads.load(Ordering::Relaxed), 0, "served from cache");
    assert!(s1.buffered_reads.load(Ordering::Relaxed) >= 1);
    assert!(sys.host_fs().cache().stats().hits > 0);
    sys.shutdown();
}
