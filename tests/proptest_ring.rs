//! Property-based tests for the transport service.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use solros_pcie::{PcieCounters, Side};
use solros_ringbuf::ring::{CopyMode, RingBuf, RingConfig};
use solros_ringbuf::RingError;

fn ring(cfg: RingConfig) -> (solros_ringbuf::Producer, solros_ringbuf::Consumer) {
    RingBuf::new(cfg, Arc::new(PcieCounters::new())).endpoints()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of sends and receives preserves content and FIFO
    /// order (single-threaded model check against a VecDeque oracle).
    #[test]
    fn fifo_model_equivalence(
        ops in vec((any::<bool>(), 1usize..200), 1..400),
        cap_pow in 9u32..14,
    ) {
        let cap = 1usize << cap_pow;
        let (tx, rx) = ring(RingConfig::local(cap, Side::Host));
        let mut oracle: std::collections::VecDeque<Vec<u8>> = Default::default();
        let mut seq = 0u32;
        for (is_send, size) in ops {
            if is_send {
                let mut data = vec![0u8; size];
                data[0] = seq as u8;
                if size >= 5 {
                    data[1..5].copy_from_slice(&seq.to_le_bytes());
                }
                match tx.send(&data) {
                    Ok(()) => {
                        oracle.push_back(data);
                        seq += 1;
                    }
                    Err(RingError::WouldBlock) => {
                        // Full (or reclaim lag of the last consumed slot);
                        // no state change. A dequeue pass frees space.
                        let _ = rx.dequeue().map(|rb| {
                            let want = oracle.pop_front().expect("oracle tracks ring");
                            let mut got = vec![0u8; rb.len()];
                            rx.copy_from(&rb, &mut got);
                            rx.set_done(rb);
                            assert_eq!(got, want);
                        });
                    }
                    Err(RingError::TooBig) => {
                        prop_assert!(size + 8 > cap / 4, "spurious TooBig for {size}");
                    }
                    Err(RingError::Corrupt) => {
                        prop_assert!(false, "corruption surfaced with no fault injected");
                    }
                }
            } else {
                match rx.recv() {
                    Ok(got) => {
                        let want = oracle.pop_front().expect("ring had no element");
                        prop_assert_eq!(got, want);
                    }
                    Err(_) => prop_assert!(oracle.is_empty(), "element lost"),
                }
            }
        }
        // Drain: everything the oracle holds must come out, in order.
        while let Some(want) = oracle.pop_front() {
            let got = rx.recv_blocking();
            prop_assert_eq!(got, want);
        }
        prop_assert!(matches!(rx.recv(), Err(RingError::WouldBlock)));
    }

    /// Cross-PCIe rings deliver identical bytes for every size mix and
    /// copy mode.
    #[test]
    fn pcie_ring_integrity(
        sizes in vec(1usize..2000, 1..120),
        mode in prop_oneof![
            Just(CopyMode::Memcpy),
            Just(CopyMode::Dma),
            Just(CopyMode::Adaptive)
        ],
        master_at_producer in any::<bool>(),
    ) {
        let master = if master_at_producer { Side::Coproc } else { Side::Host };
        let cfg = RingConfig::over_pcie(1 << 14, master, Side::Coproc, Side::Host)
            .with_copy_mode(mode);
        let (tx, rx) = ring(cfg);
        for (i, &size) in sizes.iter().enumerate() {
            let fill = (i % 251) as u8;
            let mut data = vec![fill; size];
            data[0] = (i % 256) as u8;
            tx.send_blocking(&data).unwrap();
            let got = rx.recv_blocking();
            prop_assert_eq!(got, data);
        }
    }

    /// The decoupled reserve/copy/publish phases never corrupt neighbours
    /// even when publication happens out of order.
    #[test]
    fn out_of_order_publication(mut order in vec(0usize..8, 8)) {
        // Make `order` a permutation of 0..8.
        order.sort_unstable();
        order.dedup();
        let extra: Vec<usize> = (0..8).filter(|i| !order.contains(i)).collect();
        order.extend(extra);

        let (tx, rx) = ring(RingConfig::local(1 << 12, Side::Host));
        let bufs: Vec<_> = (0..8u8)
            .map(|i| {
                let rb = tx.enqueue(16).unwrap();
                tx.copy_to(&rb, &[i; 16]);
                rb
            })
            .collect();
        // Publish in arbitrary order.
        let mut bufs: Vec<Option<_>> = bufs.into_iter().map(Some).collect();
        for &i in &order {
            tx.set_ready(bufs[i].take().expect("unique index"));
        }
        tx.kick();
        // FIFO delivery in reservation order regardless.
        for i in 0..8u8 {
            prop_assert_eq!(rx.recv_blocking(), vec![i; 16]);
        }
    }
}

#[test]
fn concurrent_pcie_ring_stress_with_all_copy_modes() {
    for mode in [CopyMode::Memcpy, CopyMode::Dma, CopyMode::Adaptive] {
        let cfg = RingConfig::over_pcie(1 << 15, Side::Coproc, Side::Coproc, Side::Host)
            .with_copy_mode(mode);
        let (tx, rx) = ring(cfg);
        let n = 2_000u32;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let size = 4 + (i as usize * 13) % 512;
                let mut data = vec![(i % 256) as u8; size];
                data[..4].copy_from_slice(&i.to_le_bytes());
                tx.send_blocking(&data).unwrap();
            }
        });
        for i in 0..n {
            let v = rx.recv_blocking();
            assert_eq!(
                u32::from_le_bytes(v[..4].try_into().unwrap()),
                i,
                "{mode:?}"
            );
        }
        producer.join().unwrap();
    }
}
