//! Randomized full-system soak: file-system and network traffic from
//! every co-processor concurrently, checked for integrity throughout.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use solros::control::Solros;
use solros_machine::MachineConfig;
use solros_netdev::EndKind;
use solros_simkit::DetRng;

#[test]
fn fs_and_net_soak() {
    let sys = Solros::boot(MachineConfig {
        sockets: 2,
        coprocs: 2,
        ssd_blocks: 32_768,
        coproc_window_bytes: 8 << 20,
        host_cache_pages: 256,
    });

    // --- Network half: an echo server on co-processor 1 + client storm ---
    let net = sys.data_plane(1).net().clone();
    let listener = net.listen(4242, 128).unwrap();
    let server = std::thread::spawn(move || {
        let mut served = 0u32;
        while let Some((stream, _)) = listener.accept_timeout(Duration::from_millis(800)) {
            // Echo a framed message: [u32 len][payload].
            let hdr = stream.recv_exact(4).expect("length header");
            let len = u32::from_le_bytes(hdr.try_into().expect("4 bytes")) as usize;
            let body = stream.recv_exact(len).expect("body");
            stream.send(&body).unwrap();
            served += 1;
        }
        served
    });

    let fabric = Arc::clone(sys.network());
    let clients = 3usize;
    let per_client = 10usize;
    let mut client_threads = Vec::new();
    for c in 0..clients {
        let fabric = Arc::clone(&fabric);
        client_threads.push(std::thread::spawn(move || {
            let mut rng = DetRng::seed(100 + c as u64);
            for i in 0..per_client {
                let conn = loop {
                    if let Ok(x) = fabric.client_connect(4242, (c * 100 + i) as u64) {
                        break x;
                    }
                    std::thread::yield_now();
                };
                let len = 1 + rng.index(3000);
                let mut msg = vec![(c * 7 + i) as u8; len];
                rng.fill(&mut msg[..len.min(16)]);
                let mut framed = (len as u32).to_le_bytes().to_vec();
                framed.extend_from_slice(&msg);
                fabric.send(conn, EndKind::Client, &framed).unwrap();
                let mut echo = Vec::new();
                while echo.len() < len {
                    match fabric.recv(conn, EndKind::Client, len - echo.len()) {
                        Ok(chunk) if chunk.is_empty() => std::thread::yield_now(),
                        Ok(chunk) => echo.extend(chunk),
                        Err(e) => panic!("client recv: {e}"),
                    }
                }
                assert_eq!(echo, msg, "client {c} message {i}");
                fabric.close(conn, EndKind::Client).unwrap();
            }
        }));
    }

    // --- FS half: both co-processors churn files concurrently ---
    let mut fs_threads = Vec::new();
    for cp in 0..2usize {
        let fs = Arc::clone(sys.data_plane(cp).fs());
        fs_threads.push(std::thread::spawn(move || {
            let mut rng = DetRng::seed(7 + cp as u64);
            fs.mkdir(&format!("/soak{cp}")).unwrap();
            let mut live: Vec<(String, solros::fs_api::FileHandle, Vec<u8>)> = Vec::new();
            for op in 0..120 {
                match rng.index(4) {
                    0 | 1 => {
                        // Create or overwrite a file with random content.
                        let name = format!("/soak{cp}/f{}", rng.index(10));
                        let mut data = vec![0u8; 1 + rng.index(40_000)];
                        rng.fill(&mut data);
                        let (h, _) = fs.open(&name, true, true, false).unwrap();
                        fs.write_at(h, 0, &data).unwrap();
                        live.retain(|(n, _, _)| *n != name);
                        live.push((name, h, data));
                    }
                    2 => {
                        // Read back a random live file and verify.
                        if let Some((name, h, data)) = live.get(
                            rng.index(live.len().max(1))
                                .min(live.len().saturating_sub(1)),
                        ) {
                            if !live.is_empty() {
                                let got = fs.read_to_vec(*h, 0, data.len()).unwrap();
                                assert_eq!(&got, data, "cp{cp} op{op} file {name}");
                            }
                        }
                    }
                    _ => {
                        // Unlink one.
                        if !live.is_empty() {
                            let (name, _, _) = live.remove(rng.index(live.len()));
                            fs.unlink(&name).unwrap();
                        }
                    }
                }
            }
            // Final verification of every surviving file.
            for (name, h, data) in &live {
                let got = fs.read_to_vec(*h, 0, data.len()).unwrap();
                assert_eq!(&got, data, "final check {name}");
            }
            live.len()
        }));
    }

    for t in client_threads {
        t.join().unwrap();
    }
    for t in fs_threads {
        assert!(t.join().unwrap() <= 10);
    }
    let served = server.join().unwrap();
    assert_eq!(served as usize, clients * per_client);
    // The proxies stayed coherent throughout.
    let total_rpcs: u64 = (0..2)
        .map(|i| sys.fs_proxy_stats(i).rpcs.load(Ordering::Relaxed))
        .sum();
    assert!(total_rpcs > 200, "fs traffic flowed: {total_rpcs}");
    // The file system is structurally consistent after the storm.
    sys.host_fs().fsck().expect("fsck clean after soak");
    sys.shutdown();
}
