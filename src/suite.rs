//! Umbrella library for the Solros-rs workspace; integration tests live
//! in `tests/` and runnable examples in `examples/`.
