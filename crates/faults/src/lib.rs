#![warn(missing_docs)]

//! Deterministic fault-injection substrate for the Solros-rs stack.
//!
//! The reproduction's hardware substrates each expose native injection
//! knobs — poisoned ring headers ([`FaultKind::RingCorrupt`]), PCIe
//! window stalls and dropped writes, NVMe media/timeout/queue-full
//! bursts, proxy worker panics — but an experiment needs more than knobs:
//! it needs a *schedule* that decides, reproducibly, which fault fires
//! when. This crate provides that schedule ([`FaultPlan`]), the taxonomy
//! it draws from ([`FaultKind`]), and the bookkeeping a recovery
//! experiment reports ([`RecoveryReport`]).
//!
//! The plan is seeded from [`solros_simkit::DetRng`], so the same seed
//! always produces the same fault sequence — the property the E5 CI smoke
//! relies on: a fixed seed must recover with zero hung tags every run.
//!
//! # Examples
//!
//! ```
//! use solros_faults::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::generate(42, 1_000, 0.01);
//! let again = FaultPlan::generate(42, 1_000, 0.01);
//! assert_eq!(plan.events(), again.events(), "same seed, same schedule");
//! for ev in plan.events() {
//!     assert!(ev.at_op < 1_000);
//!     assert!(ev.burst >= 1);
//! }
//! ```

pub mod hooks;

pub use hooks::{EngineFaults, LeaseFaults};

use std::fmt;

use solros_simkit::DetRng;

/// The fault taxonomy: one variant per injection point at a layer
/// boundary of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A published ring element carries a torn/garbage header
    /// (`Producer::corrupt_next`); the consumer reports `Corrupt`.
    RingCorrupt,
    /// A producer reserves an element and never publishes it (crash
    /// mid-element): the ring wedges cleanly behind the hole.
    RingWedge,
    /// Remote PCIe window accesses pause (`Window::inject_stalls`),
    /// modeling bus congestion or link retraining.
    PcieStall,
    /// A remote bulk write is silently lost
    /// (`Window::inject_dropped_writes`) — a dropped posted write.
    PcieDroppedWrite,
    /// NVMe data commands fail with a media error
    /// (`NvmeDevice::inject_faults`).
    NvmeMedia,
    /// NVMe data commands lose their completion
    /// (`NvmeDevice::inject_timeouts`).
    NvmeTimeout,
    /// NVMe submission batches are refused whole
    /// (`NvmeDevice::inject_queue_full`).
    NvmeQueueFull,
    /// A proxy worker thread panics mid-request
    /// ([`EngineFaults::arm_worker_panics`]); the proxy engine's
    /// containment must convert it into an `Io` error reply.
    WorkerPanic,
    /// A co-processor stub stops draining its rings (crash/disconnect);
    /// detection is by deadline, recovery by link reset.
    StubCrash,
    /// A lease recall notification is lost before the holder sees it
    /// ([`LeaseFaults::arm_lost_recalls`]); the manager's recall deadline
    /// must force-revoke the lease instead of waiting forever.
    LeaseRecallLost,
    /// A lease's generation is bumped without a recall
    /// ([`LeaseFaults::arm_stale_generations`]); the stub must detect the
    /// mismatch on its next leased op and fall back to the RPC path.
    LeaseStaleGeneration,
    /// An entire engine shard (one NUMA domain's proxy) dies mid-cycle
    /// ([`EngineFaults::arm_domain_crashes`]); the shard supervisor must
    /// fence it, settle its in-flight tags as `Gone`, re-steer its
    /// listeners, and rebuild a replacement from a log snapshot.
    DomainCrash,
    /// An engine shard stops making progress without exiting — its
    /// heartbeat epoch freezes ([`EngineFaults::arm_domain_wedges`]);
    /// detection is by heartbeat stall, recovery identical to a crash.
    DomainWedge,
    /// A shard stops syncing its control-log replica cursor
    /// ([`EngineFaults::arm_sync_stalls`]) until the lag-bounded
    /// compactor overruns it; the shard must rebuild via
    /// `install_snapshot` under live traffic.
    OplogReplicaLag,
}

impl FaultKind {
    /// Every kind, in a stable order (used to spread a schedule across
    /// the whole taxonomy).
    pub const ALL: [FaultKind; 14] = [
        FaultKind::RingCorrupt,
        FaultKind::RingWedge,
        FaultKind::PcieStall,
        FaultKind::PcieDroppedWrite,
        FaultKind::NvmeMedia,
        FaultKind::NvmeTimeout,
        FaultKind::NvmeQueueFull,
        FaultKind::WorkerPanic,
        FaultKind::StubCrash,
        FaultKind::LeaseRecallLost,
        FaultKind::LeaseStaleGeneration,
        FaultKind::DomainCrash,
        FaultKind::DomainWedge,
        FaultKind::OplogReplicaLag,
    ];

    /// True when recovery requires a transport link reset (drain → scrub
    /// → reset) rather than a bounded retry.
    pub fn needs_link_reset(self) -> bool {
        matches!(
            self,
            FaultKind::RingCorrupt | FaultKind::RingWedge | FaultKind::StubCrash
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::RingCorrupt => "ring-corrupt",
            FaultKind::RingWedge => "ring-wedge",
            FaultKind::PcieStall => "pcie-stall",
            FaultKind::PcieDroppedWrite => "pcie-dropped-write",
            FaultKind::NvmeMedia => "nvme-media",
            FaultKind::NvmeTimeout => "nvme-timeout",
            FaultKind::NvmeQueueFull => "nvme-queue-full",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::StubCrash => "stub-crash",
            FaultKind::LeaseRecallLost => "lease-recall-lost",
            FaultKind::LeaseStaleGeneration => "lease-stale-generation",
            FaultKind::DomainCrash => "domain-crash",
            FaultKind::DomainWedge => "domain-wedge",
            FaultKind::OplogReplicaLag => "oplog-replica-lag",
        };
        write!(f, "{s}")
    }
}

/// One scheduled fault: at operation `at_op` of the workload, arm `kind`
/// with a burst of `burst` consecutive failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Zero-based index of the workload operation before which the fault
    /// is armed.
    pub at_op: u64,
    /// Which injector to arm.
    pub kind: FaultKind,
    /// How many consecutive failures the injector should produce.
    pub burst: u64,
}

/// A deterministic, seeded fault schedule over a fixed-length workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates a schedule for a workload of `ops` operations where each
    /// operation has probability `rate` of arming a fault. Kinds cycle
    /// through the whole taxonomy (so every injector is exercised before
    /// any repeats); bursts are geometric-ish, 1–4. The same `(seed, ops,
    /// rate)` triple always yields the same plan.
    pub fn generate(seed: u64, ops: u64, rate: f64) -> FaultPlan {
        let mut rng = DetRng::seed(seed);
        let mut events = Vec::new();
        let mut kind_cursor = 0usize;
        for op in 0..ops {
            if rng.chance(rate) {
                let kind = FaultKind::ALL[kind_cursor % FaultKind::ALL.len()];
                kind_cursor += 1;
                let burst = 1 + rng.below(4);
                events.push(FaultEvent {
                    at_op: op,
                    kind,
                    burst,
                });
            }
        }
        FaultPlan { seed, events }
    }

    /// A plan with exactly the given events (for hand-built scenarios).
    pub fn from_events(seed: u64, mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at_op);
        FaultPlan { seed, events }
    }

    /// The seed this plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events in workload order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events scheduled at exactly operation `op` (the driver calls this
    /// once per workload step and arms what it returns).
    pub fn due_at(&self, op: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.at_op == op)
    }

    /// Count of scheduled events of one kind.
    pub fn count_of(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// What a recovery experiment measured for one fault scenario.
///
/// The recovery state machine is *detect → drain → scrub → reset*; the
/// report captures whether each stage completed and how long detection
/// plus recovery took end to end.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryReport {
    /// Faults injected during the scenario.
    pub injected: u64,
    /// Requests that completed successfully despite the faults.
    pub completed: u64,
    /// Requests drained with an error completion during link resets.
    pub drained: u64,
    /// Requests retried (at any layer) before succeeding.
    pub retried: u64,
    /// Link resets performed.
    pub resets: u64,
    /// Tags still pending after recovery — must be zero for a pass.
    pub hung_tags: u64,
    /// In-flight credits still held after recovery — must be zero.
    pub leaked_credits: u64,
    /// Wall-clock nanoseconds from fault arming to detection, summed.
    pub detect_ns: u64,
    /// Wall-clock nanoseconds from detection to a usable link, summed.
    pub recover_ns: u64,
    /// Control-log replica overruns recovered via `install_snapshot`
    /// rebuilds (the [`FaultKind::OplogReplicaLag`] recovery path).
    pub oplog_overruns_recovered: u64,
    /// Reply waves that had their unsent tail resubmitted because a
    /// response ring filled mid-wave (backpressure, not loss).
    pub reply_wave_resubmits: u64,
    /// TCP events discarded because an event ring was full — must be
    /// zero for a pass: a dropped `Accepted`/`Closed` strands a client.
    pub event_drops: u64,
    /// Engine shards fenced and replaced by the supervisor
    /// ([`FaultKind::DomainCrash`] / [`FaultKind::DomainWedge`]).
    pub domains_failed_over: u64,
    /// Wall-clock nanoseconds a failed domain's flows went unserved
    /// (fence to replacement accepting), summed across failovers.
    pub blackout_ns: u64,
}

impl RecoveryReport {
    /// True when recovery left no permanently hung tag, no leaked
    /// credit, and no silently dropped TCP event — the E5/E9 acceptance
    /// invariant.
    pub fn clean(&self) -> bool {
        self.hung_tags == 0 && self.leaked_credits == 0 && self.event_drops == 0
    }

    /// Goodput fraction: completed / (completed + drained), 1.0 when idle.
    pub fn goodput(&self) -> f64 {
        let total = self.completed + self.drained;
        if total == 0 {
            1.0
        } else {
            self.completed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(7, 10_000, 0.02);
        let b = FaultPlan::generate(7, 10_000, 0.02);
        assert_eq!(a, b);
        assert!(!a.events().is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, 10_000, 0.02);
        let b = FaultPlan::generate(2, 10_000, 0.02);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn rate_scales_event_count() {
        let sparse = FaultPlan::generate(3, 50_000, 0.001).events().len();
        let dense = FaultPlan::generate(3, 50_000, 0.05).events().len();
        assert!(dense > sparse * 10, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    fn kinds_cycle_through_taxonomy() {
        let plan = FaultPlan::generate(11, 100_000, 0.01);
        for kind in FaultKind::ALL {
            assert!(plan.count_of(kind) > 0, "{kind} never scheduled");
        }
    }

    #[test]
    fn due_at_returns_events_in_order() {
        let plan = FaultPlan::from_events(
            0,
            vec![
                FaultEvent {
                    at_op: 5,
                    kind: FaultKind::NvmeMedia,
                    burst: 2,
                },
                FaultEvent {
                    at_op: 1,
                    kind: FaultKind::RingCorrupt,
                    burst: 1,
                },
            ],
        );
        assert_eq!(plan.events()[0].at_op, 1, "sorted by op");
        assert_eq!(plan.due_at(5).count(), 1);
        assert_eq!(plan.due_at(2).count(), 0);
    }

    #[test]
    fn recovery_report_invariants() {
        let mut r = RecoveryReport {
            injected: 4,
            completed: 90,
            drained: 10,
            ..Default::default()
        };
        assert!(r.clean());
        assert!((r.goodput() - 0.9).abs() < 1e-9);
        r.hung_tags = 1;
        assert!(!r.clean());
        assert_eq!(RecoveryReport::default().goodput(), 1.0);
    }

    #[test]
    fn link_reset_classification() {
        assert!(FaultKind::StubCrash.needs_link_reset());
        assert!(FaultKind::RingCorrupt.needs_link_reset());
        assert!(!FaultKind::NvmeMedia.needs_link_reset());
        assert!(!FaultKind::WorkerPanic.needs_link_reset());
    }
}
