//! Engine-level injection hooks.
//!
//! The proxy engine owns panic containment and reply settlement for every
//! control-plane proxy, so the injectors that used to live inside each
//! proxy ([`crate::FaultKind::WorkerPanic`], the stub-crash reply drop)
//! now arm one shared [`EngineFaults`] and both proxies get them for
//! free. All counters are atomic: experiment drivers arm from the control
//! thread while engine workers consume.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared injection state consumed by the proxy engine's dispatch and
/// settle stages.
#[derive(Debug, Default)]
pub struct EngineFaults {
    worker_panics: AtomicU64,
    dropped_replies: AtomicU64,
    domain_crashes: AtomicU64,
    domain_wedges: AtomicU64,
    sync_stalls: AtomicU64,
}

impl EngineFaults {
    /// A disarmed hook set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the next `n` request executions to panic mid-handler; the
    /// engine's containment must convert each into an `Io` error reply.
    pub fn arm_worker_panics(&self, n: u64) {
        self.worker_panics.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one armed worker panic, returning true when the current
    /// execution should blow up.
    pub fn take_worker_panic(&self) -> bool {
        take_one(&self.worker_panics)
    }

    /// Arms the engine to discard the next `n` replies instead of posting
    /// them — modeling a crashed/disconnected stub whose response link is
    /// gone; client-side deadline detection must recover the tags.
    pub fn arm_dropped_replies(&self, n: u64) {
        self.dropped_replies.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one armed reply drop, returning true when the reply about
    /// to be posted should vanish.
    pub fn take_dropped_reply(&self) -> bool {
        take_one(&self.dropped_replies)
    }

    /// Arms the next `n` engine cycles (on whichever shard consumes the
    /// charge) to die abruptly — the serve loop exits without draining,
    /// modeling a crashed domain ([`crate::FaultKind::DomainCrash`]). The
    /// shard supervisor must fence and fail the shard over.
    pub fn arm_domain_crashes(&self, n: u64) {
        self.domain_crashes.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one armed domain crash; true when this engine cycle
    /// should die.
    pub fn take_domain_crash(&self) -> bool {
        take_one(&self.domain_crashes)
    }

    /// Arms the next `n` engine cycles to wedge: the loop spins forever
    /// without advancing its heartbeat or serving requests
    /// ([`crate::FaultKind::DomainWedge`]); the supervisor must detect
    /// the heartbeat stall and fence the shard.
    pub fn arm_domain_wedges(&self, n: u64) {
        self.domain_wedges.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one armed domain wedge.
    pub fn take_domain_wedge(&self) -> bool {
        take_one(&self.domain_wedges)
    }

    /// Arms the next `n` control-log sync opportunities to stall — the
    /// shard skips advancing its replica cursor, eventually forcing a
    /// compaction overrun ([`crate::FaultKind::OplogReplicaLag`]) that
    /// the shard must recover from via a snapshot rebuild.
    pub fn arm_sync_stalls(&self, n: u64) {
        self.sync_stalls.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one armed sync stall; true when this sync should be
    /// skipped.
    pub fn take_sync_stall(&self) -> bool {
        take_one(&self.sync_stalls)
    }

    /// Remaining armed worker panics (visible for test assertions).
    pub fn armed_worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::SeqCst)
    }

    /// Remaining armed reply drops.
    pub fn armed_dropped_replies(&self) -> u64 {
        self.dropped_replies.load(Ordering::SeqCst)
    }

    /// Remaining armed domain crashes.
    pub fn armed_domain_crashes(&self) -> u64 {
        self.domain_crashes.load(Ordering::SeqCst)
    }

    /// Remaining armed domain wedges.
    pub fn armed_domain_wedges(&self) -> u64 {
        self.domain_wedges.load(Ordering::SeqCst)
    }

    /// Remaining armed sync stalls.
    pub fn armed_sync_stalls(&self) -> u64 {
        self.sync_stalls.load(Ordering::SeqCst)
    }
}

/// Injection state for the extent-lease data plane, consumed by the
/// lease manager (lost recalls) and the stub-side lease table (stale
/// generations). One instance is shared by the manager and every stub so
/// experiment drivers arm from a single handle.
#[derive(Debug, Default)]
pub struct LeaseFaults {
    lost_recalls: AtomicU64,
    stale_generations: AtomicU64,
}

impl LeaseFaults {
    /// A disarmed hook set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the next `n` recall notifications to be lost in flight: the
    /// holder never learns of the recall, so the manager's deadline must
    /// force-revoke ([`crate::FaultKind::LeaseRecallLost`]).
    pub fn arm_lost_recalls(&self, n: u64) {
        self.lost_recalls.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one armed lost recall; true when the notification about
    /// to be delivered should vanish.
    pub fn take_lost_recall(&self) -> bool {
        take_one(&self.lost_recalls)
    }

    /// Arms the next `n` lease grants to go stale without a recall — the
    /// manager silently bumps the generation
    /// ([`crate::FaultKind::LeaseStaleGeneration`]); the stub's
    /// generation check must catch it.
    pub fn arm_stale_generations(&self, n: u64) {
        self.stale_generations.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one armed stale generation.
    pub fn take_stale_generation(&self) -> bool {
        take_one(&self.stale_generations)
    }

    /// Remaining armed lost recalls.
    pub fn armed_lost_recalls(&self) -> u64 {
        self.lost_recalls.load(Ordering::SeqCst)
    }

    /// Remaining armed stale generations.
    pub fn armed_stale_generations(&self) -> u64 {
        self.stale_generations.load(Ordering::SeqCst)
    }
}

/// Decrements `counter` if positive; true when a charge was consumed.
fn take_one(counter: &AtomicU64) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_charges_are_consumed_exactly() {
        let f = EngineFaults::new();
        assert!(!f.take_worker_panic(), "disarmed");
        f.arm_worker_panics(2);
        assert!(f.take_worker_panic());
        assert_eq!(f.armed_worker_panics(), 1);
        assert!(f.take_worker_panic());
        assert!(!f.take_worker_panic(), "charges spent");

        f.arm_dropped_replies(1);
        assert!(f.take_dropped_reply());
        assert!(!f.take_dropped_reply());
        assert_eq!(f.armed_dropped_replies(), 0);
    }

    #[test]
    fn domain_hooks_charge_and_drain() {
        let f = EngineFaults::new();
        assert!(!f.take_domain_crash(), "disarmed");
        assert!(!f.take_domain_wedge(), "disarmed");
        assert!(!f.take_sync_stall(), "disarmed");
        f.arm_domain_crashes(1);
        f.arm_domain_wedges(2);
        f.arm_sync_stalls(3);
        assert!(f.take_domain_crash());
        assert!(!f.take_domain_crash(), "charge spent");
        assert!(f.take_domain_wedge());
        assert_eq!(f.armed_domain_wedges(), 1);
        assert!(f.take_sync_stall());
        assert!(f.take_sync_stall());
        assert_eq!(f.armed_sync_stalls(), 1);
        assert_eq!(f.armed_domain_crashes(), 0);
    }

    #[test]
    fn hooks_are_independent() {
        let f = EngineFaults::new();
        f.arm_worker_panics(1);
        assert!(!f.take_dropped_reply());
        assert!(f.take_worker_panic());
    }

    #[test]
    fn lease_hooks_charge_and_drain() {
        let f = LeaseFaults::new();
        assert!(!f.take_lost_recall(), "disarmed");
        assert!(!f.take_stale_generation(), "disarmed");
        f.arm_lost_recalls(1);
        f.arm_stale_generations(2);
        assert!(f.take_lost_recall());
        assert!(!f.take_lost_recall());
        assert_eq!(f.armed_stale_generations(), 2);
        assert!(f.take_stale_generation());
        assert!(f.take_stale_generation());
        assert!(!f.take_stale_generation());
        assert_eq!(f.armed_lost_recalls(), 0);
    }
}
