//! First-fit allocator for co-processor window memory.
//!
//! The data-plane OS carves its exported memory region into RPC ring
//! masters and zero-copy I/O buffers (the addresses it puts into
//! `Tread`/`Twrite`). This allocator manages those carvings: first-fit
//! over a sorted free list with coalescing on free, 64-byte alignment
//! (PCIe line granularity).

use parking_lot::Mutex;

/// Allocation alignment (one PCIe cache line).
pub const ALIGN: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Hole {
    off: usize,
    len: usize,
}

/// A first-fit offset allocator over a fixed region.
///
/// # Examples
///
/// ```
/// use solros_machine::WindowAlloc;
///
/// let a = WindowAlloc::new(4096);
/// let x = a.alloc(100).unwrap();
/// let y = a.alloc(100).unwrap();
/// assert_ne!(x, y);
/// a.free(x, 100);
/// a.free(y, 100);
/// assert_eq!(a.free_bytes(), 4096);
/// ```
pub struct WindowAlloc {
    inner: Mutex<Vec<Hole>>,
    total: usize,
}

impl WindowAlloc {
    /// Creates an allocator over `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "empty region");
        Self {
            inner: Mutex::new(vec![Hole { off: 0, len }]),
            total: len,
        }
    }

    fn round(n: usize) -> usize {
        n.div_ceil(ALIGN) * ALIGN
    }

    /// Allocates `len` bytes (rounded up to 64), returning the offset, or
    /// `None` when no hole fits.
    pub fn alloc(&self, len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        let need = Self::round(len);
        let mut holes = self.inner.lock();
        for i in 0..holes.len() {
            if holes[i].len >= need {
                let off = holes[i].off;
                holes[i].off += need;
                holes[i].len -= need;
                if holes[i].len == 0 {
                    holes.remove(i);
                }
                return Some(off);
            }
        }
        None
    }

    /// Frees a previous allocation of `len` bytes at `off`, coalescing
    /// adjacent holes.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or overlapping frees (allocator misuse).
    pub fn free(&self, off: usize, len: usize) {
        let len = Self::round(len);
        assert!(
            off.is_multiple_of(ALIGN) && off + len <= self.total,
            "bad free({off}, {len})"
        );
        let mut holes = self.inner.lock();
        let idx = holes.partition_point(|h| h.off < off);
        // Overlap checks against neighbours.
        if idx > 0 {
            let prev = holes[idx - 1];
            assert!(prev.off + prev.len <= off, "double free at {off}");
        }
        if idx < holes.len() {
            assert!(off + len <= holes[idx].off, "double free at {off}");
        }
        holes.insert(idx, Hole { off, len });
        // Coalesce with the next hole.
        if idx + 1 < holes.len() && holes[idx].off + holes[idx].len == holes[idx + 1].off {
            holes[idx].len += holes[idx + 1].len;
            holes.remove(idx + 1);
        }
        // Coalesce with the previous hole.
        if idx > 0 && holes[idx - 1].off + holes[idx - 1].len == holes[idx].off {
            holes[idx - 1].len += holes[idx].len;
            holes.remove(idx);
        }
    }

    /// Total free bytes (may be fragmented).
    pub fn free_bytes(&self) -> usize {
        self.inner.lock().iter().map(|h| h.len).sum()
    }

    /// Region size.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_respected() {
        let a = WindowAlloc::new(1 << 16);
        for len in [1usize, 63, 64, 65, 1000] {
            let off = a.alloc(len).unwrap();
            assert_eq!(off % ALIGN, 0);
        }
    }

    #[test]
    fn exhaustion_and_reuse() {
        let a = WindowAlloc::new(256);
        let x = a.alloc(128).unwrap();
        let y = a.alloc(128).unwrap();
        assert!(a.alloc(1).is_none());
        a.free(x, 128);
        let z = a.alloc(64).unwrap();
        assert_eq!(z, x);
        a.free(y, 128);
        a.free(z, 64);
        assert_eq!(a.free_bytes(), 256);
        // Full coalescing: one 256-byte allocation fits again.
        assert!(a.alloc(256).is_some());
    }

    #[test]
    fn coalescing_across_free_order() {
        let a = WindowAlloc::new(64 * 6);
        let offs: Vec<_> = (0..6).map(|_| a.alloc(64).unwrap()).collect();
        // Free out of order.
        for &i in &[3usize, 1, 5, 0, 4, 2] {
            a.free(offs[i], 64);
        }
        assert!(a.alloc(64 * 6).is_some(), "coalesced back to one hole");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let a = WindowAlloc::new(256);
        let x = a.alloc(64).unwrap();
        a.free(x, 64);
        a.free(x, 64);
    }

    #[test]
    fn zero_alloc_rejected() {
        let a = WindowAlloc::new(256);
        assert!(a.alloc(0).is_none());
    }

    #[test]
    fn concurrent_alloc_free() {
        let a = std::sync::Arc::new(WindowAlloc::new(1 << 20));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = std::sync::Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let off = a.alloc(4096).unwrap();
                        a.free(off, 4096);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.free_bytes(), 1 << 20);
    }
}
