//! Processor core performance models.
//!
//! The paper's thesis (§2, §4, Figure 13) is that I/O stacks — branchy,
//! shared-state-heavy code — run poorly on lean co-processor cores: the
//! profiled Xeon Phi file system spends ~5× more time than the Solros
//! stub, and the full TCP/IP stack on the Phi is an order of magnitude
//! slower than the host's. [`CoreModel`] captures that as a scalar
//! slowdown for "I/O-stack-shaped" work plus a parallel-efficiency factor
//! for data-parallel work (where the Phi's 244 threads shine).

use solros_simkit::SimTime;

/// A processor's performance profile.
#[derive(Debug, Clone)]
pub struct CoreModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads.
    pub threads: usize,
    /// Multiplier for branchy, control-flow-divergent systems code
    /// relative to the host (host = 1.0).
    pub io_stack_slowdown: f64,
    /// Relative per-thread throughput on data-parallel kernels
    /// (host thread = 1.0). Phi threads are slower each, but there are
    /// 244 of them with wide SIMD.
    pub parallel_thread_factor: f64,
}

impl CoreModel {
    /// The testbed host: two Xeon E5-2670 v3 (24 cores/socket, §6).
    pub fn host() -> Self {
        CoreModel {
            name: "Xeon E5-2670 v3 x2",
            cores: 48,
            threads: 96,
            io_stack_slowdown: 1.0,
            parallel_thread_factor: 1.0,
        }
    }

    /// One Xeon Phi co-processor (61 cores, 244 hardware threads, §6).
    pub fn xeon_phi() -> Self {
        CoreModel {
            name: "Xeon Phi 61c/244t",
            cores: 61,
            threads: 244,
            // Figure 13a: the full file system on the Phi spends ~5x the
            // time of the Solros stub; TCP is worse but the FS number is
            // the directly profiled one.
            io_stack_slowdown: 5.2,
            // In-order 1.1 GHz cores with wide SIMD: each thread is much
            // slower than a host thread on scalar code, but competitive
            // per-chip on vectorizable kernels.
            parallel_thread_factor: 0.22,
        }
    }

    /// Scales a host-calibrated I/O-stack cost onto this processor.
    pub fn io_stack_time(&self, host_time: SimTime) -> SimTime {
        host_time * self.io_stack_slowdown
    }

    /// Aggregate data-parallel throughput in "host-thread equivalents"
    /// when running `threads` workers.
    pub fn parallel_capacity(&self, threads: usize) -> f64 {
        threads.min(self.threads) as f64 * self.parallel_thread_factor
    }

    /// Time for a data-parallel kernel that takes `single_host_thread`
    /// time on one host thread, run with `threads` workers here.
    pub fn parallel_time(&self, single_host_thread: SimTime, threads: usize) -> SimTime {
        let cap = self.parallel_capacity(threads).max(f64::MIN_POSITIVE);
        SimTime::from_secs_f64(single_host_thread.as_secs_f64() / cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_stack_slowdown_matches_figure_13() {
        let host = CoreModel::host();
        let phi = CoreModel::xeon_phi();
        let base = SimTime::from_us(100);
        assert_eq!(host.io_stack_time(base), base);
        let scaled = phi.io_stack_time(base);
        let ratio = scaled.as_secs_f64() / base.as_secs_f64();
        assert!((4.5..=6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn phi_wins_on_wide_parallel_kernels() {
        let host = CoreModel::host();
        let phi = CoreModel::xeon_phi();
        // With full thread counts, the Phi chip out-parallelizes a socket.
        let phi_cap = phi.parallel_capacity(244);
        let host_cap = host.parallel_capacity(24); // One socket's worth.
        assert!(
            phi_cap > host_cap,
            "phi {phi_cap} vs host-socket {host_cap}"
        );
        // But a single Phi thread is far slower than a host thread.
        assert!(phi.parallel_capacity(1) < 0.5 * host.parallel_capacity(1));
    }

    #[test]
    fn parallel_time_scales_and_clamps() {
        let phi = CoreModel::xeon_phi();
        let base = SimTime::from_ms(100);
        let t61 = phi.parallel_time(base, 61);
        let t244 = phi.parallel_time(base, 244);
        let t1000 = phi.parallel_time(base, 1000);
        assert!(t244 < t61);
        assert_eq!(t244, t1000, "thread count clamps at hardware threads");
    }
}
