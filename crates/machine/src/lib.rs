#![warn(missing_docs)]

//! Machine assembly for Solros-rs.
//!
//! Wires the simulated hardware into the paper's testbed (§6): a two-socket
//! Xeon E5-2670 v3 host, four Xeon Phi co-processors (61 cores / 244
//! hardware threads each) on PCIe Gen2 x16, an Intel 750 NVMe SSD, and a
//! 100 GbE NIC reachable from a client machine — plus the per-device
//! memory windows, transaction counters, and cost models everything above
//! this layer consumes.

pub mod cores;
pub mod machine;
pub mod walloc;

pub use cores::CoreModel;
pub use machine::{Coprocessor, Machine, MachineConfig};
pub use walloc::WindowAlloc;
