//! The assembled machine.
//!
//! [`Machine::paper_testbed`] reproduces §6's hardware; custom shapes are
//! built from a [`MachineConfig`]. The machine owns the simulated devices
//! and per-co-processor resources that both the Solros stack and the
//! baselines run against.

use std::sync::Arc;

use solros_netdev::Network;
use solros_nvme::NvmeDevice;
use solros_pcie::cost::CostModel;
use solros_pcie::counter::PcieCounters;
use solros_pcie::topo::{DeviceId, Topology};
use solros_pcie::window::Window;
use solros_pcie::Side;

use crate::cores::CoreModel;
use crate::walloc::WindowAlloc;

/// Construction parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// NUMA sockets.
    pub sockets: u8,
    /// Number of co-processors; attached round-robin split across sockets
    /// (first half socket 0, second half socket 1, like the testbed).
    pub coprocs: usize,
    /// SSD capacity in blocks.
    pub ssd_blocks: u64,
    /// Exported memory per co-processor, in bytes.
    pub coproc_window_bytes: usize,
    /// Host-side shared buffer cache capacity, in pages (§4.3.2).
    pub host_cache_pages: usize,
}

impl MachineConfig {
    /// The paper testbed: 2 sockets, 4 Phis, 1.2 TB SSD (scaled down to a
    /// simulation-friendly 8 GiB), 64 MiB exported per Phi.
    pub fn paper_testbed() -> Self {
        MachineConfig {
            sockets: 2,
            coprocs: 4,
            ssd_blocks: (8u64 << 30) / solros_nvme::BLOCK_SIZE as u64,
            coproc_window_bytes: 64 << 20,
            host_cache_pages: 16_384, // 64 MiB
        }
    }

    /// A small configuration for unit/integration tests.
    pub fn small() -> Self {
        MachineConfig {
            sockets: 2,
            coprocs: 2,
            ssd_blocks: 16_384, // 64 MiB
            coproc_window_bytes: 4 << 20,
            host_cache_pages: 512,
        }
    }
}

/// One co-processor's resources.
pub struct Coprocessor {
    /// Index (also its [`DeviceId::Coproc`] number).
    pub id: u8,
    /// Exported memory region (PCIe window home = co-processor).
    pub window: Arc<Window>,
    /// Allocator over the exported region.
    pub alloc: Arc<WindowAlloc>,
    /// PCIe transaction ledger for this card's traffic.
    pub counters: Arc<PcieCounters>,
    /// Core performance model.
    pub cores: CoreModel,
}

/// The simulated machine.
pub struct Machine {
    /// PCIe/QPI attachment map.
    pub topology: Topology,
    /// The NVMe SSD.
    pub nvme: Arc<NvmeDevice>,
    /// The NIC + outside world.
    pub network: Arc<Network>,
    /// Co-processor cards.
    pub coprocs: Vec<Coprocessor>,
    /// Host core model.
    pub host_cores: CoreModel,
    /// PCIe transfer cost model.
    pub cost: Arc<CostModel>,
}

impl Machine {
    /// Builds a machine from a config.
    ///
    /// # Panics
    ///
    /// Panics if `coprocs == 0` or `sockets == 0`.
    pub fn new(cfg: MachineConfig) -> Self {
        let blocks = cfg.ssd_blocks;
        Self::with_nvme(cfg, NvmeDevice::new(blocks))
    }

    /// Builds a machine around an existing SSD — the "same card, new boot"
    /// path that lets a Solros system remount a previously formatted
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if `coprocs == 0` or `sockets == 0`.
    pub fn with_nvme(cfg: MachineConfig, nvme: Arc<NvmeDevice>) -> Self {
        assert!(cfg.coprocs > 0, "need at least one co-processor");
        let mut topology = Topology::new(cfg.sockets);
        topology.attach(DeviceId::Nvme(0), 0);
        topology.attach(DeviceId::Nic(0), 0);
        let mut coprocs = Vec::with_capacity(cfg.coprocs);
        for i in 0..cfg.coprocs {
            // Block-split across sockets: contiguous card ids share a
            // socket, the first block sits with the SSD/NIC. For two
            // sockets this is the historical front-half/back-half split;
            // more sockets spread the blocks so a failover experiment
            // can run one engine shard (NUMA domain) per card.
            let socket = (i * cfg.sockets as usize / cfg.coprocs) as u8;
            topology.attach(DeviceId::Coproc(i as u8), socket);
            let counters = Arc::new(PcieCounters::new());
            coprocs.push(Coprocessor {
                id: i as u8,
                window: Window::new(cfg.coproc_window_bytes, Side::Coproc, Arc::clone(&counters)),
                alloc: Arc::new(WindowAlloc::new(cfg.coproc_window_bytes)),
                counters,
                cores: CoreModel::xeon_phi(),
            });
        }
        Machine {
            topology,
            nvme,
            network: Network::new(),
            coprocs,
            host_cores: CoreModel::host(),
            cost: Arc::new(CostModel::paper_default()),
        }
    }

    /// The §6 testbed.
    pub fn paper_testbed() -> Self {
        Self::new(MachineConfig::paper_testbed())
    }

    /// True when P2P between the SSD and co-processor `id` crosses QPI
    /// (the Figure 1a demotion condition).
    pub fn ssd_p2p_crosses_numa(&self, id: u8) -> bool {
        self.topology
            .p2p_path(DeviceId::Nvme(0), DeviceId::Coproc(id))
            == solros_pcie::topo::P2pPath::CrossSocket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let m = Machine::paper_testbed();
        assert_eq!(m.coprocs.len(), 4);
        assert!(!m.ssd_p2p_crosses_numa(0));
        assert!(!m.ssd_p2p_crosses_numa(1));
        assert!(m.ssd_p2p_crosses_numa(2));
        assert!(m.ssd_p2p_crosses_numa(3));
        assert_eq!(m.host_cores.io_stack_slowdown, 1.0);
    }

    #[test]
    fn small_config_single_socket_fallback() {
        let m = Machine::new(MachineConfig {
            sockets: 1,
            coprocs: 3,
            ssd_blocks: 1024,
            coproc_window_bytes: 1 << 20,
            host_cache_pages: 64,
        });
        for c in &m.coprocs {
            assert!(!m.ssd_p2p_crosses_numa(c.id));
        }
    }

    #[test]
    fn windows_are_independent() {
        let m = Machine::new(MachineConfig::small());
        let a = m.coprocs[0].alloc.alloc(4096).unwrap();
        let b = m.coprocs[1].alloc.alloc(4096).unwrap();
        assert_eq!(a, b, "separate allocators start at the same offset");
        let ha = m.coprocs[0].window.map(Side::Coproc);
        let hb = m.coprocs[1].window.map(Side::Coproc);
        // SAFETY: test-local regions; disjoint windows.
        unsafe {
            ha.write(a, &[1u8; 64]);
            hb.write(b, &[2u8; 64]);
            let mut va = [0u8; 64];
            let mut vb = [0u8; 64];
            ha.read(a, &mut va);
            hb.read(b, &mut vb);
            assert_eq!(va, [1u8; 64]);
            assert_eq!(vb, [2u8; 64]);
        }
    }
}
