//! Extent-lease data plane: zero-RPC P2P reads and writes for hot files.
//!
//! Solros keeps its control plane (naming, allocation, admission) on the
//! host and its data plane next to the device. The RPC path already does
//! peer-to-peer NVMe DMA, but every operation still crosses the PCIe ring
//! once to ask the proxy *where* the bytes live. For hot files that
//! lookup is pure overhead: the fs invariant that in-place overwrites
//! never move extents (see `solros-fs`) means the answer rarely changes.
//!
//! This crate splits the data path SplitFS-style:
//!
//! * [`LeaseManager`] — control-plane side. Grants a co-processor a
//!   *lease*: a generation-stamped, pre-resolved extent map over a byte
//!   range of one file. Write leases preallocate blocks up front so the
//!   holder never needs an allocation RPC. The manager owns the recall
//!   protocol: conflicting access marks the lease recalled, the holder
//!   flushes and acks, and a deadline sweep force-revokes holders that
//!   never answer (crashed stubs, lost recall notifications).
//! * [`LeaseTable`] — stub side, embedded in the co-processor's fs
//!   client. While a valid lease covers a range, `read_at`/`write_at`
//!   go straight to the NVMe queues through the shared lease record —
//!   zero RPCs per operation. Recalled or stale-generation leases are
//!   detected *before* any data moves and the table falls back to RPC.
//!
//! Coherence hinges on two rules enforced here and audited by the
//! property tests in `tests/prop_lease.rs`:
//!
//! 1. **No two conflicting leases coexist.** Grants conflict-check under
//!    one lock; writer leases exclude everything, reader leases exclude
//!    writers.
//! 2. **Every recall settles.** Either the holder acks (flush + wire
//!    ack) or the manager's deadline sweep force-revokes. The
//!    [`LeaseLedger`] proves it: `recalls_issued == recalls_acked +
//!    forced_revokes` at quiescence.

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

mod manager;
mod state;
mod table;

pub use manager::{GrantBar, LeaseError, LeaseLedger, LeaseManager, RecallSink};
pub use state::{LeaseKind, LeaseState, SettledLease};
pub use table::{BatchIo, LeaseIo, LeaseTable, LeaseTableStats};
