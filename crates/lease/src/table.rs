//! Stub-side lease table: the zero-RPC fast path.
//!
//! The co-processor's fs client consults this table before every data
//! operation. A valid lease covering the range turns the op into direct
//! NVMe submissions against the pre-resolved extents — one doorbell, no
//! RPC. Anything else (no lease, out of range, recalled, stale) falls
//! back to the proxy path, after flushing and acking if a recall is the
//! reason.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_fs::Extent;
use solros_machine::WindowAlloc;
use solros_nvme::{DmaPtr, NvmeCommand, NvmeDevice, BLOCK_SIZE, MDTS_BLOCKS};
use solros_pcie::{Side, Window};

use crate::manager::LeaseManager;
use crate::state::{LeaseKind, LeaseState};

/// Outcome of a single fast-path attempt.
#[derive(Debug)]
pub enum LeaseIo {
    /// Served from the lease: `n` bytes moved, zero RPCs.
    Done(usize),
    /// No usable lease; take the RPC path. No ack owed.
    Fallback,
    /// The lease was recalled (or went stale): it has been flushed and
    /// dropped from the table; the caller must send this ack on the
    /// wire, then take the RPC path.
    RecallAck {
        /// Lease id to ack.
        id: u64,
        /// High-water mark of leased writes to report.
        written_end: u64,
    },
}

/// Outcome of a batched fast-path attempt.
#[derive(Debug)]
pub enum BatchIo {
    /// Every request served from the lease in one vectored submission.
    Done(Vec<Vec<u8>>),
    /// Take the RPC batch path.
    Fallback,
    /// As [`LeaseIo::RecallAck`].
    RecallAck {
        /// Lease id to ack.
        id: u64,
        /// High-water mark of leased writes to report.
        written_end: u64,
    },
}

/// Counters for the stub-side fast path.
#[derive(Debug, Default)]
pub struct LeaseTableStats {
    /// Reads served entirely from a lease (zero RPCs).
    pub leased_reads: AtomicU64,
    /// Writes served entirely from a lease.
    pub leased_writes: AtomicU64,
    /// Bytes read through leases.
    pub leased_bytes_read: AtomicU64,
    /// Bytes written through leases.
    pub leased_bytes_written: AtomicU64,
    /// Ops that had a lease but fell back (range, alloc, device error).
    pub fallbacks: AtomicU64,
    /// Recalls noticed and acked by this table.
    pub recall_acks: AtomicU64,
    /// Stale-generation mappings caught before any data moved.
    pub stale_rejected: AtomicU64,
    /// Tripwire: leased ops that completed against a mapping whose
    /// generation went stale mid-flight without a recall. Must stay 0 —
    /// the begin/recheck guard plus recall-before-invalidate ordering
    /// make a silent stale read structurally impossible; E6 gates on it.
    pub stale_generation_reads: AtomicU64,
}

/// The stub's view of its outstanding leases, keyed by inode.
pub struct LeaseTable {
    device: Arc<NvmeDevice>,
    window: Arc<Window>,
    alloc: Arc<WindowAlloc>,
    manager: Arc<LeaseManager>,
    leases: Mutex<HashMap<u64, Arc<LeaseState>>>,
    stats: LeaseTableStats,
}

impl LeaseTable {
    /// A table bound to one co-processor's window, allocator and the
    /// machine-wide lease manager.
    pub fn new(
        device: Arc<NvmeDevice>,
        window: Arc<Window>,
        alloc: Arc<WindowAlloc>,
        manager: Arc<LeaseManager>,
    ) -> Self {
        Self {
            device,
            window,
            alloc,
            manager,
            leases: Mutex::new(HashMap::new()),
            stats: LeaseTableStats::default(),
        }
    }

    /// Fast-path counters.
    pub fn stats(&self) -> &LeaseTableStats {
        &self.stats
    }

    /// The shared manager (experiment drivers reach ledger/faults).
    pub fn manager(&self) -> &Arc<LeaseManager> {
        &self.manager
    }

    /// Adopts a granted lease by wire handle. Verifies the generation
    /// the proxy reported still matches the shared record — a grant
    /// that went stale in flight is refused here, not at first I/O.
    pub fn adopt(&self, id: u64, ino: u64, generation: u64) -> bool {
        let Some(st) = self.manager.shared(id) else {
            return false;
        };
        if st.ino() != ino || st.generation() != generation || !st.is_current() {
            self.stats.stale_rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.leases.lock().insert(ino, st);
        true
    }

    /// True when this table holds a lease on `ino` (of any validity).
    pub fn has(&self, ino: u64) -> bool {
        self.leases.lock().contains_key(&ino)
    }

    /// Removes the lease on `ino` for a voluntary release, returning
    /// the wire handle and write high-water mark to report.
    pub fn take_release(&self, ino: u64) -> Option<(u64, u64)> {
        let st = self.leases.lock().remove(&ino)?;
        self.flush_writes(&st);
        Some((st.id(), st.written_end()))
    }

    /// Attempts a leased read of `buf.len()` bytes at `offset`.
    pub fn read_at(&self, ino: u64, offset: u64, buf: &mut [u8]) -> LeaseIo {
        let Some(st) = self.lease_for(ino) else {
            return LeaseIo::Fallback;
        };
        if !st.begin_op() {
            return self.retire(ino, &st);
        }
        let r = self.leased_read(&st, offset, buf);
        let stale_mid_op = !st.is_current() && !st.is_recalled();
        st.end_op();
        if stale_mid_op {
            self.stats
                .stale_generation_reads
                .fetch_add(1, Ordering::Relaxed);
        }
        match r {
            Some(n) => {
                self.stats.leased_reads.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .leased_bytes_read
                    .fetch_add(n as u64, Ordering::Relaxed);
                st.charge_bypass(n as u64);
                LeaseIo::Done(n)
            }
            None => {
                self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
                LeaseIo::Fallback
            }
        }
    }

    /// Attempts a leased write of `data` at `offset`. Requires a write
    /// lease and block-aligned offset/length (the RPC path handles the
    /// ragged cases; leases exist for bulk I/O).
    pub fn write_at(&self, ino: u64, offset: u64, data: &[u8]) -> LeaseIo {
        let Some(st) = self.lease_for(ino) else {
            return LeaseIo::Fallback;
        };
        let bs = BLOCK_SIZE as u64;
        if st.kind() != LeaseKind::Write
            || !offset.is_multiple_of(bs)
            || !(data.len() as u64).is_multiple_of(bs)
            || data.is_empty()
        {
            return LeaseIo::Fallback;
        }
        if !st.begin_op() {
            return self.retire(ino, &st);
        }
        let r = self.leased_write(&st, offset, data);
        let stale_mid_op = !st.is_current() && !st.is_recalled();
        st.end_op();
        if stale_mid_op {
            self.stats
                .stale_generation_reads
                .fetch_add(1, Ordering::Relaxed);
        }
        match r {
            Some(n) => {
                st.note_write(offset + n as u64);
                self.stats.leased_writes.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .leased_bytes_written
                    .fetch_add(n as u64, Ordering::Relaxed);
                st.charge_bypass(n as u64);
                LeaseIo::Done(n)
            }
            None => {
                self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
                LeaseIo::Fallback
            }
        }
    }

    /// Attempts a batch of leased reads as ONE vectored submission —
    /// a single doorbell and interrupt for the whole batch, zero RPCs.
    /// All-or-nothing: any request outside the lease falls the whole
    /// batch back to the RPC path.
    pub fn read_batch(&self, ino: u64, reqs: &[(u64, usize)]) -> BatchIo {
        let Some(st) = self.lease_for(ino) else {
            return BatchIo::Fallback;
        };
        if !st.begin_op() {
            return match self.retire(ino, &st) {
                LeaseIo::RecallAck { id, written_end } => BatchIo::RecallAck { id, written_end },
                _ => BatchIo::Fallback,
            };
        }
        let r = self.leased_read_batch(&st, reqs);
        let stale_mid_op = !st.is_current() && !st.is_recalled();
        st.end_op();
        if stale_mid_op {
            self.stats
                .stale_generation_reads
                .fetch_add(1, Ordering::Relaxed);
        }
        match r {
            Some(bufs) => {
                let bytes: u64 = bufs.iter().map(|b| b.len() as u64).sum();
                self.stats
                    .leased_reads
                    .fetch_add(reqs.len() as u64, Ordering::Relaxed);
                self.stats
                    .leased_bytes_read
                    .fetch_add(bytes, Ordering::Relaxed);
                st.charge_bypass(bytes);
                BatchIo::Done(bufs)
            }
            None => {
                self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
                BatchIo::Fallback
            }
        }
    }

    fn lease_for(&self, ino: u64) -> Option<Arc<LeaseState>> {
        self.leases.lock().get(&ino).cloned()
    }

    /// Drops an unusable lease from the table: flushes leased writes,
    /// classifies why (recall vs stale), and tells the caller whether
    /// an ack is owed.
    fn retire(&self, ino: u64, st: &Arc<LeaseState>) -> LeaseIo {
        // Only retire the exact record we found; a fresh re-grant may
        // already sit in the slot.
        {
            let mut leases = self.leases.lock();
            match leases.get(&ino) {
                Some(cur) if Arc::ptr_eq(cur, st) => {
                    leases.remove(&ino);
                }
                _ => return LeaseIo::Fallback,
            }
        }
        if st.is_recalled() {
            self.stats.recall_acks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.stale_rejected.fetch_add(1, Ordering::Relaxed);
        }
        self.flush_writes(st);
        LeaseIo::RecallAck {
            id: st.id(),
            written_end: st.written_end(),
        }
    }

    /// Waits out concurrent leased ops and flushes the device so every
    /// leased write is durable before the ack reports `written_end`.
    fn flush_writes(&self, st: &LeaseState) {
        while st.active_ops() > 0 {
            std::thread::yield_now();
        }
        if st.kind() == LeaseKind::Write && st.written_end() > 0 {
            let _ = self.device.submit_vectored(&[NvmeCommand::Flush]);
        }
    }

    fn leased_read(&self, st: &LeaseState, offset: u64, buf: &mut [u8]) -> Option<usize> {
        // Outside the leased range: not ours to answer. The file may
        // extend past a partial-range lease, so only the RPC path can
        // tell data from EOF here — a Done(0) would be a false EOF.
        let range_end = st.offset() + st.len();
        if offset < st.offset() || offset >= range_end {
            return None;
        }
        let end = st.readable_end();
        // Inside the range but at/past the readable end: the file
        // ended within the lease (a conflicting writer can't extend
        // it without a recall), so this EOF is real.
        if offset >= end {
            return Some(0);
        }
        let want = (buf.len() as u64).min(end - offset) as usize;
        if want == 0 {
            return Some(0);
        }
        let bs = BLOCK_SIZE as u64;
        let rel = offset - st.offset();
        let first_block = rel / bs;
        let lead = (rel % bs) as usize;
        let span_blocks = (rel + want as u64).div_ceil(bs) - first_block;
        let span_bytes = (span_blocks * bs) as usize;
        let win_off = self.alloc.alloc(span_bytes)?;
        let cmds = slice_cmds(
            st.extents(),
            first_block,
            span_blocks,
            &self.window,
            win_off,
            true,
        );
        let ok = match cmds {
            Some(cmds) => self.device.submit_vectored(&cmds).iter().all(|r| r.is_ok()),
            None => false,
        };
        if ok {
            let local = self.window.map(Side::Coproc);
            // SAFETY: `win_off..win_off + span_bytes` was just allocated
            // from this window's allocator, and `lead + want` fits the
            // span by construction.
            unsafe { local.read(win_off + lead, &mut buf[..want]) };
        }
        self.alloc.free(win_off, span_bytes);
        ok.then_some(want)
    }

    fn leased_write(&self, st: &LeaseState, offset: u64, data: &[u8]) -> Option<usize> {
        if offset < st.offset() || offset + data.len() as u64 > st.offset() + st.len() {
            return None;
        }
        let bs = BLOCK_SIZE as u64;
        let rel = offset - st.offset();
        let first_block = rel / bs;
        let span_blocks = (data.len() as u64) / bs;
        let win_off = self.alloc.alloc(data.len())?;
        let local = self.window.map(Side::Coproc);
        // SAFETY: the span was just allocated from this window.
        unsafe { local.write(win_off, data) };
        let cmds = slice_cmds(
            st.extents(),
            first_block,
            span_blocks,
            &self.window,
            win_off,
            false,
        );
        let ok = match cmds {
            Some(cmds) => self.device.submit_vectored(&cmds).iter().all(|r| r.is_ok()),
            None => false,
        };
        self.alloc.free(win_off, data.len());
        ok.then_some(data.len())
    }

    fn leased_read_batch(&self, st: &LeaseState, reqs: &[(u64, usize)]) -> Option<Vec<Vec<u8>>> {
        let bs = BLOCK_SIZE as u64;
        let end = st.readable_end();
        let range_end = st.offset() + st.len();
        // Plan every request first; any miss aborts before allocation.
        let mut plans = Vec::with_capacity(reqs.len());
        let mut total_span = 0usize;
        for &(offset, len) in reqs {
            // Same range guard as `leased_read`: a request outside the
            // leased range falls the whole batch back — a partial-range
            // lease can't distinguish EOF from not-yet-leased data.
            if offset < st.offset() || offset >= range_end {
                return None;
            }
            if offset >= end || len == 0 {
                plans.push(None);
                continue;
            }
            let want = (len as u64).min(end - offset) as usize;
            let rel = offset - st.offset();
            let first_block = rel / bs;
            let lead = (rel % bs) as usize;
            let span_blocks = (rel + want as u64).div_ceil(bs) - first_block;
            let span_bytes = (span_blocks * bs) as usize;
            plans.push(Some((first_block, span_blocks, lead, want, total_span)));
            total_span += span_bytes;
        }
        if total_span == 0 {
            return Some(reqs.iter().map(|_| Vec::new()).collect());
        }
        let win_off = self.alloc.alloc(total_span)?;
        let mut cmds = Vec::new();
        let mut covered = true;
        for plan in plans.iter().flatten() {
            let (first_block, span_blocks, _, _, span_off) = *plan;
            match slice_cmds(
                st.extents(),
                first_block,
                span_blocks,
                &self.window,
                win_off + span_off,
                true,
            ) {
                Some(mut c) => cmds.append(&mut c),
                None => {
                    covered = false;
                    break;
                }
            }
        }
        let ok = covered && self.device.submit_vectored(&cmds).iter().all(|r| r.is_ok());
        let out = if ok {
            let local = self.window.map(Side::Coproc);
            let mut out = Vec::with_capacity(reqs.len());
            for plan in &plans {
                match plan {
                    None => out.push(Vec::new()),
                    Some((_, _, lead, want, span_off)) => {
                        let mut buf = vec![0u8; *want];
                        // SAFETY: the whole span belongs to this batch's
                        // allocation.
                        unsafe { local.read(win_off + span_off + lead, &mut buf) };
                        out.push(buf);
                    }
                }
            }
            Some(out)
        } else {
            None
        };
        self.alloc.free(win_off, total_span);
        out
    }
}

/// Slices `want` blocks starting `skip` blocks into the extent map into
/// MDTS-sized NVMe commands targeting a contiguous window span at
/// `cursor`. `None` when the extents don't cover the span (hole or
/// truncated map) — the caller falls back to RPC.
fn slice_cmds(
    extents: &[Extent],
    mut skip: u64,
    mut want: u64,
    window: &Arc<Window>,
    mut cursor: usize,
    is_read: bool,
) -> Option<Vec<NvmeCommand>> {
    let mut cmds = Vec::new();
    for e in extents {
        let elen = e.len as u64;
        if skip >= elen {
            skip -= elen;
            continue;
        }
        let mut lba = e.start + skip;
        let mut avail = elen - skip;
        skip = 0;
        while avail > 0 && want > 0 {
            let n = avail.min(want).min(MDTS_BLOCKS as u64);
            let ptr = DmaPtr::new(Arc::clone(window), cursor);
            cmds.push(if is_read {
                NvmeCommand::Read {
                    lba,
                    nblocks: n as u32,
                    dst: ptr,
                }
            } else {
                NvmeCommand::Write {
                    lba,
                    nblocks: n as u32,
                    src: ptr,
                }
            });
            lba += n;
            avail -= n;
            want -= n;
            cursor += (n as usize) * BLOCK_SIZE;
        }
        if want == 0 {
            break;
        }
    }
    (want == 0).then_some(cmds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::LeaseManager;
    use solros_pcie::PcieCounters;

    fn rig() -> (
        Arc<NvmeDevice>,
        Arc<Window>,
        Arc<WindowAlloc>,
        Arc<LeaseManager>,
    ) {
        let dev = NvmeDevice::new(1024);
        let win = Window::new(1 << 20, Side::Coproc, Arc::new(PcieCounters::new()));
        let alloc = Arc::new(WindowAlloc::new(1 << 20));
        let mgr = Arc::new(LeaseManager::new());
        (dev, win, alloc, mgr)
    }

    fn fill_blocks(dev: &Arc<NvmeDevice>, win: &Arc<Window>, lba: u64, data: &[u8]) {
        assert!(data.len().is_multiple_of(BLOCK_SIZE));
        let h = win.map(Side::Host);
        unsafe { h.write(0, data) };
        let n = (data.len() / BLOCK_SIZE) as u32;
        let r = dev.submit_vectored(&[NvmeCommand::Write {
            lba,
            nblocks: n,
            src: DmaPtr::new(Arc::clone(win), 0),
        }]);
        assert!(r.iter().all(|x| x.is_ok()));
    }

    #[test]
    fn leased_read_round_trips_without_rpc() {
        let (dev, win, alloc, mgr) = rig();
        let data: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        fill_blocks(&dev, &win, 100, &data);
        let st = mgr
            .grant(
                0,
                7,
                0,
                (2 * BLOCK_SIZE) as u64,
                LeaseKind::Read,
                vec![Extent { start: 100, len: 2 }],
                (2 * BLOCK_SIZE) as u64,
                None,
            )
            .expect("grant");
        let table = LeaseTable::new(dev, win, alloc, Arc::clone(&mgr));
        assert!(table.adopt(st.id(), 7, st.generation()));
        // Unaligned interior read.
        let mut buf = vec![0u8; 1000];
        match table.read_at(7, 123, &mut buf) {
            LeaseIo::Done(n) => {
                assert_eq!(n, 1000);
                assert_eq!(&buf[..], &data[123..1123]);
            }
            other => panic!("expected Done, got {other:?}"),
        }
        // EOF clamp.
        let mut buf = vec![0u8; 4096];
        match table.read_at(7, (2 * BLOCK_SIZE - 10) as u64, &mut buf) {
            LeaseIo::Done(n) => assert_eq!(n, 10),
            other => panic!("expected clamped Done, got {other:?}"),
        }
        assert_eq!(table.stats().leased_reads.load(Ordering::Relaxed), 2);
        assert_eq!(
            table.stats().stale_generation_reads.load(Ordering::Relaxed),
            0
        );
    }

    #[test]
    fn leased_write_then_read_sees_new_bytes() {
        let (dev, win, alloc, mgr) = rig();
        let st = mgr
            .grant(
                0,
                9,
                0,
                (4 * BLOCK_SIZE) as u64,
                LeaseKind::Write,
                vec![Extent { start: 200, len: 4 }],
                0,
                None,
            )
            .expect("grant");
        let table = LeaseTable::new(dev, win, alloc, Arc::clone(&mgr));
        assert!(table.adopt(st.id(), 9, st.generation()));
        let data: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 199) as u8).collect();
        match table.write_at(9, BLOCK_SIZE as u64, &data) {
            LeaseIo::Done(n) => assert_eq!(n, data.len()),
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(st.written_end(), (3 * BLOCK_SIZE) as u64);
        let mut buf = vec![0u8; data.len()];
        match table.read_at(9, BLOCK_SIZE as u64, &mut buf) {
            LeaseIo::Done(n) => {
                assert_eq!(n, data.len());
                assert_eq!(buf, data);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn recalled_lease_is_flushed_acked_and_dropped() {
        let (dev, win, alloc, mgr) = rig();
        let st = mgr
            .grant(
                0,
                5,
                0,
                (BLOCK_SIZE) as u64,
                LeaseKind::Write,
                vec![Extent { start: 50, len: 1 }],
                0,
                None,
            )
            .expect("grant");
        let table = LeaseTable::new(dev, win, alloc, Arc::clone(&mgr));
        assert!(table.adopt(st.id(), 5, st.generation()));
        let data = vec![7u8; BLOCK_SIZE];
        assert!(matches!(table.write_at(5, 0, &data), LeaseIo::Done(_)));
        mgr.recall_range(5, 0, u64::MAX, true);
        let mut buf = vec![0u8; 16];
        match table.read_at(5, 0, &mut buf) {
            LeaseIo::RecallAck { id, written_end } => {
                assert_eq!(id, st.id());
                assert_eq!(written_end, BLOCK_SIZE as u64);
                assert!(mgr.settle_wire(id, written_end, false).is_some());
            }
            other => panic!("expected RecallAck, got {other:?}"),
        }
        assert!(!table.has(5), "lease dropped from the table");
        assert!(mgr.ledger().clean());
        assert_eq!(table.stats().recall_acks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stale_generation_is_caught_before_data_moves() {
        let (dev, win, alloc, mgr) = rig();
        let st = mgr
            .grant(
                0,
                3,
                0,
                BLOCK_SIZE as u64,
                LeaseKind::Read,
                vec![Extent { start: 10, len: 1 }],
                BLOCK_SIZE as u64,
                None,
            )
            .expect("grant");
        let table = LeaseTable::new(dev, win, alloc, Arc::clone(&mgr));
        assert!(table.adopt(st.id(), 3, st.generation()));
        mgr.bump_generation(3);
        let mut buf = vec![0u8; 16];
        match table.read_at(3, 0, &mut buf) {
            LeaseIo::RecallAck { id, .. } => {
                assert_eq!(id, st.id());
            }
            other => panic!("expected RecallAck, got {other:?}"),
        }
        assert_eq!(table.stats().stale_rejected.load(Ordering::Relaxed), 1);
        assert_eq!(
            table.stats().stale_generation_reads.load(Ordering::Relaxed),
            0,
            "stale mapping caught before serving"
        );
    }

    #[test]
    fn partial_range_lease_falls_back_outside_its_range() {
        // Lease only the first 2 blocks of a logically longer file: a
        // read past the lease must fall back to RPC, never report EOF
        // — the file continues where the lease can't see.
        let (dev, win, alloc, mgr) = rig();
        let st = mgr
            .grant(
                0,
                13,
                0,
                (2 * BLOCK_SIZE) as u64,
                LeaseKind::Read,
                vec![Extent { start: 400, len: 2 }],
                (2 * BLOCK_SIZE) as u64,
                None,
            )
            .expect("grant");
        let table = LeaseTable::new(dev, win, alloc, Arc::clone(&mgr));
        assert!(table.adopt(st.id(), 13, st.generation()));
        let mut buf = vec![0u8; 512];
        assert!(matches!(
            table.read_at(13, (4 * BLOCK_SIZE) as u64, &mut buf),
            LeaseIo::Fallback
        ));
        // Exactly at the range end is still outside the lease.
        assert!(matches!(
            table.read_at(13, (2 * BLOCK_SIZE) as u64, &mut buf),
            LeaseIo::Fallback
        ));
        // One out-of-range request falls the whole batch back.
        assert!(matches!(
            table.read_batch(13, &[(0, 64), ((4 * BLOCK_SIZE) as u64, 64)]),
            BatchIo::Fallback
        ));
        assert_eq!(table.stats().leased_reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn batched_reads_use_one_submission() {
        let (dev, win, alloc, mgr) = rig();
        let data: Vec<u8> = (0..4 * BLOCK_SIZE).map(|i| (i % 241) as u8).collect();
        fill_blocks(&dev, &win, 300, &data);
        // Lease one block past the data so the EOF inside the range is
        // provably real (a request at the range end itself must fall
        // back — the file might continue past the lease).
        let st = mgr
            .grant(
                0,
                11,
                0,
                (5 * BLOCK_SIZE) as u64,
                LeaseKind::Read,
                vec![Extent { start: 300, len: 5 }],
                (4 * BLOCK_SIZE) as u64,
                None,
            )
            .expect("grant");
        let table = LeaseTable::new(Arc::clone(&dev), win, alloc, Arc::clone(&mgr));
        assert!(table.adopt(st.id(), 11, st.generation()));
        let doorbells_before = dev.stats().doorbells;
        let reqs = vec![
            (0u64, 100usize),
            (5000, 2000),
            ((4 * BLOCK_SIZE) as u64, 64),
        ];
        match table.read_batch(11, &reqs) {
            BatchIo::Done(bufs) => {
                assert_eq!(bufs.len(), 3);
                assert_eq!(&bufs[0][..], &data[0..100]);
                assert_eq!(&bufs[1][..], &data[5000..7000]);
                assert!(bufs[2].is_empty(), "read at EOF");
            }
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(
            dev.stats().doorbells - doorbells_before,
            1,
            "whole batch rings one doorbell"
        );
    }
}
