//! Control-plane lease manager: grants, conflicts, and the recall
//! protocol.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use solros_faults::LeaseFaults;
use solros_fs::Extent;
use solros_qos::QosStats;

use crate::state::{LeaseKind, LeaseState, SettledLease};

/// Default budget a recalled holder gets to flush and ack before the
/// sweep force-revokes. Generous against the simulator's microsecond
/// device latencies, small enough that a crashed stub can't wedge a
/// conflicting operation for long.
pub const DEFAULT_RECALL_BUDGET: Duration = Duration::from_millis(5);

/// Why a grant was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseError {
    /// P2P DMA from this co-processor would cross a NUMA boundary; the
    /// control plane keeps such traffic on the buffered RPC path.
    Placement,
    /// A conflicting lease survived the recall attempt (or appeared
    /// concurrently); the caller should fall back to RPC and retry
    /// later.
    Busy,
    /// Zero-length or misaligned range.
    Invalid,
}

/// Where the control plane parks conflicting RPC traffic while a lease
/// is out. The proxy engine's external-hold table implements this: a
/// held resource makes conflicting RPC jobs defer (joining the
/// priority-inheritance waiter machinery) until the lease settles and
/// `free` runs.
pub trait RecallSink: Send + Sync {
    /// A lease was granted on `resource`; `exclusive` is true for write
    /// leases, which block all RPC access (read leases only block
    /// exclusive RPC access).
    fn hold(&self, resource: u64, exclusive: bool);
    /// The lease settled; deferred RPC jobs may run again.
    fn free(&self, resource: u64, exclusive: bool);
}

/// Point-in-time accounting of every lease that ever existed. The E6
/// gate requires [`LeaseLedger::clean`] after a recall storm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseLedger {
    /// Leases granted.
    pub granted: u64,
    /// Grants refused because P2P crosses NUMA.
    pub denied_placement: u64,
    /// Grants refused because a conflicting lease would not settle.
    pub denied_busy: u64,
    /// Voluntary releases (holder gave the lease back unprompted).
    pub released: u64,
    /// Recalls issued to holders.
    pub recalls_issued: u64,
    /// Recalls the holder answered with a flush + ack.
    pub recalls_acked: u64,
    /// Recalls the deadline sweep settled without an ack.
    pub forced_revokes: u64,
    /// Leases currently on the books.
    pub outstanding: u64,
    /// Recalls issued but not yet settled either way.
    pub pending_recalls: u64,
}

impl LeaseLedger {
    /// Every recall settled — acked or force-revoked — and none are in
    /// flight. This is the "no recall lost forever" invariant.
    pub fn clean(&self) -> bool {
        self.pending_recalls == 0 && self.recalls_issued == self.recalls_acked + self.forced_revokes
    }
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    leases: HashMap<u64, Arc<LeaseState>>,
    by_ino: HashMap<u64, Vec<u64>>,
    /// Recall deadlines, keyed by lease id. Presence means a recall is
    /// pending; whichever of ack / sweep removes the entry settles it.
    deadlines: HashMap<u64, Instant>,
    /// Monotonic per-inode generation fed to new grants. Bumped on
    /// every settle so a re-grant never reuses a generation a stale
    /// mapping might still carry.
    generations: HashMap<u64, u64>,
    /// Inodes on which new grants are refused (`Busy`), refcounted by
    /// [`GrantBar`]. Destructive control-plane ops (unlink, truncate)
    /// bar the inode so no lease can be granted between their recall
    /// and the operation itself.
    barred: HashMap<u64, u64>,
}

/// The control-plane half of the lease subsystem.
///
/// One manager is shared by every fs proxy in the machine so leases
/// granted through one co-processor's proxy are visible — and
/// recallable — when a conflicting request arrives at another's.
pub struct LeaseManager {
    inner: Mutex<Inner>,
    sinks: Mutex<Vec<Arc<dyn RecallSink>>>,
    recall_budget: Mutex<Duration>,
    faults: Arc<LeaseFaults>,
    granted: AtomicU64,
    denied_placement: AtomicU64,
    denied_busy: AtomicU64,
    released: AtomicU64,
    recalls_issued: AtomicU64,
    recalls_acked: AtomicU64,
    forced_revokes: AtomicU64,
    pending_recalls: AtomicU64,
}

impl Default for LeaseManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LeaseManager {
    /// A manager with no leases and the default recall budget.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            sinks: Mutex::new(Vec::new()),
            recall_budget: Mutex::new(DEFAULT_RECALL_BUDGET),
            faults: Arc::new(LeaseFaults::new()),
            granted: AtomicU64::new(0),
            denied_placement: AtomicU64::new(0),
            denied_busy: AtomicU64::new(0),
            released: AtomicU64::new(0),
            recalls_issued: AtomicU64::new(0),
            recalls_acked: AtomicU64::new(0),
            forced_revokes: AtomicU64::new(0),
            pending_recalls: AtomicU64::new(0),
        }
    }

    /// Fault-injection hooks consumed by the recall path.
    pub fn faults(&self) -> &Arc<LeaseFaults> {
        &self.faults
    }

    /// Overrides the recall budget (tests tighten it to force sweeps).
    pub fn set_recall_budget(&self, budget: Duration) {
        *self.recall_budget.lock() = budget;
    }

    /// Registers an external-hold sink (one per proxy engine). Every
    /// sink sees every hold so conflicting RPC traffic defers no matter
    /// which proxy it arrives at.
    pub fn attach_sink(&self, sink: Arc<dyn RecallSink>) {
        self.sinks.lock().push(sink);
    }

    /// Counts a placement denial (the proxy checks its own NUMA flag).
    pub fn note_placement_denied(&self) {
        self.denied_placement.fetch_add(1, Ordering::Relaxed);
    }

    /// Grants a lease over `[offset, offset + len)` of `ino`.
    ///
    /// `extents` must pre-resolve the whole range (write leases:
    /// preallocated) and `data_end` is the file size at resolution time
    /// clamped to the range end. Conflicts are checked under the
    /// manager lock, making rule 1 — no two conflicting leases — hold
    /// by construction. On success the external-hold sinks are charged
    /// under the same lock that makes the lease visible, so no settle
    /// can observe the lease before its holds exist.
    #[allow(clippy::too_many_arguments)]
    pub fn grant(
        &self,
        coproc: u8,
        ino: u64,
        offset: u64,
        len: u64,
        kind: LeaseKind,
        extents: Vec<Extent>,
        data_end: u64,
        charge: Option<(Arc<QosStats>, usize)>,
    ) -> Result<Arc<LeaseState>, LeaseError> {
        if len == 0 {
            return Err(LeaseError::Invalid);
        }
        let stale_inject = self.faults.take_stale_generation();
        let st = {
            let mut inner = self.inner.lock();
            let exclusive = kind == LeaseKind::Write;
            if inner.barred.contains_key(&ino) {
                self.denied_busy.fetch_add(1, Ordering::Relaxed);
                return Err(LeaseError::Busy);
            }
            let conflict = inner
                .by_ino
                .get(&ino)
                .map(|ids| {
                    ids.iter().any(|id| {
                        inner
                            .leases
                            .get(id)
                            .is_some_and(|l| Self::conflicts(l, offset, len, exclusive))
                    })
                })
                .unwrap_or(false);
            if conflict {
                self.denied_busy.fetch_add(1, Ordering::Relaxed);
                return Err(LeaseError::Busy);
            }
            let id = inner.next_id;
            inner.next_id += 1;
            let generation = *inner.generations.entry(ino).or_insert(1);
            let st = Arc::new(LeaseState::new(
                id, ino, coproc, offset, len, kind, generation, data_end, extents, charge,
            ));
            inner.leases.insert(id, Arc::clone(&st));
            inner.by_ino.entry(ino).or_default().push(id);
            // Charge the sinks before the inner lock drops: the moment
            // it does, a concurrent settle may run `free_holds`, and a
            // hold installed after that free would leak — parking every
            // conflicting RPC job on the inode forever. The sinks never
            // re-enter the manager, so nesting their lock here is safe.
            for sink in self.sinks.lock().iter() {
                sink.hold(ino, kind == LeaseKind::Write);
            }
            st
        };
        self.granted.fetch_add(1, Ordering::Relaxed);
        if stale_inject {
            // Injected hazard: the mapping goes stale with no recall.
            // The stub's generation check must catch it on next access.
            st.invalidate();
        }
        Ok(st)
    }

    fn conflicts(l: &LeaseState, offset: u64, len: u64, exclusive: bool) -> bool {
        let l_end = l.offset().saturating_add(l.len());
        let end = offset.saturating_add(len);
        let overlap = offset < l_end && l.offset() < end;
        overlap && (exclusive || l.kind() == LeaseKind::Write)
    }

    /// Shared handle for a granted lease (stub adoption path).
    pub fn shared(&self, id: u64) -> Option<Arc<LeaseState>> {
        self.inner.lock().leases.get(&id).cloned()
    }

    /// Any lease currently held by `coproc` on `ino`.
    pub fn lease_for(&self, ino: u64, coproc: u8) -> Option<Arc<LeaseState>> {
        let inner = self.inner.lock();
        inner.by_ino.get(&ino).and_then(|ids| {
            ids.iter()
                .filter_map(|id| inner.leases.get(id))
                .find(|l| l.coproc() == coproc)
                .cloned()
        })
    }

    /// True when any lease is outstanding on `ino`.
    pub fn has_lease(&self, ino: u64) -> bool {
        self.inner
            .lock()
            .by_ino
            .get(&ino)
            .is_some_and(|ids| !ids.is_empty())
    }

    /// Marks every lease on `ino` conflicting with the given access as
    /// recalled (non-blocking). Returns the number newly marked. Used
    /// by the proxy engine when an RPC job defers behind an external
    /// hold: the job parks, the recall races ahead.
    pub fn recall_range(&self, ino: u64, offset: u64, len: u64, exclusive: bool) -> u64 {
        let budget = *self.recall_budget.lock();
        let mut inner = self.inner.lock();
        let ids: Vec<u64> = inner
            .by_ino
            .get(&ino)
            .map(|ids| {
                ids.iter()
                    .filter(|id| {
                        inner
                            .leases
                            .get(id)
                            .is_some_and(|l| Self::conflicts(l, offset, len, exclusive))
                    })
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        let mut marked = 0;
        for id in ids {
            if self.mark_recall(&mut inner, id, budget) {
                marked += 1;
            }
        }
        marked
    }

    /// Marks conflicting leases recalled and blocks until each settles:
    /// acked by the holder (on its own proxy thread) or force-revoked
    /// once the budget expires. Returns the settled leases so the
    /// caller can apply them to the fs. This is the grant path's
    /// "recall then re-check" step and the barrier's coherence hook.
    pub fn recall_range_sync(
        &self,
        ino: u64,
        offset: u64,
        len: u64,
        exclusive: bool,
    ) -> Vec<SettledLease> {
        let budget = *self.recall_budget.lock();
        let ids: Vec<u64> = {
            let mut inner = self.inner.lock();
            let ids: Vec<u64> = inner
                .by_ino
                .get(&ino)
                .map(|ids| {
                    ids.iter()
                        .filter(|id| {
                            inner
                                .leases
                                .get(id)
                                .is_some_and(|l| Self::conflicts(l, offset, len, exclusive))
                        })
                        .copied()
                        .collect()
                })
                .unwrap_or_default();
            for &id in &ids {
                self.mark_recall(&mut inner, id, budget);
            }
            ids
        };
        let mut settled = Vec::new();
        let mut waiting = ids;
        while !waiting.is_empty() {
            let now = Instant::now();
            let mut overdue = Vec::new();
            {
                let inner = self.inner.lock();
                // A lease or deadline entry that vanished was settled
                // concurrently (ack or sweep) — stop waiting on it.
                waiting
                    .retain(|id| inner.leases.contains_key(id) && inner.deadlines.contains_key(id));
                for &id in &waiting {
                    if inner.deadlines.get(&id).is_some_and(|dl| *dl <= now) {
                        overdue.push(id);
                    }
                }
            }
            for id in overdue {
                if let Some(s) = self.force_revoke(id) {
                    settled.push(s);
                }
            }
            std::thread::yield_now();
        }
        settled
    }

    /// Marks one lease recalled and charges the ledger. Consumes the
    /// lost-recall fault: when armed, the holder-visible flag is *not*
    /// set (the notification vanished in flight) but the deadline still
    /// starts, so the sweep must force-revoke.
    fn mark_recall(&self, inner: &mut Inner, id: u64, budget: Duration) -> bool {
        if inner.deadlines.contains_key(&id) {
            return false; // recall already pending
        }
        let Some(st) = inner.leases.get(&id).cloned() else {
            return false;
        };
        inner.deadlines.insert(id, Instant::now() + budget);
        self.recalls_issued.fetch_add(1, Ordering::Relaxed);
        self.pending_recalls.fetch_add(1, Ordering::Relaxed);
        if !self.faults.take_lost_recall() {
            st.mark_recalled();
        }
        true
    }

    /// Settles a lease from the wire: a voluntary `LeaseRelease`
    /// (`voluntary = true`) or a `LeaseRecallAck`. Idempotent — `None`
    /// when the lease already settled (e.g. the sweep won the race).
    pub fn settle_wire(&self, id: u64, written_end: u64, voluntary: bool) -> Option<SettledLease> {
        let st = self.inner.lock().leases.get(&id).cloned()?;
        // The wire value is untrusted: a read lease writes nothing, and
        // a write lease can never have written past its own range — a
        // misbehaving stub must not be able to extend the file past the
        // leased (preallocated) blocks.
        if st.kind() == LeaseKind::Write {
            st.note_write(written_end.min(st.offset().saturating_add(st.len())));
        }
        st.mark_recalled();
        st.invalidate();
        self.drain_ops(&st);
        let mut inner = self.inner.lock();
        let st = inner.leases.remove(&id)?;
        Self::unindex(&mut inner, &st);
        let was_recall = inner.deadlines.remove(&id).is_some();
        drop(inner);
        if was_recall {
            self.pending_recalls.fetch_sub(1, Ordering::Relaxed);
            self.recalls_acked.fetch_add(1, Ordering::Relaxed);
        } else if voluntary {
            self.released.fetch_add(1, Ordering::Relaxed);
        } else {
            // Ack without a pending recall: the stub detected a stale
            // generation (injected hazard) and gave the lease back.
            self.released.fetch_add(1, Ordering::Relaxed);
        }
        Some(Self::settled_from(&st, false))
    }

    /// Revokes one lease without an ack: invalidate the mapping, drain
    /// in-flight leased ops, then take it off the books.
    fn force_revoke(&self, id: u64) -> Option<SettledLease> {
        let st = self.inner.lock().leases.get(&id).cloned()?;
        // Revocation order matters: the recalled flag goes up first so
        // a begin_op racing the invalidation reads "recalled", not
        // "stale" — a torn-down mapping is not a stale-generation read.
        st.mark_recalled();
        st.invalidate();
        self.drain_ops(&st);
        let mut inner = self.inner.lock();
        let st = inner.leases.remove(&id)?;
        Self::unindex(&mut inner, &st);
        let was_recall = inner.deadlines.remove(&id).is_some();
        drop(inner);
        if was_recall {
            self.pending_recalls.fetch_sub(1, Ordering::Relaxed);
            self.forced_revokes.fetch_add(1, Ordering::Relaxed);
        }
        Some(Self::settled_from(&st, true))
    }

    /// Settles every recall whose deadline has passed. Called from the
    /// proxy engine's idle poll; cheap when nothing is pending.
    pub fn sweep(&self) -> Vec<SettledLease> {
        if self.pending_recalls.load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        let now = Instant::now();
        let overdue: Vec<u64> = {
            let inner = self.inner.lock();
            inner
                .deadlines
                .iter()
                .filter(|(_, dl)| **dl <= now)
                .map(|(id, _)| *id)
                .collect()
        };
        overdue
            .into_iter()
            .filter_map(|id| self.force_revoke(id))
            .collect()
    }

    /// Force-recalls every lease held through `coproc`'s proxy — the
    /// domain-failover reclamation path. The holder's domain is fenced,
    /// so no ack can ever arrive: each lease is marked recalled (so the
    /// ledger's issued/settled books balance) and immediately
    /// force-revoked, and its external holds are freed so parked RPC
    /// traffic resumes on the surviving shards. Hot-file I/O against
    /// these inodes degrades to RPC until a fresh grant; unflushed
    /// leased writes die with the domain (crash semantics). Returns the
    /// settled leases, generations already bumped so a re-grant never
    /// reuses one a dead stub's mapping might still carry.
    pub fn revoke_coproc(&self, coproc: u8) -> Vec<SettledLease> {
        let ids: Vec<u64> = {
            let mut inner = self.inner.lock();
            let ids: Vec<u64> = inner
                .leases
                .iter()
                .filter(|(_, l)| l.coproc() == coproc)
                .map(|(id, _)| *id)
                .collect();
            for &id in &ids {
                // Start the recall clock even though nobody is listening:
                // the issued/forced counters must balance for a clean
                // ledger, and a concurrently-arriving ack (a frame the
                // stub sent before dying) settles idempotently.
                self.mark_recall(&mut inner, id, Duration::ZERO);
            }
            ids
        };
        let settled: Vec<SettledLease> = ids
            .into_iter()
            .filter_map(|id| self.force_revoke(id))
            .collect();
        for s in &settled {
            self.free_holds(s.ino, s.kind);
        }
        settled
    }

    /// Silently invalidates every lease on `ino` and bumps the grant
    /// generation. Used for truncate/unlink coherence and by the
    /// stale-generation fault path. Holders detect the mismatch on
    /// next access and fall back; no recall is issued.
    pub fn bump_generation(&self, ino: u64) -> u64 {
        // One lock acquisition for both halves: a grant interleaving
        // between invalidation and the counter bump would be stamped
        // with the old generation and escape the coherence event.
        let mut inner = self.inner.lock();
        let ids = inner.by_ino.get(&ino).cloned().unwrap_or_default();
        for id in &ids {
            if let Some(st) = inner.leases.get(id) {
                st.invalidate();
            }
        }
        let g = inner.generations.entry(ino).or_insert(1);
        *g += 1;
        *g
    }

    /// Bars new grants on `ino` until the returned guard drops; barred
    /// grants fail [`LeaseError::Busy`]. Destructive control-plane ops
    /// (unlink, truncate) hold a bar across recall-then-mutate so no
    /// lease granted through another proxy can slip in between and end
    /// up mapping blocks the operation is about to free.
    pub fn bar_grants(&self, ino: u64) -> GrantBar<'_> {
        *self.inner.lock().barred.entry(ino).or_insert(0) += 1;
        GrantBar { mgr: self, ino }
    }

    /// Frees the external holds charged at grant time. Called by the
    /// proxy *after* applying a settled lease to the fs, so deferred
    /// RPC jobs observe the leased writes.
    pub fn free_holds(&self, ino: u64, kind: LeaseKind) {
        for sink in self.sinks.lock().iter() {
            sink.free(ino, kind == LeaseKind::Write);
        }
    }

    /// Recalls issued but not yet settled.
    pub fn pending(&self) -> u64 {
        self.pending_recalls.load(Ordering::Relaxed)
    }

    /// Snapshot of the lease accounting.
    pub fn ledger(&self) -> LeaseLedger {
        LeaseLedger {
            granted: self.granted.load(Ordering::Relaxed),
            denied_placement: self.denied_placement.load(Ordering::Relaxed),
            denied_busy: self.denied_busy.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            recalls_issued: self.recalls_issued.load(Ordering::Relaxed),
            recalls_acked: self.recalls_acked.load(Ordering::Relaxed),
            forced_revokes: self.forced_revokes.load(Ordering::Relaxed),
            outstanding: self.inner.lock().leases.len() as u64,
            pending_recalls: self.pending_recalls.load(Ordering::Relaxed),
        }
    }

    /// Spins (bounded) until no leased op is between begin/end on this
    /// lease. The mapping is already invalid, so new ops cannot enter;
    /// the bound only matters if a holder thread is descheduled
    /// mid-DMA, in which case the revocation proceeds anyway and the
    /// straggler's completion is indistinguishable from a pre-revoke
    /// one (same blocks, same generation of data).
    fn drain_ops(&self, st: &LeaseState) {
        let deadline = Instant::now() + Duration::from_millis(2);
        while st.active_ops() > 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
    }

    fn unindex(inner: &mut Inner, st: &LeaseState) {
        if let Some(ids) = inner.by_ino.get_mut(&st.ino()) {
            ids.retain(|id| *id != st.id());
            if ids.is_empty() {
                inner.by_ino.remove(&st.ino());
            }
        }
        // Re-grants must never reuse a generation a stale mapping
        // might still carry.
        *inner.generations.entry(st.ino()).or_insert(1) += 1;
    }

    fn settled_from(st: &LeaseState, forced: bool) -> SettledLease {
        SettledLease {
            id: st.id(),
            ino: st.ino(),
            coproc: st.coproc(),
            kind: st.kind(),
            offset: st.offset(),
            written_end: st.written_end(),
            forced,
        }
    }
}

/// RAII bar on new grants for one inode (see
/// [`LeaseManager::bar_grants`]). Refcounted, so overlapping bars from
/// concurrent destructive ops compose.
pub struct GrantBar<'a> {
    mgr: &'a LeaseManager,
    ino: u64,
}

impl Drop for GrantBar<'_> {
    fn drop(&mut self) {
        let mut inner = self.mgr.inner.lock();
        if let Some(n) = inner.barred.get_mut(&self.ino) {
            *n -= 1;
            if *n == 0 {
                inner.barred.remove(&self.ino);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(start: u64, len: u32) -> Extent {
        Extent { start, len }
    }

    fn grant_read(m: &LeaseManager, ino: u64, coproc: u8) -> Arc<LeaseState> {
        m.grant(
            coproc,
            ino,
            0,
            4096,
            LeaseKind::Read,
            vec![ext(10, 1)],
            4096,
            None,
        )
        .expect("grant")
    }

    #[test]
    fn conflicting_grants_are_refused() {
        let m = LeaseManager::new();
        let _w = m
            .grant(
                0,
                7,
                0,
                4096,
                LeaseKind::Write,
                vec![ext(10, 1)],
                4096,
                None,
            )
            .expect("writer");
        // Reader overlapping a writer: refused.
        assert_eq!(
            m.grant(1, 7, 0, 4096, LeaseKind::Read, vec![ext(10, 1)], 4096, None)
                .err(),
            Some(LeaseError::Busy)
        );
        // Disjoint range on the same ino: fine.
        m.grant(
            1,
            7,
            8192,
            4096,
            LeaseKind::Read,
            vec![ext(11, 1)],
            8192,
            None,
        )
        .expect("disjoint");
        assert_eq!(m.ledger().denied_busy, 1);
        assert_eq!(m.ledger().outstanding, 2);
    }

    #[test]
    fn read_leases_coexist_and_exclude_writers() {
        let m = LeaseManager::new();
        let _a = grant_read(&m, 3, 0);
        let _b = grant_read(&m, 3, 1);
        assert_eq!(
            m.grant(2, 3, 0, 4096, LeaseKind::Write, vec![ext(9, 1)], 4096, None)
                .err(),
            Some(LeaseError::Busy)
        );
    }

    #[test]
    fn recall_settles_by_ack() {
        let m = Arc::new(LeaseManager::new());
        let st = grant_read(&m, 1, 0);
        assert_eq!(m.recall_range(1, 0, u64::MAX, true), 1);
        assert!(st.is_recalled());
        let s = m.settle_wire(st.id(), 0, false).expect("settle");
        assert!(!s.forced);
        let ledger = m.ledger();
        assert!(ledger.clean(), "{ledger:?}");
        assert_eq!(ledger.recalls_acked, 1);
        // Second ack is idempotent.
        assert!(m.settle_wire(st.id(), 0, false).is_none());
        assert!(m.ledger().clean());
    }

    #[test]
    fn unanswered_recall_is_force_revoked_by_sweep() {
        let m = LeaseManager::new();
        m.set_recall_budget(Duration::from_millis(0));
        let st = grant_read(&m, 1, 0);
        assert_eq!(m.recall_range(1, 0, u64::MAX, true), 1);
        let settled = m.sweep();
        assert_eq!(settled.len(), 1);
        assert!(settled[0].forced);
        assert!(!st.is_current());
        let ledger = m.ledger();
        assert!(ledger.clean(), "{ledger:?}");
        assert_eq!(ledger.forced_revokes, 1);
    }

    #[test]
    fn lost_recall_never_reaches_holder_but_still_settles() {
        let m = LeaseManager::new();
        m.set_recall_budget(Duration::from_millis(0));
        m.faults().arm_lost_recalls(1);
        let st = grant_read(&m, 1, 0);
        assert_eq!(m.recall_range(1, 0, u64::MAX, true), 1);
        assert!(!st.is_recalled(), "notification was lost in flight");
        let settled = m.sweep();
        assert_eq!(settled.len(), 1);
        assert!(settled[0].forced);
        assert!(m.ledger().clean());
    }

    #[test]
    fn recall_range_sync_returns_settled_writes() {
        let m = LeaseManager::new();
        m.set_recall_budget(Duration::from_millis(0));
        let st = m
            .grant(0, 5, 0, 8192, LeaseKind::Write, vec![ext(20, 2)], 0, None)
            .expect("writer");
        st.note_write(8000);
        let settled = m.recall_range_sync(5, 0, 8192, false);
        assert_eq!(settled.len(), 1);
        assert_eq!(settled[0].written_end, 8000);
        assert!(m.ledger().clean());
        assert_eq!(m.ledger().outstanding, 0);
    }

    #[test]
    fn settle_wire_clamps_untrusted_written_end() {
        let m = LeaseManager::new();
        let w = m
            .grant(0, 5, 0, 8192, LeaseKind::Write, vec![ext(20, 2)], 0, None)
            .expect("writer");
        let s = m.settle_wire(w.id(), u64::MAX, true).expect("settle");
        assert_eq!(s.written_end, 8192, "clamped to the leased range end");
        // A read lease reports no writes, whatever the wire claims.
        let r = grant_read(&m, 6, 0);
        let s = m.settle_wire(r.id(), 12345, true).expect("settle");
        assert_eq!(s.written_end, 0);
    }

    #[test]
    fn barred_inode_refuses_grants_until_the_bar_drops() {
        let m = LeaseManager::new();
        {
            let _bar = m.bar_grants(7);
            assert_eq!(
                m.grant(0, 7, 0, 4096, LeaseKind::Read, vec![ext(10, 1)], 4096, None)
                    .err(),
                Some(LeaseError::Busy)
            );
            // Nested bars compose: still barred after the inner drops.
            drop(m.bar_grants(7));
            assert_eq!(
                m.grant(0, 7, 0, 4096, LeaseKind::Read, vec![ext(10, 1)], 4096, None)
                    .err(),
                Some(LeaseError::Busy)
            );
            // Other inodes are unaffected.
            grant_read(&m, 8, 0);
        }
        grant_read(&m, 7, 0);
        assert_eq!(m.ledger().denied_busy, 2);
    }

    #[test]
    fn revoke_coproc_reclaims_only_the_dead_domains_leases() {
        let m = LeaseManager::new();
        let dead_r = grant_read(&m, 1, 0);
        let dead_w = m
            .grant(0, 2, 0, 8192, LeaseKind::Write, vec![ext(20, 2)], 0, None)
            .expect("writer");
        let live = grant_read(&m, 3, 1);
        let g_before = dead_r.generation();
        let settled = m.revoke_coproc(0);
        assert_eq!(settled.len(), 2);
        assert!(settled.iter().all(|s| s.forced && s.coproc == 0));
        assert!(!dead_r.is_current());
        assert!(!dead_w.is_current());
        assert!(live.is_current(), "surviving domain's lease untouched");
        let ledger = m.ledger();
        assert!(ledger.clean(), "{ledger:?}");
        assert_eq!(ledger.forced_revokes, 2);
        assert_eq!(ledger.outstanding, 1);
        // A re-grant on a reclaimed inode never reuses the generation.
        let again = grant_read(&m, 1, 1);
        assert!(again.generation() > g_before);
        // Idempotent: nothing left to reclaim for that coproc.
        assert!(m.revoke_coproc(0).is_empty());
    }

    #[test]
    fn revoke_coproc_settles_a_recall_already_in_flight() {
        let m = LeaseManager::new();
        let st = grant_read(&m, 9, 2);
        assert_eq!(m.recall_range(9, 0, u64::MAX, true), 1);
        assert!(st.is_recalled());
        let settled = m.revoke_coproc(2);
        assert_eq!(settled.len(), 1);
        assert!(m.ledger().clean(), "{:?}", m.ledger());
    }

    #[test]
    fn generation_bumps_are_monotonic_across_regrants() {
        let m = LeaseManager::new();
        let a = grant_read(&m, 1, 0);
        let g1 = a.generation();
        m.settle_wire(a.id(), 0, true);
        let b = grant_read(&m, 1, 0);
        assert!(b.generation() > g1);
        assert!(!a.is_current(), "old mapping stays dead");
        assert!(b.is_current());
    }

    #[test]
    fn stale_generation_injection_invalidates_at_grant() {
        let m = LeaseManager::new();
        m.faults().arm_stale_generations(1);
        let st = grant_read(&m, 1, 0);
        assert!(!st.is_current(), "injected stale generation");
        assert!(!st.is_recalled(), "no recall was issued");
        assert!(!st.begin_op());
    }
}
