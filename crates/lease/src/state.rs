//! The shared lease record.
//!
//! One [`LeaseState`] is created per grant and shared (via `Arc`) between
//! the control-plane [`crate::LeaseManager`] and the holder's
//! [`crate::LeaseTable`]. It models the lease control page a real Solros
//! host would map into the co-processor's PCIe window: the generation
//! word and recall flag are atomics the host flips and the stub polls on
//! every access, with no RPC in between.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use solros_fs::Extent;
use solros_qos::QosStats;

/// What the lease permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseKind {
    /// Shared: the holder may read the range P2P. Coexists with other
    /// read leases on overlapping ranges.
    Read,
    /// Exclusive: the holder may read *and* write the range P2P into
    /// preallocated blocks. Conflicts with every other lease.
    Write,
}

/// A granted lease over a pre-resolved extent map.
///
/// Immutable fields are fixed at grant time; the atomics below are the
/// coherence protocol. `begin_op`/`end_op` bracket every leased I/O so
/// revocation can drain in-flight operations before the mapping dies.
pub struct LeaseState {
    id: u64,
    ino: u64,
    coproc: u8,
    offset: u64,
    len: u64,
    kind: LeaseKind,
    generation: u64,
    data_end: u64,
    extents: Vec<Extent>,
    /// The manager's view of the current generation for this mapping.
    /// Valid while it equals `generation`; any bump invalidates.
    current_gen: AtomicU64,
    /// Set when the manager asks the holder to give the lease back.
    recalled: AtomicBool,
    /// Leased operations currently between `begin_op` and `end_op`.
    active_ops: AtomicU64,
    /// High-water mark of leased writes (file offset), 0 if none. The
    /// proxy extends the file to this on settle.
    written_end: AtomicU64,
    /// QoS ledger and flow index leased bytes are charged to, so bypass
    /// traffic cannot evade tenant budgets.
    charge: Option<(Arc<QosStats>, usize)>,
}

impl LeaseState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: u64,
        ino: u64,
        coproc: u8,
        offset: u64,
        len: u64,
        kind: LeaseKind,
        generation: u64,
        data_end: u64,
        extents: Vec<Extent>,
        charge: Option<(Arc<QosStats>, usize)>,
    ) -> Self {
        Self {
            id,
            ino,
            coproc,
            offset,
            len,
            kind,
            generation,
            data_end,
            extents,
            current_gen: AtomicU64::new(generation),
            recalled: AtomicBool::new(false),
            active_ops: AtomicU64::new(0),
            written_end: AtomicU64::new(0),
            charge,
        }
    }

    /// Lease id (wire handle).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Leased inode.
    pub fn ino(&self) -> u64 {
        self.ino
    }

    /// Holder co-processor id.
    pub fn coproc(&self) -> u8 {
        self.coproc
    }

    /// First byte of the leased range.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Length of the leased range in bytes (block-rounded).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the leased range is empty (never granted in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read or write lease.
    pub fn kind(&self) -> LeaseKind {
        self.kind
    }

    /// Generation stamped at grant time.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Pre-resolved extent map covering the range.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Last readable byte: file size at grant clamped to the range end,
    /// advanced by the holder's own leased writes.
    pub fn readable_end(&self) -> u64 {
        self.data_end.max(self.written_end.load(Ordering::Acquire))
    }

    /// True while the grant generation matches the manager's.
    pub fn is_current(&self) -> bool {
        self.current_gen.load(Ordering::Acquire) == self.generation
    }

    /// True once the manager has asked for the lease back.
    pub fn is_recalled(&self) -> bool {
        self.recalled.load(Ordering::Acquire)
    }

    /// Marks the lease recalled (manager side).
    pub(crate) fn mark_recalled(&self) {
        self.recalled.store(true, Ordering::Release);
    }

    /// Invalidates the mapping: `begin_op` fails from here on.
    pub(crate) fn invalidate(&self) {
        self.current_gen.fetch_add(1, Ordering::AcqRel);
    }

    /// Tries to enter a leased operation. Uses a check → enter → recheck
    /// dance: the recheck closes the window where an invalidation lands
    /// between the first check and the `active_ops` increment, so a
    /// successful `begin_op` guarantees the drain in
    /// [`crate::LeaseManager`] will observe this operation.
    pub fn begin_op(&self) -> bool {
        if !self.is_current() || self.is_recalled() {
            return false;
        }
        self.active_ops.fetch_add(1, Ordering::AcqRel);
        if !self.is_current() || self.is_recalled() {
            self.active_ops.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    /// Leaves a leased operation entered with [`Self::begin_op`].
    pub fn end_op(&self) {
        self.active_ops.fetch_sub(1, Ordering::AcqRel);
    }

    /// Leased operations currently in flight.
    pub fn active_ops(&self) -> u64 {
        self.active_ops.load(Ordering::Acquire)
    }

    /// Records a completed leased write ending at file offset `end`.
    pub fn note_write(&self, end: u64) {
        self.written_end.fetch_max(end, Ordering::AcqRel);
    }

    /// High-water mark of leased writes (0 if none yet).
    pub fn written_end(&self) -> u64 {
        self.written_end.load(Ordering::Acquire)
    }

    /// Charges `bytes` of leased I/O to the tenant's QoS ledger.
    pub fn charge_bypass(&self, bytes: u64) {
        if let Some((stats, flow)) = &self.charge {
            stats.on_bypass(*flow, bytes);
        }
    }
}

/// The outcome of a lease leaving the manager's books, however it left
/// (voluntary release, recall ack, or forced revoke). The control plane
/// applies this to the fs — extending the file over leased writes and
/// dropping stale cache pages — and then frees the external holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettledLease {
    /// Lease id.
    pub id: u64,
    /// Leased inode.
    pub ino: u64,
    /// Holder co-processor.
    pub coproc: u8,
    /// Read or write lease.
    pub kind: LeaseKind,
    /// Start of the leased range.
    pub offset: u64,
    /// High-water mark of leased writes (0 = nothing written).
    pub written_end: u64,
    /// True when the deadline sweep revoked the lease without an ack.
    pub forced: bool,
}
