//! Property tests for the lease protocol's coherence rules:
//!
//! 1. No two conflicting leases are ever on the books at once.
//! 2. Every recall settles — acked by the holder or force-revoked by the
//!    deadline sweep — so the ledger is clean at quiescence.
//! 3. Nothing leaks across grant→settle cycles: every grant is accounted
//!    for as a release, an ack, or a forced revoke, and re-grants never
//!    reuse a generation an earlier mapping carried.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;
use solros_fs::Extent;
use solros_lease::{LeaseKind, LeaseManager, LeaseState};

const BS: u64 = 4096;

fn overlap(a: &LeaseState, b: &LeaseState) -> bool {
    a.ino() == b.ino()
        && a.offset() < b.offset().saturating_add(b.len())
        && b.offset() < a.offset().saturating_add(a.len())
}

fn conflicts(a: &LeaseState, b: &LeaseState) -> bool {
    overlap(a, b) && (a.kind() == LeaseKind::Write || b.kind() == LeaseKind::Write)
}

/// Drops a settled lease from the model and records the highest
/// generation that ever left the books for its inode.
fn settle_model(live: &mut Vec<Arc<LeaseState>>, settled_gen: &mut HashMap<u64, u64>, id: u64) {
    if let Some(pos) = live.iter().position(|l| l.id() == id) {
        let st = live.remove(pos);
        let e = settled_gen.entry(st.ino()).or_insert(0);
        *e = (*e).max(st.generation());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random grant/release/recall/sweep interleavings: after every step
    /// the outstanding set is conflict-free and matches the ledger; at
    /// quiescence every grant has settled exactly once and every recall
    /// was answered or force-revoked.
    #[test]
    fn lease_protocol_invariants(
        ops in vec((0u8..5, 1u64..4, 0u64..8, 1u64..4, any::<bool>()), 1..80),
    ) {
        let m = LeaseManager::new();
        // Zero budget: recalls are sweepable the moment they are issued,
        // so the single-threaded model never has to wait out a deadline.
        m.set_recall_budget(Duration::from_millis(0));
        let mut live: Vec<Arc<LeaseState>> = Vec::new();
        // Highest generation that ever left the books, per inode.
        let mut settled_gen: HashMap<u64, u64> = HashMap::new();

        for (op, ino, block, blocks, write) in ops {
            let kind = if write { LeaseKind::Write } else { LeaseKind::Read };
            match op {
                // Grant attempt.
                0 => {
                    let offset = block * BS;
                    let len = blocks * BS;
                    let ext = vec![Extent { start: 100 + block, len: blocks as u32 }];
                    match m.grant(0, ino, offset, len, kind, ext, offset + len, None) {
                        Ok(st) => {
                            let gen_floor = settled_gen.get(&ino).copied().unwrap_or(0);
                            prop_assert!(
                                st.generation() > gen_floor,
                                "re-grant reused generation {} (floor {})",
                                st.generation(), gen_floor
                            );
                            live.push(st);
                        }
                        Err(_) => {
                            // A denial must be justified by a real
                            // conflict on the books.
                            prop_assert!(
                                live.iter().any(|l| l.ino() == ino
                                    && l.offset() < offset + len
                                    && offset < l.offset() + l.len()
                                    && (write || l.kind() == LeaseKind::Write)),
                                "grant denied with no conflicting lease"
                            );
                        }
                    }
                }
                // Voluntary release of some live lease.
                1 => {
                    if !live.is_empty() {
                        let idx = (block as usize) % live.len();
                        let id = live[idx].id();
                        prop_assert!(m.settle_wire(id, 0, true).is_some());
                        settle_model(&mut live, &mut settled_gen, id);
                    }
                }
                // Non-blocking recall: marks conflicting leases, leaves
                // them pending for the sweep.
                2 => {
                    m.recall_range(ino, 0, u64::MAX, write);
                }
                // Deadline sweep force-revokes everything pending.
                3 => {
                    for s in m.sweep() {
                        settle_model(&mut live, &mut settled_gen, s.id);
                    }
                }
                // Blocking recall settles conflicting leases in place.
                _ => {
                    for s in m.recall_range_sync(ino, block * BS, blocks * BS, write) {
                        settle_model(&mut live, &mut settled_gen, s.id);
                    }
                }
            }

            // Rule 1: the outstanding set is conflict-free.
            for (i, a) in live.iter().enumerate() {
                for b in &live[i + 1..] {
                    prop_assert!(!conflicts(a, b),
                        "conflicting leases coexist: {}/{}", a.id(), b.id());
                }
            }
            prop_assert_eq!(m.ledger().outstanding, live.len() as u64);
        }

        // Quiesce: recall everything still out, then sweep to settle.
        while !live.is_empty() {
            for l in &live {
                m.recall_range(l.ino(), 0, u64::MAX, true);
            }
            for s in m.sweep() {
                settle_model(&mut live, &mut settled_gen, s.id);
            }
        }

        // Rule 2: every recall settled, none in flight.
        let ledger = m.ledger();
        prop_assert!(ledger.clean(), "dirty ledger at quiescence: {ledger:?}");
        prop_assert_eq!(ledger.outstanding, 0);
        // Rule 3: every grant left the books through exactly one door.
        prop_assert_eq!(
            ledger.granted,
            ledger.released + ledger.recalls_acked + ledger.forced_revokes
        );
    }
}
