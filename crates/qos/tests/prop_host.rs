//! Property-based tests for the tenant→service→flow hierarchy:
//! weighted fairness at every level under random tenant churn, GC
//! safety (never reclaim queued work, live pins, or promotions, and
//! the occupancy ledger stays exact), and the precedence of priority
//! inheritance over tenant-budget gating.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use solros_qos::{
    Dispatch, FlowSpec, HostConfig, HostGate, HostScheduler, QosClass, Service, Verdict,
};

/// An unshaped, unbounded Normal-class spec: fairness comes from the
/// hierarchy alone, not caps or buckets.
fn open_spec(name: &str, weight: u32) -> FlowSpec {
    FlowSpec {
        name: name.into(),
        class: QosClass::Normal,
        weight,
        ops_per_sec: 0,
        bytes_per_sec: 0,
        burst_ops: 0,
        burst_bytes: 0,
        queue_cap: usize::MAX,
        deadline_ns: 0,
        sheddable: false,
        tenant: 0,
    }
}

fn open_gate(host: &Arc<HostScheduler>, service: Service) -> HostGate<u32> {
    HostGate::new(
        vec![open_spec("h/normal", 1)],
        1024,
        usize::MAX,
        host,
        service,
        0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Level 1: two persistently backlogged tenants with random weights
    /// split the service in proportion to those weights, within DWRR
    /// granularity, while a churn of transient tenants constantly
    /// enters, drains, and is GC'd around them. The churn must neither
    /// skew the persistent tenants' shares nor leave residue in the
    /// flow table.
    #[test]
    fn tenant_weights_shape_shares_under_churn(
        wa in 1u32..8,
        wb in 1u32..8,
        churn in vec(1u64..64, 0..64),
    ) {
        let host = HostScheduler::new(HostConfig {
            epoch_ns: 8_000,
            gc_idle_epochs: 2,
            ..HostConfig::default()
        });
        host.set_tenant_weight(1, wa);
        host.set_tenant_weight(2, wb);
        let mut g = open_gate(&host, Service::Fs);
        let fa = g.flow_for_tenant(1, 0);
        let fb = g.flow_for_tenant(2, 0);

        let mut served = [0u64; 2];
        let mut now = 0u64;
        for i in 0..4_000usize {
            now += 1_000;
            // Keep both persistent tenants backlogged.
            while g.queued(fa) < 8 {
                prop_assert!(matches!(g.submit(fa, 1024, now, 0), Verdict::Admitted));
            }
            while g.queued(fb) < 8 {
                prop_assert!(matches!(g.submit(fb, 1024, now, 0), Verdict::Admitted));
            }
            // Transient churn: a fresh tenant id drops one request and
            // never returns; the id pool is offset so it can't collide
            // with the persistent tenants. Arrivals stay below service
            // capacity (one dispatch per iteration) so the transient
            // backlog — and with it the GC-able table — stays bounded.
            if i % 4 == 0 {
                if let Some(&seed) = churn.get((i / 4) % churn.len().max(1)) {
                    let t = 1_000 + (i as u64) * 64 + seed;
                    let tf = g.flow_for_tenant(t, 0);
                    prop_assert!(matches!(g.submit(tf, 1024, now, 0), Verdict::Admitted));
                }
            }
            g.maintain(now);
            match g.dispatch(now) {
                Dispatch::Run { flow, .. } if flow == fa => served[0] += 1,
                Dispatch::Run { flow, .. } if flow == fb => served[1] += 1,
                Dispatch::Run { .. } => {}
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
        let ratio = served[0] as f64 / served[1].max(1) as f64;
        let want = f64::from(wa) / f64::from(wb);
        prop_assert!(
            ratio >= want / 1.4 && ratio <= want * 1.4,
            "served {served:?}: ratio {ratio:.2} strayed from weights {wa}:{wb} ({want:.2})"
        );
        // Occupancy stayed O(active) while the churn ran: the table
        // never grew toward the hundreds of ids ever admitted.
        let mid = host.snapshot();
        prop_assert!(
            mid.peak_live_flows < 64,
            "flow table peaked at {} entries under transient churn",
            mid.peak_live_flows
        );
        // Drain everything and idle through enough epochs: every
        // dynamic flow (persistent tenants included) goes idle and the
        // table returns to its static skeleton, ledger balanced.
        // (Idle can be transient — one pass grants each flow at most
        // one deficit credit — so drain on the queue depth, not Idle.)
        let mut calls = 0u32;
        while g.queued_total() > 0 {
            calls += 1;
            prop_assert!(calls < 1_000_000, "drain made no progress");
            let _ = g.dispatch(now);
        }
        for _ in 0..4 {
            now += 8_001;
            g.maintain(now);
        }
        let snap = host.snapshot();
        prop_assert_eq!(snap.live_flows, 0, "churn left flow-table residue");
        prop_assert_eq!(
            snap.admitted_flows,
            snap.reclaimed_flows,
            "occupancy ledger leaked"
        );
    }

    /// Level 2: a tenant backlogged on *both* services has its FS
    /// deficit credit scaled to the FS share of the configured service
    /// weights, so a single-service tenant beside it is served
    /// `(w_fs + w_tcp) / w_fs` times as fast, for any weight split.
    #[test]
    fn service_share_tracks_configured_split(
        w_fs in 1u32..8,
        w_tcp in 1u32..8,
    ) {
        let host = HostScheduler::new(HostConfig {
            service_weights: [w_fs, w_tcp],
            ..HostConfig::default()
        });
        let mut fs = open_gate(&host, Service::Fs);
        let mut tcp = open_gate(&host, Service::Tcp);
        let both = fs.flow_for_tenant(5, 0);
        let solo = fs.flow_for_tenant(6, 0);
        let both_tcp = tcp.flow_for_tenant(5, 0);
        for _ in 0..2_000u32 {
            prop_assert!(matches!(fs.submit(both, 1024, 0, 0), Verdict::Admitted));
            prop_assert!(matches!(fs.submit(solo, 1024, 0, 0), Verdict::Admitted));
        }
        // A standing TCP backlog keeps level 2 engaged for tenant 5.
        for _ in 0..64u32 {
            prop_assert!(matches!(tcp.submit(both_tcp, 1024, 0, 0), Verdict::Admitted));
        }
        // A single dispatch pass visits each flow at most once and may
        // transiently report Idle while every backlogged flow is mid
        // deficit accumulation; the engine just calls again next
        // cycle, so the drive loop does too.
        let mut served = [0u64; 2];
        let mut calls = 0u32;
        while served[0] + served[1] < 900 {
            calls += 1;
            prop_assert!(calls < 100_000, "dispatch made no progress: {served:?}");
            match fs.dispatch(0) {
                Dispatch::Run { flow, .. } if flow == both => served[0] += 1,
                Dispatch::Run { flow, .. } if flow == solo => served[1] += 1,
                Dispatch::Idle => {}
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
        let ratio = served[1] as f64 / served[0].max(1) as f64;
        let want = f64::from(w_fs + w_tcp) / f64::from(w_fs);
        prop_assert!(
            ratio >= want / 1.5 && ratio <= want * 1.5,
            "served {served:?}: solo/both {ratio:.2} strayed from share {want:.2} \
             (weights fs {w_fs} tcp {w_tcp})"
        );
    }

    /// GC safety: across arbitrary interleavings of lazy admission,
    /// submits, dispatches, pins, promotions, and epoch turnover, the
    /// GC never reclaims a flow that holds queued work, a live pin, or
    /// an inherited promotion — its slot stays resolvable — and the
    /// host occupancy ledger never drifts (admitted == live +
    /// reclaimed). Once every guard is released and the table idles,
    /// it drains to exactly the static flows.
    #[test]
    fn gc_never_reclaims_guarded_flows_and_ledger_stays_exact(
        events in vec((0usize..7, 1u64..12, 1u64..2048), 1..200),
    ) {
        let host = HostScheduler::new(HostConfig {
            epoch_ns: 1_000,
            gc_idle_epochs: 1,
            ..HostConfig::default()
        });
        let mut g = open_gate(&host, Service::Tcp);
        let mut now = 0u64;
        // Mirrors of the state *we* hold: the last slot each tenant
        // resolved to, and the pins/promotions taken per slot. A slot
        // with a nonzero guard count can never be reclaimed out from
        // under us, so guarded keys stay stable while tracked.
        let mut seen: HashMap<u64, usize> = HashMap::new();
        let mut pins: HashMap<usize, u32> = HashMap::new();
        let mut promos: HashMap<usize, u32> = HashMap::new();

        for (op, tenant, bytes) in events {
            match op {
                0 | 1 => {
                    let f = g.flow_for_tenant(tenant, 0);
                    seen.insert(tenant, f);
                    prop_assert!(matches!(g.submit(f, bytes, now, 0), Verdict::Admitted));
                }
                2 => {
                    let _ = g.dispatch(now);
                }
                3 => {
                    let f = g.flow_for_tenant(tenant, 0);
                    seen.insert(tenant, f);
                    g.pin_flow(f);
                    *pins.entry(f).or_default() += 1;
                }
                4 => {
                    if let Some((&f, _)) = pins.iter().next() {
                        g.unpin_flow(f);
                        let n = pins.get_mut(&f).expect("tracked");
                        *n -= 1;
                        if *n == 0 {
                            pins.remove(&f);
                        }
                    }
                }
                5 => {
                    let f = g.flow_for_tenant(tenant, 0);
                    seen.insert(tenant, f);
                    g.promote_flow(f, 0);
                    *promos.entry(f).or_default() += 1;
                }
                _ => {
                    // Epoch turnover: every still-current mapping whose
                    // flow holds queued work, a pin, or a promotion
                    // must survive the GC at the same slot.
                    now += 1_001;
                    let guarded: Vec<(u64, usize)> = seen
                        .iter()
                        .filter(|&(&t, &s)| g.lookup(t, 0) == Some(s))
                        .filter(|&(_, &s)| {
                            g.queued(s) > 0
                                || pins.contains_key(&s)
                                || promos.contains_key(&s)
                        })
                        .map(|(&t, &s)| (t, s))
                        .collect();
                    g.maintain(now);
                    for (t, s) in guarded {
                        prop_assert_eq!(
                            g.lookup(t, 0),
                            Some(s),
                            "GC reclaimed the guarded flow of tenant {}",
                            t
                        );
                    }
                }
            }
            let snap = host.snapshot();
            prop_assert_eq!(
                snap.admitted_flows,
                snap.live_flows as u64 + snap.reclaimed_flows,
                "occupancy ledger drifted mid-run"
            );
        }
        // Release every guard, drain, and idle: the table must return
        // to its static skeleton with the ledger balanced.
        for (f, n) in pins.drain() {
            for _ in 0..n {
                g.unpin_flow(f);
            }
        }
        for (f, n) in promos.drain() {
            for _ in 0..n {
                g.demote_flow(f);
            }
        }
        g.drain();
        for _ in 0..4 {
            now += 1_001;
            g.maintain(now);
        }
        let snap = host.snapshot();
        prop_assert_eq!(snap.live_flows, 0, "idle dynamic flows not reclaimed");
        prop_assert_eq!(snap.admitted_flows, snap.reclaimed_flows);
    }

    /// Priority inheritance outranks tenant-budget gating: while a
    /// flow is promoted, an over-budget tenant's frames always admit
    /// (the waiter must not starve behind the holder's budget), and
    /// the moment the promotion is released the budget gate bites
    /// again — for any budget, flood size, and promotion nesting.
    #[test]
    fn promotion_outranks_tenant_budget_gating(
        budget in 1u64..100_000,
        flood in 1u64..100_000,
        nest in 1usize..4,
    ) {
        let host = HostScheduler::new(HostConfig::default());
        host.set_tenant_budget(7, Some(budget));
        let mut g = HostGate::new(
            vec![open_spec("h/normal", 1)],
            1024,
            4, // tiny overload threshold so level 1 engages
            &host,
            Service::Fs,
            0,
        );
        let aggr = g.flow_for_tenant(7, 0);
        let victim = g.flow_for_tenant(8, 0);
        // Blow the budget and push the gate into overload.
        prop_assert!(matches!(
            g.submit(aggr, budget + flood, 0, 0),
            Verdict::Admitted
        ));
        for _ in 0..4 {
            prop_assert!(matches!(g.submit(victim, 1, 0, 0), Verdict::Admitted));
        }
        prop_assert!(g.overloaded());
        prop_assert!(host.tenant_over_budget(7));
        prop_assert!(matches!(g.submit(aggr, 1, 0, 0), Verdict::Shed { .. }));

        // Promoted (however deeply nested): immune at every level.
        for _ in 0..nest {
            g.promote_flow(aggr, 0);
        }
        for i in 0..nest {
            prop_assert!(
                matches!(g.submit(aggr, 1, 0, 0), Verdict::Admitted),
                "promoted flow shed at nesting depth {}",
                nest - i
            );
            g.demote_flow(aggr);
        }
        // Fully demoted: the budget gate bites again, while the
        // under-budget tenant keeps admitting throughout.
        prop_assert!(matches!(g.submit(aggr, 1, 0, 0), Verdict::Shed { .. }));
        prop_assert!(matches!(g.submit(victim, 1, 0, 0), Verdict::Admitted));
    }
}
