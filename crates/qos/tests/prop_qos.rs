//! Property-based tests for QoS invariants: DWRR freedom from
//! starvation, token-bucket admission bounds, and shed accounting.

use proptest::collection::vec;
use proptest::prelude::*;
use solros_qos::{Dispatch, DwrrScheduler, FlowSpec, QosClass, TokenBucket, Verdict};

fn open_spec(name: String, weight: u32) -> FlowSpec {
    FlowSpec {
        name,
        class: QosClass::Normal,
        weight,
        ops_per_sec: 0,
        bytes_per_sec: 0,
        burst_ops: 0,
        burst_bytes: 0,
        queue_cap: usize::MAX,
        deadline_ns: 0,
        sheddable: false,
        tenant: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A non-empty flow is served within one full DWRR round no matter
    /// how aggressively a competing flow is topped up: the scheduler
    /// never starves a backlogged class.
    #[test]
    fn dwrr_never_starves_nonempty_class(
        aggressor_weight in 1u32..16,
        victim_weight in 1u32..16,
        cost in 1u64..4096,
    ) {
        const QUANTUM: u64 = 4096;
        let mut s: DwrrScheduler<u64> = DwrrScheduler::new(
            vec![
                open_spec("aggressor".into(), aggressor_weight),
                open_spec("victim".into(), victim_weight),
            ],
            QUANTUM,
            usize::MAX,
        );
        prop_assert!(matches!(s.submit(1, cost, 0, 0), Verdict::Admitted));
        // One aggressor turn serves at most deficit/cost requests, and the
        // deficit of a flow whose head always fits never exceeds one
        // quantum grant. Give a generous 2x margin.
        let bound = 2 * (aggressor_weight as u64 * QUANTUM / cost + 2);
        let mut waited = 0u64;
        loop {
            // Keep the aggressor permanently backlogged.
            while s.queued(0) < 4 {
                prop_assert!(matches!(s.submit(0, cost, 0, 1), Verdict::Admitted));
            }
            match s.dispatch(0) {
                Dispatch::Run { flow: 1, .. } => break,
                Dispatch::Run { .. } => waited += 1,
                other => {
                    return Err(TestCaseError::fail(format!("unexpected {other:?}")));
                }
            }
            prop_assert!(waited <= bound, "victim starved for {waited} > {bound} dispatches");
        }
    }

    /// Token buckets never admit more than `burst + rate × elapsed`,
    /// regardless of the take pattern.
    #[test]
    fn token_bucket_respects_rate_bound(
        rate in 1u64..100_000,
        burst in 1u64..10_000,
        steps in vec((0u64..10_000_000, 1u64..64), 1..64),
    ) {
        let mut b = TokenBucket::new(rate, burst);
        let mut now = 0u64;
        let mut admitted: u128 = 0;
        for (dt, n) in steps {
            now += dt;
            if b.try_take(n, now) {
                admitted += n as u128;
            }
            // Exact bound in token·ns fixed point (no float slack).
            let cap = burst as u128 * 1_000_000_000 + rate as u128 * now as u128;
            prop_assert!(
                admitted * 1_000_000_000 <= cap,
                "admitted {admitted} tokens by {now} ns exceeds rate bound"
            );
        }
    }

    /// Every request offered to the gate is accounted for: at quiescence,
    /// `admitted + shed == submitted` and `dispatched == admitted` hold
    /// per flow, across arbitrary interleavings of submits, dispatches,
    /// deadlines, queue caps, and overload shedding.
    #[test]
    fn sheds_are_fully_accounted(
        caps in vec(1usize..8, 2..5),
        overload_threshold in 1usize..16,
        deadline_ns in 0u64..2_000,
        events in vec((0usize..5, 0u64..1_500, 1u64..2048), 1..128),
    ) {
        let specs: Vec<FlowSpec> = caps
            .iter()
            .enumerate()
            .map(|(i, &cap)| FlowSpec {
                queue_cap: cap,
                deadline_ns,
                sheddable: i % 2 == 1,
                ..open_spec(format!("f{i}"), 1 + i as u32)
            })
            .collect();
        let nflows = specs.len();
        let mut s: DwrrScheduler<u64> = DwrrScheduler::new(specs, 1024, overload_threshold);
        let mut now = 0u64;
        let mut dispatched = 0u64;
        let mut shed = 0u64;
        let mut submitted = 0u64;
        for (op, dt, bytes) in events {
            now += dt;
            if op < nflows {
                submitted += 1;
                if let Verdict::Shed { .. } = s.submit(op, bytes, now, submitted) {
                    shed += 1;
                }
            } else {
                match s.dispatch(now) {
                    Dispatch::Run { .. } => dispatched += 1,
                    Dispatch::Shed { .. } => shed += 1,
                    Dispatch::Idle => {}
                }
            }
        }
        // Quiesce: drain whatever is still queued (counts as shed).
        shed += s.drain().len() as u64;
        prop_assert_eq!(dispatched + shed, submitted, "requests lost or duplicated");
        for snap in s.stats().snapshot() {
            prop_assert!(
                snap.accounted(),
                "flow {}: admitted {} + shed {} != submitted {}",
                snap.name, snap.admitted, snap.shed, snap.submitted
            );
            prop_assert_eq!(snap.dispatched, snap.admitted);
        }
    }
}
