//! Host-global hierarchical QoS: tenant → service → flow scheduling
//! over sharded, epoch-GC'd flow tables.
//!
//! The flat [`DwrrScheduler`](crate::DwrrScheduler) keys a fixed `Vec` of flows at
//! construction, so "a flow per tenant" means a linear scan per
//! admission and a ledger that grows with every tenant *ever seen*.
//! This module turns the gate into a three-level hierarchy that stays
//! O(active):
//!
//! * **Level 1 — tenants.** A host-wide [`HostScheduler`] directory
//!   arbitrates tenants against host budgets. Budgets and charges for
//!   wire tenants ride the replicated [`TenantLedger`](crate::TenantLedger) operation log,
//!   so every domain's gate reads the *host-global* usage from its
//!   socket-local replica and the budget decision rebalances across
//!   domains without any cross-shard locking. An over-budget tenant's
//!   flows become sheddable under overload (promoted flows stay
//!   immune: priority inheritance outranks tenant gating by design —
//!   a paced waiter must not starve behind its own budget gate).
//! * **Level 2 — services.** Each tenant's host budget splits between
//!   the control-plane services (FS vs TCP) by configured share. A
//!   tenant backlogged on *both* services has each gate's deficit
//!   credit scaled to the service's share, so flooding one service
//!   cannot double a tenant's host-wide throughput; a tenant active on
//!   one service keeps its full credit (single-service behavior is
//!   byte-identical to the flat scheduler).
//! * **Level 3 — flows.** Today's DWRR semantics, unchanged: per-flow
//!   deficit round robin, token buckets, deadlines, explicit shedding,
//!   credit-byte backpressure, and the promote/demote hooks the proxy
//!   engine's priority inheritance uses.
//!
//! Flow state lives in per-domain [`HostGate`] shards (one per engine
//! shard, matching the control plane's NUMA sharding) keyed
//! `(tenant, service, class)` in a hash-indexed slab: tenants are
//! admitted lazily on their first frame (one hash probe, no
//! allocation on the steady path) and reclaimed by an epoch GC once
//! idle — never while they hold queued work, live pins (exclusive
//! holds in flight), or an inherited promotion.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::bucket::TokenBucket;
use crate::config::{QosClass, QosConfig};
use crate::sched::{Dispatch, FlowSpec, ShedReason, Verdict};
use crate::stats::QosStats;
use crate::tenant::{TenantLedgerReplica, TENANT_SLOTS};

/// Number of control-plane services arbitrated at level 2.
pub const SERVICE_COUNT: usize = 2;

/// A control-plane service lane in the tenant hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// The file-system proxy service.
    Fs,
    /// The TCP proxy service.
    Tcp,
}

impl Service {
    /// All services, in index order.
    pub const ALL: [Service; SERVICE_COUNT] = [Service::Fs, Service::Tcp];

    /// Stable index into per-service arrays.
    pub fn index(self) -> usize {
        match self {
            Service::Fs => 0,
            Service::Tcp => 1,
        }
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Service::Fs => "fs",
            Service::Tcp => "tcp",
        }
    }
}

/// Tuning for the tenant→service→flow hierarchy.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Level-2 service shares (`[fs, tcp]`): a tenant backlogged on
    /// both services gets each gate's deficit credit scaled to its
    /// service's share of the sum.
    pub service_weights: [u32; SERVICE_COUNT],
    /// Default level-1 weight for lazily admitted tenants.
    pub tenant_weight: u32,
    /// Default host-wide byte budget per tenant; `None` = unlimited.
    /// Ledger-backed (wire) tenants take their budget from the
    /// replicated [`crate::TenantLedger`] when one is set there.
    pub tenant_budget_bytes: Option<u64>,
    /// Epoch length driving GC and budget rebalance, in nanoseconds of
    /// whatever clock the owning gate is driven by.
    pub epoch_ns: u64,
    /// Idle epochs before a dynamic flow-table entry is reclaimed.
    pub gc_idle_epochs: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        Self {
            service_weights: [1, 1],
            tenant_weight: 1,
            tenant_budget_bytes: None,
            epoch_ns: 10_000_000, // 10 ms
            gc_idle_epochs: 2,
        }
    }
}

/// Budget sentinel: unlimited.
const NO_BUDGET: u64 = u64::MAX;

/// Per-tenant directory entry shared by every gate shard. All hot-path
/// reads are plain atomics; the directory mutex is only taken on lazy
/// admission and at epoch rebalance.
struct TenantEntry {
    /// Level-1 DWRR weight multiplier.
    weight: AtomicU32,
    /// Host-wide byte budget ([`NO_BUDGET`] = unlimited).
    budget_bytes: AtomicU64,
    /// Host-wide bytes charged. For ledger-backed tenants this mirrors
    /// the replicated ledger at the last rebalance; for wide (sim)
    /// tenants the gates add directly at admission.
    charged_bytes: AtomicU64,
    /// Bytes currently queued per service, across every gate shard.
    /// Exact (incremented at admit, decremented at dispatch/shed/
    /// drain), so level 2 needs no decay heuristics.
    backlog: [AtomicU64; SERVICE_COUNT],
    /// Charged/budgeted from the replicated ledger at rebalance.
    ledger_backed: bool,
    /// Explicitly configured (weight/budget set by an operator):
    /// survives directory GC even with no live flows.
    pinned: std::sync::atomic::AtomicBool,
}

impl TenantEntry {
    fn new(weight: u32, budget: Option<u64>, ledger_backed: bool) -> Self {
        Self {
            weight: AtomicU32::new(weight.max(1)),
            budget_bytes: AtomicU64::new(budget.unwrap_or(NO_BUDGET)),
            charged_bytes: AtomicU64::new(0),
            backlog: [AtomicU64::new(0), AtomicU64::new(0)],
            ledger_backed,
            pinned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn over_budget(&self) -> bool {
        let b = self.budget_bytes.load(Ordering::Relaxed);
        b != NO_BUDGET && self.charged_bytes.load(Ordering::Relaxed) > b
    }

    /// Level-2 share of the deficit credit for `service`: full credit
    /// while the tenant is active on this service alone, the service's
    /// configured fraction while other services hold backlog too.
    fn service_share(&self, service: usize, weights: &[u32; SERVICE_COUNT]) -> (u64, u64) {
        let mut wsum = 0u64;
        for (s, w) in weights.iter().enumerate() {
            if s == service || self.backlog[s].load(Ordering::Relaxed) > 0 {
                wsum += u64::from((*w).max(1));
            }
        }
        (u64::from(weights[service].max(1)), wsum.max(1))
    }
}

/// Point-in-time counters for the host directory and every gate shard
/// registered under it — the occupancy/GC ledger the bench surfaces.
#[derive(Debug, Default, Clone)]
pub struct HostQosSnapshot {
    /// Flow-table entries currently live across all shards (dynamic
    /// per-tenant entries; static per-class flows are not counted).
    pub live_flows: usize,
    /// High-water mark of `live_flows`.
    pub peak_live_flows: usize,
    /// Dynamic flows ever admitted (lazy first-frame admissions).
    pub admitted_flows: u64,
    /// Dynamic flows reclaimed by the epoch GC (or shard retirement).
    pub reclaimed_flows: u64,
    /// Tenants currently in the directory.
    pub live_tenants: usize,
    /// High-water mark of `live_tenants`.
    pub peak_live_tenants: usize,
    /// Tenants ever admitted to the directory.
    pub admitted_tenants: u64,
    /// Tenants dropped from the directory after their flows were GC'd.
    pub reclaimed_tenants: u64,
    /// Budget rebalances run (ledger sync + directory sweep).
    pub rebalances: u64,
    /// Submissions shed at level 1 (tenant over host budget) that the
    /// flow's class alone would have admitted.
    pub budget_sheds: u64,
}

/// Host-wide level-1/level-2 state shared by every [`HostGate`] shard:
/// the lazily-populated tenant directory, the replicated-ledger budget
/// view, and the occupancy/GC counters.
pub struct HostScheduler {
    cfg: HostConfig,
    tenants: Mutex<HashMap<u64, Arc<TenantEntry>>>,
    ledger: Mutex<Option<TenantLedgerReplica>>,
    live_flows: AtomicUsize,
    peak_live_flows: AtomicUsize,
    admitted_flows: AtomicU64,
    reclaimed_flows: AtomicU64,
    peak_live_tenants: AtomicUsize,
    admitted_tenants: AtomicU64,
    reclaimed_tenants: AtomicU64,
    rebalances: AtomicU64,
    budget_sheds: AtomicU64,
}

impl HostScheduler {
    /// Builds a host scheduler with no ledger attachment (budgets come
    /// only from [`HostScheduler::set_tenant_budget`]).
    pub fn new(cfg: HostConfig) -> Arc<Self> {
        Self::build(cfg, None)
    }

    /// Builds a host scheduler whose wire-tenant (< [`TENANT_SLOTS`])
    /// budgets and charges rebalance from the replicated tenant ledger
    /// every epoch.
    pub fn with_ledger(cfg: HostConfig, replica: TenantLedgerReplica) -> Arc<Self> {
        Self::build(cfg, Some(replica))
    }

    fn build(cfg: HostConfig, replica: Option<TenantLedgerReplica>) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            tenants: Mutex::new(HashMap::new()),
            ledger: Mutex::new(replica),
            live_flows: AtomicUsize::new(0),
            peak_live_flows: AtomicUsize::new(0),
            admitted_flows: AtomicU64::new(0),
            reclaimed_flows: AtomicU64::new(0),
            peak_live_tenants: AtomicUsize::new(0),
            admitted_tenants: AtomicU64::new(0),
            reclaimed_tenants: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            budget_sheds: AtomicU64::new(0),
        })
    }

    /// The configured hierarchy tuning.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// Sets a tenant's level-1 weight, admitting it if new. The entry
    /// is pinned: it survives directory GC even with no live flows.
    pub fn set_tenant_weight(&self, tenant: u64, weight: u32) {
        let e = self.tenant(tenant);
        e.weight.store(weight.max(1), Ordering::Relaxed);
        e.pinned.store(true, Ordering::Relaxed);
    }

    /// Sets a tenant's host-wide byte budget (`None` = unlimited),
    /// admitting and pinning it if new.
    pub fn set_tenant_budget(&self, tenant: u64, bytes: Option<u64>) {
        let e = self.tenant(tenant);
        e.budget_bytes
            .store(bytes.unwrap_or(NO_BUDGET), Ordering::Relaxed);
        e.pinned.store(true, Ordering::Relaxed);
    }

    /// True while `tenant` is charged past its host-wide budget.
    pub fn tenant_over_budget(&self, tenant: u64) -> bool {
        self.tenants
            .lock()
            .unwrap()
            .get(&tenant)
            .is_some_and(|e| e.over_budget())
    }

    /// Snapshot of the occupancy/GC ledger.
    pub fn snapshot(&self) -> HostQosSnapshot {
        let live_tenants = self.tenants.lock().unwrap().len();
        HostQosSnapshot {
            live_flows: self.live_flows.load(Ordering::Relaxed),
            peak_live_flows: self.peak_live_flows.load(Ordering::Relaxed),
            admitted_flows: self.admitted_flows.load(Ordering::Relaxed),
            reclaimed_flows: self.reclaimed_flows.load(Ordering::Relaxed),
            live_tenants,
            peak_live_tenants: self.peak_live_tenants.load(Ordering::Relaxed),
            admitted_tenants: self.admitted_tenants.load(Ordering::Relaxed),
            reclaimed_tenants: self.reclaimed_tenants.load(Ordering::Relaxed),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            budget_sheds: self.budget_sheds.load(Ordering::Relaxed),
        }
    }

    /// Looks up or lazily admits a tenant directory entry.
    fn tenant(&self, id: u64) -> Arc<TenantEntry> {
        let mut g = self.tenants.lock().unwrap();
        if let Some(e) = g.get(&id) {
            return Arc::clone(e);
        }
        let ledger_backed = id < TENANT_SLOTS as u64 && self.ledger.lock().unwrap().is_some();
        let e = Arc::new(TenantEntry::new(
            self.cfg.tenant_weight,
            self.cfg.tenant_budget_bytes,
            ledger_backed,
        ));
        g.insert(id, Arc::clone(&e));
        self.admitted_tenants.fetch_add(1, Ordering::Relaxed);
        self.peak_live_tenants.fetch_max(g.len(), Ordering::Relaxed);
        e
    }

    /// Epoch rebalance, run by whichever gate shard crosses an epoch
    /// boundary: syncs the ledger replica, copies the host-global
    /// charges and budgets into the wire tenants' directory entries
    /// (this is how one domain's flood, charged on its local shard,
    /// gates the same tenant on every *other* domain), and sweeps
    /// directory entries whose flows were all reclaimed.
    pub fn rebalance(&self) {
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        let ledger = self.ledger.lock().unwrap();
        if let Some(rep) = &*ledger {
            rep.sync();
        }
        let mut g = self.tenants.lock().unwrap();
        if let Some(rep) = &*ledger {
            for (&id, e) in g.iter() {
                if !e.ledger_backed || id >= TENANT_SLOTS as u64 {
                    continue;
                }
                let u = rep.usage(id as u8);
                e.charged_bytes.store(u.bytes, Ordering::Relaxed);
                if let Some(b) = u.budget_bytes {
                    e.budget_bytes.store(b, Ordering::Relaxed);
                }
            }
        }
        let before = g.len();
        g.retain(|_, e| Arc::strong_count(e) > 1 || e.pinned.load(Ordering::Relaxed));
        self.reclaimed_tenants
            .fetch_add((before - g.len()) as u64, Ordering::Relaxed);
    }

    fn note_flow_admitted(&self) {
        self.admitted_flows.fetch_add(1, Ordering::Relaxed);
        let live = self.live_flows.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_live_flows.fetch_max(live, Ordering::Relaxed);
    }

    fn note_flow_reclaimed(&self) {
        self.reclaimed_flows.fetch_add(1, Ordering::Relaxed);
        self.live_flows.fetch_sub(1, Ordering::Relaxed);
    }
}

struct HostQueued<T> {
    bytes: u64,
    submit_ns: u64,
    item: T,
}

struct HostFlow<T> {
    spec: FlowSpec,
    /// Stats ledger slot (dynamic flows charge their base class slot).
    stats_slot: usize,
    /// `(tenant, base flow)` hash key; `None` marks a static flow that
    /// is never GC'd.
    key: Option<(u64, usize)>,
    tenant: Arc<TenantEntry>,
    ops: TokenBucket,
    bytes: TokenBucket,
    queue: VecDeque<HostQueued<T>>,
    deficit: u64,
    inherited: Vec<u32>,
    /// Live credits: exclusive holds (admission → completion) the
    /// engine has in flight against this flow. GC never reclaims a
    /// pinned flow — the engine still holds its index.
    pins: u32,
    last_busy_epoch: u64,
}

impl<T> HostFlow<T> {
    fn weight(&self) -> u32 {
        self.inherited
            .iter()
            .copied()
            .fold(self.spec.weight, u32::max)
    }

    fn promoted(&self) -> bool {
        !self.inherited.is_empty()
    }
}

/// One domain's shard of the hierarchical flow table: the level-3 DWRR
/// gate the proxy engine drives, backed by a hash-indexed slab that
/// admits per-tenant flows lazily and epoch-GCs them once idle.
///
/// The static flows passed at construction (one per class, by
/// convention) are permanent and keep their indices, so a gate built
/// from the same specs as a flat [`DwrrScheduler`](crate::DwrrScheduler) schedules
/// single-tenant traffic byte-identically.
pub struct HostGate<T> {
    host: Arc<HostScheduler>,
    service: Service,
    domain: usize,
    /// Static flow count; every dynamic flow charges stats to a slot
    /// below this and resolves through `index`.
    base: usize,
    flows: Vec<Option<HostFlow<T>>>,
    index: HashMap<(u64, usize), usize>,
    free: Vec<usize>,
    /// Round-robin visit order over live slots.
    order: Vec<usize>,
    cursor: usize,
    fresh_turn: bool,
    quantum_bytes: u64,
    overload_threshold: usize,
    queued_total: usize,
    epoch: u64,
    next_epoch_ns: u64,
    stats: Arc<QosStats>,
}

impl<T> HostGate<T> {
    /// Builds a gate shard over `specs` (the permanent flows, in
    /// priority order) for one `service` on one `domain`.
    ///
    /// Specs carrying a nonzero tenant (the `"name#t<N>"` convention)
    /// are registered as permanent tenant variants of the flow with
    /// the matching base name, so legacy static-tenant configs resolve
    /// through the same hash index the dynamic flows use.
    pub fn new(
        specs: Vec<FlowSpec>,
        quantum_bytes: u64,
        overload_threshold: usize,
        host: &Arc<HostScheduler>,
        service: Service,
        domain: usize,
    ) -> Self {
        assert!(!specs.is_empty(), "gate needs at least one flow");
        let stats = Arc::new(QosStats::new(
            specs.iter().map(|s| s.name.clone()).collect(),
        ));
        let mut gate = Self {
            host: Arc::clone(host),
            service,
            domain,
            base: specs.len(),
            flows: Vec::with_capacity(specs.len()),
            index: HashMap::new(),
            free: Vec::new(),
            order: (0..specs.len()).collect(),
            cursor: 0,
            fresh_turn: true,
            quantum_bytes: quantum_bytes.max(1),
            overload_threshold,
            queued_total: 0,
            epoch: 0,
            next_epoch_ns: 0,
            stats,
        };
        for (i, spec) in specs.into_iter().enumerate() {
            let tenant = gate.host.tenant(u64::from(spec.tenant));
            gate.flows.push(Some(HostFlow {
                ops: TokenBucket::new(spec.ops_per_sec, spec.burst_ops.max(1)),
                bytes: TokenBucket::new(spec.bytes_per_sec, spec.burst_bytes.max(1)),
                queue: VecDeque::new(),
                deficit: 0,
                inherited: Vec::new(),
                pins: 0,
                last_busy_epoch: 0,
                stats_slot: i,
                key: None,
                tenant,
                spec,
            }));
        }
        // Register static tenant variants under the hash index so the
        // legacy `"name#t<N>"` convention resolves without scanning.
        for i in 0..gate.base {
            let (tenant, name) = {
                let f = gate.flows[i].as_ref().expect("static flow");
                (f.spec.tenant, f.spec.name.clone())
            };
            if tenant == 0 {
                continue;
            }
            let Some((base_name, _)) = name.rsplit_once("#t") else {
                continue;
            };
            let found = gate.flows[..gate.base]
                .iter()
                .position(|f| f.as_ref().is_some_and(|f| f.spec.name == base_name));
            if let Some(b) = found {
                gate.index.insert((u64::from(tenant), b), i);
            }
        }
        gate
    }

    /// Builds one permanent flow per priority class from a
    /// [`QosConfig`]; flow indices equal [`QosClass::index`].
    pub fn per_class(
        prefix: &str,
        cfg: &QosConfig,
        host: &Arc<HostScheduler>,
        service: Service,
        domain: usize,
    ) -> Self {
        let specs = QosClass::ALL
            .iter()
            .map(|&c| FlowSpec::from_class(format!("{prefix}/{}", c.label()), c, cfg.class(c)))
            .collect();
        Self::new(
            specs,
            cfg.quantum_bytes,
            cfg.overload_threshold,
            host,
            service,
            domain,
        )
    }

    /// The shared stats ledger (per-class; dynamic tenant flows charge
    /// their base class slot).
    pub fn stats(&self) -> Arc<QosStats> {
        Arc::clone(&self.stats)
    }

    /// The host scheduler this shard reports to.
    pub fn host(&self) -> &Arc<HostScheduler> {
        &self.host
    }

    /// The engine domain this shard serves.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Live flow-table entries in this shard (static + dynamic).
    pub fn occupancy(&self) -> usize {
        self.order.len()
    }

    /// Total requests queued across all flows.
    pub fn queued_total(&self) -> usize {
        self.queued_total
    }

    /// Requests queued in one flow.
    pub fn queued(&self, flow: usize) -> usize {
        self.flows[flow].as_ref().map_or(0, |f| f.queue.len())
    }

    /// True while the gate considers itself overloaded.
    pub fn overloaded(&self) -> bool {
        self.queued_total >= self.overload_threshold
    }

    /// Current GC epoch of this shard.
    pub fn gc_epoch(&self) -> u64 {
        self.epoch
    }

    /// Probes the flow table without admitting: the slot serving
    /// `(tenant, fallback)` if one is live.
    pub fn lookup(&self, tenant: u64, fallback: usize) -> Option<usize> {
        let f = self.flows[fallback].as_ref()?;
        if tenant == f.key.map_or(u64::from(f.spec.tenant), |k| k.0) {
            return Some(fallback);
        }
        self.index.get(&(tenant, fallback)).copied()
    }

    /// Resolves the flow serving `tenant` in the same role as
    /// `fallback`, admitting a per-tenant flow lazily on first use.
    /// The steady path is one hash probe — no allocation, no scan.
    pub fn flow_for_tenant(&mut self, tenant: u64, fallback: usize) -> usize {
        debug_assert!(fallback < self.base, "fallback must be a static flow");
        {
            let f = self.flows[fallback].as_ref().expect("static flow");
            if tenant == u64::from(f.spec.tenant) {
                return fallback;
            }
        }
        if let Some(&slot) = self.index.get(&(tenant, fallback)) {
            return slot;
        }
        self.admit_flow(tenant, fallback)
    }

    /// Lazily admits a per-tenant variant of the static flow
    /// `fallback`: same class config, its own queue, buckets, and
    /// deficit, charged to the tenant's level-1 entry.
    fn admit_flow(&mut self, tenant: u64, fallback: usize) -> usize {
        let spec = self.flows[fallback]
            .as_ref()
            .expect("static flow")
            .spec
            .clone();
        let entry = self.host.tenant(tenant);
        let flow = HostFlow {
            ops: TokenBucket::new(spec.ops_per_sec, spec.burst_ops.max(1)),
            bytes: TokenBucket::new(spec.bytes_per_sec, spec.burst_bytes.max(1)),
            queue: VecDeque::new(),
            deficit: 0,
            inherited: Vec::new(),
            pins: 0,
            last_busy_epoch: self.epoch,
            stats_slot: fallback,
            key: Some((tenant, fallback)),
            tenant: entry,
            spec,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.flows[s] = Some(flow);
                s
            }
            None => {
                self.flows.push(Some(flow));
                self.flows.len() - 1
            }
        };
        self.index.insert((tenant, fallback), slot);
        // A newly admitted flow joins the rotation *behind* the cursor,
        // entering service on the next wrap. Appending ahead of the
        // cursor instead lets sustained flow churn postpone the wrap
        // forever — each serviced request admits a fresh flow in front
        // of the cursor and the flows behind it starve outright.
        self.order.insert(self.cursor.min(self.order.len()), slot);
        if self.cursor < self.order.len() - 1 {
            self.cursor += 1;
        }
        self.host.note_flow_admitted();
        slot
    }

    /// Credit window to advertise to the stub feeding `flow` (queue
    /// headroom clamped to the frame header's `1..=255`).
    pub fn credit(&self, flow: usize) -> u8 {
        let f = self.flows[flow].as_ref().expect("live flow");
        let free = f.spec.queue_cap.saturating_sub(f.queue.len());
        free.clamp(1, 255) as u8
    }

    /// Priority inheritance: `flow` inherits `waiter`'s effective
    /// weight and, while promoted, immunity from overload *and*
    /// tenant-budget shedding (the waiter must not starve behind the
    /// holder's budget gate). Promotions nest; see
    /// [`DwrrScheduler::promote_flow`](crate::DwrrScheduler::promote_flow).
    pub fn promote_flow(&mut self, flow: usize, waiter: usize) {
        let w = self.effective_weight(waiter);
        self.flows[flow]
            .as_mut()
            .expect("live flow")
            .inherited
            .push(w);
    }

    /// Releases the most recent promotion of `flow`.
    pub fn demote_flow(&mut self, flow: usize) {
        if let Some(f) = self.flows[flow].as_mut() {
            f.inherited.pop();
        }
    }

    /// True while `flow` carries at least one inherited weight.
    pub fn is_promoted(&self, flow: usize) -> bool {
        self.flows[flow].as_ref().is_some_and(|f| f.promoted())
    }

    /// The DWRR weight currently in force for `flow`.
    pub fn effective_weight(&self, flow: usize) -> u32 {
        self.flows[flow].as_ref().map_or(1, |f| f.weight())
    }

    /// Pins `flow` against GC: the engine holds a live reference (an
    /// exclusive hold in flight) whose index must stay valid.
    pub fn pin_flow(&mut self, flow: usize) {
        if let Some(f) = self.flows[flow].as_mut() {
            f.pins += 1;
        }
    }

    /// Releases one GC pin on `flow`.
    pub fn unpin_flow(&mut self, flow: usize) {
        if let Some(f) = self.flows[flow].as_mut() {
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Offers a request of `bytes` payload to `flow` at `now_ns`.
    ///
    /// Level-1 gating happens here: while the gate is overloaded, an
    /// over-budget tenant's flows shed exactly like sheddable classes
    /// (High stays exempt — metadata is cheap and starving it deadlocks
    /// more than it saves). Promoted flows are immune at every level.
    pub fn submit(&mut self, flow: usize, bytes: u64, now_ns: u64, item: T) -> Verdict<T> {
        let overloaded = self.queued_total >= self.overload_threshold;
        let epoch = self.epoch;
        let svc = self.service.index();
        let f = self.flows[flow].as_mut().expect("live flow");
        if overloaded && !f.promoted() {
            let budget_shed = f.tenant.over_budget() && f.spec.class != QosClass::High;
            if f.spec.sheddable || budget_shed {
                if budget_shed && !f.spec.sheddable {
                    self.host.budget_sheds.fetch_add(1, Ordering::Relaxed);
                }
                self.stats.on_shed(f.stats_slot, false);
                return Verdict::Shed {
                    item,
                    reason: ShedReason::Overload,
                };
            }
        }
        if f.queue.len() >= f.spec.queue_cap {
            self.stats.on_shed(f.stats_slot, false);
            return Verdict::Shed {
                item,
                reason: ShedReason::QueueFull,
            };
        }
        if f.queue.is_empty() {
            // Idle-flow deficit staleness fix: a flow re-entering after
            // its queue drained starts its next turn from zero banked
            // deficit, exactly as if dispatch had visited it while idle.
            f.deficit = 0;
        }
        f.queue.push_back(HostQueued {
            bytes,
            submit_ns: now_ns,
            item,
        });
        f.last_busy_epoch = epoch;
        if !f.tenant.ledger_backed {
            f.tenant.charged_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        f.tenant.backlog[svc].fetch_add(bytes, Ordering::Relaxed);
        self.queued_total += 1;
        let depth = f.queue.len();
        let slot = f.stats_slot;
        self.stats.on_submit(slot, depth);
        Verdict::Admitted
    }

    /// Picks the next request to serve (or shed) at `now_ns`, visiting
    /// each live flow at most once. Level-3 DWRR with the level-1
    /// tenant weight and level-2 service share folded into each fresh
    /// turn's deficit credit.
    pub fn dispatch(&mut self, now_ns: u64) -> Dispatch<T> {
        if self.queued_total == 0 {
            return Dispatch::Idle;
        }
        let n = self.order.len();
        let svc = self.service.index();
        let weights = self.host.cfg.service_weights;
        for _ in 0..n {
            let slot = self.order[self.cursor];
            let epoch = self.epoch;
            let f = self.flows[slot].as_mut().expect("ordered flow is live");
            if f.queue.is_empty() {
                f.deficit = 0;
                self.advance();
                continue;
            }
            let tenant_weight = u64::from(f.tenant.weight.load(Ordering::Relaxed).max(1));
            let (share_num, share_den) = f.tenant.service_share(svc, &weights);
            let turn_credit = (u64::from(f.weight()) * tenant_weight * self.quantum_bytes)
                .saturating_mul(share_num)
                / share_den;
            if self.fresh_turn {
                f.deficit = f.deficit.saturating_add(turn_credit.max(1));
                self.fresh_turn = false;
            }
            let head = f.queue.front().expect("non-empty");
            if f.spec.deadline_ns > 0 && now_ns.saturating_sub(head.submit_ns) > f.spec.deadline_ns
            {
                let q = f.queue.pop_front().expect("non-empty");
                f.last_busy_epoch = epoch;
                f.tenant.backlog[svc].fetch_sub(q.bytes, Ordering::Relaxed);
                self.queued_total -= 1;
                self.stats.on_shed(f.stats_slot, true);
                return Dispatch::Shed {
                    flow: slot,
                    item: q.item,
                    reason: ShedReason::DeadlineExpired,
                };
            }
            let cost = head.bytes.max(1);
            let within_deficit = f.deficit >= cost;
            if within_deficit && f.ops.check(1, now_ns) && f.bytes.check(cost, now_ns) {
                f.ops.try_take(1, now_ns);
                f.bytes.try_take(cost, now_ns);
                f.deficit -= cost;
                let q = f.queue.pop_front().expect("non-empty");
                f.last_busy_epoch = epoch;
                f.tenant.backlog[svc].fetch_sub(q.bytes, Ordering::Relaxed);
                self.queued_total -= 1;
                let wait_ns = now_ns.saturating_sub(q.submit_ns);
                self.stats.on_dispatch(f.stats_slot, q.bytes, wait_ns);
                return Dispatch::Run {
                    flow: slot,
                    item: q.item,
                    wait_ns,
                };
            }
            if within_deficit {
                // Rate-limited: yield with at most one turn's credit
                // banked so an idle flow cannot later burst past its
                // share.
                f.deficit = f.deficit.min(turn_credit.max(1));
            }
            // Deficit exhausted: carry it over so a large head request
            // eventually accumulates enough.
            self.advance();
        }
        Dispatch::Idle
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.order.len().max(1);
        self.fresh_turn = true;
    }

    /// Epoch maintenance, called once per engine cycle: on an epoch
    /// boundary, GC idle dynamic flows and run the host-wide budget
    /// rebalance. Returns true when an epoch turned over.
    pub fn maintain(&mut self, now_ns: u64) -> bool {
        if self.next_epoch_ns == 0 {
            self.next_epoch_ns = now_ns.saturating_add(self.host.cfg.epoch_ns).max(1);
            return false;
        }
        if now_ns < self.next_epoch_ns {
            return false;
        }
        self.epoch += 1;
        self.next_epoch_ns = now_ns.saturating_add(self.host.cfg.epoch_ns).max(1);
        self.gc();
        self.host.rebalance();
        true
    }

    /// Reclaims dynamic flows idle for at least the configured number
    /// of epochs. A flow with queued work, live pins, or an inherited
    /// promotion is never reclaimed — the engine still holds its
    /// index, or it still owes scheduled work.
    fn gc(&mut self) {
        let idle = self.host.cfg.gc_idle_epochs;
        let mut changed = false;
        for slot in self.base..self.flows.len() {
            let reclaim = self.flows[slot].as_ref().is_some_and(|f| {
                f.key.is_some()
                    && f.queue.is_empty()
                    && f.inherited.is_empty()
                    && f.pins == 0
                    && self.epoch.saturating_sub(f.last_busy_epoch) >= idle
            });
            if !reclaim {
                continue;
            }
            let f = self.flows[slot].take().expect("checked live");
            if let Some(key) = f.key {
                self.index.remove(&key);
            }
            self.free.push(slot);
            self.host.note_flow_reclaimed();
            changed = true;
        }
        if changed {
            self.compact_order();
        }
    }

    /// Re-derives the round-robin order after slots were reclaimed,
    /// keeping the rotation fair: the cursor follows the slot it was
    /// visiting (same flow, same in-progress turn), and only when that
    /// slot itself vanished does the turn restart — an epoch GC must
    /// not hand the flow at the cursor a spurious extra deficit grant.
    fn compact_order(&mut self) {
        let current = self.order.get(self.cursor).copied();
        self.order.retain(|&s| self.flows[s].is_some());
        match current.and_then(|slot| self.order.iter().position(|&s| s == slot)) {
            Some(pos) => self.cursor = pos,
            None => {
                if self.cursor >= self.order.len() {
                    self.cursor = 0;
                }
                self.fresh_turn = true;
            }
        }
    }

    /// Drains every queued request, in slot order, for shutdown and
    /// wreck paths. Each drained request is accounted as shed.
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let svc = self.service.index();
        let mut out = Vec::new();
        for slot in 0..self.flows.len() {
            let Some(f) = self.flows[slot].as_mut() else {
                continue;
            };
            while let Some(q) = f.queue.pop_front() {
                f.tenant.backlog[svc].fetch_sub(q.bytes, Ordering::Relaxed);
                self.queued_total -= 1;
                self.stats.on_shed(f.stats_slot, true);
                out.push((slot, q.item));
            }
        }
        out
    }

    /// Retires the shard: every dynamic flow is dropped and reported
    /// reclaimed, so a fenced domain's table stops counting against
    /// host occupancy. Queues must be drained first (the wreck path
    /// does); static per-class flows stay, ready for a replacement
    /// shard over the same gate. Returns the number reclaimed.
    pub fn retire(&mut self) -> usize {
        let svc = self.service.index();
        let mut reclaimed = 0;
        for slot in self.base..self.flows.len() {
            let Some(f) = self.flows[slot].as_mut() else {
                continue;
            };
            // A dying shard may retire with queued work if the caller
            // skipped drain; keep the global accounting exact anyway.
            while let Some(q) = f.queue.pop_front() {
                f.tenant.backlog[svc].fetch_sub(q.bytes, Ordering::Relaxed);
                self.queued_total -= 1;
                self.stats.on_shed(f.stats_slot, true);
            }
            let f = self.flows[slot].take().expect("checked live");
            if let Some(key) = f.key {
                self.index.remove(&key);
            }
            self.free.push(slot);
            self.host.note_flow_reclaimed();
            reclaimed += 1;
        }
        if reclaimed > 0 {
            self.compact_order();
        }
        reclaimed
    }

    #[cfg(test)]
    fn deficit(&self, flow: usize) -> u64 {
        self.flows[flow].as_ref().expect("live flow").deficit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, class: QosClass, weight: u32) -> FlowSpec {
        FlowSpec {
            name: name.into(),
            class,
            weight,
            ops_per_sec: 0,
            bytes_per_sec: 0,
            burst_ops: 0,
            burst_bytes: 0,
            queue_cap: 1024,
            deadline_ns: 0,
            sheddable: false,
            tenant: 0,
        }
    }

    fn gate(host: &Arc<HostScheduler>, service: Service) -> HostGate<u32> {
        HostGate::new(
            vec![
                spec("g/high", QosClass::High, 8),
                spec("g/normal", QosClass::Normal, 4),
                spec("g/best", QosClass::BestEffort, 1),
            ],
            1024,
            usize::MAX,
            host,
            service,
            0,
        )
    }

    #[test]
    fn lazy_admission_resolves_by_hash_and_reuses_slots() {
        let host = HostScheduler::new(HostConfig::default());
        let mut g = gate(&host, Service::Fs);
        assert_eq!(g.flow_for_tenant(0, 1), 1, "tenant 0 keeps the base flow");
        let a = g.flow_for_tenant(700_000, 1);
        assert!(a >= 3, "wide tenant gets a dynamic slot");
        assert_eq!(
            g.flow_for_tenant(700_000, 1),
            a,
            "steady path is a hash hit"
        );
        assert_ne!(g.flow_for_tenant(700_001, 1), a);
        assert_eq!(g.occupancy(), 5);
        let snap = host.snapshot();
        assert_eq!(snap.admitted_flows, 2);
        assert_eq!(snap.live_flows, 2);
    }

    #[test]
    fn epoch_gc_reclaims_idle_but_not_queued_pinned_or_promoted() {
        let host = HostScheduler::new(HostConfig {
            epoch_ns: 1_000,
            gc_idle_epochs: 2,
            ..HostConfig::default()
        });
        let mut g = gate(&host, Service::Fs);
        let _idle = g.flow_for_tenant(10, 1);
        let queued = g.flow_for_tenant(11, 1);
        let pinned = g.flow_for_tenant(12, 1);
        let promoted = g.flow_for_tenant(13, 1);
        assert!(matches!(g.submit(queued, 64, 0, 1), Verdict::Admitted));
        g.pin_flow(pinned);
        g.promote_flow(promoted, 0);
        let mut now = 0;
        for _ in 0..6 {
            now += 1_000;
            g.maintain(now);
        }
        assert_eq!(g.lookup(10, 1), None, "idle flow reclaimed");
        assert_eq!(g.lookup(11, 1), Some(queued), "queued work survives GC");
        assert_eq!(g.lookup(12, 1), Some(pinned), "pinned flow survives GC");
        assert_eq!(g.lookup(13, 1), Some(promoted), "promotion survives GC");
        // Releasing the guards makes them collectable.
        g.unpin_flow(pinned);
        g.demote_flow(promoted);
        assert!(matches!(g.dispatch(now), Dispatch::Run { .. }));
        for _ in 0..4 {
            now += 1_000;
            g.maintain(now);
        }
        assert_eq!(g.occupancy(), 3, "only static flows remain");
        let snap = host.snapshot();
        assert_eq!(snap.reclaimed_flows, 4);
        assert_eq!(snap.live_flows, 0);
        // Slots are reused: a fresh tenant lands on a freed slot.
        let again = g.flow_for_tenant(99, 1);
        assert!(again < 7, "slot {again} was not reused");
    }

    #[test]
    fn idle_flow_reenters_with_reset_deficit() {
        let host = HostScheduler::new(HostConfig::default());
        let mut g = gate(&host, Service::Fs);
        assert!(matches!(g.submit(0, 64, 0, 1), Verdict::Admitted));
        assert!(matches!(g.dispatch(0), Dispatch::Run { .. }));
        assert!(g.deficit(0) > 0, "residual deficit banked after the run");
        // The gate goes fully idle (dispatch never visits the flow), so
        // the residual would have persisted; re-entry must reset it.
        assert!(matches!(g.dispatch(0), Dispatch::Idle));
        assert!(matches!(g.submit(0, 64, 10, 2), Verdict::Admitted));
        assert_eq!(g.deficit(0), 0, "stale deficit must not survive idling");
    }

    #[test]
    fn over_budget_tenant_sheds_under_overload_paced_tenants_do_not() {
        let host = HostScheduler::new(HostConfig::default());
        host.set_tenant_budget(7, Some(1_000));
        let mut g = HostGate::new(
            vec![
                spec("g/high", QosClass::High, 8),
                spec("g/normal", QosClass::Normal, 4),
            ],
            1024,
            4, // tiny overload threshold
            &host,
            Service::Fs,
            0,
        );
        let aggr = g.flow_for_tenant(7, 1);
        let victim = g.flow_for_tenant(8, 1);
        // Blow tenant 7's budget, then fill the gate to overload.
        assert!(matches!(g.submit(aggr, 4_000, 0, 0), Verdict::Admitted));
        for i in 0..4 {
            assert!(matches!(g.submit(victim, 1, 0, i), Verdict::Admitted));
        }
        assert!(g.overloaded());
        // Level 1: the over-budget tenant sheds on a non-sheddable
        // class; an under-budget tenant still admits.
        assert!(matches!(
            g.submit(aggr, 1, 0, 99),
            Verdict::Shed {
                reason: ShedReason::Overload,
                ..
            }
        ));
        assert!(matches!(g.submit(victim, 1, 0, 100), Verdict::Admitted));
        // High class stays exempt even over budget.
        let aggr_high = g.flow_for_tenant(7, 0);
        assert!(matches!(g.submit(aggr_high, 1, 0, 101), Verdict::Admitted));
        // Promotion outranks the budget gate.
        g.promote_flow(aggr, 0);
        assert!(matches!(g.submit(aggr, 1, 0, 102), Verdict::Admitted));
        g.demote_flow(aggr);
        assert!(host.snapshot().budget_sheds >= 1);
    }

    #[test]
    fn service_share_scales_deficit_when_tenant_floods_both_services() {
        // Tenant 5 is backlogged on fs AND tcp; tenant 6 on fs alone.
        // With equal service weights, tenant 5's fs credit halves, so
        // tenant 6 takes roughly twice the fs bytes.
        let host = HostScheduler::new(HostConfig::default());
        let mut fs = gate(&host, Service::Fs);
        let mut tcp = gate(&host, Service::Tcp);
        let both = fs.flow_for_tenant(5, 1);
        let solo = fs.flow_for_tenant(6, 1);
        let both_tcp = tcp.flow_for_tenant(5, 1);
        for i in 0..600u32 {
            assert!(matches!(fs.submit(both, 1024, 0, i), Verdict::Admitted));
            assert!(matches!(fs.submit(solo, 1024, 0, i), Verdict::Admitted));
        }
        // Standing tcp backlog for tenant 5 keeps level 2 engaged.
        for i in 0..64u32 {
            assert!(matches!(
                tcp.submit(both_tcp, 1024, 0, i),
                Verdict::Admitted
            ));
        }
        let mut served = [0u64; 2];
        for _ in 0..600 {
            match fs.dispatch(0) {
                Dispatch::Run { flow, .. } if flow == both => served[0] += 1,
                Dispatch::Run { flow, .. } if flow == solo => served[1] += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        let ratio = served[1] as f64 / served[0] as f64;
        assert!(
            (1.5..=2.5).contains(&ratio),
            "fs-only tenant should get ~2x ({served:?}, ratio {ratio})"
        );
    }

    #[test]
    fn tenant_weight_scales_shares_at_level_one() {
        let host = HostScheduler::new(HostConfig::default());
        host.set_tenant_weight(21, 3);
        host.set_tenant_weight(22, 1);
        let mut g = gate(&host, Service::Fs);
        let heavy = g.flow_for_tenant(21, 1);
        let light = g.flow_for_tenant(22, 1);
        for i in 0..1_000u32 {
            assert!(matches!(g.submit(heavy, 1024, 0, i), Verdict::Admitted));
            assert!(matches!(g.submit(light, 1024, 0, i), Verdict::Admitted));
        }
        let mut served = [0u64; 2];
        for _ in 0..900 {
            match g.dispatch(0) {
                Dispatch::Run { flow, .. } if flow == heavy => served[0] += 1,
                Dispatch::Run { flow, .. } if flow == light => served[1] += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (2.4..=3.6).contains(&ratio),
            "3:1 tenant weights should shape shares ({served:?}, ratio {ratio})"
        );
    }

    #[test]
    fn retire_drops_dynamic_flows_and_occupancy() {
        let host = HostScheduler::new(HostConfig::default());
        let mut g = gate(&host, Service::Tcp);
        for t in 0..16u64 {
            g.flow_for_tenant(1_000 + t, 2);
        }
        assert_eq!(host.snapshot().live_flows, 16);
        assert_eq!(g.retire(), 16);
        assert_eq!(g.occupancy(), 3);
        assert_eq!(host.snapshot().live_flows, 0);
        // The gate still schedules its static flows after retirement.
        assert!(matches!(g.submit(0, 64, 0, 1), Verdict::Admitted));
        assert!(matches!(g.dispatch(0), Dispatch::Run { .. }));
    }

    #[test]
    fn static_tenant_variant_specs_resolve_through_the_index() {
        let host = HostScheduler::new(HostConfig::default());
        let mut t1 = spec("g/high#t1", QosClass::High, 1);
        t1.tenant = 1;
        let mut g: HostGate<u32> = HostGate::new(
            vec![spec("g/high", QosClass::High, 1), t1],
            1024,
            usize::MAX,
            &host,
            Service::Fs,
            0,
        );
        assert_eq!(g.flow_for_tenant(1, 0), 1, "legacy #t1 variant resolves");
        // And it is permanent: epochs of idling never reclaim it.
        let mut now = 0;
        for _ in 0..8 {
            now += host.config().epoch_ns + 1;
            g.maintain(now);
        }
        assert_eq!(g.lookup(1, 0), Some(1));
    }
}
