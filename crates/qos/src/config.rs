//! Boot-time QoS configuration.

/// Priority class of a request flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Latency-sensitive work (FS metadata, small control ops).
    High,
    /// Regular data-path traffic.
    Normal,
    /// Bulk traffic shed first under overload.
    BestEffort,
}

impl QosClass {
    /// All classes, highest priority first.
    pub const ALL: [QosClass; 3] = [QosClass::High, QosClass::Normal, QosClass::BestEffort];

    /// Stable index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            QosClass::High => 0,
            QosClass::Normal => 1,
            QosClass::BestEffort => 2,
        }
    }

    /// Short lowercase label used in flow names and report tables.
    pub fn label(self) -> &'static str {
        match self {
            QosClass::High => "high",
            QosClass::Normal => "normal",
            QosClass::BestEffort => "best-effort",
        }
    }
}

/// Per-class knobs. Zero rates/deadlines mean "unlimited"/"none".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassConfig {
    /// DWRR weight; throughput shares converge to the weight ratio.
    pub weight: u32,
    /// Operations per second admitted; 0 = unlimited.
    pub ops_per_sec: u64,
    /// Payload bytes per second admitted; 0 = unlimited.
    pub bytes_per_sec: u64,
    /// Token-bucket burst in operations.
    pub burst_ops: u64,
    /// Token-bucket burst in bytes.
    pub burst_bytes: u64,
    /// Queue slots before submissions to this class are shed.
    pub queue_cap: usize,
    /// Shed queued requests older than this at dispatch; 0 = no deadline.
    pub deadline_us: u64,
    /// Shed this class at submit while the gate is overloaded.
    pub sheddable: bool,
}

impl ClassConfig {
    /// Pass-through: unlimited rate, effectively unbounded queue, never shed.
    pub fn pass_through(weight: u32) -> Self {
        Self {
            weight,
            ops_per_sec: 0,
            bytes_per_sec: 0,
            burst_ops: 0,
            burst_bytes: 0,
            queue_cap: usize::MAX,
            deadline_us: 0,
            sheddable: false,
        }
    }
}

/// QoS configuration handed to `Solros::boot`.
///
/// The default is **pass-through**: the gate is disabled, proxies keep
/// their original FIFO service loops, no request is ever shed, and no
/// credit windows are imposed — existing tests and figures are unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QosConfig {
    /// Master switch; `false` keeps the original FIFO service loops.
    pub enabled: bool,
    /// DWRR quantum in bytes credited per weight unit per round.
    pub quantum_bytes: u64,
    /// Total queued requests across a gate's flows that marks overload.
    pub overload_threshold: usize,
    /// Per-class settings, indexed by [`QosClass::index`].
    pub classes: [ClassConfig; 3],
    /// In-flight request window per data-plane stub; 0 = no credit gating.
    pub credit_window: u32,
}

impl Default for QosConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            quantum_bytes: 64 * 1024,
            overload_threshold: usize::MAX,
            classes: [
                ClassConfig::pass_through(8),
                ClassConfig::pass_through(4),
                ClassConfig::pass_through(1),
            ],
            credit_window: 0,
        }
    }
}

impl QosConfig {
    /// An opinionated enabled profile used by experiments and tests:
    /// 8:4:1 weights, bounded queues, a 2 ms best-effort deadline, and
    /// best-effort shedding under overload.
    pub fn enforcing() -> Self {
        let base = ClassConfig {
            weight: 4,
            ops_per_sec: 0,
            bytes_per_sec: 0,
            burst_ops: 0,
            burst_bytes: 0,
            queue_cap: 256,
            deadline_us: 0,
            sheddable: false,
        };
        Self {
            enabled: true,
            quantum_bytes: 64 * 1024,
            overload_threshold: 512,
            classes: [
                ClassConfig {
                    weight: 8,
                    queue_cap: 256,
                    ..base
                },
                ClassConfig { weight: 4, ..base },
                ClassConfig {
                    weight: 1,
                    queue_cap: 128,
                    deadline_us: 2_000,
                    sheddable: true,
                    ..base
                },
            ],
            credit_window: 64,
        }
    }

    /// The canned multi-tenant profile: [`QosConfig::enforcing`] with a
    /// tighter per-stub credit window and smaller queues, sized so that a
    /// handful of tenants sharing one proxy hit per-tenant flow
    /// accounting (the `"name#t<N>"` keying) instead of drowning each
    /// other in a deep shared queue. Best-effort keeps its 2 ms deadline
    /// and stays the only sheddable class, so one tenant's bulk traffic
    /// is what gives way under overload.
    pub fn multi_tenant() -> Self {
        let mut cfg = Self::enforcing();
        cfg.credit_window = 32;
        cfg.overload_threshold = 256;
        cfg.classes[QosClass::High.index()].queue_cap = 128;
        cfg.classes[QosClass::Normal.index()].queue_cap = 128;
        cfg.classes[QosClass::BestEffort.index()].queue_cap = 64;
        cfg
    }

    /// Per-class config lookup.
    pub fn class(&self, c: QosClass) -> &ClassConfig {
        &self.classes[c.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_pass_through() {
        let cfg = QosConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.credit_window, 0);
        for c in QosClass::ALL {
            let cc = cfg.class(c);
            assert_eq!(cc.ops_per_sec, 0);
            assert_eq!(cc.bytes_per_sec, 0);
            assert_eq!(cc.queue_cap, usize::MAX);
            assert!(!cc.sheddable);
        }
    }

    #[test]
    fn enforcing_sheds_best_effort_only() {
        let cfg = QosConfig::enforcing();
        assert!(cfg.enabled);
        assert!(!cfg.class(QosClass::High).sheddable);
        assert!(!cfg.class(QosClass::Normal).sheddable);
        assert!(cfg.class(QosClass::BestEffort).sheddable);
    }

    #[test]
    fn multi_tenant_tightens_enforcing() {
        let cfg = QosConfig::multi_tenant();
        let base = QosConfig::enforcing();
        assert!(cfg.enabled);
        assert!(cfg.credit_window < base.credit_window);
        assert!(cfg.overload_threshold < base.overload_threshold);
        for c in QosClass::ALL {
            assert!(cfg.class(c).queue_cap < base.class(c).queue_cap);
            assert_eq!(cfg.class(c).weight, base.class(c).weight);
            assert_eq!(cfg.class(c).sheddable, base.class(c).sheddable);
        }
        assert_eq!(cfg.class(QosClass::BestEffort).deadline_us, 2_000);
    }
}
