//! QoS accounting ledger, exposed alongside the existing proxy stats.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use solros_simkit::stats::{Histogram, Summary};
use solros_simkit::time::SimTime;

/// Distribution shards per flow. Each recording thread hashes to one
/// shard, so engine workers on different threads never contend on the
/// same histogram lock; readers merge all shards into one distribution.
const STAT_SHARDS: usize = 8;

/// Returns this thread's distribution shard, assigned round-robin on
/// first use so a proxy's worker pool spreads evenly across shards.
fn stat_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STAT_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Per-flow counters and distributions.
///
/// Counters are atomics so proxies can bump them from their service loop
/// while experiment harnesses read a consistent-enough snapshot. The
/// distributions are plain `simkit` values, so they sit behind locks —
/// but sharded per recording thread ([`STAT_SHARDS`]): the per-op path
/// takes an uncontended lock, and only snapshot readers pay the merge.
#[derive(Default)]
pub struct FlowStats {
    submitted: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    dispatched: AtomicU64,
    dispatched_bytes: AtomicU64,
    bypass_bytes: AtomicU64,
    wait: [Mutex<Histogram>; STAT_SHARDS],
    depth: [Mutex<Summary>; STAT_SHARDS],
}

impl FlowStats {
    fn merged_wait(&self) -> Histogram {
        let mut out = Histogram::default();
        for shard in &self.wait {
            out.merge(&shard.lock().unwrap());
        }
        out
    }

    fn merged_depth(&self) -> Summary {
        let mut out = Summary::default();
        for shard in &self.depth {
            out.merge(&shard.lock().unwrap());
        }
        out
    }
}

/// A point-in-time copy of one flow's ledger.
#[derive(Clone)]
pub struct FlowSnapshot {
    /// Flow name (e.g. `"mic0/high"`).
    pub name: String,
    /// Requests offered to the gate.
    pub submitted: u64,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests shed (at submit or at dispatch).
    pub shed: u64,
    /// Requests handed to the proxy handler.
    pub dispatched: u64,
    /// Payload bytes across dispatched requests.
    pub dispatched_bytes: u64,
    /// Bytes moved by the flow's tenant *around* the gate — leased P2P
    /// I/O that never queued but is still charged to the ledger so
    /// bypass traffic cannot evade budgets.
    pub bypass_bytes: u64,
    /// Queue wait time distribution of dispatched requests.
    pub wait: Histogram,
    /// Queue depth observed at each submit.
    pub depth: Summary,
}

/// Ledger covering every flow of one QoS gate.
pub struct QosStats {
    names: Vec<String>,
    flows: Vec<FlowStats>,
}

impl QosStats {
    /// Creates a ledger for the given flow names.
    pub fn new(names: Vec<String>) -> Self {
        let flows = names.iter().map(|_| FlowStats::default()).collect();
        Self { names, flows }
    }

    /// Number of flows tracked.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    pub(crate) fn on_submit(&self, flow: usize, depth_after: usize) {
        let f = &self.flows[flow];
        f.submitted.fetch_add(1, Ordering::Relaxed);
        f.admitted.fetch_add(1, Ordering::Relaxed);
        f.depth[stat_shard()]
            .lock()
            .unwrap()
            .record(depth_after as f64);
    }

    pub(crate) fn on_shed(&self, flow: usize, was_admitted: bool) {
        let f = &self.flows[flow];
        if !was_admitted {
            f.submitted.fetch_add(1, Ordering::Relaxed);
        } else {
            // Deadline sheds leave the admitted count alone but move the
            // request from the queue to the shed column.
            f.admitted.fetch_sub(1, Ordering::Relaxed);
        }
        f.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_dispatch(&self, flow: usize, bytes: u64, wait_ns: u64) {
        let f = &self.flows[flow];
        f.dispatched.fetch_add(1, Ordering::Relaxed);
        f.dispatched_bytes.fetch_add(bytes, Ordering::Relaxed);
        f.wait[stat_shard()]
            .lock()
            .unwrap()
            .record(SimTime::from_ns(wait_ns));
    }

    /// Charges `bytes` of gate-bypassing (leased P2P) traffic to `flow`.
    /// Unlike the other hooks this one is public: the charge originates
    /// on the data plane, outside the scheduler.
    pub fn on_bypass(&self, flow: usize, bytes: u64) {
        self.flows[flow]
            .bypass_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Snapshot of one flow's ledger.
    pub fn flow(&self, flow: usize) -> FlowSnapshot {
        let f = &self.flows[flow];
        FlowSnapshot {
            name: self.names[flow].clone(),
            submitted: f.submitted.load(Ordering::Relaxed),
            admitted: f.admitted.load(Ordering::Relaxed),
            shed: f.shed.load(Ordering::Relaxed),
            dispatched: f.dispatched.load(Ordering::Relaxed),
            dispatched_bytes: f.dispatched_bytes.load(Ordering::Relaxed),
            bypass_bytes: f.bypass_bytes.load(Ordering::Relaxed),
            wait: f.merged_wait(),
            depth: f.merged_depth(),
        }
    }

    /// Snapshots for every flow, in registration order.
    pub fn snapshot(&self) -> Vec<FlowSnapshot> {
        (0..self.flows.len()).map(|i| self.flow(i)).collect()
    }

    /// Total requests shed across all flows.
    pub fn total_shed(&self) -> u64 {
        self.flows
            .iter()
            .map(|f| f.shed.load(Ordering::Relaxed))
            .sum()
    }
}

impl FlowSnapshot {
    /// Accounting invariant: everything offered was either admitted or
    /// shed; nothing disappears silently.
    ///
    /// `admitted` here counts requests still credited to the queue/handler
    /// path (deadline sheds are re-classified from admitted to shed), so
    /// `admitted + shed == submitted` must hold at quiescence.
    pub fn accounted(&self) -> bool {
        self.admitted + self.shed == self.submitted
    }
}
