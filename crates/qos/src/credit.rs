//! Credit-based backpressure for data-plane stubs.
//!
//! A stub may have at most `window` RPCs in flight. The proxy advertises
//! a fresh window on every reply via the frame header's credit byte
//! (derived from its queue headroom, always ≥ 1), so the window tracks
//! congestion without any extra control messages: a flooded proxy shrinks
//! the stub's window toward 1, a recovered proxy grows it back.

use std::sync::{Condvar, Mutex};

struct State {
    in_flight: u32,
    window: u32,
}

/// In-flight RPC limiter shared by all caller threads of one stub.
pub struct CreditPool {
    state: Mutex<State>,
    freed: Condvar,
}

impl CreditPool {
    /// Creates a pool with an initial window (must be ≥ 1).
    pub fn new(window: u32) -> Self {
        Self {
            state: Mutex::new(State {
                in_flight: 0,
                window: window.max(1),
            }),
            freed: Condvar::new(),
        }
    }

    /// Blocks until an in-flight slot is free, then claims it.
    ///
    /// Spins briefly for the common uncontended case, then parks on a
    /// condvar; there is no unbounded busy-wait.
    pub fn acquire(&self) {
        for _ in 0..64 {
            if self.try_acquire() {
                return;
            }
            std::hint::spin_loop();
        }
        let mut st = self.state.lock().unwrap();
        while st.in_flight >= st.window {
            st = self.freed.wait(st).unwrap();
        }
        st.in_flight += 1;
    }

    /// Claims a slot if one is free.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.in_flight < st.window {
            st.in_flight += 1;
            true
        } else {
            false
        }
    }

    /// Releases a slot when its reply arrives, applying the window the
    /// proxy piggybacked on that reply (0 = sender not QoS-aware, keep
    /// the current window).
    pub fn complete(&self, advertised_window: u8) {
        let mut st = self.state.lock().unwrap();
        st.in_flight = st.in_flight.saturating_sub(1);
        if advertised_window > 0 {
            st.window = advertised_window as u32;
        }
        drop(st);
        self.freed.notify_all();
    }

    /// Current (in_flight, window) pair, for tests and introspection.
    pub fn levels(&self) -> (u32, u32) {
        let st = self.state.lock().unwrap();
        (st.in_flight, st.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn window_limits_in_flight() {
        let p = CreditPool::new(2);
        assert!(p.try_acquire());
        assert!(p.try_acquire());
        assert!(!p.try_acquire());
        p.complete(0);
        assert!(p.try_acquire());
    }

    #[test]
    fn reply_resizes_window() {
        let p = CreditPool::new(8);
        p.acquire();
        p.complete(2);
        assert_eq!(p.levels(), (0, 2));
        p.acquire();
        p.acquire();
        assert!(!p.try_acquire());
        // Recovery: a later reply re-opens the window.
        p.complete(200);
        assert_eq!(p.levels().1, 200);
    }

    #[test]
    fn blocked_acquire_wakes_on_complete() {
        let p = Arc::new(CreditPool::new(1));
        p.acquire();
        let p2 = Arc::clone(&p);
        let t = std::thread::spawn(move || {
            p2.acquire();
            p2.complete(0);
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        p.complete(0);
        t.join().unwrap();
        assert_eq!(p.levels().0, 0);
    }
}
