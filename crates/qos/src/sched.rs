//! Deficit-weighted round-robin gate with shedding and deadlines.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::bucket::TokenBucket;
use crate::config::{ClassConfig, QosClass, QosConfig};
use crate::stats::QosStats;

/// Static description of one scheduled flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Name used in stats and reports (e.g. `"mic0/high"`).
    pub name: String,
    /// Priority class this flow belongs to.
    pub class: QosClass,
    /// DWRR weight; bytes served converge to the weight ratio.
    pub weight: u32,
    /// Ops/s admission rate; 0 = unlimited.
    pub ops_per_sec: u64,
    /// Bytes/s admission rate; 0 = unlimited.
    pub bytes_per_sec: u64,
    /// Ops burst capacity.
    pub burst_ops: u64,
    /// Bytes burst capacity.
    pub burst_bytes: u64,
    /// Queue slots before submissions are shed with `QueueFull`.
    pub queue_cap: usize,
    /// Queued requests older than this are shed at dispatch; 0 = none.
    pub deadline_ns: u64,
    /// Shed at submit while the gate is overloaded.
    pub sheddable: bool,
    /// Tenant this flow serves. Tenant 0 is the default tenant: flows
    /// built without an explicit tenant carry 0 and behave exactly as
    /// before tenants existed. A tenant variant of a flow named `N` is
    /// named `"N#t<tenant>"` by convention, which is how
    /// [`DwrrScheduler::flow_for_tenant`] finds it.
    pub tenant: u8,
}

impl FlowSpec {
    /// Builds a spec from a per-class config. A trailing `#t<N>` on the
    /// name marks the flow as serving tenant `N` (the keying convention
    /// for per-tenant quotas); otherwise the flow serves tenant 0.
    pub fn from_class(name: impl Into<String>, class: QosClass, cc: &ClassConfig) -> Self {
        let name = name.into();
        let tenant = name
            .rsplit_once("#t")
            .and_then(|(_, t)| t.parse::<u8>().ok())
            .unwrap_or(0);
        Self {
            name,
            class,
            tenant,
            weight: cc.weight.max(1),
            ops_per_sec: cc.ops_per_sec,
            bytes_per_sec: cc.bytes_per_sec,
            burst_ops: cc.burst_ops,
            burst_bytes: cc.burst_bytes,
            queue_cap: cc.queue_cap,
            deadline_ns: cc.deadline_us.saturating_mul(1_000),
            sheddable: cc.sheddable,
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The flow's queue was at capacity.
    QueueFull,
    /// The gate was overloaded and the flow is sheddable.
    Overload,
    /// The request sat queued past its deadline.
    DeadlineExpired,
}

/// Outcome of offering a request to the gate.
#[derive(Debug)]
pub enum Verdict<T> {
    /// Queued; it will come back out of [`DwrrScheduler::dispatch`].
    Admitted,
    /// Refused before queueing; the caller must surface an error.
    Shed {
        /// The rejected payload, returned so the caller can reply.
        item: T,
        /// Why it was refused.
        reason: ShedReason,
    },
}

/// Outcome of asking the gate for the next request to serve.
#[derive(Debug)]
pub enum Dispatch<T> {
    /// Serve this request now.
    Run {
        /// Flow the request came from.
        flow: usize,
        /// The queued payload.
        item: T,
        /// Time the request spent queued, in nanoseconds.
        wait_ns: u64,
    },
    /// This request exceeded its deadline; reply with an overload error.
    Shed {
        /// Flow the request came from.
        flow: usize,
        /// The expired payload.
        item: T,
        /// Always [`ShedReason::DeadlineExpired`] today.
        reason: ShedReason,
    },
    /// Nothing is eligible: queues are empty or rate limits are in force.
    Idle,
}

struct Queued<T> {
    bytes: u64,
    submit_ns: u64,
    item: T,
}

struct Flow<T> {
    spec: FlowSpec,
    ops: TokenBucket,
    bytes: TokenBucket,
    queue: VecDeque<Queued<T>>,
    deficit: u64,
    /// Weights inherited from waiters via [`DwrrScheduler::promote_flow`],
    /// newest last. Non-empty = promoted.
    inherited: Vec<u32>,
}

impl<T> Flow<T> {
    /// DWRR weight in force: the spec weight, or the strongest inherited
    /// weight while promoted.
    fn weight(&self) -> u32 {
        self.inherited
            .iter()
            .copied()
            .fold(self.spec.weight, u32::max)
    }

    fn promoted(&self) -> bool {
        !self.inherited.is_empty()
    }
}

/// Deficit-weighted round-robin scheduler over a fixed set of flows.
///
/// `T` is the opaque queued payload (a decoded request plus reply
/// plumbing, in the proxies). The clock is an explicit `now_ns`
/// parameter so real and virtual time both work.
pub struct DwrrScheduler<T> {
    flows: Vec<Flow<T>>,
    cursor: usize,
    /// Deficit remains valid for the flow at `cursor` only while it keeps
    /// its turn; other flows' deficits are reset when they yield.
    fresh_turn: bool,
    quantum_bytes: u64,
    overload_threshold: usize,
    queued_total: usize,
    /// `(tenant, base flow) → tenant-variant flow` index built once at
    /// construction, so per-admission tenant keying is one hash probe —
    /// no name formatting, no scan.
    tenant_lut: HashMap<(u8, usize), usize>,
    stats: Arc<QosStats>,
}

impl<T> DwrrScheduler<T> {
    /// Builds a scheduler over `specs`, in priority order.
    pub fn new(specs: Vec<FlowSpec>, quantum_bytes: u64, overload_threshold: usize) -> Self {
        assert!(!specs.is_empty(), "scheduler needs at least one flow");
        let stats = Arc::new(QosStats::new(
            specs.iter().map(|s| s.name.clone()).collect(),
        ));
        let flows: Vec<Flow<T>> = specs
            .into_iter()
            .map(|spec| Flow {
                ops: TokenBucket::new(spec.ops_per_sec, spec.burst_ops.max(1)),
                bytes: TokenBucket::new(spec.bytes_per_sec, spec.burst_bytes.max(1)),
                queue: VecDeque::new(),
                deficit: 0,
                inherited: Vec::new(),
                spec,
            })
            .collect();
        // Index tenant-variant flows (`"name#t<N>"`) by their base flow
        // once, up front; admission then keys tenants without allocating.
        let mut tenant_lut = HashMap::new();
        for (i, f) in flows.iter().enumerate() {
            if f.spec.tenant == 0 {
                continue;
            }
            let Some((base_name, _)) = f.spec.name.rsplit_once("#t") else {
                continue;
            };
            if let Some(base) = flows.iter().position(|b| b.spec.name == base_name) {
                tenant_lut.insert((f.spec.tenant, base), i);
            }
        }
        Self {
            flows,
            cursor: 0,
            fresh_turn: true,
            quantum_bytes: quantum_bytes.max(1),
            overload_threshold,
            queued_total: 0,
            tenant_lut,
            stats,
        }
    }

    /// Builds one flow per priority class from a [`QosConfig`].
    ///
    /// Flow indices equal [`QosClass::index`], so callers can submit by
    /// class without a lookup table.
    pub fn per_class(prefix: &str, cfg: &QosConfig) -> Self {
        let specs = QosClass::ALL
            .iter()
            .map(|&c| FlowSpec::from_class(format!("{prefix}/{}", c.label()), c, cfg.class(c)))
            .collect();
        Self::new(specs, cfg.quantum_bytes, cfg.overload_threshold)
    }

    /// The shared stats ledger for this gate.
    pub fn stats(&self) -> Arc<QosStats> {
        Arc::clone(&self.stats)
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Total requests queued across all flows.
    pub fn queued_total(&self) -> usize {
        self.queued_total
    }

    /// Requests queued in one flow.
    pub fn queued(&self, flow: usize) -> usize {
        self.flows[flow].queue.len()
    }

    /// True while the gate considers itself overloaded.
    pub fn overloaded(&self) -> bool {
        self.queued_total >= self.overload_threshold
    }

    /// Resolves the flow serving `tenant` with the same role as
    /// `fallback` (by the `"name#t<tenant>"` naming convention), falling
    /// back to `fallback` itself when no such flow is configured — so
    /// tenant ids flow through keying today while configs without tenant
    /// flows behave byte-identically.
    pub fn flow_for_tenant(&self, tenant: u8, fallback: usize) -> usize {
        if self.flows[fallback].spec.tenant == tenant {
            return fallback;
        }
        self.tenant_lut
            .get(&(tenant, fallback))
            .copied()
            .unwrap_or(fallback)
    }

    /// Credit window to advertise to the stub feeding `flow`:
    /// remaining queue headroom, clamped to the `1..=255` the frame
    /// header's credit byte can carry. Never zero, so a stub can always
    /// make progress and re-learn the window from its next reply.
    pub fn credit(&self, flow: usize) -> u8 {
        let f = &self.flows[flow];
        let free = f.spec.queue_cap.saturating_sub(f.queue.len());
        free.clamp(1, 255) as u8
    }

    /// Priority inheritance (the waiter side of a lock-holder protocol):
    /// `flow` inherits `waiter`'s current effective weight — and, while
    /// promoted, immunity from overload shedding — so work queued behind
    /// a resource the waiter needs drains at the waiter's priority.
    ///
    /// Promotions nest: each call pushes one inherited weight and the
    /// strongest one wins; each [`DwrrScheduler::demote_flow`] releases
    /// the most recent. A flow with an empty promotion stack behaves
    /// exactly as its spec describes (restore-on-release).
    pub fn promote_flow(&mut self, flow: usize, waiter: usize) {
        let w = self.effective_weight(waiter);
        self.flows[flow].inherited.push(w);
    }

    /// Releases the most recent promotion of `flow`; a no-op when the
    /// flow is not promoted.
    pub fn demote_flow(&mut self, flow: usize) {
        self.flows[flow].inherited.pop();
    }

    /// True while `flow` carries at least one inherited weight.
    pub fn is_promoted(&self, flow: usize) -> bool {
        self.flows[flow].promoted()
    }

    /// The DWRR weight currently in force for `flow` (spec weight, or the
    /// strongest inherited weight while promoted).
    pub fn effective_weight(&self, flow: usize) -> u32 {
        self.flows[flow].weight()
    }

    /// Offers a request of `bytes` payload to `flow` at time `now_ns`.
    pub fn submit(&mut self, flow: usize, bytes: u64, now_ns: u64, item: T) -> Verdict<T> {
        let overloaded = self.overloaded();
        let f = &mut self.flows[flow];
        if overloaded && f.spec.sheddable && !f.promoted() {
            self.stats.on_shed(flow, false);
            return Verdict::Shed {
                item,
                reason: ShedReason::Overload,
            };
        }
        if f.queue.len() >= f.spec.queue_cap {
            self.stats.on_shed(flow, false);
            return Verdict::Shed {
                item,
                reason: ShedReason::QueueFull,
            };
        }
        if f.queue.is_empty() {
            // A flow re-entering after its queue drained must start its
            // next turn from zero banked deficit. Dispatch already resets
            // idle flows it visits, but a gate that went fully idle never
            // visits anyone — without this, residual deficit from the
            // flow's last burst would distort its first burst back.
            f.deficit = 0;
        }
        f.queue.push_back(Queued {
            bytes,
            submit_ns: now_ns,
            item,
        });
        self.queued_total += 1;
        let depth = f.queue.len();
        self.stats.on_submit(flow, depth);
        Verdict::Admitted
    }

    /// Picks the next request to serve (or shed) at time `now_ns`.
    ///
    /// DWRR: each flow's turn credits `weight × quantum` bytes of
    /// deficit; the flow keeps dispatching until its head no longer fits
    /// the deficit or a token bucket runs dry, then yields the turn with
    /// its deficit reset (a flow that cannot send banks nothing, so an
    /// idle flow cannot later burst past its share).
    pub fn dispatch(&mut self, now_ns: u64) -> Dispatch<T> {
        if self.queued_total == 0 {
            return Dispatch::Idle;
        }
        let n = self.flows.len();
        // Visit each flow at most once per call; `fresh_turn` carries the
        // current flow's remaining deficit across calls.
        for _ in 0..n {
            let flow_idx = self.cursor;
            let f = &mut self.flows[flow_idx];
            if f.queue.is_empty() {
                f.deficit = 0;
                self.advance();
                continue;
            }
            if self.fresh_turn {
                f.deficit = f
                    .deficit
                    .saturating_add(f.weight() as u64 * self.quantum_bytes);
                self.fresh_turn = false;
            }
            // Deadline check happens before cost accounting: expired work
            // is shed, not served, and consumes no deficit or tokens.
            let head = f.queue.front().expect("non-empty");
            if f.spec.deadline_ns > 0 && now_ns.saturating_sub(head.submit_ns) > f.spec.deadline_ns
            {
                let q = f.queue.pop_front().expect("non-empty");
                self.queued_total -= 1;
                self.stats.on_shed(flow_idx, true);
                return Dispatch::Shed {
                    flow: flow_idx,
                    item: q.item,
                    reason: ShedReason::DeadlineExpired,
                };
            }
            let cost = head.bytes.max(1);
            let within_deficit = f.deficit >= cost;
            if within_deficit && f.ops.check(1, now_ns) && f.bytes.check(cost, now_ns) {
                f.ops.try_take(1, now_ns);
                f.bytes.try_take(cost, now_ns);
                f.deficit -= cost;
                let q = f.queue.pop_front().expect("non-empty");
                self.queued_total -= 1;
                let wait_ns = now_ns.saturating_sub(q.submit_ns);
                self.stats.on_dispatch(flow_idx, q.bytes, wait_ns);
                return Dispatch::Run {
                    flow: flow_idx,
                    item: q.item,
                    wait_ns,
                };
            }
            if within_deficit {
                // Rate-limited: yield the turn but keep no banked deficit
                // beyond one quantum's worth of headroom.
                f.deficit = f.deficit.min(f.weight() as u64 * self.quantum_bytes);
            } else {
                // Deficit exhausted for this turn; it carries over so a
                // large head request eventually accumulates enough.
            }
            self.advance();
        }
        Dispatch::Idle
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.flows.len();
        self.fresh_turn = true;
    }

    #[cfg(test)]
    fn deficit(&self, flow: usize) -> u64 {
        self.flows[flow].deficit
    }

    /// Drains every queued request, in flow order, for shutdown paths.
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::new();
        for (i, f) in self.flows.iter_mut().enumerate() {
            while let Some(q) = f.queue.pop_front() {
                self.queued_total -= 1;
                self.stats.on_shed(i, true);
                out.push((i, q.item));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, class: QosClass, weight: u32) -> FlowSpec {
        FlowSpec {
            name: name.into(),
            class,
            weight,
            ops_per_sec: 0,
            bytes_per_sec: 0,
            burst_ops: 0,
            burst_bytes: 0,
            queue_cap: 1024,
            deadline_ns: 0,
            sheddable: false,
            tenant: 0,
        }
    }

    #[test]
    fn tenant_keying_resolves_and_falls_back() {
        let mut t1 = spec("fs0/high#t1", QosClass::High, 1);
        t1.tenant = 1;
        let s: DwrrScheduler<u32> = DwrrScheduler::new(
            vec![spec("fs0/high", QosClass::High, 1), t1],
            1024,
            usize::MAX,
        );
        // Tenant 0 keeps its flow; tenant 1 resolves to its variant;
        // an unconfigured tenant falls back to the default flow.
        assert_eq!(s.flow_for_tenant(0, 0), 0);
        assert_eq!(s.flow_for_tenant(1, 0), 1);
        assert_eq!(s.flow_for_tenant(7, 0), 0);
    }

    #[test]
    fn weights_shape_throughput() {
        let mut s: DwrrScheduler<u32> = DwrrScheduler::new(
            vec![spec("a", QosClass::High, 3), spec("b", QosClass::Normal, 1)],
            1024,
            usize::MAX,
        );
        for i in 0..400 {
            assert!(matches!(s.submit(0, 1024, 0, i), Verdict::Admitted));
            assert!(matches!(s.submit(1, 1024, 0, i), Verdict::Admitted));
        }
        let mut served = [0u32; 2];
        for _ in 0..400 {
            match s.dispatch(0) {
                Dispatch::Run { flow, .. } => served[flow] += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        // 3:1 weights → the first flow gets ~3x the service.
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((2.5..=3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn queue_cap_sheds_with_reason() {
        let mut sp = spec("a", QosClass::BestEffort, 1);
        sp.queue_cap = 2;
        let mut s: DwrrScheduler<u32> = DwrrScheduler::new(vec![sp], 1024, usize::MAX);
        assert!(matches!(s.submit(0, 1, 0, 1), Verdict::Admitted));
        assert!(matches!(s.submit(0, 1, 0, 2), Verdict::Admitted));
        match s.submit(0, 1, 0, 3) {
            Verdict::Shed { item, reason } => {
                assert_eq!(item, 3);
                assert_eq!(reason, ShedReason::QueueFull);
            }
            Verdict::Admitted => panic!("should shed"),
        }
        let snap = s.stats().flow(0);
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.shed, 1);
        assert!(snap.accounted());
    }

    #[test]
    fn overload_sheds_best_effort_not_high() {
        let mut be = spec("be", QosClass::BestEffort, 1);
        be.sheddable = true;
        let hi = spec("hi", QosClass::High, 8);
        let mut s: DwrrScheduler<u32> = DwrrScheduler::new(vec![hi, be], 1024, 4);
        for i in 0..4 {
            assert!(matches!(s.submit(0, 1, 0, i), Verdict::Admitted));
        }
        assert!(s.overloaded());
        // Best-effort refused before queueing; high still admitted.
        assert!(matches!(
            s.submit(1, 1, 0, 99),
            Verdict::Shed {
                reason: ShedReason::Overload,
                ..
            }
        ));
        assert!(matches!(s.submit(0, 1, 0, 5), Verdict::Admitted));
    }

    #[test]
    fn deadline_expiry_sheds_at_dispatch() {
        let mut sp = spec("a", QosClass::BestEffort, 1);
        sp.deadline_ns = 1_000;
        let mut s: DwrrScheduler<u32> = DwrrScheduler::new(vec![sp], 1024, usize::MAX);
        assert!(matches!(s.submit(0, 1, 0, 7), Verdict::Admitted));
        match s.dispatch(5_000) {
            Dispatch::Shed { item, reason, .. } => {
                assert_eq!(item, 7);
                assert_eq!(reason, ShedReason::DeadlineExpired);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.stats().flow(0).accounted());
    }

    #[test]
    fn rate_limit_defers_but_does_not_drop() {
        let mut sp = spec("a", QosClass::Normal, 1);
        sp.ops_per_sec = 1_000;
        sp.burst_ops = 1;
        let mut s: DwrrScheduler<u32> = DwrrScheduler::new(vec![sp], 1024, usize::MAX);
        assert!(matches!(s.submit(0, 1, 0, 1), Verdict::Admitted));
        assert!(matches!(s.submit(0, 1, 0, 2), Verdict::Admitted));
        assert!(matches!(s.dispatch(0), Dispatch::Run { item: 1, .. }));
        // Bucket empty: idle, not shed.
        assert!(matches!(s.dispatch(1), Dispatch::Idle));
        // One ms later a token is back.
        assert!(matches!(
            s.dispatch(1_000_000),
            Dispatch::Run { item: 2, .. }
        ));
    }

    #[test]
    fn promotion_shifts_dispatch_shares() {
        // Weight 1 vs 3: unpromoted, flow 0 gets ~1/4 of the service.
        let mut s: DwrrScheduler<u32> = DwrrScheduler::new(
            vec![
                spec("be", QosClass::BestEffort, 1),
                spec("norm", QosClass::Normal, 3),
                spec("hi", QosClass::High, 12),
            ],
            1024,
            usize::MAX,
        );
        for i in 0..400 {
            assert!(matches!(s.submit(0, 1024, 0, i), Verdict::Admitted));
            assert!(matches!(s.submit(1, 1024, 0, i), Verdict::Admitted));
        }
        // Flow 0 inherits the high flow's weight (12) while it waits.
        s.promote_flow(0, 2);
        assert!(s.is_promoted(0));
        assert_eq!(s.effective_weight(0), 12);
        let mut served = [0u32; 2];
        for _ in 0..400 {
            match s.dispatch(0) {
                Dispatch::Run { flow, .. } => served[flow] += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        // 12:3 in force → the promoted best-effort flow now dominates.
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((3.0..=5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn nested_waiters_keep_strongest_until_fully_demoted() {
        let mut s: DwrrScheduler<u32> = DwrrScheduler::new(
            vec![
                spec("be", QosClass::BestEffort, 1),
                spec("norm", QosClass::Normal, 4),
                spec("hi", QosClass::High, 16),
            ],
            1024,
            usize::MAX,
        );
        // Two waiters pile onto the same holder: normal first, then high.
        s.promote_flow(0, 1);
        s.promote_flow(0, 2);
        assert_eq!(s.effective_weight(0), 16);
        // Releasing one waiter keeps the strongest remaining inheritance.
        s.demote_flow(0);
        assert!(s.is_promoted(0));
        assert_eq!(s.effective_weight(0), 4);
        // Promotion chains transitively: a holder promoted by an already
        // promoted flow inherits the effective (not spec) weight.
        s.promote_flow(1, 0);
        assert_eq!(s.effective_weight(1), 4);
        s.demote_flow(1);
        s.demote_flow(0);
        assert!(!s.is_promoted(0));
        assert_eq!(s.effective_weight(0), 1);
    }

    #[test]
    fn demotion_restores_spec_weight_and_shedding() {
        let mut be = spec("be", QosClass::BestEffort, 1);
        be.sheddable = true;
        let hi = spec("hi", QosClass::High, 8);
        let mut s: DwrrScheduler<u32> = DwrrScheduler::new(vec![hi, be], 1024, 4);
        for i in 0..4 {
            assert!(matches!(s.submit(0, 1, 0, i), Verdict::Admitted));
        }
        assert!(s.overloaded());
        // Promoted flows ride out overload: their backlog is the very
        // thing a high-class waiter is blocked on.
        s.promote_flow(1, 0);
        assert!(matches!(s.submit(1, 1, 0, 50), Verdict::Admitted));
        // Restore-on-release: spec weight and sheddability come back.
        s.demote_flow(1);
        assert!(!s.is_promoted(1));
        assert_eq!(s.effective_weight(1), 1);
        assert!(matches!(
            s.submit(1, 1, 0, 51),
            Verdict::Shed {
                reason: ShedReason::Overload,
                ..
            }
        ));
    }

    #[test]
    fn idle_flow_reenters_with_reset_deficit() {
        let mut s: DwrrScheduler<u32> =
            DwrrScheduler::new(vec![spec("a", QosClass::Normal, 4)], 1024, usize::MAX);
        assert!(matches!(s.submit(0, 64, 0, 1), Verdict::Admitted));
        assert!(matches!(s.dispatch(0), Dispatch::Run { .. }));
        assert!(s.deficit(0) > 0, "residual deficit banked after the run");
        // The gate is now fully idle: dispatch never visits the flow, so
        // only submit can clear the stale carryover.
        assert!(matches!(s.dispatch(0), Dispatch::Idle));
        assert!(matches!(s.submit(0, 64, 10, 2), Verdict::Admitted));
        assert_eq!(s.deficit(0), 0, "stale deficit must not survive idling");
    }

    #[test]
    fn credit_reflects_headroom() {
        let mut sp = spec("a", QosClass::Normal, 1);
        sp.queue_cap = 4;
        let mut s: DwrrScheduler<u32> = DwrrScheduler::new(vec![sp], 1024, usize::MAX);
        assert_eq!(s.credit(0), 4);
        s.submit(0, 1, 0, 1);
        s.submit(0, 1, 0, 2);
        assert_eq!(s.credit(0), 2);
        s.submit(0, 1, 0, 3);
        s.submit(0, 1, 0, 4);
        // Full queue still advertises 1 so the stub can always recover.
        assert_eq!(s.credit(0), 1);
    }
}
