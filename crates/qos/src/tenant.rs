//! Replicated per-tenant usage ledger.
//!
//! Budget accounting used to live in one shared structure that every
//! proxy locked on the admission path. With the control plane sharded
//! per NUMA domain, charges instead flow through an NRK-style operation
//! log ([`solros_oplog::OpLog`]): any engine shard appends
//! [`TenantOp::Charge`] records (batched per admission burst), and each
//! domain — plus the host-side observer — holds a [`TenantLedgerReplica`]
//! that applies the log locally. Reads never cross a socket; the log's
//! exactly-once cursor contract guarantees no charge is double-counted
//! on any replica.
//!
//! The log is configured without a lag bound (`max_lag = u64::MAX`):
//! ledger replicas have no authoritative side-channel to rebuild from,
//! so stragglers hold up trimming instead of being overrun.

use std::sync::{Arc, Mutex};

use solros_oplog::{LogConfig, LogStats, OpLog, ReplicaCursor, SyncOutcome};

/// Tenant id space — ids ride in a `u8` frame header field.
pub const TENANT_SLOTS: usize = 256;

/// Compaction threshold for the ledger log.
const LEDGER_HIGH_WATER: usize = 4096;

/// One replicated ledger mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantOp {
    /// Charge `ops` admitted requests carrying `bytes` payload bytes to
    /// `tenant`'s ledger.
    Charge {
        /// Tenant being charged.
        tenant: u8,
        /// Requests admitted.
        ops: u64,
        /// Payload bytes across those requests.
        bytes: u64,
    },
    /// Replace `tenant`'s byte budget. `None` lifts the cap.
    SetBudget {
        /// Tenant whose budget changes.
        tenant: u8,
        /// New cap on cumulative charged bytes, or `None` for unlimited.
        bytes: Option<u64>,
    },
    /// Return `ops`/`bytes` previously charged to `tenant` — issued by
    /// the shard supervisor when a fenced domain's admitted-but-unserved
    /// requests are settled as `Gone`, so a failed domain never leaks
    /// budget. Saturating: a refund can never drive usage negative.
    Refund {
        /// Tenant being refunded.
        tenant: u8,
        /// Requests refunded.
        ops: u64,
        /// Payload bytes across those requests.
        bytes: u64,
    },
}

/// Point-in-time ledger state of one tenant, as seen by one replica.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Requests charged so far.
    pub ops: u64,
    /// Bytes charged so far.
    pub bytes: u64,
    /// Byte budget, if capped.
    pub budget_bytes: Option<u64>,
}

impl TenantUsage {
    /// Whether charged bytes have met or passed the budget.
    pub fn over_budget(&self) -> bool {
        self.budget_bytes.is_some_and(|cap| self.bytes >= cap)
    }
}

/// The shared ledger log. Cheap to clone across shards via `Arc`.
pub struct TenantLedger {
    log: Arc<OpLog<TenantOp>>,
}

impl TenantLedger {
    /// Creates an empty ledger log.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            log: OpLog::new(LogConfig {
                high_water: LEDGER_HIGH_WATER,
                max_lag: u64::MAX,
            }),
        })
    }

    /// Appends one charge. Engines batch per admission burst, so one
    /// append typically covers many admitted frames.
    pub fn charge(&self, tenant: u8, ops: u64, bytes: u64) {
        if ops == 0 && bytes == 0 {
            return;
        }
        self.log.append(TenantOp::Charge { tenant, ops, bytes });
    }

    /// Sets (or, with `None`, lifts) a tenant's byte budget.
    pub fn set_budget(&self, tenant: u8, bytes: Option<u64>) {
        self.log.append(TenantOp::SetBudget { tenant, bytes });
    }

    /// Appends one refund — the inverse of [`TenantLedger::charge`],
    /// used to reconcile charges for requests a fenced domain admitted
    /// but never served.
    pub fn refund(&self, tenant: u8, ops: u64, bytes: u64) {
        if ops == 0 && bytes == 0 {
            return;
        }
        self.log.append(TenantOp::Refund { tenant, ops, bytes });
    }

    /// Registers a new replica. It starts at the current log tail with an
    /// empty state, so replicas created before the first charge converge
    /// exactly; register observers at assembly time.
    pub fn replica(self: &Arc<Self>) -> TenantLedgerReplica {
        TenantLedgerReplica {
            ledger: Arc::clone(self),
            cursor: Mutex::new(self.log.register()),
            usage: (0..TENANT_SLOTS)
                .map(|_| Mutex::new(TenantUsage::default()))
                .collect(),
        }
    }

    /// Log instrumentation (depth, appends, compactions).
    pub fn log_stats(&self) -> LogStats {
        self.log.stats()
    }
}

/// One domain's local view of the ledger.
pub struct TenantLedgerReplica {
    ledger: Arc<TenantLedger>,
    cursor: Mutex<ReplicaCursor>,
    usage: Vec<Mutex<TenantUsage>>,
}

impl TenantLedgerReplica {
    /// Applies every outstanding log entry. Cheap (one atomic load) when
    /// already at the tail.
    pub fn sync(&self) {
        let mut cursor = self.cursor.lock().unwrap();
        let outcome = self.ledger.log.sync(&mut cursor, |_, op| match *op {
            TenantOp::Charge { tenant, ops, bytes } => {
                let mut u = self.usage[tenant as usize].lock().unwrap();
                u.ops += ops;
                u.bytes += bytes;
            }
            TenantOp::SetBudget { tenant, bytes } => {
                self.usage[tenant as usize].lock().unwrap().budget_bytes = bytes;
            }
            TenantOp::Refund { tenant, ops, bytes } => {
                let mut u = self.usage[tenant as usize].lock().unwrap();
                u.ops = u.ops.saturating_sub(ops);
                u.bytes = u.bytes.saturating_sub(bytes);
            }
        });
        debug_assert!(
            !matches!(outcome, SyncOutcome::Overrun),
            "ledger log is configured without a lag bound"
        );
    }

    /// This replica's view of `tenant`, after syncing to the tail.
    pub fn usage(&self, tenant: u8) -> TenantUsage {
        self.sync();
        *self.usage[tenant as usize].lock().unwrap()
    }

    /// Whether `tenant` is at or past its byte budget, on local state.
    pub fn over_budget(&self, tenant: u8) -> bool {
        self.usage(tenant).over_budget()
    }

    /// Aggregate `(ops, bytes)` charged across all tenants.
    pub fn total(&self) -> (u64, u64) {
        self.sync();
        self.usage.iter().fold((0, 0), |(o, b), u| {
            let u = u.lock().unwrap();
            (o + u.ops, b + u.bytes)
        })
    }

    /// Entries this replica has yet to apply.
    pub fn lag(&self) -> u64 {
        self.ledger.log.lag(&self.cursor.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_replicate_exactly_once_to_every_replica() {
        let ledger = TenantLedger::new();
        let a = ledger.replica();
        let b = ledger.replica();
        ledger.charge(3, 2, 4096);
        ledger.charge(3, 1, 512);
        ledger.charge(7, 5, 0);
        // Repeated syncs must not re-apply entries.
        a.sync();
        a.sync();
        assert_eq!(
            a.usage(3),
            TenantUsage {
                ops: 3,
                bytes: 4608,
                budget_bytes: None
            }
        );
        assert_eq!(a.usage(3), b.usage(3));
        assert_eq!(a.usage(7).ops, 5);
        assert_eq!(a.total(), (8, 4608));
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn budgets_gate_on_cumulative_bytes() {
        let ledger = TenantLedger::new();
        let r = ledger.replica();
        ledger.set_budget(2, Some(1000));
        ledger.charge(2, 1, 999);
        assert!(!r.over_budget(2));
        ledger.charge(2, 1, 1);
        assert!(r.over_budget(2));
        ledger.set_budget(2, None);
        assert!(!r.over_budget(2));
    }

    #[test]
    fn zero_charge_appends_nothing() {
        let ledger = TenantLedger::new();
        ledger.charge(1, 0, 0);
        ledger.refund(1, 0, 0);
        assert_eq!(ledger.log_stats().appends, 0);
    }

    #[test]
    fn refunds_reconcile_on_every_replica_and_saturate() {
        let ledger = TenantLedger::new();
        let a = ledger.replica();
        let b = ledger.replica();
        ledger.charge(4, 3, 3000);
        ledger.refund(4, 1, 1000);
        assert_eq!(a.usage(4).ops, 2);
        assert_eq!(a.usage(4).bytes, 2000);
        assert_eq!(a.usage(4), b.usage(4));
        // Over-refund (e.g. a crash between charge batching and the
        // wreck dump) clamps at zero rather than wrapping.
        ledger.refund(4, 10, 10_000);
        assert_eq!(b.usage(4), TenantUsage::default());
        assert_eq!(a.usage(4), b.usage(4));
    }

    #[test]
    fn late_replica_still_sees_history_retained_by_other_cursors() {
        let ledger = TenantLedger::new();
        let early = ledger.replica();
        for _ in 0..100 {
            ledger.charge(1, 1, 10);
        }
        // A replica registered now starts at the tail: it owns usage
        // going forward, not history.
        let late = ledger.replica();
        ledger.charge(1, 1, 10);
        assert_eq!(early.usage(1).ops, 101);
        assert_eq!(late.usage(1).ops, 1);
        assert_eq!(late.lag(), 0);
    }
}
