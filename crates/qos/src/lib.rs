//! Quality-of-service layer between Solros transport rings and proxies.
//!
//! The Solros control plane multiplexes every co-processor's I/O onto
//! shared host resources (NVMe queues, the host TCP stack, PCIe links).
//! Without admission control, one misbehaving co-processor can flood its
//! rings and collapse tail latency for everyone else. This crate provides
//! the missing layer:
//!
//! * **Per-(co-processor, priority-class) queues** drained by
//!   deficit-weighted round robin ([`DwrrScheduler`]) so configured weights
//!   translate into throughput shares.
//! * **Token-bucket rate limiting** ([`TokenBucket`]) on both ops/s and
//!   bytes/s per flow, following the shaper idiom of
//!   `solros_simkit::resource`.
//! * **Deadline-aware dispatch with overload shedding**: an overload
//!   detector sheds best-effort work *before* it queues, and requests that
//!   outlive their deadline are shed at dispatch. Shedding is never silent —
//!   every shed request surfaces to the caller as an `EAGAIN`-style
//!   `Overloaded` RPC error.
//! * **Credit-based backpressure** ([`CreditPool`]) propagated to
//!   data-plane stubs via window grants piggybacked on RPC replies.
//! * **A stats ledger** ([`QosStats`]) with per-class admitted/shed/queued
//!   counters plus queue-depth and wait-time distributions built on
//!   `solros_simkit::stats`.
//! * **A replicated per-tenant ledger** ([`TenantLedger`]) driven by the
//!   shared operation log, so every control-plane shard charges and
//!   reads tenant budgets from a socket-local replica.
//! * **A host-global tenant→service→flow hierarchy** ([`HostScheduler`] +
//!   per-domain [`HostGate`] shards): tenants are arbitrated against
//!   host-wide budgets rebalanced over the tenant ledger, service shares
//!   split each tenant's credit between FS and TCP, and flow state lives
//!   in hash-indexed, epoch-GC'd tables that stay O(active tenants).
//!
//! All scheduler state is driven by an explicit `now_ns` clock parameter,
//! so the same code runs under the real clock inside proxies and under a
//! virtual clock in deterministic experiments and property tests.

#![warn(missing_docs)]

mod bucket;
mod config;
mod credit;
mod host;
mod sched;
mod stats;
mod tenant;

pub use bucket::TokenBucket;
pub use config::{ClassConfig, QosClass, QosConfig};
pub use credit::CreditPool;
pub use host::{HostConfig, HostGate, HostQosSnapshot, HostScheduler, Service, SERVICE_COUNT};
pub use sched::{Dispatch, DwrrScheduler, FlowSpec, ShedReason, Verdict};
pub use stats::{FlowSnapshot, QosStats};
pub use tenant::{TenantLedger, TenantLedgerReplica, TenantOp, TenantUsage, TENANT_SLOTS};
