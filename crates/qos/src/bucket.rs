//! Token-bucket shaper with an explicit clock.
//!
//! The bucket is the same shaping idiom `solros_simkit::resource::Link`
//! uses for PCIe bandwidth, reformulated for admission control: tokens
//! accumulate at a fixed rate up to a burst ceiling, and a request is
//! admitted only if its full cost is available. Arithmetic is exact
//! (token·nanosecond fixed point in `u128`), so the admission bound
//! `admitted ≤ burst + rate × elapsed` holds precisely — property tests
//! rely on that.

const NS_PER_SEC: u128 = 1_000_000_000;

/// A token bucket refilled at `rate` tokens/second with capacity `burst`.
///
/// A rate of zero means unlimited: every take succeeds and no state is
/// kept. Time is supplied by the caller as nanoseconds from an arbitrary
/// epoch; it must be monotone per bucket (regressions are clamped).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate in tokens per second; 0 = unlimited.
    rate: u64,
    /// Bucket capacity in tokens.
    burst: u64,
    /// Current level in token·nanoseconds (1 token = `NS_PER_SEC` units).
    level: u128,
    /// Clock of the last refill.
    last_ns: u64,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        Self {
            rate: rate_per_sec,
            burst,
            level: burst as u128 * NS_PER_SEC,
            last_ns: 0,
        }
    }

    /// Creates a bucket that admits everything.
    pub fn unlimited() -> Self {
        Self::new(0, 0)
    }

    /// True when the bucket never limits.
    pub fn is_unlimited(&self) -> bool {
        self.rate == 0
    }

    fn refill(&mut self, now_ns: u64) {
        let dt = now_ns.saturating_sub(self.last_ns);
        self.last_ns = self.last_ns.max(now_ns);
        let cap = self.burst as u128 * NS_PER_SEC;
        self.level = (self.level + self.rate as u128 * dt as u128).min(cap);
    }

    /// True if `n` tokens are available at `now_ns`, without consuming.
    pub fn check(&mut self, n: u64, now_ns: u64) -> bool {
        if self.rate == 0 {
            return true;
        }
        self.refill(now_ns);
        self.level >= n as u128 * NS_PER_SEC
    }

    /// Takes `n` tokens if available; returns whether they were taken.
    pub fn try_take(&mut self, n: u64, now_ns: u64) -> bool {
        if self.rate == 0 {
            return true;
        }
        self.refill(now_ns);
        let need = n as u128 * NS_PER_SEC;
        if self.level >= need {
            self.level -= need;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (after refilling to `now_ns`).
    pub fn available(&mut self, now_ns: u64) -> u64 {
        if self.rate == 0 {
            return u64::MAX;
        }
        self.refill(now_ns);
        (self.level / NS_PER_SEC) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(1000, 10);
        assert!(b.try_take(10, 0));
        assert!(!b.try_take(1, 0));
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(1000, 10);
        assert!(b.try_take(10, 0));
        // 1000 tokens/s → 1 token per ms.
        assert!(!b.try_take(1, 999_999));
        assert!(b.try_take(1, 1_000_000));
        assert!(b.try_take(5, 6_000_000));
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut b = TokenBucket::new(1000, 10);
        // After a long idle period only `burst` tokens are available.
        assert_eq!(b.available(3_600_000_000_000), 10);
    }

    #[test]
    fn unlimited_always_admits() {
        let mut b = TokenBucket::unlimited();
        assert!(b.try_take(u64::MAX, 0));
        assert!(b.is_unlimited());
    }

    #[test]
    fn clock_regression_clamped() {
        let mut b = TokenBucket::new(1000, 10);
        assert!(b.try_take(10, 5_000_000));
        // Going back in time neither refills nor panics.
        assert!(!b.try_take(10, 0));
        assert!(b.try_take(5, 10_000_000));
    }
}
