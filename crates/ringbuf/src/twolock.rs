//! The Michael–Scott two-lock queue — the Figure 8 baseline.
//!
//! This is the "most widely implemented queue algorithm" the paper
//! compares against: an unbounded linked queue with one lock protecting
//! the head (dequeuers) and one protecting the tail (enqueuers), so one
//! enqueuer and one dequeuer can proceed concurrently but all enqueuers
//! (and all dequeuers) serialize on a lock. Parameterized by the spinlock
//! type ([`crate::locks::TicketLock`] or [`crate::locks::McsLock`]) to
//! reproduce both baseline curves.

use std::cell::UnsafeCell;
use std::ptr;

use crate::locks::RawLock;

struct Node {
    value: Option<Vec<u8>>,
    next: *mut Node,
}

/// A two-lock Michael–Scott FIFO queue of byte payloads.
///
/// # Examples
///
/// ```
/// use solros_ringbuf::locks::TicketLock;
/// use solros_ringbuf::TwoLockQueue;
///
/// let q = TwoLockQueue::<TicketLock>::new();
/// q.enqueue(b"a".to_vec());
/// q.enqueue(b"b".to_vec());
/// assert_eq!(q.dequeue().unwrap(), b"a");
/// assert_eq!(q.dequeue().unwrap(), b"b");
/// assert!(q.dequeue().is_none());
/// ```
pub struct TwoLockQueue<L: RawLock> {
    head_lock: L,
    tail_lock: L,
    /// Dummy-node sentinel design: `head` always points at a consumed node.
    head: UnsafeCell<*mut Node>,
    tail: UnsafeCell<*mut Node>,
}

// SAFETY: `head` is only touched under `head_lock` and `tail` under
// `tail_lock`; node handoff between the two is the standard Michael–Scott
// argument (the dummy node means head and tail never alias a node whose
// fields both locks mutate).
unsafe impl<L: RawLock> Send for TwoLockQueue<L> {}
// SAFETY: see above.
unsafe impl<L: RawLock> Sync for TwoLockQueue<L> {}

impl<L: RawLock> Default for TwoLockQueue<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: RawLock> TwoLockQueue<L> {
    /// Creates an empty queue (one dummy node).
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(Node {
            value: None,
            next: ptr::null_mut(),
        }));
        Self {
            head_lock: L::default(),
            tail_lock: L::default(),
            head: UnsafeCell::new(dummy),
            tail: UnsafeCell::new(dummy),
        }
    }

    /// Appends a payload to the queue.
    pub fn enqueue(&self, value: Vec<u8>) {
        let node = Box::into_raw(Box::new(Node {
            value: Some(value),
            next: ptr::null_mut(),
        }));
        self.tail_lock.with(|| {
            // SAFETY: `tail` is owned by `tail_lock`; the pointed-to node's
            // `next` field is only written here (it is the last node).
            unsafe {
                let tail = *self.tail.get();
                // Release ordering is provided by the lock release; within
                // the critical section plain writes are safe.
                (*tail).next = node;
                *self.tail.get() = node;
            }
        });
    }

    /// Removes the oldest payload, or `None` when empty.
    pub fn dequeue(&self) -> Option<Vec<u8>> {
        self.head_lock.with(|| {
            // SAFETY: `head` is owned by `head_lock`. Reading
            // `(*head).next` is safe: `next` of the dummy is written only
            // by an enqueuer that then makes it reachable; the lock
            // acquire/release pair on either lock gives the necessary
            // happens-before because an enqueuer publishes `next` before
            // releasing `tail_lock`, and a racing read here can at worst
            // observe null (treated as empty).
            unsafe {
                let head = *self.head.get();
                let next = std::ptr::read_volatile(&(*head).next);
                if next.is_null() {
                    return None;
                }
                let value = (*next).value.take();
                *self.head.get() = next;
                drop(Box::from_raw(head));
                value
            }
        })
    }
}

impl<L: RawLock> Drop for TwoLockQueue<L> {
    fn drop(&mut self) {
        // SAFETY: exclusive access in Drop; walk and free the chain.
        unsafe {
            let mut cur = *self.head.get();
            while !cur.is_null() {
                let next = (*cur).next;
                drop(Box::from_raw(cur));
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::{McsLock, TicketLock};
    use std::sync::Arc;

    fn fifo_smoke<L: RawLock>() {
        let q = TwoLockQueue::<L>::new();
        assert!(q.dequeue().is_none());
        for i in 0..100u32 {
            q.enqueue(i.to_le_bytes().to_vec());
        }
        for i in 0..100u32 {
            assert_eq!(q.dequeue().unwrap(), i.to_le_bytes());
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn fifo_ticket() {
        fifo_smoke::<TicketLock>();
    }

    #[test]
    fn fifo_mcs() {
        fifo_smoke::<McsLock>();
    }

    fn mpmc_exactness<L: RawLock + 'static>() {
        let q = Arc::new(TwoLockQueue::<L>::new());
        let producers = 4u32;
        let per = 5_000u32;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(((p << 24) | i).to_le_bytes().to_vec());
                }
            }));
        }
        let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let remaining = Arc::new(std::sync::atomic::AtomicU32::new(producers * per));
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let got = Arc::clone(&got);
            let remaining = Arc::clone(&remaining);
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                while remaining.load(std::sync::atomic::Ordering::Relaxed) > 0 {
                    if let Some(v) = q.dequeue() {
                        local.push(u32::from_le_bytes(v.try_into().unwrap()));
                        remaining.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
                got.lock().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all = got.lock().clone();
        assert_eq!(all.len() as u32, producers * per);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u32, producers * per);
    }

    #[test]
    fn mpmc_ticket() {
        mpmc_exactness::<TicketLock>();
    }

    #[test]
    fn mpmc_mcs() {
        mpmc_exactness::<McsLock>();
    }

    #[test]
    fn drop_frees_pending_elements() {
        let q = TwoLockQueue::<TicketLock>::new();
        for _ in 0..100 {
            q.enqueue(vec![0u8; 1024]);
        }
        drop(q); // Miri/asan would flag leaks or double frees here.
    }
}
