//! Spinlock implementations for the two-lock queue baselines.
//!
//! Figure 8 of the paper compares the Solros combining ring against the
//! Michael–Scott two-lock queue under two spinlocks: the ticket lock
//! (cache-line contended) and the MCS queue lock (local spinning). Both
//! are implemented here from scratch.

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

/// A raw mutual-exclusion primitive that runs a critical section.
///
/// Abstracting over `with` (rather than guard objects) lets the MCS lock
/// keep its queue node on the caller's stack without lifetime gymnastics.
pub trait RawLock: Send + Sync + Default {
    /// Runs `f` under the lock.
    fn with<R>(&self, f: impl FnOnce() -> R) -> R;
}

/// Spin-wait hint that backs off to the scheduler, so oversubscribed test
/// runs (more threads than cores) cannot livelock.
#[inline]
pub(crate) fn spin_backoff(iterations: &mut u32) {
    *iterations += 1;
    if *iterations < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// A classic ticket lock: FIFO, but all waiters spin on one shared word,
/// so the cache line holding `owner` bounces on every release.
///
/// # Examples
///
/// ```
/// use solros_ringbuf::locks::{RawLock, TicketLock};
///
/// let lock = TicketLock::default();
/// let v = lock.with(|| 41 + 1);
/// assert_eq!(v, 42);
/// ```
#[derive(Default)]
pub struct TicketLock {
    next: AtomicU64,
    owner: AtomicU64,
}

impl RawLock for TicketLock {
    fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0;
        while self.owner.load(Ordering::Acquire) != ticket {
            spin_backoff(&mut spins);
        }
        let r = f();
        self.owner.store(ticket + 1, Ordering::Release);
        r
    }
}

/// One waiter's queue entry for [`McsLock`]. Lives on the waiter's stack.
#[repr(align(64))]
struct McsNode {
    next: AtomicPtr<McsNode>,
    locked: AtomicBool,
}

/// The MCS queue lock: each waiter spins on a flag in its *own* node, so
/// a release touches exactly one remote cache line.
///
/// # Examples
///
/// ```
/// use solros_ringbuf::locks::{McsLock, RawLock};
///
/// let lock = McsLock::default();
/// assert_eq!(lock.with(|| "ok"), "ok");
/// ```
#[derive(Default)]
pub struct McsLock {
    tail: AtomicPtr<McsNode>,
}

// SAFETY: the lock queue only ever holds pointers to nodes whose owners
// are blocked inside `with`, so the pointers remain valid; all cross-thread
// communication goes through atomics.
unsafe impl Send for McsLock {}
// SAFETY: see above.
unsafe impl Sync for McsLock {}

impl RawLock for McsLock {
    fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        let node = McsNode {
            next: AtomicPtr::new(ptr::null_mut()),
            locked: AtomicBool::new(true),
        };
        let node_ptr = &node as *const McsNode as *mut McsNode;

        let prev = self.tail.swap(node_ptr, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev`'s owner is blocked in `with` until we hand the
            // lock over, so the node is alive; we only touch its atomics.
            unsafe { (*prev).next.store(node_ptr, Ordering::Release) };
            let mut spins = 0;
            while node.locked.load(Ordering::Acquire) {
                spin_backoff(&mut spins);
            }
        }

        let r = f();

        let mut next = node.next.load(Ordering::Acquire);
        if next.is_null() {
            // No known successor: try to swing tail back to empty.
            if self
                .tail
                .compare_exchange(
                    node_ptr,
                    ptr::null_mut(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return r;
            }
            // A successor is mid-linking; wait for it to appear.
            let mut spins = 0;
            loop {
                next = node.next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                spin_backoff(&mut spins);
            }
        }
        // SAFETY: the successor's owner is blocked spinning on `locked`,
        // so its node is alive; releasing it transfers ownership.
        unsafe { (*next).locked.store(false, Ordering::Release) };
        r
    }
}

/// A trivial test-and-set lock kept for completeness/ablation; it has the
/// worst contention behaviour of the three.
#[derive(Default)]
pub struct TasLock {
    locked: AtomicBool,
}

impl RawLock for TasLock {
    fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        let mut spins = 0;
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                break;
            }
            while self.locked.load(Ordering::Relaxed) {
                spin_backoff(&mut spins);
            }
        }
        let r = f();
        self.locked.store(false, Ordering::Release);
        r
    }
}

/// A counter protected by any [`RawLock`]; shared by the lock tests.
pub struct LockedCounter<L: RawLock> {
    lock: L,
    value: UnsafeCell<u64>,
}

// SAFETY: `value` is only touched inside `lock.with`, which guarantees
// mutual exclusion.
unsafe impl<L: RawLock> Sync for LockedCounter<L> {}

impl<L: RawLock> Default for LockedCounter<L> {
    fn default() -> Self {
        Self {
            lock: L::default(),
            value: UnsafeCell::new(0),
        }
    }
}

impl<L: RawLock> LockedCounter<L> {
    /// Increments under the lock and returns the new value.
    pub fn increment(&self) -> u64 {
        self.lock.with(|| {
            // SAFETY: mutual exclusion provided by the lock.
            let v = unsafe { &mut *self.value.get() };
            *v += 1;
            *v
        })
    }

    /// Reads under the lock.
    pub fn get(&self) -> u64 {
        self.lock.with(|| {
            // SAFETY: mutual exclusion provided by the lock.
            unsafe { *self.value.get() }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn hammer<L: RawLock + 'static>() {
        let counter = Arc::new(LockedCounter::<L>::default());
        let threads = 8;
        let iters = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        c.increment();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.get(), threads * iters);
    }

    #[test]
    fn ticket_lock_mutual_exclusion() {
        hammer::<TicketLock>();
    }

    #[test]
    fn mcs_lock_mutual_exclusion() {
        hammer::<McsLock>();
    }

    #[test]
    fn tas_lock_mutual_exclusion() {
        hammer::<TasLock>();
    }

    #[test]
    fn ticket_lock_is_fifo_single_thread() {
        let lock = TicketLock::default();
        // Reentrant-free sequential usage works repeatedly.
        for i in 0..100 {
            assert_eq!(lock.with(|| i), i);
        }
    }

    #[test]
    fn mcs_lock_sequential_reuse() {
        let lock = McsLock::default();
        for i in 0..100 {
            assert_eq!(lock.with(|| i * 2), i * 2);
        }
    }
}
