//! Combining request queue (§4.2.3 of the paper).
//!
//! Queue operations do not contend on the ring's control variables
//! directly. Instead, each thread appends a request node to an MCS-style
//! queue with one `atomic_swap`; the thread at the head becomes the
//! *combiner* and executes a batch of requests (its own plus up to
//! `threshold - 1` of its successors) against the ring state, toggling a
//! status flag in each request node as it completes. Non-combining threads
//! spin locally on their own flag. When the batch limit is reached the
//! combiner hands the role to the next waiter, after invoking the
//! batch-end hook (which the ring uses to publish its lazily updated
//! control variables, §4.2.4).
//!
//! Requires exactly the paper's two atomic instructions: `atomic_swap`
//! (queue append, role transfer) and `compare_and_swap` (queue drain).

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

use crate::locks::spin_backoff;

const WAITING: u32 = 0;
const DONE: u32 = 1;
const HANDOFF: u32 = 2;

struct Node<Op, Res> {
    next: AtomicPtr<Node<Op, Res>>,
    status: AtomicU32,
    op: UnsafeCell<Option<Op>>,
    res: UnsafeCell<Option<Res>>,
}

/// A flat combiner over operations of type `Op` producing `Res`.
///
/// The *combiner-protected state* of type `S` is owned by the combiner
/// role: exactly one thread at a time executes `apply`/`at_batch_end`
/// closures, and those closures receive `&mut S`.
///
/// # Examples
///
/// ```
/// use solros_ringbuf::combiner::Combiner;
/// use std::sync::Arc;
///
/// let c = Arc::new(Combiner::<u64, u64, u64>::new(0, 16));
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let c = Arc::clone(&c);
///         std::thread::spawn(move || {
///             for _ in 0..1000 {
///                 c.submit(1, |state, op| { *state += op; *state }, |_| {});
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// let total = c.submit(0, |state, op| { *state += op; *state }, |_| {});
/// assert_eq!(total, 4000);
/// ```
pub struct Combiner<S, Op, Res> {
    tail: AtomicPtr<Node<Op, Res>>,
    state: UnsafeCell<S>,
    threshold: usize,
    batches: AtomicU64,
    combined_ops: AtomicU64,
}

// SAFETY: `state` is only accessed by the unique combiner (see module
// docs); request nodes are stack-owned by blocked submitters and accessed
// through atomics plus the DONE-flag protocol.
unsafe impl<S: Send, Op: Send, Res: Send> Send for Combiner<S, Op, Res> {}
// SAFETY: see above.
unsafe impl<S: Send, Op: Send, Res: Send> Sync for Combiner<S, Op, Res> {}

impl<S, Op, Res> Combiner<S, Op, Res> {
    /// Creates a combiner owning `state`, batching up to `threshold` ops
    /// per combiner tenure.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    pub fn new(state: S, threshold: usize) -> Self {
        assert!(threshold > 0, "combining threshold must be positive");
        Self {
            tail: AtomicPtr::new(ptr::null_mut()),
            state: UnsafeCell::new(state),
            threshold,
            batches: AtomicU64::new(0),
            combined_ops: AtomicU64::new(0),
        }
    }

    /// Returns the number of combiner tenures so far (for instrumentation).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Returns the total operations executed (for instrumentation).
    pub fn combined_ops(&self) -> u64 {
        self.combined_ops.load(Ordering::Relaxed)
    }

    /// Submits `op`, blocking (spinning) until it has been executed by
    /// some combiner — possibly this thread. Returns the result.
    ///
    /// `apply` executes one operation against the combiner-protected
    /// state; `at_batch_end` runs once per combiner tenure, after the last
    /// operation of the batch and before the role is released or handed
    /// off (the ring publishes control variables here).
    pub fn submit(
        &self,
        op: Op,
        mut apply: impl FnMut(&mut S, Op) -> Res,
        mut at_batch_end: impl FnMut(&mut S),
    ) -> Res {
        let node = Node {
            next: AtomicPtr::new(ptr::null_mut()),
            status: AtomicU32::new(WAITING),
            op: UnsafeCell::new(Some(op)),
            res: UnsafeCell::new(None),
        };
        let node_ptr = &node as *const Node<Op, Res> as *mut Node<Op, Res>;

        let prev = self.tail.swap(node_ptr, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev`'s owner is blocked in `submit` until its
            // status turns DONE, so the node is alive.
            unsafe { (*prev).next.store(node_ptr, Ordering::Release) };
            let mut spins = 0;
            loop {
                match node.status.load(Ordering::Acquire) {
                    WAITING => spin_backoff(&mut spins),
                    DONE => {
                        // SAFETY: the combiner wrote `res` before setting
                        // DONE (Release), which we observed (Acquire).
                        return unsafe { (*node.res.get()).take().expect("combiner set result") };
                    }
                    HANDOFF => break, // We are the new combiner.
                    s => unreachable!("bad combiner status {s}"),
                }
            }
        }

        // This thread is the combiner.
        self.batches.fetch_add(1, Ordering::Relaxed);
        // SAFETY: combiner exclusivity — only one thread at a time holds
        // the role (it is created by swapping an empty tail or by explicit
        // HANDOFF, and released only in `run_combiner`).
        let state = unsafe { &mut *self.state.get() };
        // SAFETY: our own `op` is still present; no other thread touches it.
        let own_op = unsafe { (*node.op.get()).take().expect("own op present") };
        let own_res = apply(state, own_op);
        self.combined_ops.fetch_add(1, Ordering::Relaxed);

        self.run_combiner(node_ptr, state, &mut apply, &mut at_batch_end);
        own_res
    }

    /// Walks the request chain starting *after* `own`, executing up to the
    /// batch threshold, then releases or hands off the combiner role.
    fn run_combiner(
        &self,
        own: *mut Node<Op, Res>,
        state: &mut S,
        apply: &mut impl FnMut(&mut S, Op) -> Res,
        at_batch_end: &mut impl FnMut(&mut S),
    ) {
        let mut cur = own; // Last node whose op has been applied.
        let mut count = 1usize;
        loop {
            // Find the successor of `cur` before we may release `cur`.
            // SAFETY: `cur` is alive: it is either our own node or a node
            // whose owner still spins (we have not set its DONE flag).
            let mut next = unsafe { (*cur).next.load(Ordering::Acquire) };
            if next.is_null() {
                // Possibly the end of the queue. Publish state first so a
                // successor combiner never observes unpublished batches.
                at_batch_end(state);
                if self
                    .tail
                    .compare_exchange(cur, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Queue drained; release `cur`'s owner if it is a peer.
                    self.finish(cur, own);
                    return;
                }
                // Someone swapped in behind `cur`; wait for the link.
                let mut spins = 0;
                loop {
                    // SAFETY: `cur` still alive (DONE not yet set).
                    next = unsafe { (*cur).next.load(Ordering::Acquire) };
                    if !next.is_null() {
                        break;
                    }
                    spin_backoff(&mut spins);
                }
            }

            // Successor known: `cur` can now be released safely.
            self.finish(cur, own);

            if count >= self.threshold {
                // Batch limit: publish, then hand the role to `next`.
                at_batch_end(state);
                // SAFETY: `next`'s owner spins on its status; alive.
                unsafe { (*next).status.store(HANDOFF, Ordering::Release) };
                return;
            }

            // Execute the successor's op.
            // SAFETY: `next` is alive (owner spinning) and its `op` was
            // written before it was linked (Release/Acquire on `next`).
            let op = unsafe { (*(*next).op.get()).take().expect("peer op present") };
            let res = apply(state, op);
            // SAFETY: as above; owner only reads `res` after DONE.
            unsafe { *(*next).res.get() = Some(res) };
            self.combined_ops.fetch_add(1, Ordering::Relaxed);
            cur = next;
            count += 1;
        }
    }

    /// Marks `cur` DONE unless it is the combiner's own node.
    fn finish(&self, cur: *mut Node<Op, Res>, own: *mut Node<Op, Res>) {
        if cur != own {
            // SAFETY: `cur` is alive until this very store; its owner
            // returns (and may deallocate) only after observing DONE.
            unsafe { (*cur).status.store(DONE, Ordering::Release) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_ops() {
        let c = Combiner::<Vec<u32>, u32, usize>::new(Vec::new(), 8);
        for i in 0..100 {
            let len = c.submit(
                i,
                |v, op| {
                    v.push(op);
                    v.len()
                },
                |_| {},
            );
            assert_eq!(len, i as usize + 1);
        }
    }

    #[test]
    fn concurrent_sum_is_exact() {
        let c = Arc::new(Combiner::<u64, u64, u64>::new(0, 8));
        let threads = 16;
        let iters = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..iters {
                        c.submit(
                            t * iters + i,
                            |s, op| {
                                *s += op;
                                0
                            },
                            |_| {},
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = threads * iters;
        let expect: u64 = (0..n).sum();
        let total = c.submit(0, |s, _| *s, |_| {});
        assert_eq!(total, expect);
        assert_eq!(c.combined_ops(), n + 1);
    }

    #[test]
    fn batch_end_runs_between_batches() {
        // With a single thread, every submit is its own batch.
        let c = Combiner::<(u64, u64), (), (u64, u64)>::new((0, 0), 4);
        for _ in 0..10 {
            c.submit(
                (),
                |s, _| {
                    s.0 += 1;
                    *s
                },
                |s| s.1 += 1,
            );
        }
        let (ops, batch_ends) = c.submit((), |s, _| *s, |_| {});
        assert_eq!(ops, 10);
        // Every single-thread tenure publishes at least once.
        assert!(batch_ends >= 10, "batch ends {batch_ends}");
    }

    #[test]
    fn results_routed_to_correct_thread() {
        let c = Arc::new(Combiner::<(), u64, u64>::new((), 4));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let token = t * 1_000_000 + i;
                        let echoed = c.submit(token, |_, op| op.wrapping_mul(3), |_| {});
                        assert_eq!(echoed, token.wrapping_mul(3));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn tiny_threshold_forces_handoffs() {
        let c = Arc::new(Combiner::<u64, u64, ()>::new(0, 1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        c.submit(1, |s, op| *s += op, |_| {});
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut observed = 0;
        c.submit(
            0,
            |s, op| {
                *s += op;
                observed = *s;
            },
            |_| {},
        );
        assert_eq!(observed, 16_000);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        let _ = Combiner::<(), (), ()>::new((), 0);
    }
}
