//! Transport-layer errors.

use std::fmt;

/// Errors returned by ring-buffer operations.
///
/// The ring is non-blocking by design (§4.2.2): callers decide whether to
/// retry on [`RingError::WouldBlock`], exactly like the paper's
/// `EWOULDBLOCK` contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The ring is full (enqueue) or empty / mid-publish (dequeue); retry.
    WouldBlock,
    /// The element exceeds the per-element maximum for this ring.
    TooBig,
    /// A published element header holds an impossible state: the ring
    /// memory was corrupted (torn write, dropped PCIe write, peer bug).
    /// Not retryable — the ring must be reset before further use.
    Corrupt,
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::WouldBlock => write!(f, "operation would block"),
            RingError::TooBig => write!(f, "element too large for ring"),
            RingError::Corrupt => write!(f, "ring memory corrupted"),
        }
    }
}

impl std::error::Error for RingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(RingError::WouldBlock.to_string(), "operation would block");
        assert_eq!(RingError::TooBig.to_string(), "element too large for ring");
        assert_eq!(RingError::Corrupt.to_string(), "ring memory corrupted");
    }
}
