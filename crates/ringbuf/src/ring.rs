//! The Solros ring buffer over PCIe (§4.2).
//!
//! See the crate docs for the design overview. Layout: the *master* side
//! allocates the data array (headers + payloads) in its local memory; in
//! the lazy (replicated control variable) scheme each endpoint also owns a
//! one-line control window in *its own* memory holding the authoritative
//! copy of the variable it writes (`tail` for the producer, `head` for the
//! consumer), while the peer keeps a process-local replica refreshed
//! across PCIe only when the ring appears full/empty (§4.2.4). The eager
//! baseline of Figure 9 places both variables in master memory and
//! accesses them on every operation.
//!
//! Element slots are 8-byte aligned: `[u64 header][payload][pad]`. The
//! header encodes `(state, len)`; the producer writes it (RESERVED at
//! reservation, READY at publish) and the consumer only reads it — all
//! cross-bus synchronization flows through the header states plus
//! `head`/`tail`. Same-side coordination (out-of-order `set_ready` /
//! `set_done` by concurrent threads) is tracked in process-local flag
//! tables, which is free, exactly as it would be on real hardware.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use solros_pcie::cost::{CostModel, Xfer};
use solros_pcie::counter::PcieCounters;
use solros_pcie::window::{Window, WindowHandle};
use solros_pcie::Side;

use crate::combiner::Combiner;
use crate::error::RingError;

/// Element header size in bytes.
const HDR: u64 = 8;

/// Reserved by the producer; payload not yet published.
const ST_RESERVED: u64 = 1;
/// Published; consumer may take it.
const ST_READY: u64 = 2;
/// Wrap marker: skip to the start of the array.
const ST_WRAP: u64 = 5;
/// Garbage state written by the fault injector: no legal producer path
/// ever stores it, so a consumer that reads it has proof of corruption.
const ST_POISON: u64 = 0x66;

#[inline]
fn hdr(state: u64, len: u32) -> u64 {
    (state << 56) | len as u64
}

#[inline]
fn state_of(h: u64) -> u64 {
    h >> 56
}

#[inline]
fn len_of(h: u64) -> u32 {
    h as u32
}

#[inline]
fn round8(n: u64) -> u64 {
    (n + 7) & !7
}

/// Byte size of the slot for a payload of `len` bytes.
#[inline]
fn slot_size(len: u32) -> u64 {
    HDR + round8(len as u64)
}

/// Resolves a configured copy mode to a concrete mechanism for one copy.
#[inline]
fn mechanism(mode: CopyMode, model: &CostModel, initiator: Side, bytes: usize) -> Xfer {
    match mode {
        CopyMode::Memcpy => Xfer::Memcpy,
        CopyMode::Dma => Xfer::Dma,
        CopyMode::Adaptive => model.adaptive_choice(initiator, bytes as u64),
    }
}

/// How element payloads cross the bus (§4.2.4). [`CopyMode::Adaptive`] is
/// what Solros ships; the other two exist for the Figure 10 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CopyMode {
    /// Always load/store instructions.
    Memcpy,
    /// Always DMA.
    Dma,
    /// Load/store below the initiator's threshold, DMA above (§4.2.4).
    #[default]
    Adaptive,
}

/// Construction parameters for a ring.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Data-array capacity in bytes; must be a power of two ≥ 64.
    pub capacity: usize,
    /// Side whose memory holds the data array (the paper's *master* side).
    pub master: Side,
    /// Side the producer endpoint runs on.
    pub producer: Side,
    /// Side the consumer endpoint runs on.
    pub consumer: Side,
    /// Replicate control variables and update lazily (§4.2.4). `false` is
    /// the eager baseline of Figure 9.
    pub lazy_control: bool,
    /// Max operations per combiner tenure (§4.2.3).
    pub combine_threshold: usize,
    /// Payload copy mechanism.
    pub copy_mode: CopyMode,
}

impl RingConfig {
    /// A ring entirely on one side (no PCIe traffic) — the Figure 8 setup.
    pub fn local(capacity: usize, side: Side) -> Self {
        RingConfig {
            capacity,
            master: side,
            producer: side,
            consumer: side,
            lazy_control: true,
            combine_threshold: 64,
            copy_mode: CopyMode::Adaptive,
        }
    }

    /// A ring whose master memory is on `master`, carrying data from
    /// `producer` to `consumer` across PCIe.
    pub fn over_pcie(capacity: usize, master: Side, producer: Side, consumer: Side) -> Self {
        RingConfig {
            capacity,
            master,
            producer,
            consumer,
            lazy_control: true,
            combine_threshold: 64,
            copy_mode: CopyMode::Adaptive,
        }
    }

    /// Returns a copy with eager (non-replicated) control variables.
    pub fn eager(mut self) -> Self {
        self.lazy_control = false;
        self
    }

    /// Returns a copy with the given copy mode.
    pub fn with_copy_mode(mut self, mode: CopyMode) -> Self {
        self.copy_mode = mode;
        self
    }

    /// Returns a copy with the given combining threshold.
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.combine_threshold = threshold;
        self
    }
}

/// A handle to one element's memory inside the ring (the paper's
/// `rb_buf`). Obtained from [`Producer::enqueue`] or [`Consumer::dequeue`];
/// consumed by [`Producer::set_ready`] / [`Consumer::set_done`].
#[derive(Debug)]
#[must_use = "an element handle must be published with set_ready/set_done"]
pub struct RbBuf {
    pos: u64,
    len: u32,
    /// Payload captured by the consumer's batched pull, when it covered
    /// this element; [`Consumer::copy_from`] then copies locally.
    staged: Option<Vec<u8>>,
}

impl RbBuf {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns false; zero-length elements are rejected at enqueue.
    pub fn is_empty(&self) -> bool {
        false
    }
}

struct Shared {
    capacity: u64,
    max_elem: u64,
    lazy: bool,
    copy_mode: CopyMode,
    data: Arc<Window>,
    prod_ctrl: Arc<Window>,
    cons_ctrl: Arc<Window>,
    model: Arc<CostModel>,
    producer_side: Side,
    consumer_side: Side,
    threshold: usize,
}

/// Factory for one ring buffer and its two endpoints.
///
/// # Examples
///
/// ```
/// use solros_pcie::{PcieCounters, Side};
/// use solros_ringbuf::ring::{RingBuf, RingConfig};
/// use std::sync::Arc;
///
/// let counters = Arc::new(PcieCounters::new());
/// let ring = RingBuf::new(RingConfig::local(4096, Side::Host), counters);
/// let (tx, rx) = ring.endpoints();
/// tx.send(b"hello").unwrap();
/// assert_eq!(rx.recv().unwrap(), b"hello");
/// ```
pub struct RingBuf {
    shared: Arc<Shared>,
}

impl RingBuf {
    /// Builds the ring and allocates its windows.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a power of two or is below 64 bytes,
    /// or if the combining threshold is zero.
    pub fn new(cfg: RingConfig, counters: Arc<PcieCounters>) -> Self {
        Self::with_model(cfg, counters, Arc::new(CostModel::paper_default()))
    }

    /// As [`RingBuf::new`] with an explicit cost model (for tests and
    /// ablations that change the adaptive threshold).
    pub fn with_model(cfg: RingConfig, counters: Arc<PcieCounters>, model: Arc<CostModel>) -> Self {
        assert!(
            cfg.capacity.is_power_of_two() && cfg.capacity >= 64,
            "capacity must be a power of two >= 64"
        );
        let data = Window::new(cfg.capacity, cfg.master, Arc::clone(&counters));
        // Lazy scheme: each authoritative variable lives with its owner.
        // Eager baseline: both variables live in master memory (§4.2.4).
        let (tail_home, head_home) = if cfg.lazy_control {
            (cfg.producer, cfg.consumer)
        } else {
            (cfg.master, cfg.master)
        };
        let prod_ctrl = Window::new(64, tail_home, Arc::clone(&counters));
        let cons_ctrl = Window::new(64, head_home, Arc::clone(&counters));
        let shared = Arc::new(Shared {
            capacity: cfg.capacity as u64,
            max_elem: (cfg.capacity as u64 / 4).saturating_sub(HDR).max(8),
            lazy: cfg.lazy_control,
            copy_mode: cfg.copy_mode,
            data,
            prod_ctrl,
            cons_ctrl,
            model,
            producer_side: cfg.producer,
            consumer_side: cfg.consumer,
            threshold: cfg.combine_threshold,
        });
        RingBuf { shared }
    }

    /// Returns the producer and consumer endpoints.
    pub fn endpoints(&self) -> (Producer, Consumer) {
        (self.producer(), self.consumer())
    }

    /// Returns a producer endpoint (threads on the producer side share it
    /// by cloning).
    pub fn producer(&self) -> Producer {
        let sh = Arc::clone(&self.shared);
        let flags = (0..(sh.capacity / 8) as usize)
            .map(|_| AtomicBool::new(false))
            .collect();
        Producer {
            inner: Arc::new(ProdInner {
                data: sh.data.map(sh.producer_side),
                tail_auth: sh.prod_ctrl.map(sh.producer_side),
                head_auth: sh.cons_ctrl.map(sh.producer_side),
                ready_flags: flags,
                corrupt_budget: AtomicU64::new(0),
                publishes: AtomicU64::new(0),
                wave_submits: AtomicU64::new(0),
                wave_frames: AtomicU64::new(0),
                wave_resubmits: AtomicU64::new(0),
                combiner: Combiner::new(
                    ProdState {
                        reserve_tail: 0,
                        ready_frontier: 0,
                        head_replica: 0,
                        published_tail: 0,
                        pending: VecDeque::new(),
                    },
                    sh.threshold,
                ),
                sh,
            }),
        }
    }

    /// Returns a consumer endpoint.
    pub fn consumer(&self) -> Consumer {
        let sh = Arc::clone(&self.shared);
        let flags = (0..(sh.capacity / 8) as usize)
            .map(|_| AtomicBool::new(false))
            .collect();
        Consumer {
            inner: Arc::new(ConsInner {
                data: sh.data.map(sh.consumer_side),
                head_auth: sh.cons_ctrl.map(sh.consumer_side),
                tail_auth: sh.prod_ctrl.map(sh.consumer_side),
                done_flags: flags,
                combiner: Combiner::new(
                    ConsState {
                        consume: 0,
                        head: 0,
                        tail_replica: 0,
                        published_head: 0,
                        pending: VecDeque::new(),
                        stage_base: 0,
                        stage: Vec::new(),
                    },
                    sh.threshold,
                ),
                sh,
            }),
        }
    }

    /// Re-initializes the ring after a fault: both authoritative control
    /// variables return to zero, so endpoints minted *afterwards* (via
    /// [`RingBuf::producer`] / [`RingBuf::consumer`], whose local state
    /// starts at zero) see an empty, consistent ring. Any element bytes
    /// left in the data array are unreachable — below the new tail — and
    /// are overwritten before the tail ever advances over them.
    ///
    /// The caller must quiesce and discard all endpoints minted before the
    /// reset; their replicated control state is stale by construction.
    pub fn reset(&self) {
        self.shared
            .prod_ctrl
            .map(self.shared.prod_ctrl.home())
            .ctrl(0)
            .store(0);
        self.shared
            .cons_ctrl
            .map(self.shared.cons_ctrl.home())
            .ctrl(0)
            .store(0);
    }

    /// Ring capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.shared.capacity as usize
    }

    /// Largest accepted payload in bytes.
    pub fn max_element(&self) -> usize {
        self.shared.max_elem as usize
    }
}

/// An outstanding slot awaiting in-order publication/reclamation.
struct PendingSlot {
    pos: u64,
    slot: u64,
    /// Wrap markers publish/reclaim automatically.
    auto: bool,
}

#[inline]
fn flag_index(pos: u64, cap: u64) -> usize {
    ((pos % cap) / 8) as usize
}

struct ProdState {
    /// Monotonic reservation frontier (bytes).
    reserve_tail: u64,
    /// Reservation prefix whose elements are all READY.
    ready_frontier: u64,
    /// Local replica of the consumer's authoritative `head`.
    head_replica: u64,
    /// Last value stored to the authoritative `tail`.
    published_tail: u64,
    /// Reserved slots awaiting `set_ready`, in ring order.
    pending: VecDeque<PendingSlot>,
}

/// One producer-side combining-queue operation. The combiner executes
/// peer operations with its *own* closure, so every batch shape must be
/// encoded here rather than in per-caller closures.
enum ProdOp {
    /// Reserve `size` bytes; `0` is a publish-only pass (from `kick`).
    Reserve(u32),
    /// Reserve a prefix of the listed sizes (as many as fit) in one
    /// combiner pass.
    ReserveBatch(Vec<u32>),
    /// Reserve, copy, and mark ready a whole wave of frames; on a lazy
    /// ring the wave pays a single control-variable publish at batch end.
    SendBatch(Vec<Vec<u8>>),
}

/// Result of a [`ProdOp`].
enum ProdRes {
    Reserved(Result<RbBuf, RingError>),
    Bufs(Vec<RbBuf>),
    /// Frames accepted off the front of the wave, plus the unsent tail
    /// (non-empty when the ring filled mid-wave).
    Batched(usize, Vec<Vec<u8>>),
}

struct ProdInner {
    sh: Arc<Shared>,
    data: WindowHandle,
    /// Authoritative `tail` window.
    tail_auth: WindowHandle,
    /// Peer's authoritative `head` window.
    head_auth: WindowHandle,
    /// Process-local ready flags, indexed by slot offset / 8.
    ready_flags: Box<[AtomicBool]>,
    /// Fault injection: while nonzero, each `set_ready` decrements it and
    /// publishes a poisoned header instead of a READY one.
    corrupt_budget: AtomicU64,
    /// Authoritative-tail stores actually issued — the ring's
    /// doorbell-equivalent count (control-variable publishes).
    publishes: AtomicU64,
    /// Batched waves submitted through [`Producer::send_batch`] /
    /// [`Producer::enqueue_batch`].
    wave_submits: AtomicU64,
    /// Frames accepted via batched waves.
    wave_frames: AtomicU64,
    /// Waves whose unsent tail had to be resubmitted after a backoff
    /// because the ring filled mid-wave ([`Producer::send_batch_blocking`]).
    wave_resubmits: AtomicU64,
    combiner: Combiner<ProdState, ProdOp, ProdRes>,
}

/// The sending endpoint. Clone to share among producer-side threads.
#[derive(Clone)]
pub struct Producer {
    inner: Arc<ProdInner>,
}

impl Producer {
    /// Reserves space for a `size`-byte element (the paper's
    /// `rb_enqueue`). Non-blocking: returns [`RingError::WouldBlock`] when
    /// the ring is full.
    pub fn enqueue(&self, size: usize) -> Result<RbBuf, RingError> {
        let inner = &self.inner;
        if size == 0 || size as u64 > inner.sh.max_elem {
            return Err(RingError::TooBig);
        }
        match inner.combiner.submit(
            ProdOp::Reserve(size as u32),
            |st, op| inner.apply(st, op),
            |st| inner.publish(st),
        ) {
            ProdRes::Reserved(r) => r,
            _ => unreachable!("Reserve yields Reserved"),
        }
    }

    /// Vectored reservation: reserves as many of the listed element sizes
    /// as currently fit, front to back, in **one** combiner pass. Returns
    /// the reserved buffers (possibly fewer than requested — possibly
    /// none — when the ring fills mid-wave); the caller copies payloads
    /// and calls [`Producer::set_ready`] per buffer, then
    /// [`Producer::kick`] once for the wave, so a lazy ring pays a single
    /// control-variable publish for the whole wave.
    ///
    /// Returns [`RingError::TooBig`] (reserving nothing) if any size is
    /// zero or exceeds [`RingBuf::max_element`].
    pub fn enqueue_batch(&self, sizes: &[usize]) -> Result<Vec<RbBuf>, RingError> {
        let inner = &self.inner;
        if sizes
            .iter()
            .any(|&s| s == 0 || s as u64 > inner.sh.max_elem)
        {
            return Err(RingError::TooBig);
        }
        let op = ProdOp::ReserveBatch(sizes.iter().map(|&s| s as u32).collect());
        let bufs =
            match inner
                .combiner
                .submit(op, |st, op| inner.apply(st, op), |st| inner.publish(st))
            {
                ProdRes::Bufs(bufs) => bufs,
                _ => unreachable!("ReserveBatch yields Bufs"),
            };
        inner.wave_submits.fetch_add(1, Ordering::Relaxed);
        inner
            .wave_frames
            .fetch_add(bufs.len() as u64, Ordering::Relaxed);
        Ok(bufs)
    }

    /// Vectored send: reserves, copies, and readies a whole wave of
    /// frames in **one** combiner pass, publishing the authoritative tail
    /// once at batch end (on a lazy ring — the eager baseline still pays
    /// one publish per frame, which is the ablation's point). Returns the
    /// number of frames accepted plus the unsent tail of the wave when
    /// the ring filled partway.
    ///
    /// Returns [`RingError::TooBig`] (sending nothing) if any frame is
    /// empty or exceeds [`RingBuf::max_element`].
    pub fn send_batch(&self, frames: Vec<Vec<u8>>) -> Result<(usize, Vec<Vec<u8>>), RingError> {
        let inner = &self.inner;
        if frames
            .iter()
            .any(|f| f.is_empty() || f.len() as u64 > inner.sh.max_elem)
        {
            return Err(RingError::TooBig);
        }
        if frames.is_empty() {
            return Ok((0, frames));
        }
        let (sent, rest) = match inner.combiner.submit(
            ProdOp::SendBatch(frames),
            |st, op| inner.apply(st, op),
            |st| inner.publish(st),
        ) {
            ProdRes::Batched(sent, rest) => (sent, rest),
            _ => unreachable!("SendBatch yields Batched"),
        };
        inner.wave_submits.fetch_add(1, Ordering::Relaxed);
        inner.wave_frames.fetch_add(sent as u64, Ordering::Relaxed);
        Ok((sent, rest))
    }

    /// As [`Producer::send_batch`], spinning until the entire wave has
    /// been accepted (resubmitting the unsent tail after each backoff).
    pub fn send_batch_blocking(&self, frames: Vec<Vec<u8>>) -> Result<(), RingError> {
        let mut rest = frames;
        let mut spins = 0u32;
        loop {
            let (_, unsent) = self.send_batch(rest)?;
            if unsent.is_empty() {
                return Ok(());
            }
            self.inner.wave_resubmits.fetch_add(1, Ordering::Relaxed);
            rest = unsent;
            crate::locks::spin_backoff(&mut spins);
        }
    }

    /// Copies `data` into the element memory (the paper's
    /// `rb_copy_to_rb_buf`), using the ring's copy mode.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the reserved size.
    pub fn copy_to(&self, rb: &RbBuf, data: &[u8]) {
        self.inner.write_payload(rb, data);
    }

    /// Publishes the element for consumption (the paper's `rb_set_ready`).
    pub fn set_ready(&self, rb: RbBuf) {
        self.inner.mark_ready(&rb);
    }

    /// Arms the fault injector: the next `n` published elements carry a
    /// poisoned header (an impossible state value), modeling a torn or
    /// misdirected header write. The consumer surfaces each as
    /// [`RingError::Corrupt`] instead of delivering data.
    pub fn corrupt_next(&self, n: u64) {
        self.inner.corrupt_budget.store(n, Ordering::SeqCst);
    }

    /// Convenience: reserve + copy + publish in one call.
    pub fn send(&self, data: &[u8]) -> Result<(), RingError> {
        let rb = self.enqueue(data.len())?;
        self.copy_to(&rb, data);
        self.set_ready(rb);
        // Fold the publication into a queue pass so a quiescent producer
        // still makes its last elements visible.
        self.kick();
        Ok(())
    }

    /// Forces a control-variable publication pass; useful after a batch of
    /// raw `set_ready` calls. (A size-0 operation is interpreted by the
    /// combiner as publish-only.)
    pub fn kick(&self) {
        let inner = &self.inner;
        let _ = inner.combiner.submit(
            ProdOp::Reserve(0),
            |st, op| inner.apply(st, op),
            |st| inner.publish(st),
        );
    }

    /// As [`Producer::send`], spinning until space is available.
    pub fn send_blocking(&self, data: &[u8]) -> Result<(), RingError> {
        let mut spins = 0u32;
        loop {
            match self.send(data) {
                Err(RingError::WouldBlock) => crate::locks::spin_backoff(&mut spins),
                other => return other,
            }
        }
    }

    /// Number of combiner tenures (instrumentation for the ablations).
    pub fn combiner_batches(&self) -> u64 {
        self.inner.combiner.batches()
    }

    /// Largest accepted payload in bytes (see [`RingBuf::max_element`]).
    pub fn max_element(&self) -> usize {
        self.inner.sh.max_elem as usize
    }

    /// Authoritative-tail stores this producer has issued — the ring's
    /// doorbell-equivalent count. One per element on the unbatched path;
    /// one per wave on a lazy ring's batched path.
    pub fn publishes(&self) -> u64 {
        self.inner.publishes.load(Ordering::Relaxed)
    }

    /// `(waves submitted, frames accepted via waves)` through the batched
    /// entry points.
    pub fn wave_stats(&self) -> (u64, u64) {
        (
            self.inner.wave_submits.load(Ordering::Relaxed),
            self.inner.wave_frames.load(Ordering::Relaxed),
        )
    }

    /// Waves whose unsent tail was resubmitted after a backoff because
    /// the ring filled mid-wave — reply-side backpressure, not loss
    /// (surfaced in the recovery ledger as `reply_wave_resubmits`).
    pub fn wave_resubmits(&self) -> u64 {
        self.inner.wave_resubmits.load(Ordering::Relaxed)
    }
}

impl ProdInner {
    /// Executes one combining-queue operation; runs under the combiner
    /// role, so `st` is exclusively owned for the duration.
    fn apply(&self, st: &mut ProdState, op: ProdOp) -> ProdRes {
        match op {
            ProdOp::Reserve(size) => ProdRes::Reserved(self.try_reserve(st, size)),
            ProdOp::ReserveBatch(sizes) => {
                let mut bufs = Vec::with_capacity(sizes.len());
                for size in sizes {
                    match self.try_reserve(st, size) {
                        Ok(rb) => bufs.push(rb),
                        Err(_) => break,
                    }
                }
                ProdRes::Bufs(bufs)
            }
            ProdOp::SendBatch(frames) => {
                let mut iter = frames.into_iter();
                let mut sent = 0usize;
                let mut rest = Vec::new();
                for frame in iter.by_ref() {
                    match self.try_reserve(st, frame.len() as u32) {
                        Ok(rb) => {
                            self.write_payload(&rb, &frame);
                            self.mark_ready(&rb);
                            sent += 1;
                        }
                        Err(_) => {
                            rest.push(frame);
                            break;
                        }
                    }
                }
                rest.extend(iter);
                ProdRes::Batched(sent, rest)
            }
        }
    }

    /// Copies `data` into the element memory (see [`Producer::copy_to`]).
    fn write_payload(&self, rb: &RbBuf, data: &[u8]) {
        assert_eq!(data.len(), rb.len as usize, "copy size mismatch");
        let off = ((rb.pos % self.sh.capacity) + HDR) as usize;
        // Word-atomic element access: the consumer's batched pull may
        // race-read this memory, which is safe by construction.
        let mech = mechanism(
            self.sh.copy_mode,
            &self.sh.model,
            self.data.accessor(),
            data.len(),
        );
        self.data.write_elem(mech, off, data);
    }

    /// Marks the element READY (see [`Producer::set_ready`]), honoring the
    /// poison fault injector.
    fn mark_ready(&self, rb: &RbBuf) {
        let cap = self.sh.capacity;
        let poisoned = self
            .corrupt_budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok();
        let state = if poisoned { ST_POISON } else { ST_READY };
        // Make the payload visible to remote header readers.
        let off = (rb.pos % cap) as usize;
        self.data.ctrl(off).store(hdr(state, rb.len));
        // Local bookkeeping so the next combiner tenure can advance the
        // published tail over the contiguous ready prefix.
        self.ready_flags[flag_index(rb.pos, cap)].store(true, Ordering::Release);
    }

    fn try_reserve(&self, st: &mut ProdState, size: u32) -> Result<RbBuf, RingError> {
        if size == 0 {
            // Publish-only pass (from `kick`); never reserves space.
            self.publish(st);
            return Err(RingError::WouldBlock);
        }
        let cap = self.sh.capacity;
        let slot = slot_size(size);
        let pos_in = st.reserve_tail % cap;
        let room = cap - pos_in;
        let wrap = if slot > room { room } else { 0 };
        let need = slot + wrap;

        if !self.sh.lazy {
            // Eager baseline: always read the (remote) authoritative head.
            st.head_replica = self.head_auth.ctrl(0).load();
        }
        let mut free = cap - (st.reserve_tail - st.head_replica);
        if need > free {
            // Lazy scheme: refresh the replica only when the ring looks
            // full (§4.2.4).
            st.head_replica = self.head_auth.ctrl(0).load();
            free = cap - (st.reserve_tail - st.head_replica);
            if need > free {
                return Err(RingError::WouldBlock);
            }
        }

        if wrap > 0 {
            self.data
                .ctrl(pos_in as usize)
                .store(hdr(ST_WRAP, (wrap - HDR) as u32));
            st.pending.push_back(PendingSlot {
                pos: st.reserve_tail,
                slot: wrap,
                auto: true,
            });
            st.reserve_tail += wrap;
        }
        let pos = st.reserve_tail;
        self.data
            .ctrl((pos % cap) as usize)
            .store(hdr(ST_RESERVED, size));
        st.pending.push_back(PendingSlot {
            pos,
            slot,
            auto: false,
        });
        st.reserve_tail += slot;
        if !self.sh.lazy {
            self.publish(st);
        }
        Ok(RbBuf {
            pos,
            len: size,
            staged: None,
        })
    }

    /// Advances the ready frontier over the contiguous published prefix
    /// and stores the authoritative `tail` if it moved.
    fn publish(&self, st: &mut ProdState) {
        let cap = self.sh.capacity;
        while let Some(front) = st.pending.front() {
            if front.auto {
                st.ready_frontier = front.pos + front.slot;
                st.pending.pop_front();
                continue;
            }
            let idx = flag_index(front.pos, cap);
            if self.ready_flags[idx].load(Ordering::Acquire) {
                self.ready_flags[idx].store(false, Ordering::Relaxed);
                st.ready_frontier = front.pos + front.slot;
                st.pending.pop_front();
            } else {
                break;
            }
        }
        if st.published_tail != st.ready_frontier {
            st.published_tail = st.ready_frontier;
            self.tail_auth.ctrl(0).store(st.ready_frontier);
            self.publishes.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Max bytes pulled per staging DMA (the consumer's batched pull).
const STAGE_MAX: u64 = 64 * 1024;

struct ConsState {
    /// Next unexamined position.
    consume: u64,
    /// Reclaim frontier (authoritative `head` shadow).
    head: u64,
    /// Local replica of the producer's authoritative `tail`.
    tail_replica: u64,
    /// Last value stored to the authoritative `head`.
    published_head: u64,
    /// Slots handed out and awaiting `set_done`, in ring order.
    pending: VecDeque<PendingSlot>,
    /// Ring position the staging buffer starts at.
    stage_base: u64,
    /// Staged snapshot of `[stage_base, stage_base + stage.len())`.
    stage: Vec<u8>,
}

struct ConsInner {
    sh: Arc<Shared>,
    data: WindowHandle,
    /// Authoritative `head` window.
    head_auth: WindowHandle,
    /// Peer's authoritative `tail` window.
    tail_auth: WindowHandle,
    /// Process-local done flags, indexed by slot offset / 8.
    done_flags: Box<[AtomicBool]>,
    combiner: Combiner<ConsState, (), Result<RbBuf, RingError>>,
}

/// The receiving endpoint. Clone to share among consumer-side threads.
#[derive(Clone)]
pub struct Consumer {
    inner: Arc<ConsInner>,
}

impl Consumer {
    /// Locates the next ready element (the paper's `rb_dequeue`).
    /// Non-blocking: returns [`RingError::WouldBlock`] when the ring is
    /// empty or the head element is still being filled.
    pub fn dequeue(&self) -> Result<RbBuf, RingError> {
        let inner = &self.inner;
        inner.combiner.submit(
            (),
            |st, ()| inner.try_take(st),
            |st| {
                inner.reclaim(st);
                inner.publish(st);
            },
        )
    }

    /// Copies the element payload out (the paper's `rb_copy_from_rb_buf`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the element size.
    pub fn copy_from(&self, rb: &RbBuf, out: &mut [u8]) {
        assert_eq!(out.len(), rb.len as usize, "copy size mismatch");
        if let Some(staged) = &rb.staged {
            // The batched pull already moved these bytes; local copy.
            out.copy_from_slice(staged);
            return;
        }
        let off = ((rb.pos % self.inner.sh.capacity) + HDR) as usize;
        let mech = mechanism(
            self.inner.sh.copy_mode,
            &self.inner.sh.model,
            self.inner.data.accessor(),
            out.len(),
        );
        self.inner.data.read_elem(mech, off, out);
    }

    /// Releases the element memory for reuse (the paper's `rb_set_done`).
    pub fn set_done(&self, rb: RbBuf) {
        let inner = &self.inner;
        inner.done_flags[flag_index(rb.pos, inner.sh.capacity)].store(true, Ordering::Release);
    }

    /// Convenience: dequeue + copy + release in one call.
    pub fn recv(&self) -> Result<Vec<u8>, RingError> {
        let rb = self.dequeue()?;
        let mut out = vec![0u8; rb.len as usize];
        self.copy_from(&rb, &mut out);
        self.set_done(rb);
        Ok(out)
    }

    /// As [`Consumer::recv`], spinning until an element arrives.
    pub fn recv_blocking(&self) -> Vec<u8> {
        let mut spins = 0u32;
        loop {
            match self.recv() {
                Ok(v) => return v,
                Err(_) => crate::locks::spin_backoff(&mut spins),
            }
        }
    }

    /// Number of combiner tenures (instrumentation for the ablations).
    pub fn combiner_batches(&self) -> u64 {
        self.inner.combiner.batches()
    }
}

impl ConsInner {
    fn try_take(&self, st: &mut ConsState) -> Result<RbBuf, RingError> {
        if !self.sh.lazy {
            st.tail_replica = self.tail_auth.ctrl(0).load();
        }
        loop {
            if st.consume == st.tail_replica {
                // Looks empty: refresh the replica (lazy scheme, §4.2.4).
                st.tail_replica = self.tail_auth.ctrl(0).load();
                if st.consume == st.tail_replica {
                    self.reclaim(st);
                    self.publish(st);
                    return Err(RingError::WouldBlock);
                }
            }
            // Batched pull (§4.2.2's parallel data access, host-pull
            // form): snapshot the published span with one DMA so headers
            // and small payloads are served from local memory.
            self.maybe_stage(st);
            let pos = st.consume;
            let h = self.load_header(st, pos);
            match state_of(h) {
                ST_WRAP => {
                    let slot = slot_size(len_of(h));
                    st.pending.push_back(PendingSlot {
                        pos,
                        slot,
                        auto: true,
                    });
                    st.consume += slot;
                }
                ST_READY => {
                    let len = len_of(h);
                    let slot = slot_size(len);
                    st.pending.push_back(PendingSlot {
                        pos,
                        slot,
                        auto: false,
                    });
                    st.consume += slot;
                    let staged = Self::staged_payload(st, pos, len);
                    if !self.sh.lazy {
                        self.reclaim(st);
                        self.publish(st);
                    }
                    return Ok(RbBuf { pos, len, staged });
                }
                // RESERVED (publication raced ahead in this batch) or a
                // still-zero header in a stale staged snapshot: not ready.
                0 | ST_RESERVED => {
                    self.reclaim(st);
                    self.publish(st);
                    return Err(RingError::WouldBlock);
                }
                // Any other state is impossible under the protocol: the
                // header was corrupted (torn write, dropped PCIe write,
                // fault injection). Surface it; the error is sticky until
                // the ring is reset because `consume` does not advance.
                _ => {
                    self.reclaim(st);
                    self.publish(st);
                    return Err(RingError::Corrupt);
                }
            }
        }
    }

    /// Refreshes the staging buffer when the next header is not covered.
    fn maybe_stage(&self, st: &mut ConsState) {
        if !self.data.is_remote() {
            return;
        }
        // The batched pull is a consequence of the lazy scheme: a deferred
        // tail update tells the consumer about a whole span at once. The
        // eager baseline learns about one element per (remote) tail read
        // and pulls element-wise, as in the paper's Figure 9 baseline.
        if !self.sh.lazy {
            return;
        }
        let pos = st.consume;
        let covered = pos >= st.stage_base && pos + HDR <= st.stage_base + st.stage.len() as u64;
        if covered {
            return;
        }
        let cap = self.sh.capacity;
        let avail = st.tail_replica - pos;
        let room = cap - pos % cap; // Never cross the array wrap.
        let span = avail.min(room).min(STAGE_MAX);
        if span == 0 {
            return;
        }
        st.stage.resize(span as usize, 0);
        self.data.stage_read((pos % cap) as usize, &mut st.stage);
        st.stage_base = pos;
    }

    /// Loads the header at `pos`, preferring the staged snapshot.
    fn load_header(&self, st: &ConsState, pos: u64) -> u64 {
        let end = st.stage_base + st.stage.len() as u64;
        if pos >= st.stage_base && pos + HDR <= end {
            let off = (pos - st.stage_base) as usize;
            u64::from_le_bytes(st.stage[off..off + 8].try_into().expect("8 bytes"))
        } else {
            self.data.ctrl((pos % self.sh.capacity) as usize).load()
        }
    }

    /// Extracts a staged payload copy when the snapshot covers it fully.
    fn staged_payload(st: &ConsState, pos: u64, len: u32) -> Option<Vec<u8>> {
        let start = pos + HDR;
        let end = st.stage_base + st.stage.len() as u64;
        if start >= st.stage_base && start + len as u64 <= end {
            let off = (start - st.stage_base) as usize;
            Some(st.stage[off..off + len as usize].to_vec())
        } else {
            None
        }
    }

    /// Advances the reclaim frontier over released (done) slots and passed
    /// wrap markers, in ring order.
    fn reclaim(&self, st: &mut ConsState) {
        let cap = self.sh.capacity;
        while let Some(front) = st.pending.front() {
            if front.auto {
                st.head = front.pos + front.slot;
                st.pending.pop_front();
                continue;
            }
            let idx = flag_index(front.pos, cap);
            if self.done_flags[idx].load(Ordering::Acquire) {
                self.done_flags[idx].store(false, Ordering::Relaxed);
                st.head = front.pos + front.slot;
                st.pending.pop_front();
            } else {
                break;
            }
        }
    }

    fn publish(&self, st: &mut ConsState) {
        if st.published_head != st.head {
            st.published_head = st.head;
            self.head_auth.ctrl(0).store(st.head);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local_ring(cap: usize) -> (Producer, Consumer) {
        let counters = Arc::new(PcieCounters::new());
        RingBuf::new(RingConfig::local(cap, Side::Host), counters).endpoints()
    }

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = local_ring(1024);
        tx.send(b"hello world").unwrap();
        assert_eq!(rx.recv().unwrap(), b"hello world");
    }

    #[test]
    fn empty_ring_would_block() {
        let (_tx, rx) = local_ring(1024);
        assert_eq!(rx.recv().unwrap_err(), RingError::WouldBlock);
    }

    #[test]
    fn full_ring_would_block_then_drains() {
        let (tx, rx) = local_ring(256);
        // max_elem = 256/4 - 8 = 56.
        let payload = [7u8; 48];
        let mut queued = 0;
        while tx.send(&payload).is_ok() {
            queued += 1;
        }
        assert!(queued >= 3, "queued {queued}");
        assert_eq!(tx.send(&payload).unwrap_err(), RingError::WouldBlock);
        // Drain one; space becomes reclaimable after set_done + reclaim.
        assert_eq!(rx.recv().unwrap(), payload);
        // A dequeue (or batch end) reclaims; next send succeeds eventually.
        let mut ok = false;
        for _ in 0..4 {
            if tx.send(&payload).is_ok() {
                ok = true;
                break;
            }
            let _ = rx.dequeue(); // trigger reclaim passes
        }
        assert!(ok, "send did not succeed after drain");
    }

    #[test]
    fn oversized_element_rejected() {
        let (tx, _rx) = local_ring(1024);
        assert_eq!(tx.send(&[0u8; 512]).unwrap_err(), RingError::TooBig);
        assert_eq!(tx.enqueue(0).unwrap_err(), RingError::TooBig);
    }

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = local_ring(4096);
        for round in 0..50u32 {
            for i in 0..10u32 {
                let v = (round * 10 + i).to_le_bytes();
                tx.send(&v).unwrap();
            }
            for i in 0..10u32 {
                let got = rx.recv().unwrap();
                assert_eq!(got, (round * 10 + i).to_le_bytes());
            }
        }
    }

    #[test]
    fn variable_sizes_wrap_correctly() {
        let (tx, rx) = local_ring(512);
        // Cycle through sizes that do not divide the capacity, forcing
        // wrap markers at varying offsets.
        let sizes = [1usize, 13, 40, 64, 96, 31];
        let mut sent = 0u64;
        let mut received = 0u64;
        for round in 0..2_000 {
            let size = sizes[round % sizes.len()];
            let byte = (round % 251) as u8;
            let data = vec![byte; size];
            tx.send_blocking(&data).unwrap();
            sent += size as u64;
            let got = rx.recv_blocking();
            assert_eq!(got, data, "round {round}");
            received += got.len() as u64;
        }
        assert_eq!(sent, received);
    }

    #[test]
    fn decoupled_phases_interleave() {
        let (tx, rx) = local_ring(4096);
        // Reserve three elements before publishing any.
        let a = tx.enqueue(8).unwrap();
        let b = tx.enqueue(8).unwrap();
        let c = tx.enqueue(8).unwrap();
        // Nothing published: consumer blocks.
        assert_eq!(rx.dequeue().unwrap_err(), RingError::WouldBlock);
        // Publish out of order: b first — FIFO publication means the tail
        // cannot advance past a's unpublished slot.
        tx.copy_to(&b, b"bbbbbbbb");
        tx.set_ready(b);
        tx.kick();
        assert_eq!(rx.dequeue().unwrap_err(), RingError::WouldBlock);
        tx.copy_to(&a, b"aaaaaaaa");
        tx.set_ready(a);
        tx.copy_to(&c, b"cccccccc");
        tx.set_ready(c);
        tx.kick();
        assert_eq!(rx.recv().unwrap(), b"aaaaaaaa");
        assert_eq!(rx.recv().unwrap(), b"bbbbbbbb");
        assert_eq!(rx.recv().unwrap(), b"cccccccc");
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let counters = Arc::new(PcieCounters::new());
        let ring = RingBuf::new(RingConfig::local(1 << 14, Side::Host), counters);
        let (tx, rx) = ring.endpoints();
        let producers = 4;
        let consumers = 4;
        let per_producer = 5_000u32;

        let mut handles = Vec::new();
        for p in 0..producers {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    let token = (p as u32) << 24 | i;
                    tx.send_blocking(&token.to_le_bytes()).unwrap();
                }
            }));
        }
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let total = producers as u32 * per_producer;
        let done = Arc::new(std::sync::atomic::AtomicU32::new(0));
        for _ in 0..consumers {
            let rx = rx.clone();
            let seen = Arc::clone(&seen);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    if done.load(std::sync::atomic::Ordering::Relaxed) >= total {
                        break;
                    }
                    match rx.recv() {
                        Ok(v) => {
                            local.push(u32::from_le_bytes(v.try_into().unwrap()));
                            done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(_) => std::thread::yield_now(),
                    }
                }
                seen.lock().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all = seen.lock().clone();
        assert_eq!(all.len() as u32, total);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u32, total, "duplicated tokens");
    }

    #[test]
    fn lazy_ring_reduces_remote_ctrl_traffic() {
        // Streaming workload: batches of sends, then batches of receives,
        // so lazy replicas amortize their refreshes.
        let run = |lazy: bool| -> u64 {
            let counters = Arc::new(PcieCounters::new());
            let mut cfg = RingConfig::over_pcie(1 << 14, Side::Coproc, Side::Coproc, Side::Host);
            cfg.lazy_control = lazy;
            let ring = RingBuf::new(cfg, Arc::clone(&counters));
            let (tx, rx) = ring.endpoints();
            for _ in 0..40 {
                for _ in 0..32 {
                    tx.send_blocking(&[1u8; 64]).unwrap();
                }
                for _ in 0..32 {
                    let _ = rx.recv_blocking();
                }
            }
            let s = counters.snapshot();
            s.ctrl_reads + s.ctrl_writes + s.rmw_ops
        };
        let lazy = run(true);
        let eager = run(false);
        assert!(
            eager as f64 >= lazy as f64 * 1.8,
            "eager {eager} should far exceed lazy {lazy}"
        );
    }

    #[test]
    fn master_placement_controls_data_locality() {
        // Master at producer: consumer pays remote reads for payloads.
        let counters = Arc::new(PcieCounters::new());
        let cfg = RingConfig::over_pcie(1 << 12, Side::Coproc, Side::Coproc, Side::Host);
        let ring = RingBuf::new(cfg, Arc::clone(&counters));
        let (tx, rx) = ring.endpoints();
        tx.send(&[9u8; 128]).unwrap();
        let _ = rx.recv().unwrap();
        let s = counters.snapshot();
        // Producer payload writes are local (master == producer side);
        // the consumer pulls the whole published span (header + payload)
        // with a single staging DMA and refreshes the tail replica.
        assert_eq!(s.write_lines, 0, "producer payload lines");
        assert_eq!(s.dma_ops, 1, "one batched pull");
        assert_eq!(s.dma_bytes, 8 + 128, "staged span = header + payload");
        assert_eq!(s.read_lines, 0, "no per-element line reads");
        assert!(s.ctrl_reads >= 1, "tail replica refresh");
    }

    #[test]
    fn dma_copy_mode_uses_dma() {
        let counters = Arc::new(PcieCounters::new());
        let cfg = RingConfig::over_pcie(1 << 14, Side::Coproc, Side::Coproc, Side::Host)
            .with_copy_mode(CopyMode::Dma);
        let ring = RingBuf::new(cfg, Arc::clone(&counters));
        let (tx, rx) = ring.endpoints();
        tx.send(&[5u8; 512]).unwrap();
        let _ = rx.recv().unwrap();
        let s = counters.snapshot();
        assert_eq!(s.dma_ops, 1, "consumer used DMA");
        assert_eq!(s.read_lines, 0);
    }

    #[test]
    fn stress_two_sided_heavy_sizes() {
        let counters = Arc::new(PcieCounters::new());
        let ring = RingBuf::new(
            RingConfig::over_pcie(1 << 16, Side::Coproc, Side::Host, Side::Coproc),
            counters,
        );
        let (tx, rx) = ring.endpoints();
        let n = 3_000u32;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let size = 4 + (i as usize * 37) % 2048;
                let mut data = vec![0u8; size];
                data[..4].copy_from_slice(&i.to_le_bytes());
                let checksum = i.wrapping_mul(2654435761) as u8;
                if size > 4 {
                    data[4..].fill(checksum);
                }
                tx.send_blocking(&data).unwrap();
            }
        });
        for i in 0..n {
            let v = rx.recv_blocking();
            let size = 4 + (i as usize * 37) % 2048;
            assert_eq!(v.len(), size, "element {i}");
            assert_eq!(u32::from_le_bytes(v[..4].try_into().unwrap()), i);
            let checksum = i.wrapping_mul(2654435761) as u8;
            assert!(v[4..].iter().all(|&b| b == checksum), "element {i}");
        }
        producer.join().unwrap();
    }

    #[test]
    fn per_producer_fifo_order_preserved() {
        // MPSC: many producers, one consumer. Each producer's tokens must
        // arrive in its program order (the combining queue serializes
        // reservations, and publication is reservation-ordered).
        let counters = Arc::new(PcieCounters::new());
        let ring = RingBuf::new(RingConfig::local(1 << 14, Side::Host), counters);
        let (tx, rx) = ring.endpoints();
        let producers = 6u32;
        let per = 3_000u32;
        let mut handles = Vec::new();
        for p in 0..producers {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let token = [(p as u8), 0, 0, 0]
                        .iter()
                        .chain(i.to_le_bytes().iter())
                        .copied()
                        .collect::<Vec<u8>>();
                    tx.send_blocking(&token).unwrap();
                }
            }));
        }
        let mut next = vec![0u32; producers as usize];
        for _ in 0..(producers * per) {
            let v = rx.recv_blocking();
            let p = v[0] as usize;
            let i = u32::from_le_bytes(v[4..8].try_into().unwrap());
            assert_eq!(i, next[p], "producer {p} out of order");
            next[p] += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(next.iter().all(|&n| n == per));
    }

    #[test]
    fn corrupt_header_detected_and_sticky() {
        let counters = Arc::new(PcieCounters::new());
        let ring = RingBuf::new(RingConfig::local(1024, Side::Host), counters);
        let (tx, rx) = ring.endpoints();
        tx.send(b"good").unwrap();
        assert_eq!(rx.recv().unwrap(), b"good");
        tx.corrupt_next(1);
        tx.send(b"torn").unwrap();
        tx.send(b"after").unwrap();
        // The poisoned element is detected, and the error is sticky: the
        // consumer cannot silently skip corrupted memory.
        assert_eq!(rx.recv().unwrap_err(), RingError::Corrupt);
        assert_eq!(rx.recv().unwrap_err(), RingError::Corrupt);
    }

    #[test]
    fn reset_recovers_a_corrupted_ring() {
        let counters = Arc::new(PcieCounters::new());
        let ring = RingBuf::new(RingConfig::local(1024, Side::Host), counters);
        let (tx, rx) = ring.endpoints();
        tx.corrupt_next(1);
        tx.send(b"torn").unwrap();
        assert_eq!(rx.recv().unwrap_err(), RingError::Corrupt);
        // Recovery: discard the wedged endpoints, reset, mint fresh ones.
        drop((tx, rx));
        ring.reset();
        let (tx, rx) = ring.endpoints();
        assert_eq!(rx.recv().unwrap_err(), RingError::WouldBlock, "empty");
        for i in 0..200u32 {
            tx.send_blocking(&i.to_le_bytes()).unwrap();
            assert_eq!(rx.recv_blocking(), i.to_le_bytes());
        }
    }

    #[test]
    fn partial_publish_wedges_but_does_not_corrupt() {
        // A producer that reserves and never publishes (a crashed peer
        // mid-element) stalls the FIFO — later elements stay invisible —
        // but the consumer sees a clean WouldBlock, not garbage.
        let (tx, rx) = local_ring(1024);
        let wedge = tx.enqueue(8).unwrap();
        tx.send(b"after").unwrap();
        assert_eq!(rx.recv().unwrap_err(), RingError::WouldBlock);
        // The element is eventually published: everything flows again.
        tx.copy_to(&wedge, b"unwedged");
        tx.set_ready(wedge);
        tx.kick();
        assert_eq!(rx.recv().unwrap(), b"unwedged");
        assert_eq!(rx.recv().unwrap(), b"after");
    }

    #[test]
    fn eager_ring_functionally_identical() {
        let counters = Arc::new(PcieCounters::new());
        let cfg = RingConfig::local(4096, Side::Host).eager();
        let ring = RingBuf::new(cfg, counters);
        let (tx, rx) = ring.endpoints();
        for i in 0..500u32 {
            tx.send_blocking(&i.to_le_bytes()).unwrap();
            assert_eq!(rx.recv_blocking(), i.to_le_bytes());
        }
    }

    #[test]
    fn send_batch_roundtrip_with_one_publish() {
        let (tx, rx) = local_ring(1 << 14);
        let wave: Vec<Vec<u8>> = (0..32u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let before = tx.publishes();
        let (sent, rest) = tx.send_batch(wave.clone()).unwrap();
        assert_eq!(sent, 32);
        assert!(rest.is_empty());
        // The whole wave rode one combiner pass and one tail store.
        assert_eq!(tx.publishes() - before, 1, "lazy wave pays one doorbell");
        assert_eq!(tx.wave_stats(), (1, 32));
        for want in &wave {
            assert_eq!(&rx.recv_blocking(), want);
        }
    }

    #[test]
    fn send_batch_bytes_identical_to_unbatched() {
        // Batching is a publish optimization, not a wire change: a
        // consumer must see byte-identical frames in the same order.
        let (btx, brx) = local_ring(1 << 13);
        let (utx, urx) = local_ring(1 << 13);
        let wave: Vec<Vec<u8>> = (0..20u64)
            .map(|i| {
                let mut f = vec![0xc3; (i as usize % 96) + 1];
                f[0] = i as u8;
                f
            })
            .collect();
        for f in &wave {
            utx.send_blocking(f).unwrap();
        }
        btx.send_batch_blocking(wave).unwrap();
        for _ in 0..20 {
            assert_eq!(brx.recv_blocking(), urx.recv_blocking());
        }
    }

    #[test]
    fn send_batch_returns_unsent_tail_when_full() {
        let (tx, rx) = local_ring(1024);
        // 64-byte payloads: 1024/72 ≈ 14 fit at most; ask for 40.
        let wave: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 64]).collect();
        let (sent, rest) = tx.send_batch(wave).unwrap();
        assert!(sent > 0 && sent < 40, "partial wave, got {sent}");
        assert_eq!(rest.len(), 40 - sent);
        assert_eq!(rest[0][0], sent as u8, "tail preserves order");
        for i in 0..sent {
            assert_eq!(rx.recv_blocking(), vec![i as u8; 64]);
        }
        // The remainder resubmits cleanly as the ring drains; the full
        // tail (1872 bytes) never fits a 1024-byte ring at once, so the
        // producer and consumer must interleave.
        let mut rest = rest;
        let mut got = sent;
        while !rest.is_empty() {
            let (_, tail) = tx.send_batch(rest).unwrap();
            rest = tail;
            while let Ok(frame) = rx.recv() {
                assert_eq!(frame, vec![got as u8; 64]);
                got += 1;
            }
        }
        assert_eq!(got, 40);
    }

    #[test]
    fn send_batch_rejects_oversize_without_sending() {
        let (tx, rx) = local_ring(1024);
        let wave = vec![vec![1u8; 8], vec![2u8; 4096]];
        assert!(matches!(tx.send_batch(wave), Err(RingError::TooBig)));
        assert!(rx.recv().is_err(), "nothing was enqueued");
    }

    #[test]
    fn enqueue_batch_reserves_prefix_in_one_pass() {
        let (tx, rx) = local_ring(1 << 13);
        let bufs = tx.enqueue_batch(&[16, 16, 16, 16]).unwrap();
        assert_eq!(bufs.len(), 4);
        let before = tx.publishes();
        for (i, rb) in bufs.into_iter().enumerate() {
            tx.copy_to(&rb, &[i as u8; 16]);
            tx.set_ready(rb);
        }
        tx.kick();
        assert_eq!(tx.publishes() - before, 1);
        for i in 0..4u8 {
            assert_eq!(rx.recv_blocking(), [i; 16]);
        }
        assert!(matches!(tx.enqueue_batch(&[8, 0]), Err(RingError::TooBig)));
    }

    #[test]
    fn eager_send_batch_publishes_per_frame() {
        // The eager ablation has no lazy frontier: every reserve stores
        // the authoritative tail, so a wave still pays ~one doorbell per
        // frame. This asymmetry is E8's reply-side baseline.
        let counters = Arc::new(PcieCounters::new());
        let ring = RingBuf::new(RingConfig::local(1 << 14, Side::Host).eager(), counters);
        let (tx, rx) = ring.endpoints();
        let wave: Vec<Vec<u8>> = (0..16u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let before = tx.publishes();
        let (sent, _) = tx.send_batch(wave.clone()).unwrap();
        assert_eq!(sent, 16);
        assert!(
            tx.publishes() - before >= 16,
            "eager mode keeps per-frame publication"
        );
        for want in &wave {
            assert_eq!(&rx.recv_blocking(), want);
        }
    }
}
