#![warn(missing_docs)]

//! The Solros transport service (§4.2 of the paper).
//!
//! The centerpiece is [`ring::RingBuf`]: a fixed-size ring buffer with
//! variable-size elements, shared across the PCIe bus in a master/shadow
//! arrangement, designed around four ideas:
//!
//! 1. **Decoupled data access** (§4.2.2): `enqueue`/`dequeue` only reserve
//!    or locate an element and return a handle into ring memory; the data
//!    copy (`copy_to`/`copy_from`) and the publish (`set_ready`/`set_done`)
//!    are separate steps, so many threads can move data concurrently while
//!    queue-order operations stay serialized.
//! 2. **Combining** (§4.2.3): queue operations funnel through an MCS-style
//!    request queue; the head thread becomes a *combiner* that batches up
//!    to a threshold of operations for its peers, slashing cache-line
//!    bouncing on the control variables. Only `atomic_swap` and
//!    `compare_and_swap` are required, matching the paper's minimal
//!    hardware contract.
//! 3. **Replicated control variables** (§4.2.4): the producer owns the
//!    authoritative `tail` in its local memory and keeps a *replica* of
//!    `head`, refreshed across PCIe only when the ring looks full (and
//!    vice versa for the consumer), so the common path issues no remote
//!    transactions. The eager variant (no replication) exists as the
//!    Figure 9 baseline.
//! 4. **Adaptive copy** (§4.2.4): element payloads move by load/store
//!    below the initiator's threshold and by DMA above it.
//!
//! The crate also implements the paper's comparison baselines for Figure 8:
//! the Michael–Scott two-lock queue under a ticket lock and under an MCS
//! queue lock ([`twolock::TwoLockQueue`]).

pub mod combiner;
pub mod error;
pub mod locks;
pub mod ring;
pub mod twolock;

pub use error::RingError;
pub use ring::{Consumer, Producer, RbBuf, RingBuf, RingConfig};
pub use twolock::TwoLockQueue;
