//! Property tests for the combining infrastructure and locks.

use std::sync::Arc;

use proptest::prelude::*;
use solros_ringbuf::combiner::Combiner;
use solros_ringbuf::locks::{LockedCounter, McsLock, RawLock, TicketLock};

proptest! {
    // Each case spawns threads; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The combiner applies every submitted operation exactly once, for
    /// any thread count, op count, and batching threshold.
    #[test]
    fn combiner_exactly_once(
        threads in 1usize..6,
        ops in 1u64..800,
        threshold in 1usize..128,
    ) {
        let c = Arc::new(Combiner::<u64, u64, u64>::new(0, threshold));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..ops {
                        c.submit(1, |state, op| { *state += op; *state }, |_| {});
                    }
                });
            }
        });
        let total = c.submit(0, |state, op| { *state += op; *state }, |_| {});
        prop_assert_eq!(total, threads as u64 * ops);
        prop_assert_eq!(c.combined_ops(), threads as u64 * ops + 1);
    }

    /// Locks provide mutual exclusion for arbitrary contender counts.
    #[test]
    fn locks_exclusive(threads in 2usize..6, iters in 100u64..2_000) {
        fn hammer<L: RawLock>(threads: usize, iters: u64) -> u64 {
            let counter = Arc::new(LockedCounter::<L>::default());
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let c = Arc::clone(&counter);
                    s.spawn(move || {
                        for _ in 0..iters {
                            c.increment();
                        }
                    });
                }
            });
            counter.get()
        }
        prop_assert_eq!(hammer::<TicketLock>(threads, iters), threads as u64 * iters);
        prop_assert_eq!(hammer::<McsLock>(threads, iters), threads as u64 * iters);
    }
}
