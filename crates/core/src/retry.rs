//! Bounded retry with exponential backoff for transient failures.
//!
//! Every layer of the stack reports transient conditions through typed
//! errors — [`RpcErr::WouldBlock`]/[`RpcErr::Overloaded`]/
//! [`RpcErr::Timeout`] from the transport and QoS gate, media/timeout/
//! queue-full bursts from the NVMe substrate — and every caller used to
//! hand-roll the same loop around them. [`RetryPolicy`] centralizes that
//! loop: a transient failure first burns the cheap spin/yield band of the
//! shared [`WaitPolicy`] (the peer usually recovers within microseconds),
//! then sleeps an exponential backoff per attempt, and gives up after a
//! bounded number of attempts so a permanent failure surfaces instead of
//! looping forever. Non-transient errors are returned immediately.

use std::time::Duration;

use solros_proto::rpc_error::RpcErr;

use crate::waitpolicy::WaitPolicy;

/// Default attempt budget (first try + retries).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 8;
/// Backoff after the first failed attempt, in microseconds.
pub const BACKOFF_BASE_US: u64 = 50;
/// Backoff ceiling, in microseconds.
pub const BACKOFF_CAP_US: u64 = 5_000;

/// A bounded exponential-backoff retry loop for transient failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts before the last error is returned (≥ 1).
    pub max_attempts: u32,
    /// Sleep after the first failed attempt; doubles per attempt.
    pub base: Duration,
    /// Ceiling on the per-attempt sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            base: Duration::from_micros(BACKOFF_BASE_US),
            cap: Duration::from_micros(BACKOFF_CAP_US),
        }
    }
}

impl RetryPolicy {
    /// The default policy: 8 attempts, 50 µs doubling to a 5 ms cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// The backoff slept after failed attempt number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1);
        let us = (self.base.as_micros() as u64)
            .checked_shl(shift)
            .map_or(self.cap.as_micros() as u64, |v| {
                v.min(self.cap.as_micros() as u64)
            });
        Duration::from_micros(us)
    }

    /// Runs `op` until it succeeds, fails permanently, or exhausts the
    /// attempt budget. `op` receives the zero-based attempt index;
    /// `is_transient` decides whether a failure is worth retrying.
    pub fn run<T, E>(
        &self,
        is_transient: impl Fn(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let mut policy = WaitPolicy::new();
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.max_attempts.max(1) || !is_transient(&e) {
                        return Err(e);
                    }
                    self.pause(&mut policy, attempt);
                }
            }
        }
    }

    /// As [`RetryPolicy::run`] with transience decided by
    /// [`RpcErr::is_transient`] — the shape every RPC submit path wants.
    pub fn run_rpc<T>(&self, op: impl FnMut(u32) -> Result<T, RpcErr>) -> Result<T, RpcErr> {
        self.run(|e: &RpcErr| e.is_transient(), op)
    }

    /// One inter-attempt pause: drain the wait policy's spin/yield band
    /// (cheap — the condition usually clears in microseconds), then sleep
    /// at least this attempt's exponential backoff.
    fn pause(&self, policy: &mut WaitPolicy, attempt: u32) {
        loop {
            match policy.pause() {
                None => continue,
                Some(park) => {
                    std::thread::sleep(park.max(self.backoff(attempt)));
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_failures_retry_until_success() {
        let policy = RetryPolicy {
            base: Duration::from_micros(1),
            cap: Duration::from_micros(10),
            ..RetryPolicy::new()
        };
        let out = policy
            .run_rpc(|attempt| {
                if attempt < 3 {
                    Err(RpcErr::WouldBlock)
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(out, 3);
    }

    #[test]
    fn permanent_failures_return_immediately() {
        let mut calls = 0;
        let err = RetryPolicy::new()
            .run_rpc(|_| -> Result<(), _> {
                calls += 1;
                Err(RpcErr::NotFound)
            })
            .unwrap_err();
        assert_eq!(err, RpcErr::NotFound);
        assert_eq!(calls, 1, "non-transient errors must not retry");
    }

    #[test]
    fn attempt_budget_bounds_the_loop() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(1),
            cap: Duration::from_micros(10),
        };
        let mut calls = 0;
        let err = policy
            .run_rpc(|_| -> Result<(), _> {
                calls += 1;
                Err(RpcErr::Overloaded)
            })
            .unwrap_err();
        assert_eq!(err, RpcErr::Overloaded);
        assert_eq!(calls, 4);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::new();
        assert_eq!(p.backoff(1), Duration::from_micros(BACKOFF_BASE_US));
        assert_eq!(p.backoff(2), Duration::from_micros(2 * BACKOFF_BASE_US));
        assert_eq!(p.backoff(3), Duration::from_micros(4 * BACKOFF_BASE_US));
        assert_eq!(p.backoff(30), Duration::from_micros(BACKOFF_CAP_US));
        assert_eq!(p.backoff(500), Duration::from_micros(BACKOFF_CAP_US));
    }
}
