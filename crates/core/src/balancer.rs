//! Pluggable forwarding policies for shared listening sockets (§4.4.3).
//!
//! Multiple co-processors may listen on the same port; each incoming
//! connection is assigned to one of them by a [`LoadBalancer`] (the
//! paper implements connection-based round-robin; a content/address-hash
//! policy and a least-loaded policy are provided as pluggable examples).

/// Metadata about an incoming connection, fed to the balancer.
#[derive(Debug, Clone, Copy)]
pub struct ConnMeta {
    /// Remote client identifier.
    pub client_addr: u64,
    /// Listening port.
    pub port: u16,
}

/// A pluggable forwarding policy for shared listening sockets (§4.4.3).
pub trait LoadBalancer: Send {
    /// Picks the index of the listener (among `n` candidates, in
    /// registration order) that receives this connection.
    fn pick(&mut self, n: usize, meta: &ConnMeta) -> usize;

    /// Informs the policy that the connection went to listener `idx`
    /// (the value returned by [`LoadBalancer::pick`]). Default: ignored.
    fn conn_assigned(&mut self, idx: usize) {
        let _ = idx;
    }

    /// Informs the policy that a connection previously assigned to
    /// listener `idx` has closed. Default: ignored.
    fn conn_closed(&mut self, idx: usize) {
        let _ = idx;
    }
}

/// The paper's connection-based round-robin policy.
#[derive(Default)]
pub struct RoundRobin {
    next: usize,
}

impl LoadBalancer for RoundRobin {
    fn pick(&mut self, n: usize, _meta: &ConnMeta) -> usize {
        let i = self.next % n;
        self.next = self.next.wrapping_add(1);
        i
    }
}

/// A content-based policy: hash the client address, so one client always
/// lands on the same co-processor (example of a user-provided rule).
#[derive(Default)]
pub struct AddrHash;

impl LoadBalancer for AddrHash {
    fn pick(&mut self, n: usize, meta: &ConnMeta) -> usize {
        (meta.client_addr as usize).wrapping_mul(0x9E37_79B9) % n
    }
}

/// Routes each connection to the listener with the fewest in-flight
/// connections, so a co-processor stuck on long-lived transfers stops
/// receiving new work while its siblings stay busy. Ties break with a
/// rotating cursor, which degrades to round-robin under uniform load.
#[derive(Default)]
pub struct LeastLoaded {
    in_flight: Vec<u64>,
    next: usize,
}

impl LoadBalancer for LeastLoaded {
    fn pick(&mut self, n: usize, _meta: &ConnMeta) -> usize {
        if self.in_flight.len() < n {
            self.in_flight.resize(n, 0);
        }
        let winner = (0..n)
            .map(|k| (self.next + k) % n)
            .min_by_key(|&i| self.in_flight[i])
            .unwrap_or(0);
        self.next = (winner + 1) % n.max(1);
        winner
    }

    fn conn_assigned(&mut self, idx: usize) {
        if self.in_flight.len() <= idx {
            self.in_flight.resize(idx + 1, 0);
        }
        self.in_flight[idx] += 1;
    }

    fn conn_closed(&mut self, idx: usize) {
        if let Some(c) = self.in_flight.get_mut(idx) {
            *c = c.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let meta = ConnMeta {
            client_addr: 1,
            port: 80,
        };
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(3, &meta)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn addr_hash_is_sticky() {
        let mut h = AddrHash;
        for addr in 0..50u64 {
            let meta = ConnMeta {
                client_addr: addr,
                port: 80,
            };
            let a = h.pick(4, &meta);
            let b = h.pick(4, &meta);
            assert_eq!(a, b, "same client must land on the same coproc");
            assert!(a < 4);
        }
    }

    #[test]
    fn least_loaded_stays_fair_under_skewed_lifetimes() {
        // Connections landing on co-processor 0 are long-lived (never
        // close); everywhere else they close immediately. Round-robin
        // keeps feeding the overloaded co-processor; least-loaded must
        // divert new work away from it.
        let run = |lb: &mut dyn LoadBalancer, n: usize, arrivals: u64| -> Vec<u64> {
            let mut assigned = vec![0u64; n];
            for addr in 0..arrivals {
                let meta = ConnMeta {
                    client_addr: addr,
                    port: 80,
                };
                let idx = lb.pick(n, &meta);
                lb.conn_assigned(idx);
                assigned[idx] += 1;
                if idx != 0 {
                    lb.conn_closed(idx);
                }
            }
            assigned
        };

        let mut ll = LeastLoaded::default();
        let fair = run(&mut ll, 3, 300);
        // Co-processor 0 accumulates in-flight connections, so it should
        // receive almost nothing beyond its first few picks while the
        // siblings absorb the rest of the skewed arrival stream.
        assert!(
            fair[0] <= 3,
            "least-loaded kept feeding the loaded coproc: {fair:?}"
        );
        assert!(
            fair[1] >= 100 && fair[2] >= 100,
            "siblings starved: {fair:?}"
        );

        let mut rr = RoundRobin::default();
        let skewed = run(&mut rr, 3, 300);
        assert_eq!(
            skewed[0], 100,
            "round-robin should ignore load, proving the contrast: {skewed:?}"
        );
    }
}
