//! Pluggable forwarding policies for shared listening sockets (§4.4.3).
//!
//! Multiple co-processors may listen on the same port; each incoming
//! connection is assigned to one of them by a [`LoadBalancer`] (the
//! paper implements connection-based round-robin; a content/address-hash
//! policy and a least-loaded policy are provided as pluggable examples).
//!
//! Every method takes `&self`: policies keep their counters in atomics so
//! the accept path never serializes on a policy-wide lock, and so each
//! engine shard can hold its own replica ([`LoadBalancer::fork`]) whose
//! load view is kept convergent by replaying `conn_assigned`/`conn_closed`
//! notifications from the shared control-plane operation log.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

/// Metadata about an incoming connection, fed to the balancer.
#[derive(Debug, Clone, Copy)]
pub struct ConnMeta {
    /// Remote client identifier.
    pub client_addr: u64,
    /// Listening port.
    pub port: u16,
}

/// A pluggable forwarding policy for shared listening sockets (§4.4.3).
pub trait LoadBalancer: Send + Sync {
    /// Picks the index of the listener (among `n` candidates, in
    /// registration order) that receives this connection.
    fn pick(&self, n: usize, meta: &ConnMeta) -> usize;

    /// Informs the policy that the connection went to listener `idx`
    /// (the value returned by [`LoadBalancer::pick`]). Default: ignored.
    fn conn_assigned(&self, idx: usize) {
        let _ = idx;
    }

    /// Informs the policy that a connection previously assigned to
    /// listener `idx` has closed. Default: ignored.
    fn conn_closed(&self, idx: usize) {
        let _ = idx;
    }

    /// Creates a fresh replica of this policy with zeroed counters, used
    /// by the sharded control plane to give every NUMA domain a local
    /// copy. Replicas converge by applying the same notification stream
    /// from the operation log, so they start from the same (empty) state.
    fn fork(&self) -> Box<dyn LoadBalancer>;
}

/// The paper's connection-based round-robin policy.
#[derive(Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl LoadBalancer for RoundRobin {
    fn pick(&self, n: usize, _meta: &ConnMeta) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % n
    }

    fn fork(&self) -> Box<dyn LoadBalancer> {
        Box::new(RoundRobin::default())
    }
}

/// A content-based policy: hash the client address, so one client always
/// lands on the same co-processor (example of a user-provided rule).
#[derive(Default)]
pub struct AddrHash;

impl LoadBalancer for AddrHash {
    fn pick(&self, n: usize, meta: &ConnMeta) -> usize {
        (meta.client_addr as usize).wrapping_mul(0x9E37_79B9) % n
    }

    fn fork(&self) -> Box<dyn LoadBalancer> {
        Box::new(AddrHash)
    }
}

/// Listener slots a [`LeastLoaded`] policy can track. Shared listening
/// sockets have one slot per listening co-processor, so this bound is
/// far above any plausible machine.
const LL_SLOTS: usize = 64;

/// Routes each connection to the listener with the fewest in-flight
/// connections, so a co-processor stuck on long-lived transfers stops
/// receiving new work while its siblings stay busy. Ties break with a
/// rotating cursor, which degrades to round-robin under uniform load.
///
/// Counters are signed: a close notification racing ahead of its assign
/// (possible when replicas replay the log out of lock-step with local
/// picks) must not wrap to `u64::MAX` and poison the policy. The
/// [`LeastLoaded::negative_excursions`] tripwire counts such transients;
/// a steady-state nonzero reading means lost assign notifications.
pub struct LeastLoaded {
    in_flight: [AtomicI64; LL_SLOTS],
    next: AtomicUsize,
    negative_excursions: AtomicI64,
}

impl Default for LeastLoaded {
    fn default() -> Self {
        LeastLoaded {
            in_flight: [const { AtomicI64::new(0) }; LL_SLOTS],
            next: AtomicUsize::new(0),
            negative_excursions: AtomicI64::new(0),
        }
    }
}

impl LeastLoaded {
    /// Current in-flight count for listener `idx` (testing/observability).
    pub fn in_flight(&self, idx: usize) -> i64 {
        self.in_flight[idx % LL_SLOTS].load(Ordering::Relaxed)
    }

    /// Times a counter dipped below zero (close observed before its
    /// assign). Must read 0 whenever notification delivery is in-order.
    pub fn negative_excursions(&self) -> i64 {
        self.negative_excursions.load(Ordering::Relaxed)
    }
}

impl LoadBalancer for LeastLoaded {
    fn pick(&self, n: usize, _meta: &ConnMeta) -> usize {
        let n = n.clamp(1, LL_SLOTS);
        let start = self.next.load(Ordering::Relaxed);
        let winner = (0..n)
            .map(|k| (start + k) % n)
            .min_by_key(|&i| self.in_flight[i].load(Ordering::Relaxed))
            .unwrap_or(0);
        self.next.store((winner + 1) % n, Ordering::Relaxed);
        winner
    }

    fn conn_assigned(&self, idx: usize) {
        self.in_flight[idx % LL_SLOTS].fetch_add(1, Ordering::Relaxed);
    }

    fn conn_closed(&self, idx: usize) {
        let prev = self.in_flight[idx % LL_SLOTS].fetch_sub(1, Ordering::Relaxed);
        if prev <= 0 {
            self.negative_excursions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn fork(&self) -> Box<dyn LoadBalancer> {
        Box::new(LeastLoaded::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let rr = RoundRobin::default();
        let meta = ConnMeta {
            client_addr: 1,
            port: 80,
        };
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(3, &meta)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn addr_hash_is_sticky() {
        let h = AddrHash;
        for addr in 0..50u64 {
            let meta = ConnMeta {
                client_addr: addr,
                port: 80,
            };
            let a = h.pick(4, &meta);
            let b = h.pick(4, &meta);
            assert_eq!(a, b, "same client must land on the same coproc");
            assert!(a < 4);
        }
    }

    #[test]
    fn least_loaded_stays_fair_under_skewed_lifetimes() {
        // Connections landing on co-processor 0 are long-lived (never
        // close); everywhere else they close immediately. Round-robin
        // keeps feeding the overloaded co-processor; least-loaded must
        // divert new work away from it.
        let run = |lb: &dyn LoadBalancer, n: usize, arrivals: u64| -> Vec<u64> {
            let mut assigned = vec![0u64; n];
            for addr in 0..arrivals {
                let meta = ConnMeta {
                    client_addr: addr,
                    port: 80,
                };
                let idx = lb.pick(n, &meta);
                lb.conn_assigned(idx);
                assigned[idx] += 1;
                if idx != 0 {
                    lb.conn_closed(idx);
                }
            }
            assigned
        };

        let ll = LeastLoaded::default();
        let fair = run(&ll, 3, 300);
        // Co-processor 0 accumulates in-flight connections, so it should
        // receive almost nothing beyond its first few picks while the
        // siblings absorb the rest of the skewed arrival stream.
        assert!(
            fair[0] <= 3,
            "least-loaded kept feeding the loaded coproc: {fair:?}"
        );
        assert!(
            fair[1] >= 100 && fair[2] >= 100,
            "siblings starved: {fair:?}"
        );
        assert_eq!(ll.negative_excursions(), 0);

        let rr = RoundRobin::default();
        let skewed = run(&rr, 3, 300);
        assert_eq!(
            skewed[0], 100,
            "round-robin should ignore load, proving the contrast: {skewed:?}"
        );
    }

    #[test]
    fn forked_replicas_start_clean_and_converge_under_same_stream() {
        let a = LeastLoaded::default();
        a.conn_assigned(2);
        let b = a.fork();
        // Fork starts from zeroed counters...
        let meta = ConnMeta {
            client_addr: 7,
            port: 80,
        };
        assert_eq!(b.pick(3, &meta), 0);
        // ...and converges with the original once it replays the same
        // notification stream. Leave listener 1 strictly least-loaded so
        // the expected pick is independent of each replica's rotating
        // tie-break cursor (cursor state is shard-local by design).
        b.conn_assigned(2);
        for idx in [0usize, 0, 2] {
            a.conn_assigned(idx);
            b.conn_assigned(idx);
        }
        a.conn_closed(2);
        b.conn_closed(2);
        let a_view: Vec<i64> = (0..3).map(|i| a.in_flight(i)).collect();
        assert_eq!(a_view, vec![2, 0, 1]);
        assert_eq!(a.pick(3, &meta), 1, "a={a_view:?}");
        assert_eq!(b.pick(3, &meta), 1, "replica diverged from {a_view:?}");
    }

    #[test]
    fn close_before_assign_trips_the_negative_tripwire_without_wrapping() {
        let ll = LeastLoaded::default();
        ll.conn_closed(1);
        assert_eq!(ll.in_flight(1), -1);
        assert_eq!(ll.negative_excursions(), 1);
        // The late assign restores balance; no wraparound poisoning.
        ll.conn_assigned(1);
        assert_eq!(ll.in_flight(1), 0);
        let meta = ConnMeta {
            client_addr: 1,
            port: 80,
        };
        assert!(ll.pick(4, &meta) < 4);
    }
}
