//! Admission-time job types carried through the scheduler and pool.

/// How a request touches a named resource (an inode, today).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read-only metadata access; may wait behind exclusive holders.
    Shared,
    /// Mutating access; holds the resource from admission to completion.
    Exclusive,
}

/// One admitted request queued through the QoS gate.
///
/// The frame is decoded exactly once at admission ([`crate::proxy_engine`]
/// fixes the historical double decode by construction: the scheduler item
/// carries the parsed request, so dispatch never re-reads raw bytes).
#[derive(Debug)]
pub struct GateJob<R> {
    /// Lane (co-processor channel) the frame arrived on.
    pub lane: usize,
    /// Wire tag echoed in the reply.
    pub tag: u32,
    /// Submission flags (barrier bit, deadline nibble).
    pub flags: u8,
    /// The decoded request.
    pub req: R,
    /// Resource the request touches, noted at admission so shared
    /// accesses dispatched later can defer behind exclusive holders.
    pub touch: Option<(u64, Access)>,
    /// Tenant charged at admission; carried so a failover wreck can
    /// refund charges for work that will never be served.
    pub tenant: u8,
}

/// One request cleared for execution: past the gate (or FIFO-admitted),
/// past the inheritance lock check, headed to a worker or inline run.
#[derive(Debug)]
pub struct ReadyJob<R> {
    /// Lane whose response ring receives the reply.
    pub lane: usize,
    /// Wire tag echoed in the reply.
    pub tag: u32,
    /// Credit byte to stamp on the reply (QoS path only).
    pub credit: Option<u8>,
    /// The decoded request.
    pub req: R,
    /// `(resource, flow)` to release when the request completes —
    /// present iff the request holds the resource exclusively.
    pub release: Option<(u64, usize)>,
    /// Tenant charged at admission (see [`GateJob::tenant`]).
    pub tenant: u8,
}
