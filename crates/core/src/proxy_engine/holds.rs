//! External-holder bookkeeping: resources pinned by lease holders that
//! live *outside* the engine's request lifecycle.
//!
//! The inheritance lock model in [`crate::proxy_engine`] tracks holders
//! the engine itself admitted — an exclusive touch holds its resource
//! from gate admission to completion. An extent lease
//! ([`solros_lease::LeaseManager`]) breaks that assumption: the holder
//! is a co-processor doing zero-RPC P2P I/O, so the engine never sees
//! its operations at all. [`ExternalHolds`] is the bridge: the lease
//! manager registers it as a [`solros_lease::RecallSink`], every grant
//! adds a hold on the leased inode, and every settle frees it. The
//! engine consults the table when routing and parks conflicting RPC
//! jobs until the recall protocol settles the lease.

use std::collections::HashMap;

use parking_lot::Mutex;
use solros_lease::RecallSink;

/// Per-resource external hold counts: `(writers, readers)`.
///
/// Write leases hold exclusively (every RPC job touching the inode
/// defers); read leases hold shared (only exclusive RPC jobs defer —
/// an RPC read coexists with a read lease just fine).
#[derive(Debug, Default)]
pub struct ExternalHolds {
    held: Mutex<HashMap<u64, (u64, u64)>>,
    /// Resources whose hold count dropped, pending an engine drain.
    /// Every `free` pushes here unconditionally so the engine never
    /// misses a wakeup for a job parked between check and settle.
    freed: Mutex<Vec<u64>>,
}

impl ExternalHolds {
    /// Builds an empty hold table.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when `res` carries any external hold.
    pub fn is_held(&self, res: u64) -> bool {
        self.held.lock().get(&res).is_some_and(|(w, r)| *w + *r > 0)
    }

    /// Whether a job with the given access would conflict with the
    /// external holds on `res`: writers block everything, readers block
    /// only exclusive jobs.
    pub fn blocks(&self, res: u64, exclusive_job: bool) -> bool {
        self.held
            .lock()
            .get(&res)
            .is_some_and(|(w, r)| *w > 0 || (exclusive_job && *r > 0))
    }

    /// Drains the freed-resource queue (engine cycle entry point).
    pub(crate) fn take_freed(&self) -> Vec<u64> {
        std::mem::take(&mut *self.freed.lock())
    }
}

impl RecallSink for ExternalHolds {
    fn hold(&self, resource: u64, exclusive: bool) {
        let mut held = self.held.lock();
        let e = held.entry(resource).or_default();
        if exclusive {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    fn free(&self, resource: u64, exclusive: bool) {
        {
            let mut held = self.held.lock();
            if let Some(e) = held.get_mut(&resource) {
                if exclusive {
                    e.0 = e.0.saturating_sub(1);
                } else {
                    e.1 = e.1.saturating_sub(1);
                }
                if e.0 + e.1 == 0 {
                    held.remove(&resource);
                }
            }
        }
        self.freed.lock().push(resource);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_holds_block_everything_read_holds_block_exclusives() {
        let h = ExternalHolds::new();
        h.hold(7, false);
        assert!(h.is_held(7));
        assert!(!h.blocks(7, false), "read lease admits shared jobs");
        assert!(h.blocks(7, true), "read lease defers exclusive jobs");
        h.hold(7, true);
        assert!(h.blocks(7, false), "write lease defers shared jobs");
        h.free(7, true);
        h.free(7, false);
        assert!(!h.is_held(7));
        assert!(!h.blocks(7, true));
        assert_eq!(h.take_freed(), vec![7, 7], "every free queues a wakeup");
        assert!(h.take_freed().is_empty());
    }
}
