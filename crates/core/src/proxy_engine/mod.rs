//! The shared proxy engine.
//!
//! Historically each control-plane proxy ([`crate::fs_proxy::FsProxy`],
//! [`crate::tcp_proxy::TcpProxy`]) carried a private copy of the same
//! request lifecycle: drain a burst from the request ring, decode, run
//! the QoS gate, dispatch to workers, settle credits and sheds. The two
//! copies had drifted (the TCP path decoded every frame twice; the FS
//! path owned the only panic-containment code) and every lifecycle fix
//! had to land twice.
//!
//! This module extracts that lifecycle once, behind the [`OpHandler`]
//! trait:
//!
//! ```text
//!   req ring ─► admission (decode once) ─► DWRR gate ─► dispatch
//!                   │                         │            │
//!                   └─ malformed ► error      └─ shed ►    ├─► stage (wave)
//!                                     credit-stamped reply ├─► worker pool
//!                                                          └─► inline exec
//!                                             flush ◄──────────┘
//!                                               └─► resp ring (credit, faults)
//! ```
//!
//! Reply settlement is batched (the symmetric half of the request-side
//! wave): every reply producer posts into a per-lane [`ReplySettler`]
//! accumulator and the engine settles one vectored enqueue — one
//! control-variable publish on a lazy ring — per `(lane, cycle)`.
//!
//! The engine also implements priority inheritance for metadata
//! operations: an exclusive touch (an FS write) holds its resource from
//! gate admission to completion; a shared touch (an fstat) dispatched
//! onto a held resource defers, and the holder's flow is promoted to the
//! waiter's effective weight until the last hold releases.

mod admission;
mod engine;
mod health;
mod holds;
mod settle;
mod stats;

pub use admission::{Access, GateJob, ReadyJob};
pub use engine::{EngineLane, OpHandler, ProxyEngine, DRAIN_BURST};
pub use health::{ShardHealth, StagedPart, Wreck};
pub use holds::ExternalHolds;
pub use settle::ReplySettler;
pub use stats::ProxyStats;
