//! Batched reply settlement: the reply-side half of the wave pipeline.
//!
//! PR 2 made the *request* path ride waves — one doorbell per batch of
//! submissions — but every reply still paid a full `send_blocking`
//! (enqueue + combiner pass + control-variable publish) per completion.
//! The settler mirrors the request-side wave on the reply ring: every
//! reply producer in the engine — worker-pool results, handler `flush`
//! output, shed/malformed/credit replies alike — accumulates frames
//! here, and the engine settles each lane's accumulation with **one**
//! [`Producer::send_batch_blocking`] per `(lane, cycle)`. On a lazy ring
//! that is one control-variable publish (doorbell-equivalent) per wave
//! instead of one per reply.
//!
//! Ordering: frames buffer per lane in post order, and the vectored
//! enqueue preserves that order, so per-lane reply order is identical to
//! the per-reply path. Backpressure is unchanged too — a full response
//! ring blocks the settling thread exactly where `send_blocking` used
//! to block the posting thread.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;
use solros_faults::EngineFaults;
use solros_ringbuf::Producer;

use super::stats::ProxyStats;

/// Per-lane reply accumulator shared by the engine thread, the worker
/// pool, and the handler's flush path.
pub struct ReplySettler {
    lanes: Vec<Producer>,
    faults: Arc<EngineFaults>,
    stats: Arc<ProxyStats>,
    pending: Vec<Mutex<Vec<Vec<u8>>>>,
}

impl ReplySettler {
    /// Builds a settler over one response-ring producer per lane.
    pub fn new(
        lanes: Vec<Producer>,
        faults: Arc<EngineFaults>,
        stats: Arc<ProxyStats>,
    ) -> Arc<Self> {
        let pending = (0..lanes.len()).map(|_| Mutex::new(Vec::new())).collect();
        Arc::new(Self {
            lanes,
            faults,
            stats,
            pending,
        })
    }

    /// Buffers one reply for the lane's next settlement wave, honouring
    /// the armed reply-drop fault (a crashed stub whose response link is
    /// gone; client deadlines recover the tags). The fault is consumed
    /// here, at post time, so it lands on the intended frame.
    pub fn post(&self, lane: usize, frame: Vec<u8>) {
        if self.faults.take_dropped_reply() {
            self.stats.dropped_replies.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.pending[lane].lock().push(frame);
    }

    /// Surrenders every buffered reply without publishing it — the
    /// failover path: a dying shard's already-computed replies join its
    /// [`super::Wreck`] and the supervisor publishes them verbatim on
    /// the same rings, preserving exactly-once delivery.
    pub fn drain_pending(&self) -> Vec<(usize, Vec<u8>)> {
        let mut out = Vec::new();
        for (lane, pending) in self.pending.iter().enumerate() {
            for frame in std::mem::take(&mut *pending.lock()) {
                out.push((lane, frame));
            }
        }
        out
    }

    /// Settles every lane's accumulated replies with one batched enqueue
    /// per lane, spinning out backpressure exactly as the per-reply
    /// `send_blocking` did. Returns true when anything was flushed.
    pub fn settle(&self) -> bool {
        let mut flushed = false;
        for (lane, pending) in self.pending.iter().enumerate() {
            let wave = std::mem::take(&mut *pending.lock());
            if wave.is_empty() {
                continue;
            }
            flushed = true;
            let tx = &self.lanes[lane];
            // An oversized frame was silently unsendable on the
            // per-reply path (`let _ = send_blocking`) and stays so.
            let max = tx.max_element();
            let wave: Vec<Vec<u8>> = wave.into_iter().filter(|f| f.len() <= max).collect();
            if wave.is_empty() {
                continue;
            }
            let n = wave.len() as u64;
            let before = tx.publishes();
            let _ = tx.send_batch_blocking(wave);
            self.stats
                .reply_publishes
                .fetch_add(tx.publishes() - before, Ordering::Relaxed);
            self.stats.reply_waves.fetch_add(1, Ordering::Relaxed);
            self.stats.replies.fetch_add(n, Ordering::Relaxed);
        }
        flushed
    }
}
