//! The shared proxy engine: one admission → schedule → wave → reply
//! pipeline driving both control-plane proxies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use solros_faults::EngineFaults;
use solros_proto::codec::{peek_tag, stamp_credit, FLAG_BARRIER};
use solros_proto::rpc_error::RpcErr;
use solros_proto::{AdmitRequest, AdmittedFrame};
use solros_qos::{Dispatch, HostGate, TenantLedger, Verdict};
use solros_ringbuf::{Consumer, Producer};

use super::admission::{Access, GateJob, ReadyJob};
use super::health::{ShardHealth, StagedPart, Wreck};
use super::holds::ExternalHolds;
use super::settle::ReplySettler;
use super::stats::ProxyStats;

/// Frames drained from each request ring per FIFO admission burst.
pub const DRAIN_BURST: usize = 64;
/// Frames admitted per lane per gated admission burst.
const ADMIT_BURST: usize = 32;
/// Scheduled requests dispatched per gated drain burst.
const DISPATCH_BURST: usize = 64;

/// The operations a proxy plugs into the engine.
///
/// The engine owns the request lifecycle — draining rings, decoding each
/// frame exactly once, QoS scheduling, priority inheritance, worker
/// dispatch with panic containment, and reply settlement. A handler
/// supplies only the service semantics: how to execute, classify, and
/// (optionally) coalesce requests. Handlers use interior mutability;
/// every method takes `&self` so a worker pool can execute concurrently.
pub trait OpHandler: Send + Sync {
    /// The request family served (decoded once at admission).
    type Req: AdmitRequest + Send + 'static;

    /// Encodes an error reply for `tag` (the engine settles sheds,
    /// malformed frames, and contained panics uniformly through this).
    fn encode_err(&self, tag: u32, err: RpcErr) -> Vec<u8>;

    /// Maps a request to `(flow index, payload bytes)` for the QoS gate.
    fn classify(&self, lane: usize, req: &Self::Req) -> (usize, u64);

    /// Executes one request, returning the encoded reply frame.
    fn exec(&self, lane: usize, tag: u32, req: Self::Req) -> Vec<u8>;

    /// Worker-pool width; 0 executes inline on the engine thread.
    fn workers(&self) -> usize {
        0
    }

    /// Names the resource a request touches, for priority inheritance.
    /// Exclusive touches hold the resource from admission to completion;
    /// shared touches dispatched onto a held resource wait for release.
    fn touches(&self, req: &Self::Req) -> Option<(u64, Access)> {
        let _ = req;
        None
    }

    /// Offers a request for wave coalescing before it reaches a worker.
    /// Returning `None` means the handler staged it (the reply arrives at
    /// the next [`OpHandler::flush`]); returning the request back sends
    /// it down the normal execution path.
    fn stage(
        &self,
        lane: usize,
        tag: u32,
        credit: Option<u8>,
        tenant: u8,
        req: Self::Req,
    ) -> Option<Self::Req> {
        let _ = (lane, tag, credit, tenant);
        Some(req)
    }

    /// Flushes staged work, emitting `(lane, reply frame)` per completion.
    fn flush(&self, reply: &mut dyn FnMut(usize, Vec<u8>)) {
        let _ = reply;
    }

    /// Abandons every staged-but-unflushed wave entry, returning what
    /// each one owed (tag, credit, tenant charge). Called only by a
    /// dying shard's wreck dump; the staged requests will never execute,
    /// so the supervisor settles their tags as `Gone` and refunds their
    /// admission charges.
    fn abort_staged(&self) -> Vec<StagedPart> {
        Vec::new()
    }

    /// Handler-specific polling (NIC events, accepts). Returns true when
    /// any work happened.
    fn poll(&self) -> bool {
        false
    }

    /// The handler's external-hold table, when it grants extent leases.
    /// Jobs touching an externally-held resource park until the hold
    /// frees; `None` (the default) skips the check entirely.
    fn external_holds(&self) -> Option<&ExternalHolds> {
        None
    }

    /// Asks the handler to start recalling the leases pinning `res`.
    /// `exclusive` is the *waiting job's* access: an exclusive waiter
    /// needs every lease recalled, a shared waiter only conflicts with
    /// write leases. Fire-and-forget — the freed queue re-routes the
    /// parked job once the recall protocol settles.
    fn recall(&self, res: u64, exclusive: bool) {
        let _ = (res, exclusive);
    }

    /// Synchronously recalls every lease on `res` (barrier/shutdown
    /// override). Must not return until the leases settled — by ack or
    /// by the manager's forced revoke — so flushed jobs run against
    /// settled data.
    fn recall_sync(&self, res: u64) {
        let _ = res;
    }
}

/// One co-processor channel served by the engine.
pub struct EngineLane {
    /// Drains the co-processor's requests.
    pub req_rx: Consumer,
    /// Pushes replies.
    pub resp_tx: Producer,
}

/// Exclusive-hold bookkeeping for one resource.
#[derive(Default)]
struct HolderRec {
    /// In-flight exclusive requests (admission through completion).
    total: u64,
    /// In-flight count per holding flow.
    by_flow: HashMap<usize, u64>,
    /// Flows promoted on behalf of waiters; demoted at release.
    promoted: Vec<usize>,
}

/// The request pipeline behind every control-plane proxy.
///
/// Each cycle: settle completions (releasing exclusive holds), route
/// freed waiters, admit a burst from each request ring (one decode per
/// frame), dispatch through the optional DWRR gate with priority
/// inheritance, flush the handler's coalescing wave, and poll.
pub struct ProxyEngine<H: OpHandler> {
    handler: Arc<H>,
    lanes: Vec<EngineLane>,
    stats: Arc<ProxyStats>,
    faults: Arc<EngineFaults>,
    /// Per-lane reply accumulator; every reply producer posts here and
    /// the engine settles one batched enqueue per `(lane, cycle)`.
    settler: Arc<ReplySettler>,
    gate: Option<HostGate<GateJob<H::Req>>>,
    epoch: Instant,
    /// Promote lock-holding flows to their waiter's effective weight.
    /// Deferral (the lock model) applies regardless; this gates only the
    /// promotion, so the inheritance effect can be measured on/off.
    inherit: bool,
    holders: HashMap<u64, HolderRec>,
    waiting: HashMap<u64, Vec<ReadyJob<H::Req>>>,
    ready_backlog: Vec<ReadyJob<H::Req>>,
    /// Completed exclusive holds, pushed by workers, drained per cycle.
    releases: Arc<Mutex<Vec<(u64, usize)>>>,
    /// Replicated tenant ledger; admitted work is charged here, batched
    /// to one log append per (tenant, admission burst).
    ledger: Option<Arc<TenantLedger>>,
    /// Failover handshake with the domain supervisor: heartbeat per
    /// cycle, crash/wedge fault checks, wreck dump on death.
    health: Option<Arc<ShardHealth>>,
}

impl<H: OpHandler> ProxyEngine<H> {
    /// Builds an engine over `lanes`; `gate` switches QoS scheduling on.
    pub fn new(
        handler: Arc<H>,
        lanes: Vec<EngineLane>,
        stats: Arc<ProxyStats>,
        faults: Arc<EngineFaults>,
        gate: Option<HostGate<GateJob<H::Req>>>,
    ) -> Self {
        let settler = ReplySettler::new(
            lanes.iter().map(|l| l.resp_tx.clone()).collect(),
            Arc::clone(&faults),
            Arc::clone(&stats),
        );
        Self {
            handler,
            lanes,
            stats,
            faults,
            settler,
            gate,
            epoch: Instant::now(),
            inherit: true,
            holders: HashMap::new(),
            waiting: HashMap::new(),
            ready_backlog: Vec::new(),
            releases: Arc::new(Mutex::new(Vec::new())),
            ledger: None,
            health: None,
        }
    }

    /// Enables or disables priority inheritance (deferral still applies).
    pub fn set_inherit(&mut self, on: bool) {
        self.inherit = on;
    }

    /// Attaches the replicated tenant ledger; every gated admission is
    /// charged to the submitting frame's tenant.
    pub fn set_tenant_ledger(&mut self, ledger: Arc<TenantLedger>) {
        self.ledger = Some(ledger);
    }

    /// Attaches the supervisor's health cell. The serve loop beats it
    /// every cycle and honours armed domain-crash/wedge faults by
    /// dumping a [`Wreck`] and dying, instead of draining cleanly.
    pub fn set_health(&mut self, health: Arc<ShardHealth>) {
        self.health = Some(health);
    }

    /// Runs one engine cycle at `now_ns` on a virtual clock, executing
    /// everything inline. Returns true when any work happened. This is
    /// the deterministic-test entry point; production uses
    /// [`ProxyEngine::serve`].
    pub fn step(&mut self, now_ns: u64) -> bool {
        self.cycle(None, now_ns)
    }

    /// Serves until `shutdown` is set, spawning the handler's worker pool
    /// when it asks for one.
    pub fn serve(mut self, shutdown: Arc<AtomicBool>) {
        let workers = self.handler.workers();
        if workers == 0 {
            while !shutdown.load(Ordering::Relaxed) {
                if self.check_vitals(None, &shutdown) {
                    return; // died: wreck dumped, no shutdown drain
                }
                let now = self.epoch.elapsed().as_nanos() as u64;
                if !self.cycle(None, now) {
                    std::thread::yield_now();
                }
            }
            self.drain_for_shutdown(None);
            return;
        }
        let jobs: JobQueue<ReadyJob<H::Req>> = JobQueue::new();
        let settler = Arc::clone(&self.settler);
        let handler = Arc::clone(&self.handler);
        let stats = Arc::clone(&self.stats);
        let faults = Arc::clone(&self.faults);
        let releases = Arc::clone(&self.releases);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let (jobs, settler) = (&jobs, Arc::clone(&settler));
                let (handler, stats) = (Arc::clone(&handler), Arc::clone(&stats));
                let (faults, releases) = (Arc::clone(&faults), Arc::clone(&releases));
                s.spawn(move || worker_loop(&*handler, jobs, &settler, &stats, &faults, &releases));
            }
            let mut wrecked = false;
            while !shutdown.load(Ordering::Relaxed) {
                if self.check_vitals(Some(&jobs), &shutdown) {
                    wrecked = true;
                    break;
                }
                let now = self.epoch.elapsed().as_nanos() as u64;
                if !self.cycle(Some(&jobs), now) {
                    std::thread::yield_now();
                }
            }
            if !wrecked {
                self.drain_for_shutdown(Some(&jobs));
            }
            jobs.close();
        });
    }

    /// Beats the health cell and honours armed domain-crash/wedge
    /// charges. Returns true when the shard died: the wreck — every
    /// admitted-but-unserved tag as a `Gone` reply plus the tenant
    /// charges to refund — is parked on the health cell for the
    /// supervisor, and the serve loop must return without draining.
    ///
    /// On a pooled engine the queue quiesces first (in-flight worker
    /// replies reach the settler and join the wreck verbatim); on the
    /// workerless engines that shard the TCP plane, a cycle boundary is
    /// already a complete snapshot. A wedge parks the wreck too, then
    /// freezes: the heartbeat stops, nothing is served, and the loop
    /// spins until the supervisor notices the stall and fences it.
    fn check_vitals(
        &mut self,
        pool: Option<&JobQueue<ReadyJob<H::Req>>>,
        shutdown: &AtomicBool,
    ) -> bool {
        let Some(health) = self.health.clone() else {
            return false;
        };
        health.beat();
        if health.is_fenced() {
            // Forcible fence: the supervisor declared this shard dead
            // (e.g. a stall misjudged as a wedge). Exit at this cycle
            // boundary with a complete wreck so failover stays
            // exactly-once even when the suspicion was false.
            if let Some(p) = pool {
                p.quiesce();
            }
            let wreck = self.dump_wreck();
            health.park_wreck(wreck);
            return true;
        }
        if self.faults.take_domain_crash() {
            if let Some(p) = pool {
                p.quiesce();
            }
            let wreck = self.dump_wreck();
            health.crash(wreck);
            return true;
        }
        if self.faults.take_domain_wedge() {
            if let Some(p) = pool {
                p.quiesce();
            }
            let wreck = self.dump_wreck();
            health.wedge_hold(wreck, shutdown);
            return true;
        }
        false
    }

    /// Enumerates everything this engine admitted but will never serve,
    /// at a cycle boundary where the pipeline's state is complete: gate
    /// queues, parked waiters, the ready backlog, the handler's staged
    /// wave, and replies already computed but not yet published.
    fn dump_wreck(&mut self) -> Wreck {
        // Order matters: abandon unexecuted staged runs first, then let
        // the handler flush replies it already *executed* (e.g. a
        // cap-flushed send whose backend write happened) into the
        // settler, and only then drain the settler. Those executed
        // replies must ship verbatim — settling them as `Gone` would
        // double-answer their tags, dropping them would lose completed
        // work.
        let staged = self.handler.abort_staged();
        self.flush_handler();
        let mut replies = self.settler.drain_pending();
        let mut refunds: HashMap<u8, (u64, u64)> = HashMap::new();
        let mut owed: Vec<(usize, u32, Option<u8>, u8, u64)> = Vec::new();
        if let Some(gate) = self.gate.as_mut() {
            for (_flow, job) in gate.drain() {
                let bytes = self.handler.classify(job.lane, &job.req).1;
                owed.push((job.lane, job.tag, None, job.tenant, bytes));
            }
            // A dead shard's flow-table entries must stop counting
            // against host occupancy; the replacement shard re-admits
            // its tenants lazily.
            gate.retire();
        }
        for (_res, jobs) in self.waiting.drain() {
            for job in jobs {
                let bytes = self.handler.classify(job.lane, &job.req).1;
                owed.push((job.lane, job.tag, job.credit, job.tenant, bytes));
            }
        }
        for job in std::mem::take(&mut self.ready_backlog) {
            let bytes = self.handler.classify(job.lane, &job.req).1;
            owed.push((job.lane, job.tag, job.credit, job.tenant, bytes));
        }
        for part in staged {
            owed.push((part.lane, part.tag, part.credit, part.tenant, part.bytes));
        }
        for (lane, tag, credit, tenant, bytes) in owed {
            let mut frame = self.handler.encode_err(tag, RpcErr::Gone);
            if let Some(c) = credit {
                stamp_credit(&mut frame, c);
            }
            replies.push((lane, frame));
            if self.ledger.is_some() {
                let r = refunds.entry(tenant).or_insert((0, 0));
                r.0 += 1;
                r.1 += bytes;
            }
        }
        Wreck {
            replies,
            refunds: refunds
                .into_iter()
                .map(|(t, (ops, bytes))| (t, ops, bytes))
                .collect(),
        }
    }

    /// One pipeline cycle; returns true when any work happened.
    fn cycle(&mut self, pool: Option<&JobQueue<ReadyJob<H::Req>>>, now_ns: u64) -> bool {
        let mut progressed = false;
        // 1. Settle completions: every finished exclusive hold releases.
        let done = std::mem::take(&mut *self.releases.lock());
        for (res, flow) in done {
            progressed = true;
            self.release_one(res, flow);
        }
        // 2. Unpark waiters whose external (lease) holds settled. A
        //    shared job re-defers if an engine-admitted exclusive is
        //    still in flight on the resource; everything else re-routes
        //    (and re-parks there if a new lease beat it to the grant).
        let freed = match self.handler.external_holds() {
            Some(ext) => ext.take_freed(),
            None => Vec::new(),
        };
        for res in freed {
            let Some(jobs) = self.waiting.remove(&res) else {
                continue;
            };
            progressed = true;
            for job in jobs {
                let shared_blocked = job.release.is_none()
                    && self.holders.get(&res).is_some_and(|r| r.total > 0)
                    && matches!(
                        self.handler.touches(&job.req),
                        Some((r, Access::Shared)) if r == res
                    );
                if shared_blocked {
                    self.waiting.entry(res).or_default().push(job);
                } else {
                    self.route(pool, job);
                }
            }
        }
        // 3. Route waiters freed by those releases.
        for job in std::mem::take(&mut self.ready_backlog) {
            progressed = true;
            self.route(pool, job);
        }
        // 4. Admit and dispatch.
        if self.gate.is_some() {
            // Epoch upkeep first: GC idle flow-table entries and let the
            // host scheduler rebalance tenant budgets off the ledger.
            self.gate.as_mut().expect("gated").maintain(now_ns);
            progressed |= self.admit_gated(now_ns);
            progressed |= self.dispatch_gated(pool, now_ns);
        } else {
            progressed |= self.admit_fifo(pool);
        }
        // 5. Flush the handler's coalescing wave.
        self.flush_handler();
        // 6. Handler-specific polling.
        progressed |= self.handler.poll();
        // 7. Settle the cycle's accumulated replies: one batched enqueue
        //    (one doorbell-equivalent on a lazy ring) per lane.
        progressed |= self.settler.settle();
        progressed
    }

    /// Drains a burst from each lane into the gate's class queues; every
    /// frame is decoded exactly once, here.
    fn admit_gated(&mut self, now_ns: u64) -> bool {
        let mut progressed = false;
        // Batched tenant charges: one ledger append per tenant per burst,
        // not one per frame, so the log never sees per-op traffic.
        let mut charges: HashMap<u8, (u64, u64)> = HashMap::new();
        for lane in 0..self.lanes.len() {
            for _ in 0..ADMIT_BURST {
                let Ok(frame) = self.lanes[lane].req_rx.recv() else {
                    break;
                };
                progressed = true;
                let admitted = match AdmittedFrame::<H::Req>::decode(&frame) {
                    Ok(a) => a,
                    Err(_) => {
                        self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                        // Echo the header tag when it survived so the
                        // error reply stays routable at the submitter.
                        let tag = peek_tag(&frame).unwrap_or(0);
                        let reply = self.handler.encode_err(tag, RpcErr::Invalid);
                        self.post(lane, reply);
                        continue;
                    }
                };
                let (class_flow, bytes) = self.handler.classify(lane, &admitted.req);
                let touch = self.handler.touches(&admitted.req);
                let gate = self.gate.as_mut().expect("gated admission");
                let tenant = admitted.tenant;
                let flow = gate.flow_for_tenant(u64::from(tenant), class_flow);
                let job = GateJob {
                    lane,
                    tag: admitted.tag,
                    flags: admitted.flags,
                    req: admitted.req,
                    touch,
                    tenant,
                };
                match gate.submit(flow, bytes, now_ns, job) {
                    Verdict::Admitted => {
                        if self.ledger.is_some() {
                            let c = charges.entry(tenant).or_insert((0, 0));
                            c.0 += 1;
                            c.1 += bytes;
                        }
                        if let Some((res, Access::Exclusive)) = touch {
                            // The hold records this flow index until the
                            // release; pin it so the GC cannot reclaim
                            // (and reuse) the slot out from under it.
                            gate.pin_flow(flow);
                            let rec = self.holders.entry(res).or_default();
                            rec.total += 1;
                            *rec.by_flow.entry(flow).or_insert(0) += 1;
                        }
                    }
                    Verdict::Shed { item, .. } => {
                        let credit = gate.credit(flow);
                        self.stats.sheds.fetch_add(1, Ordering::Relaxed);
                        let mut reply = self.handler.encode_err(item.tag, RpcErr::Overloaded);
                        stamp_credit(&mut reply, credit);
                        self.post(lane, reply);
                    }
                }
            }
        }
        if let Some(ledger) = &self.ledger {
            for (tenant, (ops, bytes)) in charges {
                ledger.charge(tenant, ops, bytes);
            }
        }
        progressed
    }

    /// Dispatches a burst in DWRR order, applying the inheritance lock
    /// model: shared touches wait behind exclusive holders, promoting
    /// them while they wait.
    fn dispatch_gated(&mut self, pool: Option<&JobQueue<ReadyJob<H::Req>>>, now_ns: u64) -> bool {
        let mut progressed = false;
        for _ in 0..DISPATCH_BURST {
            let decision = {
                let Some(gate) = self.gate.as_mut() else {
                    break;
                };
                match gate.dispatch(now_ns) {
                    Dispatch::Run { flow, item, .. } => {
                        Some((flow, gate.credit(flow), item, false))
                    }
                    Dispatch::Shed { flow, item, .. } => {
                        Some((flow, gate.credit(flow), item, true))
                    }
                    Dispatch::Idle => None,
                }
            };
            let Some((flow, credit, job, shed)) = decision else {
                break;
            };
            progressed = true;
            if shed {
                self.stats.sheds.fetch_add(1, Ordering::Relaxed);
                let mut reply = self.handler.encode_err(job.tag, RpcErr::Overloaded);
                stamp_credit(&mut reply, credit);
                self.post(job.lane, reply);
                // A shed exclusive never executes: release its hold now.
                if let Some((res, Access::Exclusive)) = job.touch {
                    self.release_one(res, flow);
                }
                continue;
            }
            let release = match job.touch {
                Some((res, Access::Exclusive)) => Some((res, flow)),
                _ => None,
            };
            let ready = ReadyJob {
                lane: job.lane,
                tag: job.tag,
                credit: Some(credit),
                req: job.req,
                release,
                tenant: job.tenant,
            };
            if job.flags & FLAG_BARRIER != 0 {
                self.barrier(pool, ready);
                continue;
            }
            match job.touch {
                Some((res, Access::Shared))
                    if self.holders.get(&res).is_some_and(|r| r.total > 0) =>
                {
                    self.defer(res, flow, ready);
                }
                _ => self.route(pool, ready),
            }
        }
        progressed
    }

    /// FIFO admission (no gate): decode once, route straight through.
    fn admit_fifo(&mut self, pool: Option<&JobQueue<ReadyJob<H::Req>>>) -> bool {
        let mut progressed = false;
        for lane in 0..self.lanes.len() {
            for _ in 0..DRAIN_BURST {
                let Ok(frame) = self.lanes[lane].req_rx.recv() else {
                    break;
                };
                progressed = true;
                match AdmittedFrame::<H::Req>::decode(&frame) {
                    Ok(a) => {
                        let job = ReadyJob {
                            lane,
                            tag: a.tag,
                            credit: None,
                            req: a.req,
                            release: None,
                            tenant: a.tenant,
                        };
                        if a.flags & FLAG_BARRIER != 0 {
                            self.barrier(pool, job);
                        } else {
                            self.route(pool, job);
                        }
                    }
                    Err(_) => {
                        self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                        let tag = peek_tag(&frame).unwrap_or(0);
                        let reply = self.handler.encode_err(tag, RpcErr::Invalid);
                        self.post(lane, reply);
                    }
                }
            }
        }
        progressed
    }

    /// Parks a shared-access job behind an exclusively-held resource,
    /// promoting the holding flows to the waiter's effective weight.
    fn defer(&mut self, res: u64, waiter: usize, job: ReadyJob<H::Req>) {
        self.stats.inherit_deferred.fetch_add(1, Ordering::Relaxed);
        if self.inherit {
            if let (Some(gate), Some(rec)) = (self.gate.as_mut(), self.holders.get_mut(&res)) {
                let holding: Vec<usize> = rec.by_flow.keys().copied().collect();
                for hf in holding {
                    if hf != waiter {
                        gate.promote_flow(hf, waiter);
                        rec.promoted.push(hf);
                        self.stats.promotions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.waiting.entry(res).or_default().push(job);
    }

    /// Settles one completed exclusive hold; the last release demotes the
    /// promoted flows and frees every waiter.
    fn release_one(&mut self, res: u64, flow: usize) {
        let Some(rec) = self.holders.get_mut(&res) else {
            return;
        };
        // The admission-time GC pin comes off with the hold.
        if let Some(gate) = self.gate.as_mut() {
            gate.unpin_flow(flow);
        }
        rec.total = rec.total.saturating_sub(1);
        if let Some(c) = rec.by_flow.get_mut(&flow) {
            *c -= 1;
            if *c == 0 {
                rec.by_flow.remove(&flow);
            }
        }
        if rec.total == 0 {
            let rec = self.holders.remove(&res).expect("holder present");
            if let Some(gate) = self.gate.as_mut() {
                for f in rec.promoted {
                    gate.demote_flow(f);
                }
            }
            if let Some(jobs) = self.waiting.remove(&res) {
                self.ready_backlog.extend(jobs);
            }
        }
    }

    /// Routes one ready job: offer it to the handler's wave, else hand it
    /// to the pool (or run inline). A job touching a resource held by an
    /// external lease holder parks here instead, and the handler starts
    /// the recall; the freed queue re-routes it once the lease settles.
    fn route(&mut self, pool: Option<&JobQueue<ReadyJob<H::Req>>>, job: ReadyJob<H::Req>) {
        if let Some((res, access)) = self.handler.touches(&job.req) {
            let excl = access == Access::Exclusive;
            if self
                .handler
                .external_holds()
                .is_some_and(|ext| ext.blocks(res, excl))
            {
                self.stats.lease_deferred.fetch_add(1, Ordering::Relaxed);
                self.handler.recall(res, excl);
                self.waiting.entry(res).or_default().push(job);
                return;
            }
        }
        let ReadyJob {
            lane,
            tag,
            credit,
            req,
            release,
            tenant,
        } = job;
        // Staged replies settle at flush time, which has no release path;
        // only lock-free requests are offered to the wave.
        let req = if release.is_none() {
            match self.handler.stage(lane, tag, credit, tenant, req) {
                None => {
                    self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Some(req) => req,
            }
        } else {
            req
        };
        let job = ReadyJob {
            lane,
            tag,
            credit,
            req,
            release,
            tenant,
        };
        match pool {
            Some(p) => p.push(job),
            None => self.exec_inline(job),
        }
    }

    /// Executes one job on the engine thread and settles it.
    fn exec_inline(&mut self, job: ReadyJob<H::Req>) {
        let ReadyJob {
            lane,
            tag,
            credit,
            req,
            release,
            ..
        } = job;
        let mut reply = exec_contained(&*self.handler, &self.faults, &self.stats, lane, tag, req);
        if let Some(c) = credit {
            stamp_credit(&mut reply, c);
        }
        self.post(lane, reply);
        if let Some((res, flow)) = release {
            self.release_one(res, flow);
        }
    }

    /// Runs a barrier frame: everything dispatched before it — deferred
    /// waiters, staged reads, pooled work — completes first, then the
    /// barrier executes inline.
    fn barrier(&mut self, pool: Option<&JobQueue<ReadyJob<H::Req>>>, job: ReadyJob<H::Req>) {
        self.flush_waiting(pool);
        for j in std::mem::take(&mut self.ready_backlog) {
            self.route(pool, j);
        }
        self.flush_handler();
        if let Some(p) = pool {
            p.quiesce();
        }
        // Settle the releases those completions produced before running
        // the barrier itself.
        let done = std::mem::take(&mut *self.releases.lock());
        for (res, flow) in done {
            self.release_one(res, flow);
        }
        self.exec_inline(job);
    }

    /// Force-runs every deferred waiter (barriers and shutdown override
    /// the lock model), demoting the promotions they caused. Resources
    /// still pinned by external lease holders are recalled synchronously
    /// first, so the flushed jobs observe settled data.
    fn flush_waiting(&mut self, pool: Option<&JobQueue<ReadyJob<H::Req>>>) {
        let held: Vec<u64> = match self.handler.external_holds() {
            Some(ext) => self
                .waiting
                .keys()
                .copied()
                .filter(|r| ext.is_held(*r))
                .collect(),
            None => Vec::new(),
        };
        for res in held {
            self.handler.recall_sync(res);
        }
        let waiting: Vec<(u64, Vec<ReadyJob<H::Req>>)> = self.waiting.drain().collect();
        for (res, jobs) in waiting {
            if let (Some(gate), Some(rec)) = (self.gate.as_mut(), self.holders.get_mut(&res)) {
                for f in rec.promoted.drain(..) {
                    gate.demote_flow(f);
                }
            }
            for job in jobs {
                self.route(pool, job);
            }
        }
    }

    /// Flushes the handler's coalescing wave into the reply settler.
    fn flush_handler(&mut self) {
        let handler = Arc::clone(&self.handler);
        let settler = Arc::clone(&self.settler);
        handler.flush(&mut |lane, frame| settler.post(lane, frame));
    }

    /// Completes in-flight work at shutdown so nothing is left parked.
    fn drain_for_shutdown(&mut self, pool: Option<&JobQueue<ReadyJob<H::Req>>>) {
        let done = std::mem::take(&mut *self.releases.lock());
        for (res, flow) in done {
            self.release_one(res, flow);
        }
        self.flush_waiting(pool);
        for job in std::mem::take(&mut self.ready_backlog) {
            self.route(pool, job);
        }
        if let Some(p) = pool {
            p.quiesce();
        }
        self.flush_handler();
        self.settler.settle();
    }

    /// Buffers one reply for the lane's next settlement wave.
    fn post(&self, lane: usize, frame: Vec<u8>) {
        self.settler.post(lane, frame);
    }
}

/// Executes one request with panic containment: a panicking handler (a
/// proxy bug or an armed [`EngineFaults`] charge) yields an `Io` error
/// reply instead of taking down the serve loop.
fn exec_contained<H: OpHandler>(
    handler: &H,
    faults: &EngineFaults,
    stats: &ProxyStats,
    lane: usize,
    tag: u32,
    req: H::Req,
) -> Vec<u8> {
    stats.rpcs.fetch_add(1, Ordering::Relaxed);
    let armed = faults.take_worker_panic();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if armed {
            panic!("injected proxy worker panic");
        }
        handler.exec(lane, tag, req)
    }));
    out.unwrap_or_else(|_| {
        stats.worker_panics.fetch_add(1, Ordering::Relaxed);
        handler.encode_err(tag, RpcErr::Io)
    })
}

/// Worker-pool loop: executes ready jobs out of order until the queue
/// closes, buffering replies into the shared settler (the engine thread
/// settles them in its cycle's batched wave) and pushing completed
/// exclusive holds back to the engine.
fn worker_loop<H: OpHandler>(
    handler: &H,
    jobs: &JobQueue<ReadyJob<H::Req>>,
    settler: &ReplySettler,
    stats: &ProxyStats,
    faults: &EngineFaults,
    releases: &Mutex<Vec<(u64, usize)>>,
) {
    while let Some(job) = jobs.pop() {
        let ReadyJob {
            lane,
            tag,
            credit,
            req,
            release,
            ..
        } = job;
        let mut reply = exec_contained(handler, faults, stats, lane, tag, req);
        if let Some(c) = credit {
            stamp_credit(&mut reply, c);
        }
        settler.post(lane, reply);
        if let Some(r) = release {
            releases.lock().push(r);
        }
        jobs.done();
    }
}

struct JobQueueInner<J> {
    q: std::collections::VecDeque<J>,
    /// Jobs popped but not yet `done()`.
    active: usize,
    closed: bool,
}

/// The engine's work queue: a mutex-protected deque with a condvar pair —
/// `work` wakes workers, `idle` wakes a barrier waiting for quiescence.
pub(crate) struct JobQueue<J> {
    inner: Mutex<JobQueueInner<J>>,
    work: Condvar,
    idle: Condvar,
}

impl<J> JobQueue<J> {
    fn new() -> Self {
        Self {
            inner: Mutex::new(JobQueueInner {
                q: std::collections::VecDeque::new(),
                active: 0,
                closed: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    fn push(&self, job: J) {
        self.inner.lock().q.push_back(job);
        self.work.notify_one();
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<J> {
        let mut g = self.inner.lock();
        loop {
            if let Some(job) = g.q.pop_front() {
                g.active += 1;
                return Some(job);
            }
            if g.closed {
                return None;
            }
            self.work.wait(&mut g);
        }
    }

    /// Marks a popped job complete.
    fn done(&self) {
        let mut g = self.inner.lock();
        g.active -= 1;
        if g.active == 0 && g.q.is_empty() {
            self.idle.notify_all();
        }
    }

    /// Blocks until no job is queued or executing (the barrier).
    fn quiesce(&self) {
        let mut g = self.inner.lock();
        while g.active > 0 || !g.q.is_empty() {
            self.idle.wait(&mut g);
        }
    }

    /// Wakes every worker to exit once the queue drains.
    fn close(&self) {
        self.inner.lock().closed = true;
        self.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Channel;
    use solros_pcie::PcieCounters;
    use solros_proto::fs_msg::{FsRequest, FsResponse};
    use solros_qos::{FlowSpec, HostConfig, HostScheduler, QosClass, Service};

    /// A minimal handler: Fsync acks, Fstat echoes the ino as the size;
    /// Fstat takes a shared touch on the ino, Write an exclusive one.
    struct Echo;

    impl OpHandler for Echo {
        type Req = FsRequest;

        fn encode_err(&self, tag: u32, err: RpcErr) -> Vec<u8> {
            FsResponse::Error { err }.encode(tag)
        }

        fn classify(&self, _lane: usize, req: &FsRequest) -> (usize, u64) {
            match req {
                FsRequest::Write { count, .. } => (1, *count),
                _ => (0, 0),
            }
        }

        fn exec(&self, _lane: usize, tag: u32, req: FsRequest) -> Vec<u8> {
            match req {
                FsRequest::Fstat { ino } => FsResponse::Stat {
                    ino,
                    is_dir: false,
                    size: ino,
                }
                .encode(tag),
                _ => FsResponse::Ok.encode(tag),
            }
        }

        fn touches(&self, req: &FsRequest) -> Option<(u64, Access)> {
            match req {
                FsRequest::Write { ino, .. } => Some((*ino, Access::Exclusive)),
                FsRequest::Fstat { ino } => Some((*ino, Access::Shared)),
                _ => None,
            }
        }
    }

    fn lane() -> (
        EngineLane,
        solros_ringbuf::Producer,
        solros_ringbuf::Consumer,
    ) {
        let ch = Channel::new(Arc::new(PcieCounters::new()));
        (
            EngineLane {
                req_rx: ch.req_rx,
                resp_tx: ch.resp_tx,
            },
            ch.req_tx,
            ch.resp_rx,
        )
    }

    fn engine(
        gate: Option<HostGate<GateJob<FsRequest>>>,
    ) -> (
        ProxyEngine<Echo>,
        solros_ringbuf::Producer,
        solros_ringbuf::Consumer,
        Arc<ProxyStats>,
        Arc<EngineFaults>,
    ) {
        let (lane, req_tx, resp_rx) = lane();
        let stats = Arc::new(ProxyStats::default());
        let faults = Arc::new(EngineFaults::new());
        let eng = ProxyEngine::new(
            Arc::new(Echo),
            vec![lane],
            Arc::clone(&stats),
            Arc::clone(&faults),
            gate,
        );
        (eng, req_tx, resp_rx, stats, faults)
    }

    fn two_flows() -> HostGate<GateJob<FsRequest>> {
        let spec = |name: &str, class: QosClass, weight: u32| FlowSpec {
            name: name.into(),
            class,
            weight,
            ops_per_sec: 0,
            bytes_per_sec: 0,
            burst_ops: 0,
            burst_bytes: 0,
            queue_cap: 1024,
            deadline_ns: 0,
            sheddable: false,
            tenant: 0,
        };
        let host = HostScheduler::new(HostConfig::default());
        HostGate::new(
            vec![
                spec("meta", QosClass::High, 8),
                spec("data", QosClass::BestEffort, 1),
            ],
            4096,
            usize::MAX,
            &host,
            Service::Fs,
            0,
        )
    }

    #[test]
    fn fifo_round_trip_counts_and_rejects_malformed() {
        let (mut eng, req_tx, resp_rx, stats, _) = engine(None);
        req_tx
            .send_blocking(&FsRequest::Fsync { ino: 1 }.encode(5))
            .unwrap();
        req_tx.send_blocking(&[1, 2, 3]).unwrap();
        assert!(eng.step(0));
        let (tag, resp) = FsResponse::decode(&resp_rx.recv().unwrap()).unwrap();
        assert_eq!((tag, resp), (5, FsResponse::Ok));
        let (tag, resp) = FsResponse::decode(&resp_rx.recv().unwrap()).unwrap();
        assert_eq!(tag, 0);
        assert_eq!(
            resp,
            FsResponse::Error {
                err: RpcErr::Invalid
            }
        );
        assert_eq!(stats.rpcs.load(Ordering::Relaxed), 1);
        assert_eq!(stats.malformed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn contained_panic_and_dropped_reply() {
        let (mut eng, req_tx, resp_rx, stats, faults) = engine(None);
        faults.arm_worker_panics(1);
        req_tx
            .send_blocking(&FsRequest::Fsync { ino: 1 }.encode(1))
            .unwrap();
        eng.step(0);
        let (_, resp) = FsResponse::decode(&resp_rx.recv().unwrap()).unwrap();
        assert_eq!(resp, FsResponse::Error { err: RpcErr::Io });
        assert_eq!(stats.worker_panics.load(Ordering::Relaxed), 1);

        faults.arm_dropped_replies(1);
        req_tx
            .send_blocking(&FsRequest::Fsync { ino: 1 }.encode(2))
            .unwrap();
        eng.step(0);
        assert!(resp_rx.recv().is_err(), "reply must vanish");
        assert_eq!(stats.dropped_replies.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shared_touch_defers_behind_exclusive_holder_and_promotes() {
        let (mut eng, req_tx, resp_rx, stats, _) = engine(Some(two_flows()));
        // Two exclusive writes to ino 7, then a shared fstat on it.
        for t in 0..2u32 {
            req_tx
                .send_blocking(
                    &FsRequest::Write {
                        ino: 7,
                        offset: 0,
                        count: 4096,
                        buf_addr: 0,
                    }
                    .encode(t),
                )
                .unwrap();
        }
        req_tx
            .send_blocking(&FsRequest::Fstat { ino: 7 }.encode(9))
            .unwrap();
        let mut replies = Vec::new();
        let mut now = 0;
        while replies.len() < 3 {
            eng.step(now);
            now += 1;
            while let Ok(f) = resp_rx.recv() {
                replies.push(FsResponse::decode(&f).unwrap().0);
            }
            assert!(now < 100, "engine stalled: {replies:?}");
        }
        // The fstat waited for both writes despite its higher class.
        assert_eq!(replies, vec![0, 1, 9]);
        assert!(stats.inherit_deferred.load(Ordering::Relaxed) >= 1);
        assert!(stats.promotions.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn barrier_flushes_deferred_waiters() {
        let (mut eng, req_tx, resp_rx, _, _) = engine(Some(two_flows()));
        req_tx
            .send_blocking(
                &FsRequest::Write {
                    ino: 3,
                    offset: 0,
                    count: 4096,
                    buf_addr: 0,
                }
                .encode(1),
            )
            .unwrap();
        req_tx
            .send_blocking(&FsRequest::Fstat { ino: 3 }.encode(2))
            .unwrap();
        let mut barrier = FsRequest::Fsync { ino: 99 }.encode(3);
        solros_proto::codec::stamp_flags(&mut barrier, FLAG_BARRIER);
        req_tx.send_blocking(&barrier).unwrap();
        let mut replies = Vec::new();
        let mut now = 0;
        while replies.len() < 3 {
            eng.step(now);
            now += 1;
            while let Ok(f) = resp_rx.recv() {
                replies.push(FsResponse::decode(&f).unwrap().0);
            }
            assert!(now < 100, "engine stalled: {replies:?}");
        }
        // The deferred fstat was dispatched before the barrier, so the
        // barrier must not overtake it (undispatched queue work may).
        let pos = |t: u32| replies.iter().position(|&r| r == t).unwrap();
        assert!(
            pos(2) < pos(3),
            "barrier overtook a dispatched wait: {replies:?}"
        );
        assert!(replies.contains(&1));
    }
}
