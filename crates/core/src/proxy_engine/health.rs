//! Shard health: the heartbeat/fencing handshake between an engine
//! shard and the domain supervisor.
//!
//! Every engine cycle bumps a heartbeat epoch. The supervisor samples
//! the epoch on its tick: a shard whose epoch stopped advancing is
//! wedged; a shard that marked itself down crashed. Either way the
//! supervisor *fences* the shard — after which the serve loop (if it is
//! still spinning in the wedge hold) exits and the thread becomes
//! joinable — and then collects the [`Wreck`]: the complete set of
//! work the shard had admitted but will never serve, pre-encoded as
//! `Gone` replies, plus the tenant charges to refund.
//!
//! The wreck is dumped *by the dying shard itself* at a cycle boundary,
//! where the pipeline's in-flight state is fully enumerable: the gate's
//! queued jobs, parked waiters, the ready backlog, the handler's staged
//! wave, and any replies already settled but not yet published. That
//! enumerability is what makes failover exactly-once: every admitted
//! tag is either in the wreck (settled `Gone` by the supervisor) or was
//! already answered — never both, never neither.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;

/// Shard is serving (or wedged — a wedge keeps the state `LIVE` and is
/// detected by heartbeat stall, exercising the real detection path).
const LIVE: u8 = 0;
/// Shard crashed: the serve loop exited abruptly after dumping a wreck.
const DOWN: u8 = 1;
/// Supervisor fenced the shard; a wedge-held loop exits on seeing this.
const FENCED: u8 = 2;

/// Everything a dead shard owes the rest of the machine.
#[derive(Default)]
pub struct Wreck {
    /// Encoded reply frames to publish on the dead shard's response
    /// rings: already-computed replies verbatim, plus one `Gone` per
    /// admitted-but-unserved tag (credit-stamped where one was granted).
    pub replies: Vec<(usize, Vec<u8>)>,
    /// Per-tenant `(ops, bytes)` charged at admission for work that was
    /// never served; the supervisor appends matching ledger refunds.
    pub refunds: Vec<(u8, u64, u64)>,
}

/// One staged-but-unflushed wave entry abandoned by a dying handler
/// (see `OpHandler::abort_staged`).
pub struct StagedPart {
    /// Lane whose response ring the reply was owed on.
    pub lane: usize,
    /// Wire tag of the staged request.
    pub tag: u32,
    /// Credit grant the reply would have carried.
    pub credit: Option<u8>,
    /// Tenant charged at admission.
    pub tenant: u8,
    /// Payload bytes charged at admission.
    pub bytes: u64,
}

/// Shared health cell: the engine beats and dumps, the supervisor
/// samples and fences.
#[derive(Default)]
pub struct ShardHealth {
    heartbeat: AtomicU64,
    state: AtomicU8,
    wreck: Mutex<Option<Wreck>>,
}

impl ShardHealth {
    /// A live, never-beaten cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// One engine cycle happened.
    pub fn beat(&self) {
        self.heartbeat.fetch_add(1, Ordering::Release);
    }

    /// Heartbeat epoch (monotonic while the shard is live).
    pub fn beats(&self) -> u64 {
        self.heartbeat.load(Ordering::Acquire)
    }

    /// The shard died abruptly: record the wreck and flag down. Called
    /// by the serve loop as its last act before returning.
    pub fn crash(&self, wreck: Wreck) {
        *self.wreck.lock() = Some(wreck);
        self.state.store(DOWN, Ordering::Release);
    }

    /// Records the wreck without touching the state — the forcible-fence
    /// exit, where the supervisor already moved the cell to fenced and
    /// the (live but suspected) serve loop complies at its next cycle
    /// boundary.
    pub fn park_wreck(&self, wreck: Wreck) {
        *self.wreck.lock() = Some(wreck);
    }

    /// The shard wedged: record the wreck, then spin — heartbeat frozen,
    /// nothing served — until the supervisor fences it (or the machine
    /// shuts down). Returns once fenced, after which the thread exits
    /// and is joinable.
    pub fn wedge_hold(&self, wreck: Wreck, shutdown: &AtomicBool) {
        *self.wreck.lock() = Some(wreck);
        while !shutdown.load(Ordering::Relaxed) && self.state.load(Ordering::Acquire) != FENCED {
            std::thread::yield_now();
        }
    }

    /// True while the shard is serving (or wedged — a wedge is only
    /// distinguishable by its frozen heartbeat).
    pub fn is_live(&self) -> bool {
        self.state.load(Ordering::Acquire) == LIVE
    }

    /// True once the serve loop declared itself dead.
    pub fn is_down(&self) -> bool {
        self.state.load(Ordering::Acquire) == DOWN
    }

    /// Fences the shard: no recovery, the supervisor owns its remains.
    /// Idempotent; releases a wedge-held serve loop.
    pub fn fence(&self) {
        self.state.store(FENCED, Ordering::Release);
    }

    /// True once fenced.
    pub fn is_fenced(&self) -> bool {
        self.state.load(Ordering::Acquire) == FENCED
    }

    /// Collects the wreck (once). The supervisor calls this after
    /// fencing and joining the shard thread, so the dump is complete
    /// and no longer racing the dying shard.
    pub fn take_wreck(&self) -> Option<Wreck> {
        self.wreck.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn crash_flags_down_and_yields_the_wreck_once() {
        let h = ShardHealth::new();
        assert!(!h.is_down());
        h.beat();
        h.beat();
        assert_eq!(h.beats(), 2);
        h.crash(Wreck {
            replies: vec![(0, vec![1, 2, 3])],
            refunds: vec![(4, 1, 100)],
        });
        assert!(h.is_down());
        let w = h.take_wreck().expect("wreck");
        assert_eq!(w.replies.len(), 1);
        assert_eq!(w.refunds, vec![(4, 1, 100)]);
        assert!(h.take_wreck().is_none(), "collected exactly once");
    }

    #[test]
    fn wedge_hold_spins_until_fenced() {
        let h = Arc::new(ShardHealth::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let held = {
            let (h, shutdown) = (Arc::clone(&h), Arc::clone(&shutdown));
            std::thread::spawn(move || h.wedge_hold(Wreck::default(), &shutdown))
        };
        // The holder must not exit on its own.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(!held.is_finished());
        // A wedge is not a crash — only the stalled heartbeat gives it
        // away.
        assert!(!h.is_down());
        h.fence();
        held.join().expect("held thread exits once fenced");
        assert!(h.take_wreck().is_some());
    }
}
