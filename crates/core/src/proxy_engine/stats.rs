//! The engine-owned statistics ledger shared by every proxy.

use std::sync::atomic::AtomicU64;

/// Request-lifecycle counters owned by the proxy engine.
///
/// Both control-plane proxies used to keep private copies of these
/// counters; the engine now maintains one ledger per proxy and the
/// proxy-specific stats structs (`FsProxyStats`, `TcpProxyStats`) deref
/// into it, so existing `.rpcs` / `.worker_panics` call sites keep
/// working unchanged.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Requests executed, staged into a wave, or run at a barrier.
    pub rpcs: AtomicU64,
    /// Handler panics contained and converted into `Io` error replies.
    pub worker_panics: AtomicU64,
    /// Frames that failed to decode at admission.
    pub malformed: AtomicU64,
    /// Requests shed by the QoS gate (overload, queue-full, deadline).
    pub sheds: AtomicU64,
    /// Priority-inheritance promotions applied to lock-holding flows.
    pub promotions: AtomicU64,
    /// Shared-access requests deferred behind an exclusively-held
    /// resource (the priority-inheritance wait path).
    pub inherit_deferred: AtomicU64,
    /// Requests parked behind an external lease holder while the recall
    /// protocol ran (the extent-lease coherence path).
    pub lease_deferred: AtomicU64,
    /// Replies discarded by an armed fault hook (crashed-stub model).
    pub dropped_replies: AtomicU64,
    /// Replies settled onto response rings (all producers: worker pool,
    /// handler flush, shed/malformed/credit paths).
    pub replies: AtomicU64,
    /// Batched settlement waves issued — one per `(lane, cycle)` with
    /// pending replies.
    pub reply_waves: AtomicU64,
    /// Control-variable publishes (doorbell-equivalents) the reply rings
    /// actually paid; `reply_publishes / replies` is the reply-side
    /// doorbells-per-op figure E8 sweeps.
    pub reply_publishes: AtomicU64,
}
