//! RPC channels over the transport service.
//!
//! Ring placement follows the paper:
//!
//! * FS / network *request* and *response* rings are mastered in
//!   co-processor memory (§4.3.1): the data-plane's RPC operations touch
//!   only local memory, while the host pulls requests and pushes replies
//!   across PCIe with its faster DMA engines.
//! * The network *inbound event* ring is mastered in host memory
//!   (§4.4.1), so the co-processor's DMA engines pull inbound data from
//!   the other end — both sides' DMA engines run in parallel.
//!
//! [`RpcClient`] is a submission/completion pipeline shared by many
//! data-plane threads: [`RpcClient::submit`] enqueues a tagged frame
//! without waiting and returns a [`Token`]; [`RpcClient::wait`],
//! [`RpcClient::wait_any`], and [`RpcClient::poll`] harvest replies.
//! Whichever waiter drains a reply routes it to the pending slot of its
//! tag, so completions may arrive in any order and a few threads can keep
//! a deep queue outstanding — the depth the proxies exploit to coalesce
//! NVMe doorbells across independent calls. The synchronous
//! [`RpcClient::call`] is `wait(submit(..))`.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};
use solros_pcie::counter::PcieCounters;
use solros_pcie::Side;
use solros_proto::codec::{
    deadline_class, decode_frame, encode_frame, flags_with_deadline, stamp_flags, stamp_tenant,
};
use solros_proto::rpc_error::RpcErr;
use solros_qos::CreditPool;
use solros_ringbuf::ring::{RingBuf, RingConfig};
use solros_ringbuf::{Consumer, Producer, RingError};

use crate::waitpolicy::WaitPolicy;

/// Default request/response ring capacity (64 KiB each).
pub const RPC_RING_BYTES: usize = 64 * 1024;
/// Default inbound event ring capacity. The paper sizes this generously
/// (128 MB) to backlog inbound data; the simulation uses 4 MiB.
pub const EVENT_RING_BYTES: usize = 4 * 1024 * 1024;

/// One co-processor's RPC plumbing for a service (FS or network).
pub struct Channel {
    /// Data-plane sends requests here.
    pub req_tx: Producer,
    /// Control plane drains requests here.
    pub req_rx: Consumer,
    /// Control plane sends replies here.
    pub resp_tx: Producer,
    /// Data-plane drains replies here.
    pub resp_rx: Consumer,
    /// The request ring itself, retained so a link reset can re-initialize
    /// it and mint fresh endpoints.
    pub req_ring: Arc<RingBuf>,
    /// The response ring itself (see `req_ring`).
    pub resp_ring: Arc<RingBuf>,
}

impl Channel {
    /// Builds the request/response pair with masters at the co-processor
    /// (§4.3.1).
    pub fn new(counters: Arc<PcieCounters>) -> Channel {
        let req = Arc::new(RingBuf::new(
            RingConfig::over_pcie(RPC_RING_BYTES, Side::Coproc, Side::Coproc, Side::Host),
            Arc::clone(&counters),
        ));
        let resp = Arc::new(RingBuf::new(
            RingConfig::over_pcie(RPC_RING_BYTES, Side::Coproc, Side::Host, Side::Coproc),
            counters,
        ));
        let (req_tx, req_rx) = req.endpoints();
        let (resp_tx, resp_rx) = resp.endpoints();
        Channel {
            req_tx,
            req_rx,
            resp_tx,
            resp_rx,
            req_ring: req,
            resp_ring: resp,
        }
    }
}

/// Builds the inbound event ring: master at the host, consumed by the
/// co-processor (§4.4.1).
pub fn event_ring(counters: Arc<PcieCounters>) -> (Producer, Consumer) {
    RingBuf::new(
        RingConfig::over_pcie(EVENT_RING_BYTES, Side::Host, Side::Host, Side::Coproc),
        counters,
    )
    .endpoints()
}

/// State of one in-flight tag in the routing table.
enum Slot {
    /// Submitted; no reply yet.
    Waiting,
    /// Reply arrived (already credit-settled) and awaits its waiter.
    Ready(Vec<u8>),
    /// The token was dropped before its reply arrived; the reply is
    /// discarded (and the slot removed) by whichever waiter drains it.
    Abandoned,
}

/// The tag-routing table and flow-control state shared between the client
/// and its outstanding [`Token`]s.
struct Shared {
    pending: Mutex<HashMap<u32, Slot>>,
    arrived: Condvar,
    /// QoS backpressure: when present, each submission holds one in-flight
    /// credit from submit until its reply arrives, and replies carry
    /// window updates from the proxy.
    credits: Option<Arc<CreditPool>>,
}

impl Shared {
    /// Applies the credit grant piggybacked on an arrived reply and
    /// releases the in-flight slot taken at submit time. Called exactly
    /// once per reply, at arrival.
    fn settle_credit(&self, reply: &[u8]) {
        if let Some(pool) = &self.credits {
            let grant = decode_frame(reply).map(|f| f.credit).unwrap_or(0);
            pool.complete(grant);
        }
    }

    /// Forgets a tag whose token was dropped before completion. If the
    /// reply already arrived the slot is simply removed (its credit was
    /// settled at arrival); otherwise the slot is marked abandoned so the
    /// eventual reply settles the credit instead of leaking it.
    fn abandon(&self, tag: u32) {
        let mut g = self.pending.lock();
        match g.remove(&tag) {
            Some(Slot::Waiting) | Some(Slot::Abandoned) => {
                g.insert(tag, Slot::Abandoned);
            }
            Some(Slot::Ready(_)) | None => {}
        }
    }
}

/// A handle to one in-flight submission.
///
/// Obtained from [`RpcClient::submit`]; redeemed exactly once through
/// [`RpcClient::wait`], [`RpcClient::wait_any`], or [`RpcClient::poll`].
/// Dropping an unredeemed token abandons the tag: the eventual reply is
/// discarded and its flow-control credit returned, so a caller that gives
/// up early leaks nothing.
#[must_use = "a submission completes only when its token is waited on"]
#[derive(Debug)]
pub struct Token {
    tag: u32,
    shared: Weak<Shared>,
    done: Cell<bool>,
}

impl Token {
    /// The wire tag of this submission.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// True once the token has been redeemed by `wait`/`wait_any`/`poll`.
    pub fn is_done(&self) -> bool {
        self.done.get()
    }
}

impl Drop for Token {
    fn drop(&mut self) {
        if !self.done.get() {
            if let Some(shared) = self.shared.upgrade() {
                shared.abandon(self.tag);
            }
        }
    }
}

/// Message type used for locally synthesized error completions when no
/// service-specific error encoder is installed (see
/// [`RpcClient::set_error_encoder`]). The body is the little-endian
/// [`RpcErr::code`].
pub const MSG_DRAIN_ERR: u8 = 0xEE;

/// What a [`RpcClient::link_reset`] did, for recovery telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResetReport {
    /// In-flight requests drained with a synthesized error completion.
    pub drained: usize,
    /// Flow-control credits returned to the pool during the drain.
    pub credits_scrubbed: usize,
    /// True when the underlying rings were re-initialized and fresh
    /// endpoints minted (requires [`RpcClient::with_link`]).
    pub ring_reset: bool,
}

/// Builds a service-specific error completion frame for a (tag, error)
/// pair during a drain; installed via [`RpcClient::set_error_encoder`].
type ErrEncoder = Box<dyn Fn(u32, RpcErr) -> Vec<u8> + Send>;

/// A tag-routing RPC client shared by data-plane threads: a non-blocking
/// submission half and a completion half over one shared ring pair.
pub struct RpcClient {
    tx: RwLock<Producer>,
    rx: RwLock<Consumer>,
    /// The rings behind `tx`/`rx`, when the owner handed them over so
    /// [`RpcClient::link_reset`] can re-initialize the link in place.
    rings: Option<(Arc<RingBuf>, Arc<RingBuf>)>,
    /// Builds service-specific error completions for drained requests;
    /// falls back to a bare [`MSG_DRAIN_ERR`] frame when unset.
    err_encoder: Mutex<Option<ErrEncoder>>,
    next_tag: AtomicU32,
    /// Tenant id stamped into every submitted frame (0 = default tenant,
    /// which proxies treat exactly as the pre-tenant wire format).
    tenant: AtomicU8,
    shared: Arc<Shared>,
}

impl RpcClient {
    /// Wraps a request producer and response consumer.
    pub fn new(tx: Producer, rx: Consumer) -> Arc<Self> {
        Self::with_credits(tx, rx, None)
    }

    /// Wraps a ring pair with an optional QoS credit pool limiting
    /// in-flight requests.
    pub fn with_credits(tx: Producer, rx: Consumer, credits: Option<Arc<CreditPool>>) -> Arc<Self> {
        Self::build(tx, rx, credits, None)
    }

    /// As [`RpcClient::with_credits`], additionally retaining the rings
    /// behind the endpoints so [`RpcClient::link_reset`] can re-initialize
    /// them after a peer failure.
    pub fn with_link(
        tx: Producer,
        rx: Consumer,
        credits: Option<Arc<CreditPool>>,
        req_ring: Arc<RingBuf>,
        resp_ring: Arc<RingBuf>,
    ) -> Arc<Self> {
        Self::build(tx, rx, credits, Some((req_ring, resp_ring)))
    }

    fn build(
        tx: Producer,
        rx: Consumer,
        credits: Option<Arc<CreditPool>>,
        rings: Option<(Arc<RingBuf>, Arc<RingBuf>)>,
    ) -> Arc<Self> {
        Arc::new(Self {
            tx: RwLock::new(tx),
            rx: RwLock::new(rx),
            rings,
            err_encoder: Mutex::new(None),
            next_tag: AtomicU32::new(1),
            tenant: AtomicU8::new(0),
            shared: Arc::new(Shared {
                pending: Mutex::new(HashMap::new()),
                arrived: Condvar::new(),
                credits,
            }),
        })
    }

    /// Installs the closure that encodes error completions for requests
    /// drained by [`RpcClient::link_reset`] — e.g. an FS client installs
    /// one producing `FsResponse::Error` frames so waiters decode the
    /// drain like any proxy-originated failure.
    pub fn set_error_encoder(&self, f: impl Fn(u32, RpcErr) -> Vec<u8> + Send + 'static) {
        *self.err_encoder.lock() = Some(Box::new(f));
    }

    /// Synthesizes the error completion for a drained tag.
    fn error_frame(&self, tag: u32, err: RpcErr) -> Vec<u8> {
        match &*self.err_encoder.lock() {
            Some(f) => f(tag, err),
            None => encode_frame(MSG_DRAIN_ERR, tag, &err.code().to_le_bytes()),
        }
    }

    /// Allocates a tag for one call.
    pub fn tag(&self) -> u32 {
        self.next_tag.fetch_add(1, Ordering::Relaxed)
    }

    /// This client's credit pool, if flow control is enabled.
    pub fn credits(&self) -> Option<&Arc<CreditPool>> {
        self.shared.credits.as_ref()
    }

    /// Sets the tenant id stamped into subsequent submissions.
    pub fn set_tenant(&self, tenant: u8) {
        self.tenant.store(tenant, Ordering::Relaxed);
    }

    /// The tenant id currently stamped into submissions.
    pub fn tenant(&self) -> u8 {
        self.tenant.load(Ordering::Relaxed)
    }

    /// Number of tags in the routing table (in-flight + unredeemed).
    /// Exposed for leak assertions in tests.
    pub fn pending_len(&self) -> usize {
        self.shared.pending.lock().len()
    }

    /// Drains one reply from the ring, routing it to its tag's slot.
    ///
    /// Returns `Ok(Some(reply))` only when the reply matches `want`
    /// (fast path: handed straight to the caller, slot removed).
    /// `Ok(None)` means some other tag progressed; `Err` means the ring
    /// had nothing ready. Credits settle here, on arrival, so a submitter
    /// blocked on the credit window can free credits by pumping.
    fn pump(&self, want: Option<u32>) -> Result<Option<Vec<u8>>, RingError> {
        let reply = self.rx.read().recv()?;
        let rtag = decode_frame(&reply).map(|f| f.tag).unwrap_or(0);
        let mut g = self.shared.pending.lock();
        if Some(rtag) == want {
            g.remove(&rtag);
            drop(g);
            self.shared.settle_credit(&reply);
            return Ok(Some(reply));
        }
        match g.get_mut(&rtag) {
            Some(slot @ Slot::Waiting) => {
                *slot = Slot::Ready(reply.clone());
                drop(g);
                self.shared.settle_credit(&reply);
                self.shared.arrived.notify_all();
            }
            Some(Slot::Abandoned) => {
                g.remove(&rtag);
                drop(g);
                self.shared.settle_credit(&reply);
            }
            // Duplicate or unknown tag: nobody owns it; drop the reply
            // without touching the credit ledger.
            Some(Slot::Ready(_)) | None => {}
        }
        Ok(None)
    }

    /// Drains every reply currently available on the ring, routing each.
    /// Returns how many replies were routed.
    pub fn drain_now(&self) -> usize {
        let mut n = 0;
        while let Ok(None) = self.pump(None) {
            n += 1;
        }
        n
    }

    /// Takes `tag`'s stashed reply if one has been routed to it.
    fn take_ready(&self, tag: u32) -> Option<Vec<u8>> {
        let mut g = self.shared.pending.lock();
        if matches!(g.get(&tag), Some(Slot::Ready(_))) {
            match g.remove(&tag) {
                Some(Slot::Ready(reply)) => Some(reply),
                _ => unreachable!("checked Ready under the lock"),
            }
        } else {
            None
        }
    }

    fn mint_token(&self, tag: u32) -> Token {
        Token {
            tag,
            shared: Arc::downgrade(&self.shared),
            done: Cell::new(false),
        }
    }

    /// Acquires one in-flight credit, pumping the completion ring while
    /// the window is closed so a single thread with a deep queue cannot
    /// deadlock against its own unharvested completions.
    fn acquire_credit_pumping(&self, pool: &Arc<CreditPool>) {
        let mut policy = WaitPolicy::new();
        while !pool.try_acquire() {
            match self.pump(None) {
                Ok(_) => policy.reset(),
                Err(_) => {
                    if let Some(park) = policy.pause() {
                        std::thread::sleep(park);
                    }
                }
            }
        }
    }

    fn prep_frame(&self, frame: &mut [u8], flags: u8) {
        if flags != 0 {
            stamp_flags(frame, flags);
        }
        let tenant = self.tenant.load(Ordering::Relaxed);
        if tenant != 0 {
            stamp_tenant(frame, tenant);
        }
    }

    /// Cleans up after an enqueue failure: the tag leaves the routing
    /// table and the credit taken at submit is returned, so a shed or
    /// full-ring submission never leaks either.
    fn scrub_failed_submit(&self, tag: u32) {
        self.shared.pending.lock().remove(&tag);
        if let Some(pool) = &self.shared.credits {
            pool.complete(0);
        }
    }

    fn do_submit(
        &self,
        tag: u32,
        mut frame: Vec<u8>,
        flags: u8,
        block: bool,
    ) -> Result<Token, RpcErr> {
        if let Some(pool) = &self.shared.credits {
            if block {
                self.acquire_credit_pumping(&Arc::clone(pool));
            } else if !pool.try_acquire() {
                return Err(RpcErr::Overloaded);
            }
        }
        self.prep_frame(&mut frame, flags);
        self.shared.pending.lock().insert(tag, Slot::Waiting);
        let sent = {
            let tx = self.tx.read();
            if block {
                tx.send_blocking(&frame)
            } else {
                // Bounded retries: spin and yield through one escalation of
                // the wait policy, then report the ring full.
                let mut policy = WaitPolicy::new();
                loop {
                    match tx.send(&frame) {
                        Err(RingError::WouldBlock) => {
                            if policy.pause().is_some() {
                                break Err(RingError::WouldBlock);
                            }
                        }
                        other => break other,
                    }
                }
            }
        };
        match sent {
            Ok(()) => Ok(self.mint_token(tag)),
            Err(e) => {
                self.scrub_failed_submit(tag);
                Err(match e {
                    RingError::WouldBlock => RpcErr::WouldBlock,
                    RingError::TooBig => RpcErr::TooLarge,
                    RingError::Corrupt => RpcErr::Gone,
                })
            }
        }
    }

    /// Enqueues an encoded frame (which must carry `tag`) without waiting
    /// for the reply.
    ///
    /// Acquires a flow-control credit when QoS is enabled (pumping the
    /// completion ring while the window is closed). Fails with
    /// [`RpcErr::WouldBlock`] if the request ring stays full through the
    /// retry policy — in that case the tag and credit are fully released.
    pub fn submit(&self, tag: u32, frame: Vec<u8>) -> Result<Token, RpcErr> {
        self.do_submit(tag, frame, 0, false)
    }

    /// As [`RpcClient::submit`], stamping submission `flags`
    /// (e.g. [`solros_proto::codec::FLAG_BARRIER`]) into the frame.
    pub fn submit_with_flags(&self, tag: u32, frame: Vec<u8>, flags: u8) -> Result<Token, RpcErr> {
        self.do_submit(tag, frame, flags, false)
    }

    /// As [`RpcClient::submit`], stamping a per-request deadline into the
    /// flags byte (§[`solros_proto::codec::deadline_class`]) so the proxy
    /// can shed the request once it is already too late to matter. Pair
    /// with [`RpcClient::wait_timeout`] using the same duration for
    /// end-to-end deadline enforcement.
    pub fn submit_with_deadline(
        &self,
        tag: u32,
        frame: Vec<u8>,
        deadline: Duration,
    ) -> Result<Token, RpcErr> {
        let flags = flags_with_deadline(0, deadline_class(deadline));
        self.do_submit(tag, frame, flags, false)
    }

    /// As [`RpcClient::submit`], but refuses immediately with
    /// [`RpcErr::Overloaded`] when no flow-control credit is available
    /// instead of waiting for the window to open.
    pub fn try_submit(&self, tag: u32, frame: Vec<u8>) -> Result<Token, RpcErr> {
        if let Some(pool) = &self.shared.credits {
            if !pool.try_acquire() {
                return Err(RpcErr::Overloaded);
            }
            // Hand the acquired credit to the common path by releasing it
            // and re-acquiring: cheaper to inline the send here.
            pool.complete(0);
        }
        self.do_submit(tag, frame, 0, false)
    }

    /// As [`RpcClient::submit`], spinning until ring space frees up; only
    /// an oversized frame can fail. Used by the synchronous [`call`] path.
    ///
    /// [`call`]: RpcClient::call
    pub fn submit_blocking(&self, tag: u32, frame: Vec<u8>) -> Result<Token, RpcErr> {
        self.do_submit(tag, frame, 0, true)
    }

    /// Blocks until `token`'s reply arrives and returns it. Replies for
    /// other tags drained along the way are handed to their waiters.
    ///
    /// # Panics
    ///
    /// Panics if the token was already redeemed.
    pub fn wait(&self, token: Token) -> Vec<u8> {
        assert!(!token.done.get(), "token redeemed twice");
        let tag = token.tag;
        token.done.set(true);
        let mut policy = WaitPolicy::new();
        loop {
            if let Some(reply) = self.take_ready(tag) {
                return reply;
            }
            match self.pump(Some(tag)) {
                Ok(Some(reply)) => return reply,
                Ok(None) => policy.reset(),
                Err(_) => {
                    if let Some(park) = policy.pause() {
                        // Park until another waiter routes a reply or the
                        // timeout elapses; escalating timeouts stop an
                        // idle waiter from spinning on the ring.
                        let mut g = self.shared.pending.lock();
                        if matches!(g.get(&tag), Some(Slot::Ready(_))) {
                            continue;
                        }
                        self.shared.arrived.wait_for(&mut g, park);
                    }
                }
            }
        }
    }

    /// As [`RpcClient::wait`], but gives up once `timeout` elapses.
    ///
    /// On expiry the token is consumed and its tag abandoned: the late
    /// reply (if one ever arrives) is discarded by whichever waiter
    /// drains it, and the flow-control credit settles then — exactly the
    /// dropped-token path, so an expired request leaks nothing. Returns
    /// [`RpcErr::Timeout`]. This is also the stub-crash detector: a
    /// deadline expiring on a quiet link is the signal to escalate to
    /// [`RpcClient::link_reset`].
    pub fn wait_timeout(&self, token: Token, timeout: Duration) -> Result<Vec<u8>, RpcErr> {
        assert!(!token.done.get(), "token redeemed twice");
        let tag = token.tag;
        token.done.set(true);
        let deadline = Instant::now() + timeout;
        let mut policy = WaitPolicy::new();
        loop {
            if let Some(reply) = self.take_ready(tag) {
                return Ok(reply);
            }
            if Instant::now() >= deadline {
                self.shared.abandon(tag);
                return Err(RpcErr::Timeout);
            }
            match self.pump(Some(tag)) {
                Ok(Some(reply)) => return Ok(reply),
                Ok(None) => policy.reset(),
                Err(_) => {
                    if let Some(park) = policy.pause() {
                        let park = park.min(deadline.saturating_duration_since(Instant::now()));
                        let mut g = self.shared.pending.lock();
                        if matches!(g.get(&tag), Some(Slot::Ready(_))) {
                            continue;
                        }
                        self.shared.arrived.wait_for(&mut g, park);
                    }
                }
            }
        }
    }

    /// Blocks until any of `tokens` completes; returns the index of the
    /// completed token and its reply, and marks that token redeemed
    /// (tokens already redeemed are skipped).
    ///
    /// # Panics
    ///
    /// Panics if every token in `tokens` was already redeemed.
    pub fn wait_any(&self, tokens: &[Token]) -> (usize, Vec<u8>) {
        assert!(
            tokens.iter().any(|t| !t.done.get()),
            "wait_any needs at least one unredeemed token"
        );
        let mut policy = WaitPolicy::new();
        loop {
            for (i, t) in tokens.iter().enumerate() {
                if t.done.get() {
                    continue;
                }
                if let Some(reply) = self.take_ready(t.tag) {
                    t.done.set(true);
                    return (i, reply);
                }
            }
            match self.pump(None) {
                Ok(_) => policy.reset(),
                Err(_) => {
                    if let Some(park) = policy.pause() {
                        let mut g = self.shared.pending.lock();
                        let any_ready = tokens.iter().any(|t| {
                            !t.done.get() && matches!(g.get(&t.tag), Some(Slot::Ready(_)))
                        });
                        if any_ready {
                            continue;
                        }
                        self.shared.arrived.wait_for(&mut g, park);
                    }
                }
            }
        }
    }

    /// Non-blocking completion check: drains whatever the ring has and
    /// returns `token`'s reply if it has arrived (marking the token
    /// redeemed), or `None` if it is still in flight or already redeemed.
    pub fn poll(&self, token: &Token) -> Option<Vec<u8>> {
        if token.done.get() {
            return None;
        }
        self.drain_now();
        let reply = self.take_ready(token.tag)?;
        token.done.set(true);
        Some(reply)
    }

    /// Sends an encoded frame (which must carry `tag`) and blocks until
    /// the matching reply arrives: `wait(submit(..))`.
    ///
    /// # Panics
    ///
    /// Panics if the frame exceeds the ring element limit.
    pub fn call(&self, tag: u32, frame: Vec<u8>) -> Vec<u8> {
        let token = self
            .submit_blocking(tag, frame)
            .expect("RPC frame exceeds ring element limit");
        self.wait(token)
    }

    /// Recovers the link after a peer failure (stub crash, wedged or
    /// corrupted ring): *drain → scrub → reset*.
    ///
    /// Every tag still waiting receives a synthesized error completion
    /// carrying `err` (built by the installed error encoder), so blocked
    /// waiters wake with a decodable failure instead of hanging; abandoned
    /// tags are removed outright. Each drained or removed tag returns its
    /// flow-control credit — replies that already arrived settled theirs
    /// at arrival and are left untouched. Finally, when the client owns
    /// its rings ([`RpcClient::with_link`]), both are re-initialized to
    /// empty and fresh endpoints minted, discarding whatever garbage the
    /// dead peer left mid-publish. The peer must mint fresh endpoints of
    /// its own (the old ones hold stale replicated control state).
    ///
    /// Callers in [`RpcClient::submit_blocking`]/[`RpcClient::call`] may
    /// hold the link open; quiesce them first or the reset blocks until
    /// their send completes.
    pub fn link_reset(&self, err: RpcErr) -> ResetReport {
        let mut report = ResetReport::default();
        {
            let mut g = self.shared.pending.lock();
            let tags: Vec<u32> = g.keys().copied().collect();
            for tag in tags {
                match g.get(&tag) {
                    Some(Slot::Waiting) => {
                        let frame = self.error_frame(tag, err);
                        g.insert(tag, Slot::Ready(frame));
                        report.drained += 1;
                        report.credits_scrubbed += 1;
                    }
                    Some(Slot::Abandoned) => {
                        g.remove(&tag);
                        report.credits_scrubbed += 1;
                    }
                    Some(Slot::Ready(_)) | None => {}
                }
            }
        }
        if let Some(pool) = &self.shared.credits {
            for _ in 0..report.credits_scrubbed {
                pool.complete(0);
            }
        }
        self.shared.arrived.notify_all();
        if let Some((req, resp)) = &self.rings {
            let mut tx = self.tx.write();
            let mut rx = self.rx.write();
            req.reset();
            resp.reset();
            *tx = req.producer();
            *rx = resp.consumer();
            report.ring_reset = true;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_proto::fs_msg::{FsRequest, FsResponse};

    #[test]
    fn rpc_roundtrip_single_thread() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let client = RpcClient::new(ch.req_tx, ch.resp_rx);

        // A trivial echo proxy on another thread.
        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let proxy = std::thread::spawn(move || {
            for _ in 0..3 {
                let frame = loop {
                    match req_rx.recv() {
                        Ok(f) => break f,
                        Err(_) => std::thread::yield_now(),
                    }
                };
                let (tag, req) = FsRequest::decode(&frame).unwrap();
                let resp = match req {
                    FsRequest::Fstat { ino } => FsResponse::Stat {
                        ino,
                        is_dir: false,
                        size: ino * 10,
                    },
                    _ => FsResponse::Ok,
                };
                resp_tx.send_blocking(&resp.encode(tag)).unwrap();
            }
        });

        for ino in 1..=3u64 {
            let tag = client.tag();
            let reply = client.call(tag, FsRequest::Fstat { ino }.encode(tag));
            let (rtag, resp) = FsResponse::decode(&reply).unwrap();
            assert_eq!(rtag, tag);
            assert_eq!(
                resp,
                FsResponse::Stat {
                    ino,
                    is_dir: false,
                    size: ino * 10
                }
            );
        }
        proxy.join().unwrap();
        assert_eq!(client.pending_len(), 0);
    }

    #[test]
    fn concurrent_callers_get_their_own_replies() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let client = RpcClient::new(ch.req_tx, ch.resp_rx);

        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let total = 8 * 200;
        let proxy = std::thread::spawn(move || {
            let mut served = 0;
            let mut stash: Vec<(u32, FsRequest)> = Vec::new();
            let flush = |stash: &mut Vec<(u32, FsRequest)>, served: &mut i32| {
                // Reply in reverse order to stress tag routing.
                stash.reverse();
                for (tag, req) in stash.drain(..) {
                    let ino = match req {
                        FsRequest::Fstat { ino } => ino,
                        _ => 0,
                    };
                    resp_tx
                        .send_blocking(
                            &FsResponse::Stat {
                                ino,
                                is_dir: false,
                                size: ino ^ 0xABCD,
                            }
                            .encode(tag),
                        )
                        .unwrap();
                    *served += 1;
                }
            };
            while served < total {
                match req_rx.recv() {
                    Ok(f) => {
                        let (tag, req) = FsRequest::decode(&f).unwrap();
                        stash.push((tag, req));
                        if stash.len() >= 4 {
                            flush(&mut stash, &mut served);
                        }
                    }
                    Err(_) => {
                        if stash.is_empty() {
                            std::thread::yield_now();
                        } else {
                            flush(&mut stash, &mut served);
                        }
                    }
                }
            }
        });

        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let ino = t * 1_000 + i;
                        let tag = client.tag();
                        let reply = client.call(tag, FsRequest::Fstat { ino }.encode(tag));
                        let (rtag, resp) = FsResponse::decode(&reply).unwrap();
                        assert_eq!(rtag, tag);
                        assert_eq!(
                            resp,
                            FsResponse::Stat {
                                ino,
                                is_dir: false,
                                size: ino ^ 0xABCD
                            }
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        proxy.join().unwrap();
        assert_eq!(client.pending_len(), 0);
    }

    #[test]
    fn replies_update_credit_window() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let pool = Arc::new(CreditPool::new(8));
        let client = RpcClient::with_credits(ch.req_tx, ch.resp_rx, Some(Arc::clone(&pool)));

        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        // A proxy that advertises a shrinking, then recovering, window.
        let proxy = std::thread::spawn(move || {
            for window in [3u8, 1, 5] {
                let frame = loop {
                    match req_rx.recv() {
                        Ok(f) => break f,
                        Err(_) => std::thread::yield_now(),
                    }
                };
                let (tag, _req) = FsRequest::decode(&frame).unwrap();
                let mut reply = FsResponse::Ok.encode(tag);
                solros_proto::codec::stamp_credit(&mut reply, window);
                resp_tx.send_blocking(&reply).unwrap();
            }
        });

        for expect in [3u32, 1, 5] {
            let tag = client.tag();
            client.call(tag, FsRequest::Fsync { ino: 1 }.encode(tag));
            let (in_flight, window) = pool.levels();
            assert_eq!(in_flight, 0);
            assert_eq!(window, expect);
        }
        proxy.join().unwrap();
    }

    #[test]
    fn pipelined_submissions_complete_out_of_order() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let client = RpcClient::new(ch.req_tx, ch.resp_rx);

        // Proxy collects all requests, then replies in reverse order.
        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let depth = 16u64;
        let proxy = std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < depth as usize {
                match req_rx.recv() {
                    Ok(f) => got.push(FsRequest::decode(&f).unwrap()),
                    Err(_) => std::thread::yield_now(),
                }
            }
            for (tag, req) in got.into_iter().rev() {
                let ino = match req {
                    FsRequest::Fstat { ino } => ino,
                    _ => 0,
                };
                resp_tx
                    .send_blocking(
                        &FsResponse::Stat {
                            ino,
                            is_dir: false,
                            size: ino + 7,
                        }
                        .encode(tag),
                    )
                    .unwrap();
            }
        });

        let mut tokens = Vec::new();
        let mut inos = Vec::new();
        for ino in 0..depth {
            let tag = client.tag();
            tokens.push(
                client
                    .submit(tag, FsRequest::Fstat { ino }.encode(tag))
                    .unwrap(),
            );
            inos.push(ino);
        }
        // Harvest half via wait_any, the rest via wait, in any order.
        for _ in 0..depth / 2 {
            let (i, reply) = client.wait_any(&tokens);
            let (_, resp) = FsResponse::decode(&reply).unwrap();
            assert_eq!(
                resp,
                FsResponse::Stat {
                    ino: inos[i],
                    is_dir: false,
                    size: inos[i] + 7
                }
            );
        }
        for (i, t) in tokens.into_iter().enumerate() {
            if t.is_done() {
                continue;
            }
            let reply = client.wait(t);
            let (_, resp) = FsResponse::decode(&reply).unwrap();
            assert_eq!(
                resp,
                FsResponse::Stat {
                    ino: inos[i],
                    is_dir: false,
                    size: inos[i] + 7
                }
            );
        }
        proxy.join().unwrap();
        assert_eq!(client.pending_len(), 0);
    }

    #[test]
    fn failed_enqueue_scrubs_tag_and_returns_credit() {
        // No proxy: nothing drains the request ring, so submissions
        // eventually fail with a full ring. The failures must leave no
        // trace in the pending map and no held credits.
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let pool = Arc::new(CreditPool::new(u32::MAX));
        let client = RpcClient::with_credits(ch.req_tx, ch.resp_rx, Some(Arc::clone(&pool)));

        let mut ok = 0u32;
        let mut failed = 0u32;
        let mut tokens = Vec::new();
        while failed < 8 {
            let tag = client.tag();
            let frame = FsRequest::Fstat { ino: 1 }.encode(tag);
            match client.submit(tag, frame) {
                Ok(t) => {
                    ok += 1;
                    tokens.push(t);
                }
                Err(e) => {
                    assert_eq!(e, RpcErr::WouldBlock);
                    failed += 1;
                }
            }
            assert!(ok < 100_000, "ring never filled");
        }
        // Only the successful submissions remain pending, each holding
        // exactly one credit.
        assert_eq!(client.pending_len(), ok as usize);
        assert_eq!(pool.levels().0, ok);

        // A proxy appears and answers everything; the map returns to
        // empty and every credit comes back.
        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let proxy = std::thread::spawn(move || {
            let mut served = 0;
            while served < ok {
                match req_rx.recv() {
                    Ok(f) => {
                        let (tag, _) = FsRequest::decode(&f).unwrap();
                        resp_tx.send_blocking(&FsResponse::Ok.encode(tag)).unwrap();
                        served += 1;
                    }
                    Err(_) => std::thread::yield_now(),
                }
            }
        });
        for t in tokens {
            let reply = client.wait(t);
            let (_, resp) = FsResponse::decode(&reply).unwrap();
            assert_eq!(resp, FsResponse::Ok);
        }
        proxy.join().unwrap();
        assert_eq!(client.pending_len(), 0);
        assert_eq!(pool.levels().0, 0);
    }

    #[test]
    fn try_submit_without_credit_is_overloaded() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let pool = Arc::new(CreditPool::new(1));
        let client = RpcClient::with_credits(ch.req_tx, ch.resp_rx, Some(Arc::clone(&pool)));

        let tag = client.tag();
        let t = client
            .try_submit(tag, FsRequest::Fsync { ino: 1 }.encode(tag))
            .unwrap();
        // Window of 1 is spent; the next try_submit is refused cleanly.
        let tag2 = client.tag();
        let err = client
            .try_submit(tag2, FsRequest::Fsync { ino: 2 }.encode(tag2))
            .unwrap_err();
        assert_eq!(err, RpcErr::Overloaded);
        assert_eq!(client.pending_len(), 1);

        // Answer the in-flight one; the spent credit frees on wait.
        let resp_tx = ch.resp_tx;
        let req_rx = ch.req_rx;
        let f = loop {
            match req_rx.recv() {
                Ok(f) => break f,
                Err(_) => std::thread::yield_now(),
            }
        };
        let (rtag, _) = FsRequest::decode(&f).unwrap();
        resp_tx.send_blocking(&FsResponse::Ok.encode(rtag)).unwrap();
        let _ = client.wait(t);
        assert_eq!(pool.levels().0, 0);
        assert_eq!(client.pending_len(), 0);
    }

    #[test]
    fn dropped_token_abandons_without_leaking() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let pool = Arc::new(CreditPool::new(8));
        let client = RpcClient::with_credits(ch.req_tx, ch.resp_rx, Some(Arc::clone(&pool)));

        let tag_a = client.tag();
        let token_a = client
            .submit(tag_a, FsRequest::Fstat { ino: 1 }.encode(tag_a))
            .unwrap();
        drop(token_a); // Abandoned before any reply.
        assert_eq!(client.pending_len(), 1, "abandoned slot awaits its reply");
        assert_eq!(pool.levels().0, 1, "credit still held until the reply");

        // The proxy answers the abandoned tag; a later call drains it.
        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let proxy = std::thread::spawn(move || {
            for _ in 0..2 {
                let f = loop {
                    match req_rx.recv() {
                        Ok(f) => break f,
                        Err(_) => std::thread::yield_now(),
                    }
                };
                let (tag, _) = FsRequest::decode(&f).unwrap();
                resp_tx.send_blocking(&FsResponse::Ok.encode(tag)).unwrap();
            }
        });
        let tag_b = client.tag();
        let _ = client.call(tag_b, FsRequest::Fstat { ino: 2 }.encode(tag_b));
        client.drain_now();
        proxy.join().unwrap();
        client.drain_now();
        assert_eq!(client.pending_len(), 0, "abandoned reply discarded");
        assert_eq!(pool.levels().0, 0, "abandoned credit returned");
    }

    #[test]
    fn tenant_id_rides_the_frame_header() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let client = RpcClient::new(ch.req_tx, ch.resp_rx);
        client.set_tenant(3);

        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let proxy = std::thread::spawn(move || {
            let f = loop {
                match req_rx.recv() {
                    Ok(f) => break f,
                    Err(_) => std::thread::yield_now(),
                }
            };
            let frame = decode_frame(&f).unwrap();
            assert_eq!(frame.tenant, 3);
            let (tag, _) = FsRequest::decode(&f).unwrap();
            resp_tx.send_blocking(&FsResponse::Ok.encode(tag)).unwrap();
        });
        let tag = client.tag();
        let _ = client.call(tag, FsRequest::Fsync { ino: 1 }.encode(tag));
        proxy.join().unwrap();
    }

    #[test]
    fn wait_timeout_abandons_and_late_reply_settles() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let pool = Arc::new(CreditPool::new(8));
        let client = RpcClient::with_credits(ch.req_tx, ch.resp_rx, Some(Arc::clone(&pool)));

        // No proxy yet: the deadline expires with the request still queued.
        let tag = client.tag();
        let token = client
            .submit(tag, FsRequest::Fstat { ino: 9 }.encode(tag))
            .unwrap();
        let err = client
            .wait_timeout(token, Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, RpcErr::Timeout);
        assert_eq!(client.pending_len(), 1, "expired tag awaits its reply");
        assert_eq!(pool.levels().0, 1, "credit held until the late reply");

        // The proxy comes alive late; draining its reply clears the
        // abandoned slot and returns the credit.
        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let proxy = std::thread::spawn(move || {
            let f = loop {
                match req_rx.recv() {
                    Ok(f) => break f,
                    Err(_) => std::thread::yield_now(),
                }
            };
            let (rtag, _) = FsRequest::decode(&f).unwrap();
            resp_tx.send_blocking(&FsResponse::Ok.encode(rtag)).unwrap();
        });
        proxy.join().unwrap();
        while client.pending_len() > 0 {
            client.drain_now();
            std::thread::yield_now();
        }
        assert_eq!(pool.levels().0, 0);
    }

    #[test]
    fn link_reset_drains_scrubs_and_revives_the_link() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let pool = Arc::new(CreditPool::new(8));
        let client = RpcClient::with_link(
            ch.req_tx,
            ch.resp_rx,
            Some(Arc::clone(&pool)),
            Arc::clone(&ch.req_ring),
            Arc::clone(&ch.resp_ring),
        );
        client.set_error_encoder(|tag, err| FsResponse::Error { err }.encode(tag));

        // Dead peer: three submissions sit unanswered, one abandoned.
        let mut tokens = Vec::new();
        for ino in 1..=3u64 {
            let tag = client.tag();
            tokens.push(
                client
                    .submit(tag, FsRequest::Fstat { ino }.encode(tag))
                    .unwrap(),
            );
        }
        drop(tokens.pop());
        assert_eq!(pool.levels().0, 3);

        let report = client.link_reset(RpcErr::Gone);
        assert_eq!(report.drained, 2);
        assert_eq!(report.credits_scrubbed, 3);
        assert!(report.ring_reset);
        assert_eq!(pool.levels().0, 0, "every credit scrubbed");

        // Blocked waiters get a decodable error completion.
        for t in tokens {
            let reply = client.wait(t);
            let (_, resp) = FsResponse::decode(&reply).unwrap();
            assert_eq!(resp, FsResponse::Error { err: RpcErr::Gone });
        }
        assert_eq!(client.pending_len(), 0);

        // A replacement peer minted from the rings serves traffic again.
        let req_rx = ch.req_ring.consumer();
        let resp_tx = ch.resp_ring.producer();
        let proxy = std::thread::spawn(move || {
            let f = loop {
                match req_rx.recv() {
                    Ok(f) => break f,
                    Err(_) => std::thread::yield_now(),
                }
            };
            let (rtag, _) = FsRequest::decode(&f).unwrap();
            resp_tx.send_blocking(&FsResponse::Ok.encode(rtag)).unwrap();
        });
        let tag = client.tag();
        let reply = client.call(tag, FsRequest::Fsync { ino: 4 }.encode(tag));
        let (_, resp) = FsResponse::decode(&reply).unwrap();
        assert_eq!(resp, FsResponse::Ok);
        proxy.join().unwrap();
        assert_eq!(client.pending_len(), 0);
        assert_eq!(pool.levels().0, 0);
    }

    #[test]
    fn drain_error_frame_without_encoder_carries_the_code() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let client = RpcClient::new(ch.req_tx, ch.resp_rx);
        let tag = client.tag();
        let token = client
            .submit(tag, FsRequest::Fsync { ino: 1 }.encode(tag))
            .unwrap();
        let report = client.link_reset(RpcErr::Gone);
        assert_eq!(report.drained, 1);
        assert!(!report.ring_reset, "no rings attached via with_credits");
        let reply = client.wait(token);
        let frame = decode_frame(&reply).unwrap();
        assert_eq!(frame.msg_type, MSG_DRAIN_ERR);
        let code = u32::from_le_bytes(frame.body[..4].try_into().unwrap());
        assert_eq!(RpcErr::from_code(code), Some(RpcErr::Gone));
    }

    #[test]
    fn deadline_class_rides_submission_flags() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let client = RpcClient::new(ch.req_tx, ch.resp_rx);

        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let proxy = std::thread::spawn(move || {
            let f = loop {
                match req_rx.recv() {
                    Ok(f) => break f,
                    Err(_) => std::thread::yield_now(),
                }
            };
            let frame = decode_frame(&f).unwrap();
            // 1.7 ms rounds up to the 2 ms deadline class.
            assert_eq!(
                solros_proto::codec::flags_deadline(frame.flags),
                Some(Duration::from_micros(2_000))
            );
            let (rtag, _) = FsRequest::decode(&f).unwrap();
            resp_tx.send_blocking(&FsResponse::Ok.encode(rtag)).unwrap();
        });

        let tag = client.tag();
        let token = client
            .submit_with_deadline(
                tag,
                FsRequest::Fsync { ino: 1 }.encode(tag),
                Duration::from_micros(1_700),
            )
            .unwrap();
        let reply = client
            .wait_timeout(token, Duration::from_secs(5))
            .expect("proxy replies well within the deadline");
        let (_, resp) = FsResponse::decode(&reply).unwrap();
        assert_eq!(resp, FsResponse::Ok);
        proxy.join().unwrap();
    }
}
