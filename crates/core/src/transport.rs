//! RPC channels over the transport service.
//!
//! Ring placement follows the paper:
//!
//! * FS / network *request* and *response* rings are mastered in
//!   co-processor memory (§4.3.1): the data-plane's RPC operations touch
//!   only local memory, while the host pulls requests and pushes replies
//!   across PCIe with its faster DMA engines.
//! * The network *inbound event* ring is mastered in host memory
//!   (§4.4.1), so the co-processor's DMA engines pull inbound data from
//!   the other end — both sides' DMA engines run in parallel.
//!
//! [`RpcClient`] gives many co-processor threads synchronous calls over
//! one shared ring pair: each call gets a fresh tag; whichever waiter
//! drains a reply routes it to the pending slot of its tag.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use solros_pcie::counter::PcieCounters;
use solros_pcie::Side;
use solros_proto::codec::decode_frame;
use solros_qos::CreditPool;
use solros_ringbuf::ring::{RingBuf, RingConfig};
use solros_ringbuf::{Consumer, Producer, RingError};

/// Default request/response ring capacity (64 KiB each).
pub const RPC_RING_BYTES: usize = 64 * 1024;
/// Default inbound event ring capacity. The paper sizes this generously
/// (128 MB) to backlog inbound data; the simulation uses 4 MiB.
pub const EVENT_RING_BYTES: usize = 4 * 1024 * 1024;

/// One co-processor's RPC plumbing for a service (FS or network).
pub struct Channel {
    /// Data-plane sends requests here.
    pub req_tx: Producer,
    /// Control plane drains requests here.
    pub req_rx: Consumer,
    /// Control plane sends replies here.
    pub resp_tx: Producer,
    /// Data-plane drains replies here.
    pub resp_rx: Consumer,
}

impl Channel {
    /// Builds the request/response pair with masters at the co-processor
    /// (§4.3.1).
    pub fn new(counters: Arc<PcieCounters>) -> Channel {
        let req = RingBuf::new(
            RingConfig::over_pcie(RPC_RING_BYTES, Side::Coproc, Side::Coproc, Side::Host),
            Arc::clone(&counters),
        );
        let resp = RingBuf::new(
            RingConfig::over_pcie(RPC_RING_BYTES, Side::Coproc, Side::Host, Side::Coproc),
            counters,
        );
        let (req_tx, req_rx) = req.endpoints();
        let (resp_tx, resp_rx) = resp.endpoints();
        Channel {
            req_tx,
            req_rx,
            resp_tx,
            resp_rx,
        }
    }
}

/// Builds the inbound event ring: master at the host, consumed by the
/// co-processor (§4.4.1).
pub fn event_ring(counters: Arc<PcieCounters>) -> (Producer, Consumer) {
    RingBuf::new(
        RingConfig::over_pcie(EVENT_RING_BYTES, Side::Host, Side::Host, Side::Coproc),
        counters,
    )
    .endpoints()
}

/// A synchronous, tag-routing RPC client shared by data-plane threads.
pub struct RpcClient {
    tx: Producer,
    rx: Consumer,
    next_tag: AtomicU32,
    pending: Mutex<HashMap<u32, Option<Vec<u8>>>>,
    arrived: Condvar,
    /// QoS backpressure: when present, each call holds one in-flight
    /// credit and replies carry window updates from the proxy.
    credits: Option<Arc<CreditPool>>,
}

/// Reply-wait tuning: spin briefly (cheap when the proxy answers within
/// a few microseconds), then yield the CPU, then park on the condvar with
/// an escalating timeout. The previous implementation re-armed a fixed
/// 50 µs condvar wait in a tight loop, which degenerated into busy-waiting
/// whenever the proxy was slower than the ring poll.
const SPIN_LIMIT: u32 = 64;
const YIELD_LIMIT: u32 = 16;
const PARK_MIN_US: u64 = 50;
const PARK_MAX_US: u64 = 1_000;

impl RpcClient {
    /// Wraps a request producer and response consumer.
    pub fn new(tx: Producer, rx: Consumer) -> Arc<Self> {
        Self::with_credits(tx, rx, None)
    }

    /// Wraps a ring pair with an optional QoS credit pool limiting
    /// in-flight requests.
    pub fn with_credits(tx: Producer, rx: Consumer, credits: Option<Arc<CreditPool>>) -> Arc<Self> {
        Arc::new(Self {
            tx,
            rx,
            next_tag: AtomicU32::new(1),
            pending: Mutex::new(HashMap::new()),
            arrived: Condvar::new(),
            credits,
        })
    }

    /// Allocates a tag for one call.
    pub fn tag(&self) -> u32 {
        self.next_tag.fetch_add(1, Ordering::Relaxed)
    }

    /// This client's credit pool, if flow control is enabled.
    pub fn credits(&self) -> Option<&Arc<CreditPool>> {
        self.credits.as_ref()
    }

    /// Applies the credit grant piggybacked on `reply` and releases the
    /// in-flight slot taken at send time.
    fn settle(&self, reply: Vec<u8>) -> Vec<u8> {
        if let Some(pool) = &self.credits {
            let grant = decode_frame(&reply).map(|f| f.credit).unwrap_or(0);
            pool.complete(grant);
        }
        reply
    }

    /// Sends an encoded frame (which must carry `tag`) and blocks until
    /// the matching reply arrives. Replies for other tags drained along
    /// the way are handed to their waiters.
    pub fn call(&self, tag: u32, frame: Vec<u8>) -> Vec<u8> {
        if let Some(pool) = &self.credits {
            pool.acquire();
        }
        self.pending.lock().insert(tag, None);
        self.tx
            .send_blocking(&frame)
            .expect("RPC frame exceeds ring element limit");
        let mut attempts = 0u32;
        loop {
            {
                let mut g = self.pending.lock();
                if let Some(Some(_)) = g.get(&tag) {
                    let reply = g.remove(&tag).flatten().expect("checked Some");
                    drop(g);
                    return self.settle(reply);
                }
            }
            match self.rx.recv() {
                Ok(reply) => {
                    attempts = 0;
                    let rtag = decode_frame(&reply).map(|f| f.tag).unwrap_or(0);
                    if rtag == tag {
                        self.pending.lock().remove(&tag);
                        return self.settle(reply);
                    }
                    let mut g = self.pending.lock();
                    if let Some(slot) = g.get_mut(&rtag) {
                        *slot = Some(reply);
                        self.arrived.notify_all();
                    }
                    // Unknown tag: reply for a caller that vanished; drop.
                }
                Err(RingError::WouldBlock) | Err(RingError::TooBig) => {
                    attempts += 1;
                    if attempts <= SPIN_LIMIT {
                        std::hint::spin_loop();
                    } else if attempts <= SPIN_LIMIT + YIELD_LIMIT {
                        std::thread::yield_now();
                    } else {
                        // Park until another caller routes a reply or the
                        // timeout elapses; escalate the timeout so an idle
                        // waiter backs off instead of spinning on the ring.
                        let over = (attempts - SPIN_LIMIT - YIELD_LIMIT) as u64;
                        let park_us = (PARK_MIN_US * over).min(PARK_MAX_US);
                        let mut g = self.pending.lock();
                        if let Some(Some(_)) = g.get(&tag) {
                            continue;
                        }
                        self.arrived
                            .wait_for(&mut g, std::time::Duration::from_micros(park_us));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_proto::fs_msg::{FsRequest, FsResponse};

    #[test]
    fn rpc_roundtrip_single_thread() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let client = RpcClient::new(ch.req_tx, ch.resp_rx);

        // A trivial echo proxy on another thread.
        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let proxy = std::thread::spawn(move || {
            for _ in 0..3 {
                let frame = loop {
                    match req_rx.recv() {
                        Ok(f) => break f,
                        Err(_) => std::thread::yield_now(),
                    }
                };
                let (tag, req) = FsRequest::decode(&frame).unwrap();
                let resp = match req {
                    FsRequest::Fstat { ino } => FsResponse::Stat {
                        ino,
                        is_dir: false,
                        size: ino * 10,
                    },
                    _ => FsResponse::Ok,
                };
                resp_tx.send_blocking(&resp.encode(tag)).unwrap();
            }
        });

        for ino in 1..=3u64 {
            let tag = client.tag();
            let reply = client.call(tag, FsRequest::Fstat { ino }.encode(tag));
            let (rtag, resp) = FsResponse::decode(&reply).unwrap();
            assert_eq!(rtag, tag);
            assert_eq!(
                resp,
                FsResponse::Stat {
                    ino,
                    is_dir: false,
                    size: ino * 10
                }
            );
        }
        proxy.join().unwrap();
    }

    #[test]
    fn concurrent_callers_get_their_own_replies() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let client = RpcClient::new(ch.req_tx, ch.resp_rx);

        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        let total = 8 * 200;
        let proxy = std::thread::spawn(move || {
            let mut served = 0;
            let mut stash: Vec<(u32, FsRequest)> = Vec::new();
            let flush = |stash: &mut Vec<(u32, FsRequest)>, served: &mut i32| {
                // Reply in reverse order to stress tag routing.
                stash.reverse();
                for (tag, req) in stash.drain(..) {
                    let ino = match req {
                        FsRequest::Fstat { ino } => ino,
                        _ => 0,
                    };
                    resp_tx
                        .send_blocking(
                            &FsResponse::Stat {
                                ino,
                                is_dir: false,
                                size: ino ^ 0xABCD,
                            }
                            .encode(tag),
                        )
                        .unwrap();
                    *served += 1;
                }
            };
            while served < total {
                match req_rx.recv() {
                    Ok(f) => {
                        let (tag, req) = FsRequest::decode(&f).unwrap();
                        stash.push((tag, req));
                        if stash.len() >= 4 {
                            flush(&mut stash, &mut served);
                        }
                    }
                    Err(_) => {
                        if stash.is_empty() {
                            std::thread::yield_now();
                        } else {
                            flush(&mut stash, &mut served);
                        }
                    }
                }
            }
        });

        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let ino = t * 1_000 + i;
                        let tag = client.tag();
                        let reply = client.call(tag, FsRequest::Fstat { ino }.encode(tag));
                        let (rtag, resp) = FsResponse::decode(&reply).unwrap();
                        assert_eq!(rtag, tag);
                        assert_eq!(
                            resp,
                            FsResponse::Stat {
                                ino,
                                is_dir: false,
                                size: ino ^ 0xABCD
                            }
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        proxy.join().unwrap();
    }

    #[test]
    fn replies_update_credit_window() {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(counters);
        let pool = Arc::new(CreditPool::new(8));
        let client = RpcClient::with_credits(ch.req_tx, ch.resp_rx, Some(Arc::clone(&pool)));

        let req_rx = ch.req_rx;
        let resp_tx = ch.resp_tx;
        // A proxy that advertises a shrinking, then recovering, window.
        let proxy = std::thread::spawn(move || {
            for window in [3u8, 1, 5] {
                let frame = loop {
                    match req_rx.recv() {
                        Ok(f) => break f,
                        Err(_) => std::thread::yield_now(),
                    }
                };
                let (tag, _req) = FsRequest::decode(&frame).unwrap();
                let mut reply = FsResponse::Ok.encode(tag);
                solros_proto::codec::stamp_credit(&mut reply, window);
                resp_tx.send_blocking(&reply).unwrap();
            }
        });

        for expect in [3u32, 1, 5] {
            let tag = client.tag();
            client.call(tag, FsRequest::Fsync { ino: 1 }.encode(tag));
            let (in_flight, window) = pool.levels();
            assert_eq!(in_flight, 0);
            assert_eq!(window, expect);
        }
        proxy.join().unwrap();
    }
}
