#![warn(missing_docs)]

//! Solros: a data-centric split-OS architecture for heterogeneous
//! computing (EuroSys '18).
//!
//! The crate assembles the paper's system on top of the simulated
//! hardware substrates:
//!
//! * [`transport`] — RPC channels built from the combining ring buffer:
//!   request/response rings mastered in co-processor memory (so
//!   co-processor RPC operations are local; the host pulls/pushes across
//!   PCIe, §4.3.1), and the inbound event ring mastered in host memory
//!   (so co-processor DMA engines pull inbound data, §4.4.1).
//! * [`fs_proxy`] / [`fs_api`] — the file-system service: a full-featured
//!   proxy on the host that chooses peer-to-peer or buffered data paths
//!   per request (§4.3.2), and a lean stub + POSIX-ish API on the
//!   co-processor (§4.3.1).
//! * [`tcp_proxy`] / [`net_api`] — the network service: the host-side TCP
//!   proxy with shared listening sockets and pluggable load balancing
//!   (§4.4.3), and the co-processor-side stub with its single-thread
//!   event dispatcher (§4.4.2).
//! * [`proxy_engine`] — the shared request pipeline behind both proxies:
//!   admission (one decode per frame), DWRR scheduling with priority
//!   inheritance, worker dispatch with panic containment, and uniform
//!   credit/shed/fault reply settlement.
//! * [`lease`] — the extent-lease data plane: generation-stamped leases
//!   over pre-resolved NVMe extents let a co-processor read and write
//!   hot files with zero RPCs per operation; conflicting RPC access
//!   parks behind the engine's external-holds table while the recall
//!   protocol settles the lease.
//! * [`control`] — boot: wires a [`solros_machine::Machine`] into one
//!   control plane and N data planes and runs the proxy threads.
//!
//! # Examples
//!
//! ```
//! use solros::control::Solros;
//! use solros_machine::MachineConfig;
//!
//! let system = Solros::boot(MachineConfig::small());
//! let fs = system.data_plane(0).fs();
//! let f = fs.create("/hello").unwrap();
//! fs.write_at(f, 0, b"solros").unwrap();
//! assert_eq!(fs.read_to_vec(f, 0, 6).unwrap(), b"solros");
//! system.shutdown();
//! ```

pub mod balancer;
pub mod control;
pub mod fs_api;
pub mod fs_proxy;
pub mod net_api;
pub mod proxy_engine;
pub mod retry;
pub mod supervisor;
pub mod tcp_proxy;
pub mod transport;
pub mod waitpolicy;

pub use balancer::{ConnMeta, LeastLoaded, LoadBalancer, RoundRobin};
pub use control::Solros;
pub use fs_api::{Batch, BatchResult, CoprocFs, PendingRead, PendingWrite};
pub use net_api::{CoprocNet, TcpListener, TcpStream};
pub use proxy_engine::{Access, EngineLane, GateJob, OpHandler, ProxyEngine, ProxyStats};
pub use retry::RetryPolicy;
pub use solros_lease as lease;
pub use solros_oplog::LogStats;
pub use solros_qos::{ClassConfig, QosClass, QosConfig, QosStats};
pub use supervisor::ShardSupervisor;
pub use transport::{ResetReport, Token};
