//! System bring-up: one control plane, N data planes.
//!
//! [`Solros::boot`] assembles a [`solros_machine::Machine`], formats the
//! file system, wires RPC channels per co-processor, and spawns the host
//! proxy threads (one FS proxy per co-processor and one TCP proxy). Each
//! [`DataPlane`] is the lean data-plane OS of one co-processor: an FS
//! stub, a TCP stub, and its single-thread event dispatcher — nothing
//! else, which is the point of the architecture (§4).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use solros_fs::FileSystem;
use solros_lease::{LeaseManager, LeaseTable};
use solros_machine::{Machine, MachineConfig};
use solros_netdev::Network;
use solros_qos::{
    CreditPool, HostConfig, HostGate, HostScheduler, QosClass, QosConfig, QosStats, Service,
    TenantLedger, TenantLedgerReplica, TenantUsage,
};

use solros_oplog::LogStats;
use solros_pcie::topo::DeviceId;

use crate::fs_api::CoprocFs;
use crate::fs_proxy::{FsProxy, FsProxyStats};
use crate::net_api::CoprocNet;
use crate::proxy_engine::ShardHealth;
use crate::supervisor::ShardSupervisor;
use crate::tcp_proxy::{
    LoadBalancer, NetChannelHost, RoundRobin, TcpControl, TcpProxy, TcpProxyStats,
};
use crate::transport::{event_ring, Channel, RpcClient};

/// One co-processor's data-plane OS.
pub struct DataPlane {
    fs: Arc<CoprocFs>,
    net: CoprocNet,
}

impl DataPlane {
    /// The file-system API.
    pub fn fs(&self) -> &Arc<CoprocFs> {
        &self.fs
    }

    /// The network API.
    pub fn net(&self) -> &CoprocNet {
        &self.net
    }
}

/// The booted system.
pub struct Solros {
    machine: Machine,
    fs: Arc<FileSystem>,
    data_planes: Vec<DataPlane>,
    fs_stats: Vec<Arc<FsProxyStats>>,
    /// One TCP proxy shard per NUMA domain hosting co-processors.
    tcp_stats: Vec<Arc<TcpProxyStats>>,
    tcp_control: Arc<TcpControl>,
    fs_qos_stats: Vec<Arc<QosStats>>,
    /// Per-domain TCP QoS ledgers (empty when QoS is pass-through).
    tcp_qos_stats: Vec<Arc<QosStats>>,
    lease_mgr: Arc<LeaseManager>,
    /// Health-checks the engine shards and fails dead ones over.
    supervisor: Arc<ShardSupervisor>,
    /// System-wide tenant ledger log every engine shard charges into.
    tenant_ledger: Arc<TenantLedger>,
    /// The host's observer replica of the tenant ledger, registered
    /// before boot completes so it sees every charge.
    tenant_view: TenantLedgerReplica,
    /// Host-global tenant→service→flow hierarchy every QoS gate shard
    /// (FS and TCP, every domain) reports to.
    host_qos: Arc<HostScheduler>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Solros {
    /// Boots with the paper's round-robin load balancer.
    pub fn boot(cfg: MachineConfig) -> Solros {
        Self::boot_with_lb(cfg, Box::new(RoundRobin::default()))
    }

    /// Boots with a custom shared-listening-socket policy (§4.4.3).
    pub fn boot_with_lb(cfg: MachineConfig, lb: Box<dyn LoadBalancer>) -> Solros {
        Self::boot_with_lb_qos(cfg, lb, QosConfig::default())
    }

    /// Boots with an explicit QoS configuration. The default config is
    /// pass-through (no gate, no credits); [`QosConfig::enforcing`] or a
    /// custom config turns the proxies' service loops into QoS gates.
    pub fn boot_qos(cfg: MachineConfig, qos: QosConfig) -> Solros {
        Self::boot_with_lb_qos(cfg, Box::new(RoundRobin::default()), qos)
    }

    /// Boots with both a custom load balancer and a QoS configuration.
    pub fn boot_with_lb_qos(
        cfg: MachineConfig,
        lb: Box<dyn LoadBalancer>,
        qos: QosConfig,
    ) -> Solros {
        let cache_pages = cfg.host_cache_pages;
        let machine = Machine::new(cfg);
        let fs = Arc::new(FileSystem::mkfs(Arc::clone(&machine.nvme), cache_pages).expect("mkfs"));
        Self::assemble(machine, fs, lb, qos)
    }

    /// Boots against an already-formatted SSD, mounting it instead of
    /// re-formatting — the reboot/persistence path.
    ///
    /// # Errors
    ///
    /// Returns the mount error if the device does not hold a valid Solros
    /// file system.
    pub fn boot_mounted(
        cfg: MachineConfig,
        nvme: Arc<solros_nvme::NvmeDevice>,
    ) -> Result<Solros, solros_fs::FsError> {
        let cache_pages = cfg.host_cache_pages;
        let machine = Machine::with_nvme(cfg, Arc::clone(&nvme));
        let fs = Arc::new(FileSystem::mount(nvme, cache_pages)?);
        Ok(Self::assemble(
            machine,
            fs,
            Box::new(RoundRobin::default()),
            QosConfig::default(),
        ))
    }

    fn assemble(
        machine: Machine,
        fs: Arc<FileSystem>,
        lb: Box<dyn LoadBalancer>,
        qos: QosConfig,
    ) -> Solros {
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        let mut data_planes = Vec::new();
        let mut fs_stats = Vec::new();
        let mut fs_qos_stats = Vec::new();
        let mut net_host_channels = Vec::new();
        let credit_pool = |_: &str| -> Option<Arc<CreditPool>> {
            if qos.enabled && qos.credit_window > 0 {
                Some(Arc::new(CreditPool::new(qos.credit_window)))
            } else {
                None
            }
        };

        // One lease control plane for the whole system: every proxy
        // grants and recalls against the same books, so a grant made for
        // one co-processor defers conflicting RPCs arriving at another.
        let lease_mgr = Arc::new(LeaseManager::new());

        // One tenant ledger log for the whole system; each engine shard
        // charges admitted work into it and the host keeps an observer
        // replica (registered now, before any charge can be appended).
        let tenant_ledger = TenantLedger::new();
        let tenant_view = tenant_ledger.replica();

        // The host-global QoS hierarchy: level 1 (tenants against host
        // budgets, rebalanced off the replicated ledger) and level 2
        // (fs-vs-tcp service shares) are shared state; each proxy below
        // registers its own per-domain level-3 flow-table shard.
        let host_qos = HostScheduler::with_ledger(HostConfig::default(), tenant_ledger.replica());

        for coproc in &machine.coprocs {
            // ---- File-system service ----
            let fs_ch = Channel::new(Arc::clone(&coproc.counters));
            let stats = Arc::new(FsProxyStats::default());
            fs_stats.push(Arc::clone(&stats));
            let mut proxy = FsProxy::new(
                Arc::clone(&fs),
                Arc::clone(&coproc.window),
                machine.ssd_p2p_crosses_numa(coproc.id),
                stats,
            );
            proxy.set_lease_manager(Arc::clone(&lease_mgr), coproc.id);
            proxy.set_tenant_ledger(Arc::clone(&tenant_ledger));
            let sd = Arc::clone(&shutdown);
            let (req_rx, resp_tx) = (fs_ch.req_rx, fs_ch.resp_tx);
            let builder =
                std::thread::Builder::new().name(format!("solros-fs-proxy-{}", coproc.id));
            let handle = if qos.enabled {
                let gate = HostGate::per_class(
                    &format!("fs{}", coproc.id),
                    &qos,
                    &host_qos,
                    Service::Fs,
                    coproc.id as usize,
                );
                let gate_stats = gate.stats();
                fs_qos_stats.push(Arc::clone(&gate_stats));
                // Leased bypass bytes are charged to the bulk-data flow
                // so zero-RPC traffic cannot evade tenant accounting.
                proxy.set_lease_charge(gate_stats, QosClass::BestEffort.index());
                builder
                    .spawn(move || proxy.serve_qos(req_rx, resp_tx, sd, gate))
                    .expect("spawn fs proxy")
            } else {
                builder
                    .spawn(move || proxy.serve(req_rx, resp_tx, sd))
                    .expect("spawn fs proxy")
            };
            threads.push(handle);
            let fs_client = RpcClient::with_link(
                fs_ch.req_tx,
                fs_ch.resp_rx,
                credit_pool("fs"),
                Arc::clone(&fs_ch.req_ring),
                Arc::clone(&fs_ch.resp_ring),
            );
            fs_client.set_error_encoder(|tag, err| {
                solros_proto::fs_msg::FsResponse::Error { err }.encode(tag)
            });
            let mut coproc_fs = CoprocFs::new(
                fs_client,
                Arc::clone(&coproc.window),
                Arc::clone(&coproc.alloc),
            );
            coproc_fs.set_lease_table(Arc::new(LeaseTable::new(
                Arc::clone(&machine.nvme),
                Arc::clone(&coproc.window),
                Arc::clone(&coproc.alloc),
                Arc::clone(&lease_mgr),
            )));
            let coproc_fs = Arc::new(coproc_fs);

            // ---- Network service ----
            let net_ch = Channel::new(Arc::clone(&coproc.counters));
            let (evt_tx, evt_rx) = event_ring(Arc::clone(&coproc.counters));
            net_host_channels.push(NetChannelHost {
                req_rx: net_ch.req_rx,
                resp_tx: net_ch.resp_tx,
                evt_tx,
            });
            let net_client = RpcClient::with_link(
                net_ch.req_tx,
                net_ch.resp_rx,
                credit_pool("net"),
                Arc::clone(&net_ch.req_ring),
                Arc::clone(&net_ch.resp_ring),
            );
            net_client.set_error_encoder(|tag, err| {
                solros_proto::net_msg::NetResponse::Error { err }.encode(tag)
            });
            let (coproc_net, dispatcher) =
                CoprocNet::start(net_client, evt_rx, Arc::clone(&shutdown));
            threads.push(dispatcher);

            data_planes.push(DataPlane {
                fs: coproc_fs,
                net: coproc_net,
            });
        }

        // ---- TCP proxy (one engine shard per NUMA domain) ----
        //
        // Co-processors are grouped by the socket they attach to; each
        // group gets its own proxy thread with a local replica of the
        // shared listener/balancer state, kept convergent through the
        // TcpControl operation log (NRK-style node replication).
        let mut domains: Vec<Vec<usize>> = Vec::new();
        let mut domain_of_socket: Vec<Option<usize>> =
            vec![None; machine.topology.sockets() as usize];
        for coproc in &machine.coprocs {
            let socket = machine
                .topology
                .socket_of(DeviceId::Coproc(coproc.id))
                .unwrap_or(0) as usize;
            let d = *domain_of_socket[socket].get_or_insert_with(|| {
                domains.push(Vec::new());
                domains.len() - 1
            });
            domains[d].push(coproc.id as usize);
        }
        let tcp_control = TcpControl::new(domains.len().max(1), machine.coprocs.len());
        let mut net_host_channels: Vec<Option<NetChannelHost>> =
            net_host_channels.into_iter().map(Some).collect();
        let mut tcp_stats = Vec::new();
        let mut tcp_qos_stats = Vec::new();
        // The supervisor keeps the pieces needed to resurrect any shard:
        // the control spine, the lease/tenant planes to reconcile, the
        // QoS config and balancer prototype to rebuild from, and a clone
        // of each shard's ring endpoints.
        let supervisor = Arc::new(ShardSupervisor::new(
            Arc::clone(&machine.network),
            Arc::clone(&tcp_control),
            Arc::clone(&lease_mgr),
            Arc::clone(&tenant_ledger),
            qos.clone(),
            Arc::clone(&host_qos),
            lb,
            Arc::clone(&shutdown),
        ));
        for (d, coprocs) in domains.into_iter().enumerate() {
            let channels: Vec<NetChannelHost> = coprocs
                .iter()
                .map(|&c| net_host_channels[c].take().expect("channel taken once"))
                .collect();
            let (mut shard, stats) = TcpProxy::shard(
                Arc::clone(&machine.network),
                Arc::clone(&tcp_control),
                d,
                coprocs,
                channels.clone(),
                supervisor.fork_lb(),
            );
            tcp_stats.push(Arc::clone(&stats));
            shard.set_tenant_ledger(Arc::clone(&tenant_ledger));
            if qos.enabled {
                tcp_qos_stats.push(shard.enable_qos(&qos, &host_qos));
            }
            let health = Arc::new(ShardHealth::new());
            shard.set_health(Arc::clone(&health));
            let shard = Arc::new(shard);
            let sd = Arc::clone(&shutdown);
            let runner = Arc::clone(&shard);
            let handle = std::thread::Builder::new()
                .name(format!("solros-tcp-proxy-{d}"))
                .spawn(move || runner.run_shared(sd))
                .expect("spawn tcp proxy");
            supervisor.adopt(shard, health, handle, stats, channels);
        }
        {
            let sup = Arc::clone(&supervisor);
            threads.push(
                std::thread::Builder::new()
                    .name("solros-shard-supervisor".into())
                    .spawn(move || sup.watch())
                    .expect("spawn shard supervisor"),
            );
        }

        Solros {
            machine,
            fs,
            data_planes,
            fs_stats,
            tcp_stats,
            tcp_control,
            fs_qos_stats,
            tcp_qos_stats,
            lease_mgr,
            supervisor,
            tenant_ledger,
            tenant_view,
            host_qos,
            shutdown,
            threads,
        }
    }

    /// Number of co-processors.
    pub fn coprocs(&self) -> usize {
        self.data_planes.len()
    }

    /// One co-processor's data plane.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn data_plane(&self, i: usize) -> &DataPlane {
        &self.data_planes[i]
    }

    /// The host-side file system (control-plane view; used by benches to
    /// pre-populate data and inspect the cache).
    pub fn host_fs(&self) -> &Arc<FileSystem> {
        &self.fs
    }

    /// The NIC fabric (drive it as the external client machine).
    pub fn network(&self) -> &Arc<Network> {
        &self.machine.network
    }

    /// The underlying machine (topology, counters, devices).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// FS-proxy statistics for co-processor `i`.
    pub fn fs_proxy_stats(&self, i: usize) -> &Arc<FsProxyStats> {
        &self.fs_stats[i]
    }

    /// Number of TCP proxy shards (one per NUMA domain hosting
    /// co-processors).
    pub fn tcp_domains(&self) -> usize {
        self.tcp_stats.len()
    }

    /// TCP-proxy statistics for NUMA domain `d`, matching the per-domain
    /// granularity of [`Solros::fs_proxy_stats`]. The `events` and
    /// `accepted` counters are machine-global (identical through every
    /// domain's handle); the engine lifecycle ledger is per shard.
    pub fn tcp_proxy_stats(&self, d: usize) -> &Arc<TcpProxyStats> {
        &self.tcp_stats[d]
    }

    /// Counters of the TCP control-plane operation log: depth, combine
    /// factor, and the replica-overrun tripwire (must stay 0).
    pub fn tcp_control_log_stats(&self) -> LogStats {
        self.tcp_control.log_stats()
    }

    /// QoS ledger for co-processor `i`'s FS gate, or `None` when the
    /// system was booted pass-through (QoS disabled).
    pub fn fs_qos_stats(&self, i: usize) -> Option<&Arc<QosStats>> {
        self.fs_qos_stats.get(i)
    }

    /// QoS ledger for NUMA domain `d`'s TCP gate, or `None` when
    /// pass-through.
    pub fn tcp_qos_stats(&self, d: usize) -> Option<&Arc<QosStats>> {
        self.tcp_qos_stats.get(d)
    }

    /// The host-global tenant→service→flow QoS hierarchy: tenant
    /// weights/budgets, and the flow-table occupancy/GC ledger
    /// aggregated across every gate shard.
    pub fn host_qos(&self) -> &Arc<HostScheduler> {
        &self.host_qos
    }

    /// The system-wide extent-lease control plane (ledger, fault hooks,
    /// recall budget).
    pub fn lease_manager(&self) -> &Arc<LeaseManager> {
        &self.lease_mgr
    }

    /// The shard supervisor: per-domain health, failover counters, fault
    /// arming points, and the merged [`solros_faults::RecoveryReport`].
    pub fn supervisor(&self) -> &Arc<ShardSupervisor> {
        &self.supervisor
    }

    /// The supervisor's merged recovery bookkeeping (failovers, blackout
    /// time, overrun rebuilds, wave resubmits, event drops).
    pub fn recovery_report(&self) -> solros_faults::RecoveryReport {
        self.supervisor.report()
    }

    /// The system-wide tenant ledger log (budget setting, extra
    /// replicas). Charges accrue only on QoS-gated admission paths.
    pub fn tenant_ledger(&self) -> &Arc<TenantLedger> {
        &self.tenant_ledger
    }

    /// The host observer's view of `tenant`'s usage, synced to the log
    /// tail at the call.
    pub fn tenant_usage(&self, tenant: u8) -> TenantUsage {
        self.tenant_view.usage(tenant)
    }

    /// Counters of the tenant-ledger operation log; `appends` stays far
    /// below admitted ops because engines batch one charge per
    /// (tenant, admission burst).
    pub fn tenant_ledger_log_stats(&self) -> LogStats {
        self.tenant_ledger.log_stats()
    }

    /// Stops all proxy threads and joins them.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Shard threads are owned by the supervisor (it must be able to
        // join and replace them mid-run); joined last, after its own
        // watch thread has exited, so no failover can race the joins.
        self.supervisor.join_all();
    }
}

impl Drop for Solros {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn boot_fs_roundtrip_both_coprocs() {
        let sys = Solros::boot(MachineConfig::small());
        for i in 0..sys.coprocs() {
            let fs = sys.data_plane(i).fs();
            let dir = format!("/cp{i}");
            fs.mkdir(&dir).unwrap();
            let f = fs.create(&format!("{dir}/data")).unwrap();
            let payload: Vec<u8> = (0..20_000).map(|x| (x % 251) as u8).collect();
            assert_eq!(fs.write_at(f, 0, &payload).unwrap(), payload.len());
            let back = fs.read_to_vec(f, 0, payload.len()).unwrap();
            assert_eq!(back, payload);
            assert_eq!(fs.fstat(f).unwrap().size, payload.len() as u64);
        }
        // Both co-processors see the same namespace (shared FS).
        let names = sys.data_plane(0).fs().readdir("/").unwrap();
        assert_eq!(names, vec!["cp0", "cp1"]);
        sys.shutdown();
    }

    #[test]
    fn boot_network_echo() {
        let sys = Solros::boot(MachineConfig::small());
        let net = sys.data_plane(0).net().clone();
        let listener = net.listen(7777, 16).unwrap();

        // External client connects and sends a ping.
        let fabric = Arc::clone(sys.network());
        let client = std::thread::spawn(move || {
            let conn = loop {
                match fabric.client_connect(7777, 42) {
                    Ok(c) => break c,
                    Err(_) => std::thread::yield_now(),
                }
            };
            fabric
                .send(conn, solros_netdev::EndKind::Client, b"ping")
                .unwrap();
            // Wait for the echo.
            loop {
                let got = fabric
                    .recv(conn, solros_netdev::EndKind::Client, 16)
                    .unwrap();
                if !got.is_empty() {
                    assert_eq!(got, b"pong");
                    break;
                }
                std::thread::yield_now();
            }
            fabric.close(conn, solros_netdev::EndKind::Client).unwrap();
        });

        let (stream, peer) = listener
            .accept_timeout(Duration::from_secs(5))
            .expect("accept");
        assert_eq!(peer, 42);
        let mut buf = [0u8; 16];
        let n = stream.recv(&mut buf);
        assert_eq!(&buf[..n], b"ping");
        stream.send(b"pong").unwrap();
        client.join().unwrap();
        sys.shutdown();
    }

    #[test]
    fn boot_qos_enforcing_roundtrips_fs_and_net() {
        let sys = Solros::boot_qos(MachineConfig::small(), QosConfig::enforcing());
        // FS ops flow through the DWRR gate and still round-trip.
        let fs = sys.data_plane(0).fs();
        let f = fs.create("/gated").unwrap();
        let payload: Vec<u8> = (0..20_000).map(|x| (x % 241) as u8).collect();
        assert_eq!(fs.write_at(f, 0, &payload).unwrap(), payload.len());
        assert_eq!(fs.read_to_vec(f, 0, payload.len()).unwrap(), payload);

        // Network echo still works through the gated TCP proxy.
        let net = sys.data_plane(0).net().clone();
        let listener = net.listen(7788, 16).unwrap();
        let fabric = Arc::clone(sys.network());
        let client = std::thread::spawn(move || {
            let conn = loop {
                match fabric.client_connect(7788, 7) {
                    Ok(c) => break c,
                    Err(_) => std::thread::yield_now(),
                }
            };
            fabric
                .send(conn, solros_netdev::EndKind::Client, b"hi")
                .unwrap();
            loop {
                let got = fabric
                    .recv(conn, solros_netdev::EndKind::Client, 16)
                    .unwrap();
                if !got.is_empty() {
                    assert_eq!(got, b"ok");
                    break;
                }
                std::thread::yield_now();
            }
        });
        let (stream, _) = listener
            .accept_timeout(Duration::from_secs(5))
            .expect("accept");
        let mut buf = [0u8; 16];
        let n = stream.recv(&mut buf);
        assert_eq!(&buf[..n], b"hi");
        stream.send(b"ok").unwrap();
        client.join().unwrap();

        // The QoS ledgers saw the traffic and shed nothing at this load.
        let ledger = sys.fs_qos_stats(0).expect("qos enabled");
        let snaps = ledger.snapshot();
        assert!(snaps.iter().map(|s| s.dispatched).sum::<u64>() > 0);
        assert_eq!(ledger.total_shed(), 0);
        assert!(snaps.iter().all(|s| s.accounted()));
        let net_ledger = sys.tcp_qos_stats(0).expect("qos enabled");
        assert!(
            net_ledger
                .snapshot()
                .iter()
                .map(|s| s.dispatched)
                .sum::<u64>()
                > 0
        );

        // Every gated admission above ran as the default tenant (0);
        // the replicated tenant ledger must have charged it — at least
        // the write+read payloads in bytes — and the engines batch, so
        // appends stay at or below ops charged.
        let usage = sys.tenant_usage(0);
        assert!(usage.ops >= 4, "fs + net admissions charged: {usage:?}");
        assert!(usage.bytes >= 40_000, "payload bytes charged: {usage:?}");
        let log = sys.tenant_ledger_log_stats();
        assert!(log.appends <= usage.ops);
        sys.shutdown();
    }

    #[test]
    fn default_qos_config_is_pass_through() {
        let sys = Solros::boot_qos(MachineConfig::small(), QosConfig::default());
        assert!(sys.fs_qos_stats(0).is_none());
        assert!(sys.tcp_qos_stats(0).is_none());
        let fs = sys.data_plane(0).fs();
        let f = fs.create("/plain").unwrap();
        assert_eq!(fs.write_at(f, 0, b"abc").unwrap(), 3);
        assert_eq!(fs.read_to_vec(f, 0, 3).unwrap(), b"abc");
        sys.shutdown();
    }

    #[test]
    fn shared_listening_socket_round_robins() {
        let sys = Solros::boot(MachineConfig::small());
        // Both co-processors listen on the same port (§4.4.3).
        let l0 = sys.data_plane(0).net().listen(8080, 64).unwrap();
        let l1 = sys.data_plane(1).net().listen(8080, 64).unwrap();

        let fabric = Arc::clone(sys.network());
        for i in 0..10u64 {
            loop {
                if fabric.client_connect(8080, i).is_ok() {
                    break;
                }
                std::thread::yield_now();
            }
        }
        // Round-robin: each listener accepts 5.
        let mut got0 = 0;
        let mut got1 = 0;
        for _ in 0..5 {
            assert!(l0.accept_timeout(Duration::from_secs(5)).is_some());
            got0 += 1;
            assert!(l1.accept_timeout(Duration::from_secs(5)).is_some());
            got1 += 1;
        }
        assert_eq!((got0, got1), (5, 5));
        // MachineConfig::small has two sockets, so the shared listening
        // socket spans two proxy shards coordinated through the op log.
        assert_eq!(sys.tcp_domains(), 2);
        let s = sys.tcp_proxy_stats(0);
        assert_eq!(s.accepted[0].load(Ordering::Relaxed), 5);
        assert_eq!(s.accepted[1].load(Ordering::Relaxed), 5);
        let log = sys.tcp_control_log_stats();
        assert_eq!(log.overruns, 0, "replica divergence tripwire");
        assert!(log.appends >= 12, "2 listens + 10 assigns: {log:?}");
        sys.shutdown();
    }
}
