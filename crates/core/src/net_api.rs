//! The data-plane network stub and application API (§4.4.1–§4.4.2).
//!
//! A single *event dispatcher* thread per co-processor drains the inbound
//! event ring and distributes events to per-socket queues (the design
//! that keeps contention off the inbound ring, §4.4.2): `Accepted` events
//! feed per-listener accept queues, `Data` events append to per-connection
//! byte streams, `Closed` marks end-of-stream. Application threads block
//! on their own socket's queue under a condition variable.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use solros_proto::net_msg::{NetEvent, NetRequest, NetResponse, SockId};
use solros_proto::rpc_error::RpcErr;
use solros_ringbuf::Consumer;

use crate::tcp_proxy::SOCKOPT_EVENTED;
use crate::transport::RpcClient;

#[derive(Default)]
struct NetInner {
    accept_q: HashMap<SockId, VecDeque<(SockId, u64)>>,
    data_q: HashMap<SockId, VecDeque<u8>>,
    closed: HashSet<SockId>,
}

struct NetShared {
    inner: Mutex<NetInner>,
    arrived: Condvar,
}

/// Runs the event dispatcher loop (§4.4.2). One thread per co-processor.
fn dispatch_loop(evt_rx: Consumer, shared: Arc<NetShared>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::Relaxed) {
        match evt_rx.recv() {
            Ok(frame) => {
                let Ok(ev) = NetEvent::decode(&frame) else {
                    continue;
                };
                let mut g = shared.inner.lock();
                match ev {
                    NetEvent::Accepted {
                        listen,
                        conn,
                        peer_addr,
                    } => {
                        g.accept_q
                            .entry(listen)
                            .or_default()
                            .push_back((conn, peer_addr));
                    }
                    NetEvent::Data { sock, data } => {
                        g.data_q.entry(sock).or_default().extend(data);
                    }
                    NetEvent::Closed { sock } => {
                        g.closed.insert(sock);
                    }
                }
                drop(g);
                shared.arrived.notify_all();
            }
            Err(_) => std::thread::yield_now(),
        }
    }
}

/// The co-processor network API. Clone to share among threads.
#[derive(Clone)]
pub struct CoprocNet {
    client: Arc<RpcClient>,
    shared: Arc<NetShared>,
}

impl CoprocNet {
    /// Builds the stub and spawns the event dispatcher thread.
    pub fn start(
        client: Arc<RpcClient>,
        evt_rx: Consumer,
        shutdown: Arc<AtomicBool>,
    ) -> (Self, std::thread::JoinHandle<()>) {
        let shared = Arc::new(NetShared {
            inner: Mutex::new(NetInner::default()),
            arrived: Condvar::new(),
        });
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("solros-net-dispatch".into())
            .spawn(move || dispatch_loop(evt_rx, shared2, shutdown))
            .expect("spawn dispatcher");
        (Self { client, shared }, handle)
    }

    fn call(&self, req: NetRequest) -> NetResponse {
        let tag = self.client.tag();
        let reply = self.client.call(tag, req.encode(tag));
        match NetResponse::decode(&reply) {
            Ok((_, resp)) => resp,
            Err(_) => NetResponse::Error { err: RpcErr::Io },
        }
    }

    /// Issues a raw socket RPC — the §5 one-to-one syscall mapping,
    /// exposed for the polling (non-evented) path and for tests.
    pub fn raw_call(&self, req: NetRequest) -> NetResponse {
        self.call(req)
    }

    fn expect_ok(&self, req: NetRequest) -> Result<(), RpcErr> {
        match self.call(req) {
            NetResponse::Ok => Ok(()),
            NetResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Creates, binds, and listens — a shared listening socket when other
    /// co-processors listen on the same port (§4.4.3).
    pub fn listen(&self, port: u16, backlog: u32) -> Result<TcpListener, RpcErr> {
        let sock = match self.call(NetRequest::Socket) {
            NetResponse::Socket { sock } => sock,
            NetResponse::Error { err } => return Err(err),
            _ => return Err(RpcErr::Io),
        };
        self.expect_ok(NetRequest::Bind { sock, port })?;
        self.expect_ok(NetRequest::Listen { sock, backlog })?;
        Ok(TcpListener {
            net: self.clone(),
            sock,
        })
    }

    /// Connects outward to `(addr, port)`.
    pub fn connect(&self, addr: u64, port: u16) -> Result<TcpStream, RpcErr> {
        let sock = match self.call(NetRequest::Socket) {
            NetResponse::Socket { sock } => sock,
            NetResponse::Error { err } => return Err(err),
            _ => return Err(RpcErr::Io),
        };
        self.expect_ok(NetRequest::Connect { sock, addr, port })?;
        Ok(TcpStream {
            net: self.clone(),
            sock,
        })
    }

    /// Switches a socket between evented and RPC-polled delivery.
    pub fn set_evented(&self, sock: SockId, evented: bool) -> Result<(), RpcErr> {
        self.expect_ok(NetRequest::Setsockopt {
            sock,
            opt: SOCKOPT_EVENTED,
            val: evented as u64,
        })
    }
}

/// A listening socket on the data plane.
pub struct TcpListener {
    net: CoprocNet,
    sock: SockId,
}

impl TcpListener {
    /// The proxy-assigned socket id.
    pub fn id(&self) -> SockId {
        self.sock
    }

    /// Waits for the dispatcher to deliver a new connection, up to
    /// `timeout`. Returns the stream and the peer address.
    pub fn accept_timeout(&self, timeout: Duration) -> Option<(TcpStream, u64)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.net.shared.inner.lock();
        loop {
            if let Some((conn, peer)) = g.accept_q.entry(self.sock).or_default().pop_front() {
                return Some((
                    TcpStream {
                        net: self.net.clone(),
                        sock: conn,
                    },
                    peer,
                ));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.net.shared.arrived.wait_for(&mut g, deadline - now);
        }
    }

    /// Blocking accept.
    pub fn accept(&self) -> (TcpStream, u64) {
        loop {
            if let Some(r) = self.accept_timeout(Duration::from_millis(100)) {
                return r;
            }
        }
    }

    /// Closes the listener (leaves the shared port open if other
    /// co-processors still listen).
    pub fn close(self) -> Result<(), RpcErr> {
        self.net.expect_ok(NetRequest::Close { sock: self.sock })
    }
}

/// A connected stream on the data plane.
pub struct TcpStream {
    net: CoprocNet,
    sock: SockId,
}

impl TcpStream {
    /// The proxy-assigned socket id.
    pub fn id(&self) -> SockId {
        self.sock
    }

    /// Sends all of `data`, chunking at the transport's element limit
    /// (TCP is a byte stream; framing is the application's business).
    pub fn send(&self, data: &[u8]) -> Result<usize, RpcErr> {
        const CHUNK: usize = 8 * 1024;
        let mut sent = 0;
        for chunk in data.chunks(CHUNK.max(1)) {
            match self.net.call(NetRequest::Send {
                sock: self.sock,
                data: chunk.to_vec(),
            }) {
                NetResponse::Sent { count } => sent += count as usize,
                NetResponse::Error { err } => return Err(err),
                _ => return Err(RpcErr::Io),
            }
        }
        Ok(sent)
    }

    /// Receives up to `buf.len()` bytes from the dispatcher's per-socket
    /// queue, blocking up to `timeout`. `Ok(0)` after a peer close means
    /// end-of-stream; `None` means timeout with no data.
    pub fn recv_timeout(&self, buf: &mut [u8], timeout: Duration) -> Option<usize> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.net.shared.inner.lock();
        loop {
            let q = g.data_q.entry(self.sock).or_default();
            if !q.is_empty() {
                let n = buf.len().min(q.len());
                for b in buf[..n].iter_mut() {
                    *b = q.pop_front().expect("checked non-empty");
                }
                return Some(n);
            }
            if g.closed.contains(&self.sock) {
                return Some(0);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.net.shared.arrived.wait_for(&mut g, deadline - now);
        }
    }

    /// Blocking receive; `Ok(0)` = end-of-stream.
    pub fn recv(&self, buf: &mut [u8]) -> usize {
        loop {
            if let Some(n) = self.recv_timeout(buf, Duration::from_millis(100)) {
                return n;
            }
        }
    }

    /// Receives exactly `n` bytes (blocking); returns `None` on EOF.
    pub fn recv_exact(&self, n: usize) -> Option<Vec<u8>> {
        let mut out = vec![0u8; n];
        let mut have = 0;
        while have < n {
            let got = self.recv(&mut out[have..]);
            if got == 0 {
                return None;
            }
            have += got;
        }
        Some(out)
    }

    /// Closes the connection.
    pub fn close(self) -> Result<(), RpcErr> {
        self.net.expect_ok(NetRequest::Close { sock: self.sock })
    }
}
