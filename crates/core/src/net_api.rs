//! The data-plane network stub and application API (§4.4.1–§4.4.2).
//!
//! A single *event dispatcher* thread per co-processor drains the inbound
//! event ring and distributes events to per-socket queues (the design
//! that keeps contention off the inbound ring, §4.4.2): `Accepted` events
//! feed per-listener accept queues, `Data` events append to per-connection
//! byte streams, `Closed` marks end-of-stream. Application threads block
//! on their own socket's queue under a condition variable.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use solros_proto::net_msg::{NetEvent, NetRequest, NetResponse, SockId};
use solros_proto::rpc_error::RpcErr;
use solros_ringbuf::Consumer;

use crate::tcp_proxy::SOCKOPT_EVENTED;
use crate::transport::{RpcClient, Token};
use crate::waitpolicy::{Wait, WaitPolicy};

#[derive(Default)]
struct NetInner {
    accept_q: HashMap<SockId, VecDeque<(SockId, u64)>>,
    data_q: HashMap<SockId, VecDeque<u8>>,
    closed: HashSet<SockId>,
    /// Listeners closed by this stub. An `Accepted` event still in
    /// flight when the close raced it must be refused (its connection
    /// closed back), never queued — a queued orphan would hold its
    /// fabric conn open forever and the peer would hang, not sever.
    dead_listeners: HashSet<SockId>,
}

struct NetShared {
    inner: Mutex<NetInner>,
    arrived: Condvar,
}

/// Runs the event dispatcher loop (§4.4.2). One thread per co-processor.
fn dispatch_loop(
    evt_rx: Consumer,
    client: Arc<RpcClient>,
    shared: Arc<NetShared>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match evt_rx.recv() {
            Ok(frame) => {
                let Ok(ev) = NetEvent::decode(&frame) else {
                    continue;
                };
                let mut g = shared.inner.lock();
                match ev {
                    NetEvent::Accepted {
                        listen,
                        conn,
                        peer_addr,
                    } => {
                        if g.dead_listeners.contains(&listen) {
                            // The listener closed while this event was on
                            // the ring: refuse the connection instead of
                            // queueing an orphan no accept will reach.
                            drop(g);
                            let tag = client.tag();
                            let _ = client.call(tag, NetRequest::Close { sock: conn }.encode(tag));
                            continue;
                        }
                        g.accept_q
                            .entry(listen)
                            .or_default()
                            .push_back((conn, peer_addr));
                    }
                    NetEvent::Data { sock, data } => {
                        g.data_q.entry(sock).or_default().extend(data);
                    }
                    NetEvent::Closed { sock } => {
                        g.closed.insert(sock);
                    }
                }
                drop(g);
                shared.arrived.notify_all();
            }
            Err(_) => std::thread::yield_now(),
        }
    }
}

/// The co-processor network API. Clone to share among threads.
#[derive(Clone)]
pub struct CoprocNet {
    client: Arc<RpcClient>,
    shared: Arc<NetShared>,
}

impl CoprocNet {
    /// Builds the stub and spawns the event dispatcher thread.
    pub fn start(
        client: Arc<RpcClient>,
        evt_rx: Consumer,
        shutdown: Arc<AtomicBool>,
    ) -> (Self, std::thread::JoinHandle<()>) {
        let shared = Arc::new(NetShared {
            inner: Mutex::new(NetInner::default()),
            arrived: Condvar::new(),
        });
        let shared2 = Arc::clone(&shared);
        let client2 = Arc::clone(&client);
        let handle = std::thread::Builder::new()
            .name("solros-net-dispatch".into())
            .spawn(move || dispatch_loop(evt_rx, client2, shared2, shutdown))
            .expect("spawn dispatcher");
        (Self { client, shared }, handle)
    }

    fn call(&self, req: NetRequest) -> NetResponse {
        let tag = self.client.tag();
        let reply = self.client.call(tag, req.encode(tag));
        match NetResponse::decode(&reply) {
            Ok((_, resp)) => resp,
            Err(_) => NetResponse::Error { err: RpcErr::Io },
        }
    }

    /// Issues a raw socket RPC — the §5 one-to-one syscall mapping,
    /// exposed for the polling (non-evented) path and for tests.
    pub fn raw_call(&self, req: NetRequest) -> NetResponse {
        self.call(req)
    }

    /// The underlying RPC client (for tenant stamping and credit
    /// inspection in tests and tools).
    pub fn client(&self) -> &Arc<RpcClient> {
        &self.client
    }

    fn expect_ok(&self, req: NetRequest) -> Result<(), RpcErr> {
        match self.call(req) {
            NetResponse::Ok => Ok(()),
            NetResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Creates, binds, and listens — a shared listening socket when other
    /// co-processors listen on the same port (§4.4.3).
    pub fn listen(&self, port: u16, backlog: u32) -> Result<TcpListener, RpcErr> {
        let sock = match self.call(NetRequest::Socket) {
            NetResponse::Socket { sock } => sock,
            NetResponse::Error { err } => return Err(err),
            _ => return Err(RpcErr::Io),
        };
        self.expect_ok(NetRequest::Bind { sock, port })?;
        self.expect_ok(NetRequest::Listen { sock, backlog })?;
        Ok(TcpListener {
            net: self.clone(),
            sock,
        })
    }

    /// Connects outward to `(addr, port)`.
    pub fn connect(&self, addr: u64, port: u16) -> Result<TcpStream, RpcErr> {
        let sock = match self.call(NetRequest::Socket) {
            NetResponse::Socket { sock } => sock,
            NetResponse::Error { err } => return Err(err),
            _ => return Err(RpcErr::Io),
        };
        self.expect_ok(NetRequest::Connect { sock, addr, port })?;
        Ok(TcpStream {
            net: self.clone(),
            sock,
        })
    }

    /// Switches a socket between evented and RPC-polled delivery.
    pub fn set_evented(&self, sock: SockId, evented: bool) -> Result<(), RpcErr> {
        self.expect_ok(NetRequest::Setsockopt {
            sock,
            opt: SOCKOPT_EVENTED,
            val: evented as u64,
        })
    }

    /// Enqueues a socket RPC without waiting — the submission half of
    /// [`CoprocNet::raw_call`]. Redeem with [`PendingNet::wait`].
    pub fn submit_call(&self, req: NetRequest) -> Result<PendingNet, RpcErr> {
        let tag = self.client.tag();
        let token = self.client.submit(tag, req.encode(tag))?;
        Ok(PendingNet { token })
    }
}

/// An in-flight socket RPC submitted with [`CoprocNet::submit_call`],
/// [`TcpStream::submit_send`], or [`TcpStream::submit_recv`].
#[must_use = "a submitted socket RPC completes only when waited on"]
pub struct PendingNet {
    token: Token,
}

impl PendingNet {
    /// The wire tag of this submission.
    pub fn tag(&self) -> u32 {
        self.token.tag()
    }

    /// Blocks until the reply arrives and decodes it.
    pub fn wait(self, net: &CoprocNet) -> NetResponse {
        let reply = net.client.wait(self.token);
        match NetResponse::decode(&reply) {
            Ok((_, resp)) => resp,
            Err(_) => NetResponse::Error { err: RpcErr::Io },
        }
    }
}

/// A pipelined [`TcpStream::send`]: one token per transport-sized chunk,
/// all in flight at once.
#[must_use = "a submitted send completes only when waited on"]
pub struct PendingSend {
    chunks: Vec<PendingNet>,
}

impl PendingSend {
    /// Blocks until every chunk is acknowledged; returns total bytes sent.
    pub fn wait(self, net: &CoprocNet) -> Result<usize, RpcErr> {
        let mut sent = 0;
        let mut first_err = None;
        for p in self.chunks {
            match p.wait(net) {
                NetResponse::Sent { count } => sent += count as usize,
                NetResponse::Error { err } => first_err = first_err.or(Some(err)),
                _ => first_err = first_err.or(Some(RpcErr::Io)),
            }
        }
        match first_err {
            None => Ok(sent),
            Some(err) => Err(err),
        }
    }
}

/// A listening socket on the data plane.
pub struct TcpListener {
    net: CoprocNet,
    sock: SockId,
}

impl TcpListener {
    /// The proxy-assigned socket id.
    pub fn id(&self) -> SockId {
        self.sock
    }

    /// Waits for the dispatcher to deliver a new connection, up to
    /// `timeout`. Returns the stream and the peer address.
    pub fn accept_timeout(&self, timeout: Duration) -> Option<(TcpStream, u64)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.net.shared.inner.lock();
        loop {
            if let Some((conn, peer)) = g.accept_q.entry(self.sock).or_default().pop_front() {
                return Some((
                    TcpStream {
                        net: self.net.clone(),
                        sock: conn,
                    },
                    peer,
                ));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.net.shared.arrived.wait_for(&mut g, deadline - now);
        }
    }

    /// Blocking accept.
    ///
    /// Escalates spin→yield→park via [`WaitPolicy`] instead of re-arming a
    /// fixed timeout: a busy listener takes connections off the queue
    /// without ever sleeping, while an idle one parks on the dispatcher's
    /// condition variable.
    pub fn accept(&self) -> (TcpStream, u64) {
        let mut policy = WaitPolicy::new();
        loop {
            let mut g = self.net.shared.inner.lock();
            if let Some((conn, peer)) = g.accept_q.entry(self.sock).or_default().pop_front() {
                return (
                    TcpStream {
                        net: self.net.clone(),
                        sock: conn,
                    },
                    peer,
                );
            }
            match policy.advance() {
                Wait::Park(d) => {
                    if !self.net.shared.arrived.wait_for(&mut g, d).timed_out() {
                        policy.reset();
                    }
                }
                // Spin/yield with the lock released so the dispatcher can
                // deliver.
                Wait::Spin => {
                    drop(g);
                    std::hint::spin_loop();
                }
                Wait::Yield => {
                    drop(g);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Closes the listener (leaves the shared port open if other
    /// co-processors still listen).
    ///
    /// Connections delivered to this listener but never accepted are
    /// refused — their sockets closed back through the proxy so the
    /// peer observes a severance rather than a hang. The dead-listener
    /// mark makes the dispatcher do the same for any `Accepted` event
    /// still in flight on the ring.
    pub fn close(self) -> Result<(), RpcErr> {
        let orphans: Vec<SockId> = {
            let mut g = self.net.shared.inner.lock();
            g.dead_listeners.insert(self.sock);
            g.accept_q
                .remove(&self.sock)
                .map(|q| q.into_iter().map(|(conn, _)| conn).collect())
                .unwrap_or_default()
        };
        for conn in orphans {
            let _ = self.net.call(NetRequest::Close { sock: conn });
        }
        self.net.expect_ok(NetRequest::Close { sock: self.sock })
    }
}

/// A connected stream on the data plane.
pub struct TcpStream {
    net: CoprocNet,
    sock: SockId,
}

impl TcpStream {
    /// The proxy-assigned socket id.
    pub fn id(&self) -> SockId {
        self.sock
    }

    /// Sends all of `data`, chunking at the transport's element limit
    /// (TCP is a byte stream; framing is the application's business).
    pub fn send(&self, data: &[u8]) -> Result<usize, RpcErr> {
        const CHUNK: usize = 8 * 1024;
        let mut sent = 0;
        for chunk in data.chunks(CHUNK.max(1)) {
            match self.net.call(NetRequest::Send {
                sock: self.sock,
                data: chunk.to_vec(),
            }) {
                NetResponse::Sent { count } => sent += count as usize,
                NetResponse::Error { err } => return Err(err),
                _ => return Err(RpcErr::Io),
            }
        }
        Ok(sent)
    }

    /// Receives up to `buf.len()` bytes from the dispatcher's per-socket
    /// queue, blocking up to `timeout`. `Ok(0)` after a peer close means
    /// end-of-stream; `None` means timeout with no data.
    pub fn recv_timeout(&self, buf: &mut [u8], timeout: Duration) -> Option<usize> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.net.shared.inner.lock();
        loop {
            let q = g.data_q.entry(self.sock).or_default();
            if !q.is_empty() {
                let n = buf.len().min(q.len());
                for b in buf[..n].iter_mut() {
                    *b = q.pop_front().expect("checked non-empty");
                }
                return Some(n);
            }
            if g.closed.contains(&self.sock) {
                return Some(0);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.net.shared.arrived.wait_for(&mut g, deadline - now);
        }
    }

    /// Blocking receive; `Ok(0)` = end-of-stream.
    ///
    /// Uses the shared [`WaitPolicy`] escalation (spin→yield→park) rather
    /// than re-arming a fixed timeout in a tight loop.
    pub fn recv(&self, buf: &mut [u8]) -> usize {
        let mut policy = WaitPolicy::new();
        loop {
            let mut g = self.net.shared.inner.lock();
            let q = g.data_q.entry(self.sock).or_default();
            if !q.is_empty() {
                let n = buf.len().min(q.len());
                for b in buf[..n].iter_mut() {
                    *b = q.pop_front().expect("checked non-empty");
                }
                return n;
            }
            if g.closed.contains(&self.sock) {
                return 0;
            }
            match policy.advance() {
                Wait::Park(d) => {
                    if !self.net.shared.arrived.wait_for(&mut g, d).timed_out() {
                        policy.reset();
                    }
                }
                Wait::Spin => {
                    drop(g);
                    std::hint::spin_loop();
                }
                Wait::Yield => {
                    drop(g);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Enqueues a send of all of `data` without waiting: each
    /// transport-sized chunk becomes one in-flight RPC, so a large send
    /// keeps the request ring full instead of round-tripping per chunk.
    pub fn submit_send(&self, data: &[u8]) -> Result<PendingSend, RpcErr> {
        const CHUNK: usize = 8 * 1024;
        let mut chunks = Vec::new();
        for chunk in data.chunks(CHUNK) {
            match self.net.submit_call(NetRequest::Send {
                sock: self.sock,
                data: chunk.to_vec(),
            }) {
                Ok(p) => chunks.push(p),
                Err(e) => {
                    // Ring or window full: settle what is already in
                    // flight, then report.
                    let _ = PendingSend { chunks }.wait(&self.net);
                    return Err(e);
                }
            }
        }
        Ok(PendingSend { chunks })
    }

    /// Enqueues a polled-path receive of up to `max` bytes without
    /// waiting (the RPC `Recv`, for sockets taken off evented delivery
    /// with [`CoprocNet::set_evented`]). Redeem with [`PendingNet::wait`];
    /// the reply is `Data { data }`.
    pub fn submit_recv(&self, max: u32) -> Result<PendingNet, RpcErr> {
        self.net.submit_call(NetRequest::Recv {
            sock: self.sock,
            max,
        })
    }

    /// Receives exactly `n` bytes (blocking); returns `None` on EOF.
    pub fn recv_exact(&self, n: usize) -> Option<Vec<u8>> {
        let mut out = vec![0u8; n];
        let mut have = 0;
        while have < n {
            let got = self.recv(&mut out[have..]);
            if got == 0 {
                return None;
            }
            have += got;
        }
        Some(out)
    }

    /// Closes the connection.
    pub fn close(self) -> Result<(), RpcErr> {
        self.net.expect_ok(NetRequest::Close { sock: self.sock })
    }
}
