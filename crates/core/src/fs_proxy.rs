//! The control-plane file-system proxy (§4.3.2, §5).
//!
//! One proxy server loop runs per co-processor on a host thread. It pulls
//! file-system RPCs from the request ring, executes them against
//! [`solros_fs::FileSystem`], and pushes replies. For data transfers it
//! chooses between:
//!
//! * **Peer-to-peer**: translate the file range to disk extents
//!   (`fiemap`), translate the co-processor buffer address to its
//!   system-mapped PCIe window, and submit *all* NVMe commands of the
//!   system call as one vectored batch — a single doorbell and a single
//!   interrupt (the §5 driver optimization).
//! * **Buffered**: stage through the host's shared page cache and push
//!   with host DMA. Chosen on a cache hit, when the P2P path would cross
//!   a NUMA boundary (Figure 1a), when the file was opened with
//!   `O_BUFFER`, or when the request is not block-aligned.
//!
//! Since the data plane pipelines submissions, the server loops drain the
//! request ring in *waves*: every P2P-eligible read in a wave contributes
//! its NVMe commands to one combined vectored submission — a single
//! doorbell and a single interrupt across ops *from different calls*, the
//! cross-call generalisation of the §5 batching — while the remaining ops
//! go to a small worker pool and complete out of order (the stub's tag
//! table reorders). A frame flagged [`FLAG_BARRIER`] quiesces both before
//! it runs.

use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use solros_fs::{FileSystem, FsError};
use solros_nvme::{DmaPtr, NvmeCommand, NvmeError, BLOCK_SIZE};
use solros_pcie::window::Window;
use solros_pcie::Side;
use solros_proto::codec::{decode_frame, stamp_credit, FLAG_BARRIER};
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_proto::rpc_error::RpcErr;
use solros_qos::{Dispatch, DwrrScheduler, QosClass, Verdict};
use solros_ringbuf::{Consumer, Producer};

use crate::retry::RetryPolicy;

/// Worker threads per proxy executing non-coalesced operations.
pub const PROXY_WORKERS: usize = 3;
/// Frames drained from the request ring per wave.
pub const DRAIN_BURST: usize = 64;

/// NVMe MDTS in blocks (mirrors `solros_nvme::device::MDTS_BLOCKS`).
const MDTS_BLOCKS: u64 = solros_nvme::device::MDTS_BLOCKS as u64;

/// Path-decision and traffic statistics for one proxy.
#[derive(Debug, Default)]
pub struct FsProxyStats {
    /// RPCs served.
    pub rpcs: AtomicU64,
    /// Reads served peer-to-peer.
    pub p2p_reads: AtomicU64,
    /// Reads served through the host cache.
    pub buffered_reads: AtomicU64,
    /// Writes placed peer-to-peer.
    pub p2p_writes: AtomicU64,
    /// Writes staged through the host.
    pub buffered_writes: AtomicU64,
    /// Pages warmed by sequential readahead (§4.3.2).
    pub prefetched_pages: AtomicU64,
    /// Worker panics contained and converted into `Io` error replies.
    pub worker_panics: AtomicU64,
}

/// Maps file-system errors onto wire codes.
fn rpc_err(e: FsError) -> RpcErr {
    match e {
        FsError::NotFound => RpcErr::NotFound,
        FsError::Exists => RpcErr::Exists,
        FsError::NotDir => RpcErr::NotDir,
        FsError::IsDir => RpcErr::IsDir,
        FsError::NotEmpty => RpcErr::NotEmpty,
        FsError::NoSpace => RpcErr::NoSpace,
        FsError::TooLarge => RpcErr::TooLarge,
        FsError::InvalidPath => RpcErr::Invalid,
        FsError::Corrupt | FsError::Io(_) => RpcErr::Io,
    }
}

/// Data transfers above this size are classed best-effort (bulk) by the
/// QoS gate; smaller transfers ride the normal class.
pub const QOS_BULK_BYTES: u64 = 256 * 1024;

/// Maps an FS request onto a (flow index, payload bytes) pair for the
/// QoS gate. Flow indices follow [`QosClass::index`]: metadata is
/// latency-sensitive (the paper's proxies serve it inline), data moves
/// by size.
fn classify(req: &FsRequest) -> (usize, u64) {
    match req {
        FsRequest::Read { count, .. } | FsRequest::Write { count, .. } => {
            if *count > QOS_BULK_BYTES {
                (QosClass::BestEffort.index(), *count)
            } else {
                (QosClass::Normal.index(), *count)
            }
        }
        _ => (QosClass::High.index(), 0),
    }
}

/// One admitted FS request with its frame metadata, as queued through
/// the QoS gate.
#[derive(Debug)]
pub struct FsJob {
    /// Wire tag of the frame.
    pub tag: u32,
    /// Submission flags ([`FLAG_BARRIER`] today).
    pub flags: u8,
    /// Tenant id from the frame header (0 = default tenant).
    pub tenant: u8,
    /// The decoded request.
    pub req: FsRequest,
}

/// One co-processor's proxy server.
///
/// Shared-state fields are lock-protected so a worker pool can execute
/// independent operations concurrently through [`FsProxy::handle`].
pub struct FsProxy {
    fs: Arc<FileSystem>,
    coproc_window: Arc<Window>,
    crosses_numa: bool,
    stats: Arc<FsProxyStats>,
    /// Inodes opened with `O_BUFFER` by this co-processor.
    buffered_open: Mutex<HashSet<u64>>,
    /// Per-inode end offset of the last read, for sequential detection.
    last_read_end: Mutex<HashMap<u64, u64>>,
    /// Pages to read ahead on a sequential buffered stream (0 disables).
    readahead_pages: u64,
    /// Fault injection: the next N handled requests panic mid-execution.
    inject_worker_panics: AtomicU64,
}

impl FsProxy {
    /// Creates a proxy for one co-processor.
    pub fn new(
        fs: Arc<FileSystem>,
        coproc_window: Arc<Window>,
        crosses_numa: bool,
        stats: Arc<FsProxyStats>,
    ) -> Self {
        Self {
            fs,
            coproc_window,
            crosses_numa,
            stats,
            buffered_open: Mutex::new(HashSet::new()),
            last_read_end: Mutex::new(HashMap::new()),
            readahead_pages: 8,
            inject_worker_panics: AtomicU64::new(0),
        }
    }

    /// Overrides the sequential readahead depth (pages; 0 disables).
    pub fn set_readahead(&mut self, pages: u64) {
        self.readahead_pages = pages;
    }

    /// Fault injection: makes the next `n` handled requests panic inside
    /// the handler, exercising the containment path.
    pub fn inject_worker_panics(&self, n: u64) {
        self.inject_worker_panics.fetch_add(n, Ordering::SeqCst);
    }

    /// Runs [`FsProxy::handle`] with panic containment: a panicking
    /// handler (a proxy bug or an injected fault) yields an [`RpcErr::Io`]
    /// error reply instead of taking down the serve loop, and the worker
    /// keeps running — containment is the respawn. The shared state uses
    /// `parking_lot` locks, which release (without poisoning) during
    /// unwind, so surviving workers see consistent state.
    fn handle_contained(&self, req: FsRequest) -> FsResponse {
        let armed = self
            .inject_worker_panics
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok();
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if armed {
                panic!("injected fs proxy worker panic");
            }
            self.handle(req)
        }));
        out.unwrap_or_else(|_| {
            self.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            FsResponse::Error { err: RpcErr::Io }
        })
    }

    /// Serves requests until `shutdown` is set. Runs on a host thread
    /// plus [`PROXY_WORKERS`] pool threads.
    ///
    /// Each loop iteration drains up to [`DRAIN_BURST`] frames from the
    /// ring into one wave: P2P-eligible reads are coalesced into a single
    /// vectored NVMe submission, everything else is executed by the
    /// worker pool out of order.
    pub fn serve(self, req_rx: Consumer, resp_tx: Producer, shutdown: Arc<AtomicBool>) {
        let jobs = JobQueue::default();
        std::thread::scope(|s| {
            for _ in 0..PROXY_WORKERS {
                let jobs = &jobs;
                let resp_tx = resp_tx.clone();
                let this = &self;
                s.spawn(move || this.worker(jobs, &resp_tx));
            }
            let mut wave = Wave::default();
            while !shutdown.load(Ordering::Relaxed) {
                let mut drained = 0;
                while drained < DRAIN_BURST {
                    let Ok(frame) = req_rx.recv() else { break };
                    drained += 1;
                    match FsRequest::decode(&frame) {
                        Ok((tag, req)) => {
                            let flags = decode_frame(&frame).map(|f| f.flags).unwrap_or(0);
                            self.admit(tag, flags, req, None, &mut wave, &jobs, &resp_tx);
                        }
                        Err(_) => {
                            let _ = resp_tx.send_blocking(
                                &FsResponse::Error {
                                    err: RpcErr::Invalid,
                                }
                                .encode(0),
                            );
                        }
                    }
                }
                self.flush_wave(&mut wave, &resp_tx);
                if drained == 0 {
                    std::thread::yield_now();
                }
            }
            jobs.close();
        });
    }

    /// Serves requests through a QoS gate until `shutdown` is set.
    ///
    /// Ring arrivals are admitted into per-class queues (metadata ops are
    /// [`QosClass::High`]; small data ops [`QosClass::Normal`]; bulk data
    /// [`QosClass::BestEffort`]; a non-zero frame tenant re-keys the flow
    /// via [`DwrrScheduler::flow_for_tenant`]) and drained in DWRR order.
    /// Shed requests — overload, full queue, or expired deadline — are
    /// answered immediately with [`RpcErr::Overloaded`]; nothing is
    /// dropped silently. Every reply carries the flow's current credit
    /// window so stubs feel backpressure before the rings fill.
    /// Dispatched work runs through the same wave machinery as
    /// [`FsProxy::serve`]: coalesced P2P reads plus a worker pool.
    pub fn serve_qos(
        self,
        req_rx: Consumer,
        resp_tx: Producer,
        shutdown: Arc<AtomicBool>,
        mut gate: DwrrScheduler<FsJob>,
    ) {
        let epoch = std::time::Instant::now();
        let jobs = JobQueue::default();
        std::thread::scope(|s| {
            for _ in 0..PROXY_WORKERS {
                let jobs = &jobs;
                let resp_tx = resp_tx.clone();
                let this = &self;
                s.spawn(move || this.worker(jobs, &resp_tx));
            }
            let mut wave = Wave::default();
            while !shutdown.load(Ordering::Relaxed) {
                let mut progressed = false;
                // Admit a bounded burst from the ring into the class queues.
                for _ in 0..32 {
                    let Ok(frame) = req_rx.recv() else { break };
                    progressed = true;
                    match FsRequest::decode(&frame) {
                        Ok((tag, req)) => {
                            let (flags, tenant) = decode_frame(&frame)
                                .map(|f| (f.flags, f.tenant))
                                .unwrap_or((0, 0));
                            let (class_flow, bytes) = classify(&req);
                            let flow = gate.flow_for_tenant(tenant, class_flow);
                            let now = epoch.elapsed().as_nanos() as u64;
                            let job = FsJob {
                                tag,
                                flags,
                                tenant,
                                req,
                            };
                            if let Verdict::Shed { item, .. } = gate.submit(flow, bytes, now, job) {
                                let mut reply = FsResponse::Error {
                                    err: RpcErr::Overloaded,
                                }
                                .encode(item.tag);
                                stamp_credit(&mut reply, gate.credit(flow));
                                let _ = resp_tx.send_blocking(&reply);
                            }
                        }
                        Err(_) => {
                            let _ = resp_tx.send_blocking(
                                &FsResponse::Error {
                                    err: RpcErr::Invalid,
                                }
                                .encode(0),
                            );
                        }
                    }
                }
                // Drain a bounded burst of scheduled work into one wave.
                for _ in 0..32 {
                    let now = epoch.elapsed().as_nanos() as u64;
                    match gate.dispatch(now) {
                        Dispatch::Run { flow, item, .. } => {
                            progressed = true;
                            let credit = Some(gate.credit(flow));
                            self.admit(
                                item.tag, item.flags, item.req, credit, &mut wave, &jobs, &resp_tx,
                            );
                        }
                        Dispatch::Shed { flow, item, .. } => {
                            progressed = true;
                            let mut reply = FsResponse::Error {
                                err: RpcErr::Overloaded,
                            }
                            .encode(item.tag);
                            stamp_credit(&mut reply, gate.credit(flow));
                            let _ = resp_tx.send_blocking(&reply);
                        }
                        Dispatch::Idle => break,
                    }
                }
                self.flush_wave(&mut wave, &resp_tx);
                if !progressed {
                    std::thread::yield_now();
                }
            }
            jobs.close();
        });
    }

    /// Routes one decoded request: barrier frames quiesce everything and
    /// run inline; P2P-eligible reads join the wave's combined NVMe
    /// batch; the rest goes to the worker pool.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        tag: u32,
        flags: u8,
        req: FsRequest,
        credit: Option<u8>,
        wave: &mut Wave,
        jobs: &JobQueue,
        resp_tx: &Producer,
    ) {
        if flags & FLAG_BARRIER != 0 {
            // Everything submitted before the barrier completes first.
            self.flush_wave(wave, resp_tx);
            jobs.quiesce();
            self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
            let mut reply = self.handle_contained(req).encode(tag);
            if let Some(c) = credit {
                stamp_credit(&mut reply, c);
            }
            let _ = resp_tx.send_blocking(&reply);
            return;
        }
        if let FsRequest::Read {
            ino,
            offset,
            count,
            buf_addr,
        } = &req
        {
            if let Some((count, span)) = self.stage_p2p_read(*ino, *offset, *count, *buf_addr, wave)
            {
                self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
                wave.reads.push(StagedRead {
                    tag,
                    count,
                    span,
                    credit,
                });
                return;
            }
        }
        jobs.push(Job { tag, req, credit });
    }

    /// Stages a read into the wave's combined command list if it takes
    /// the P2P path; `None` falls the request through to the worker pool
    /// (buffered path, EOF handling, and errors all live in `do_read`).
    fn stage_p2p_read(
        &self,
        ino: u64,
        offset: u64,
        count: u64,
        buf_addr: u64,
        wave: &mut Wave,
    ) -> Option<(u64, Range<usize>)> {
        let size = self.fs.size_of(ino).ok()?;
        if offset >= size {
            return None;
        }
        let count = count.min(size - offset);
        if !self.read_path_is_p2p(ino, offset, count) {
            return None;
        }
        let extents = self.fs.fiemap(ino, offset, count).ok()?;
        self.last_read_end.lock().insert(ino, offset + count);
        self.stats.p2p_reads.fetch_add(1, Ordering::Relaxed);
        let start = wave.cmds.len();
        wave.cmds.extend(Self::extent_cmds(
            &extents,
            &self.coproc_window,
            buf_addr,
            true,
        ));
        Some((count, start..wave.cmds.len()))
    }

    /// Submits the wave's combined command list as one vectored batch —
    /// one doorbell, one interrupt for every staged read — and replies
    /// per read.
    fn flush_wave(&self, wave: &mut Wave, resp_tx: &Producer) {
        if wave.reads.is_empty() {
            wave.cmds.clear();
            return;
        }
        let results = self.fs.device().submit_vectored(&wave.cmds);
        for r in wave.reads.drain(..) {
            let resp = match self.settle_span(&wave.cmds, &results, r.span) {
                Ok(()) => FsResponse::Read { count: r.count },
                Err(e) => FsResponse::Error { err: e },
            };
            let mut reply = resp.encode(r.tag);
            if let Some(c) = r.credit {
                stamp_credit(&mut reply, c);
            }
            let _ = resp_tx.send_blocking(&reply);
        }
        wave.cmds.clear();
    }

    /// Worker-pool loop: executes queued operations until the queue
    /// closes, replying out of order.
    fn worker(&self, jobs: &JobQueue, resp_tx: &Producer) {
        while let Some(job) = jobs.pop() {
            self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
            let mut reply = self.handle_contained(job.req).encode(job.tag);
            if let Some(c) = job.credit {
                stamp_credit(&mut reply, c);
            }
            let _ = resp_tx.send_blocking(&reply);
            jobs.done();
        }
    }

    /// Executes one RPC.
    pub fn handle(&self, req: FsRequest) -> FsResponse {
        match req {
            FsRequest::Open {
                path,
                create,
                truncate,
                buffered,
            } => {
                let flags = solros_fs::OpenFlags {
                    create,
                    truncate,
                    buffered,
                };
                match self.fs.open(&path, flags) {
                    Ok(ino) => {
                        if buffered {
                            self.buffered_open.lock().insert(ino);
                        } else {
                            self.buffered_open.lock().remove(&ino);
                        }
                        let size = self.fs.size_of(ino).unwrap_or(0);
                        FsResponse::Open { ino, size }
                    }
                    Err(e) => FsResponse::Error { err: rpc_err(e) },
                }
            }
            FsRequest::Create { path } => match self.fs.create(&path) {
                Ok(ino) => FsResponse::Create { ino },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Read {
                ino,
                offset,
                count,
                buf_addr,
            } => match self.do_read(ino, offset, count, buf_addr) {
                Ok(n) => FsResponse::Read { count: n },
                Err(e) => FsResponse::Error { err: e },
            },
            FsRequest::Write {
                ino,
                offset,
                count,
                buf_addr,
            } => match self.do_write(ino, offset, count, buf_addr) {
                Ok(n) => FsResponse::Write { count: n },
                Err(e) => FsResponse::Error { err: e },
            },
            FsRequest::Stat { path } => match self.fs.stat(&path) {
                Ok(st) => FsResponse::Stat {
                    ino: st.ino,
                    is_dir: st.is_dir,
                    size: st.size,
                },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Fstat { ino } => match self.fs.stat_ino(ino) {
                Ok(st) => FsResponse::Stat {
                    ino: st.ino,
                    is_dir: st.is_dir,
                    size: st.size,
                },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Unlink { path } => match self.fs.unlink(&path) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Mkdir { path } => match self.fs.mkdir(&path) {
                Ok(ino) => FsResponse::Mkdir { ino },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Readdir { path } => match self.fs.readdir(&path) {
                Ok(names) => FsResponse::Readdir { names },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Rename { from, to } => match self.fs.rename(&from, &to) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Truncate { ino, size } => match self.fs.truncate(ino, size) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Fsync { ino } => match self.fs.fsync(ino) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
        }
    }

    /// Chooses the data path for a read (§4.3.2).
    fn read_path_is_p2p(&self, ino: u64, offset: u64, count: u64) -> bool {
        if self.crosses_numa || self.buffered_open.lock().contains(&ino) {
            return false;
        }
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return false;
        }
        // Cache hit on the leading page: serve from the shared cache.
        let first_page = offset / BLOCK_SIZE as u64;
        if self.fs.cache().peek(ino, first_page) {
            return false;
        }
        count > 0
    }

    fn do_read(&self, ino: u64, offset: u64, count: u64, buf_addr: u64) -> Result<u64, RpcErr> {
        let size = self.fs.size_of(ino).map_err(rpc_err)?;
        if offset >= size {
            return Ok(0);
        }
        let count = count.min(size - offset);
        let sequential = {
            let mut ends = self.last_read_end.lock();
            let sequential = ends.get(&ino) == Some(&offset);
            ends.insert(ino, offset + count);
            sequential
        };
        if self.read_path_is_p2p(ino, offset, count) {
            self.stats.p2p_reads.fetch_add(1, Ordering::Relaxed);
            self.p2p_read(ino, offset, count, buf_addr)?;
            Ok(count)
        } else {
            self.stats.buffered_reads.fetch_add(1, Ordering::Relaxed);
            let mut buf = vec![0u8; count as usize];
            let n = self.fs.read(ino, offset, &mut buf).map_err(rpc_err)? as u64;
            buf.truncate(n as usize);
            let h = self.coproc_window.map(Side::Host);
            // SAFETY: the stub owns [buf_addr, buf_addr+count) exclusively
            // for the duration of this call (driver contract).
            unsafe {
                h.adaptive_write(
                    &solros_pcie::cost::CostModel::paper_default(),
                    buf_addr as usize,
                    &buf,
                )
            };
            // Sequential stream on the buffered path: warm the shared
            // cache ahead of the next request (§4.3.2's prefetch).
            if sequential && self.readahead_pages > 0 {
                let warmed = self
                    .fs
                    .prefetch(ino, offset + count, self.readahead_pages)
                    .unwrap_or(0);
                self.stats
                    .prefetched_pages
                    .fetch_add(warmed, Ordering::Relaxed);
            }
            Ok(n)
        }
    }

    /// Builds and submits the vectored NVMe batch for a P2P read.
    fn p2p_read(&self, ino: u64, offset: u64, count: u64, buf_addr: u64) -> Result<(), RpcErr> {
        let extents = self.fs.fiemap(ino, offset, count).map_err(rpc_err)?;
        let cmds = Self::extent_cmds(&extents, &self.coproc_window, buf_addr, true);
        self.submit_with_retry(&cmds)
    }

    fn do_write(&self, ino: u64, offset: u64, count: u64, buf_addr: u64) -> Result<u64, RpcErr> {
        if count == 0 {
            return Ok(0);
        }
        let size = self.fs.size_of(ino).map_err(rpc_err)?;
        let bs = BLOCK_SIZE as u64;
        let aligned = offset.is_multiple_of(bs);
        // A partial tail block is only safe P2P when it extends the file
        // (padding lands beyond EOF and is never read back).
        let tail_ok = count.is_multiple_of(bs) || offset + count >= size;
        let p2p =
            !self.crosses_numa && !self.buffered_open.lock().contains(&ino) && aligned && tail_ok;
        if p2p {
            self.stats.p2p_writes.fetch_add(1, Ordering::Relaxed);
            self.fs
                .ensure_allocated(ino, offset, count)
                .map_err(rpc_err)?;
            let map_len = count.div_ceil(bs) * bs;
            let extents = self
                .fs
                .fiemap_allocated(ino, offset, map_len)
                .map_err(rpc_err)?;
            let cmds = Self::extent_cmds(&extents, &self.coproc_window, buf_addr, false);
            self.submit_with_retry(&cmds)?;
            self.fs.extend_size(ino, offset + count).map_err(rpc_err)?;
            // Coherence: drop any cached pages the DMA just bypassed.
            for page in offset / bs..(offset + count).div_ceil(bs) {
                self.fs.cache().invalidate_page(ino, page);
            }
            Ok(count)
        } else {
            self.stats.buffered_writes.fetch_add(1, Ordering::Relaxed);
            let mut buf = vec![0u8; count as usize];
            let h = self.coproc_window.map(Side::Host);
            // SAFETY: the stub owns the source range exclusively for the
            // duration of this call.
            unsafe { h.dma_read(buf_addr as usize, &mut buf) };
            let n = self.fs.write(ino, offset, &buf).map_err(rpc_err)? as u64;
            Ok(n)
        }
    }

    /// Splits extents into MDTS-sized NVMe commands targeting consecutive
    /// window offsets.
    fn extent_cmds(
        extents: &[solros_fs::Extent],
        window: &Arc<Window>,
        buf_addr: u64,
        is_read: bool,
    ) -> Vec<NvmeCommand> {
        let mut cmds = Vec::new();
        let mut cursor = buf_addr;
        for e in extents {
            let mut lba = e.start;
            let mut left = e.len as u64;
            while left > 0 {
                let n = left.min(MDTS_BLOCKS);
                let ptr = DmaPtr::new(Arc::clone(window), cursor as usize);
                cmds.push(if is_read {
                    NvmeCommand::Read {
                        lba,
                        nblocks: n as u32,
                        dst: ptr,
                    }
                } else {
                    NvmeCommand::Write {
                        lba,
                        nblocks: n as u32,
                        src: ptr,
                    }
                });
                lba += n;
                left -= n;
                cursor += n * BLOCK_SIZE as u64;
            }
        }
        cmds
    }

    /// Submits one vectored batch; retries individual transient failures.
    fn submit_with_retry(&self, cmds: &[NvmeCommand]) -> Result<(), RpcErr> {
        let results = self.fs.device().submit_vectored(cmds);
        self.settle_span(cmds, &results, 0..cmds.len())
    }

    /// Checks one operation's slice of a combined batch's results,
    /// retrying individual transient failures through the shared
    /// exponential-backoff [`RetryPolicy`] so media/timeout/queue-full
    /// bursts are absorbed instead of surfacing after two blind retries.
    fn settle_span(
        &self,
        cmds: &[NvmeCommand],
        results: &[Result<(), NvmeError>],
        span: Range<usize>,
    ) -> Result<(), RpcErr> {
        for i in span {
            if results[i].is_err() {
                let settled = RetryPolicy::new().run(
                    |e: &NvmeError| e.is_transient(),
                    |_| {
                        self.fs
                            .device()
                            .submit_vectored(std::slice::from_ref(&cmds[i]))[0]
                    },
                );
                if let Err(e) = settled {
                    return Err(match e {
                        NvmeError::OutOfRange => RpcErr::Invalid,
                        _ => RpcErr::Io,
                    });
                }
            }
        }
        Ok(())
    }
}

/// One read staged into a wave's combined NVMe batch.
struct StagedRead {
    tag: u32,
    /// Clamped byte count to report on success.
    count: u64,
    /// This read's commands within the wave's `cmds`.
    span: Range<usize>,
    /// Credit byte to stamp on the reply (QoS path only).
    credit: Option<u8>,
}

/// One drain cycle's worth of coalesced P2P reads.
#[derive(Default)]
struct Wave {
    cmds: Vec<NvmeCommand>,
    reads: Vec<StagedRead>,
}

/// One operation handed to the worker pool.
struct Job {
    tag: u32,
    req: FsRequest,
    credit: Option<u8>,
}

#[derive(Default)]
struct JobQueueInner {
    q: VecDeque<Job>,
    /// Jobs popped but not yet `done()`.
    active: usize,
    closed: bool,
}

/// The proxy's work queue: a mutex-protected deque with a condvar pair —
/// `work` wakes workers, `idle` wakes a barrier waiting for quiescence.
#[derive(Default)]
struct JobQueue {
    inner: Mutex<JobQueueInner>,
    work: Condvar,
    idle: Condvar,
}

impl JobQueue {
    fn push(&self, job: Job) {
        self.inner.lock().q.push_back(job);
        self.work.notify_one();
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut g = self.inner.lock();
        loop {
            if let Some(job) = g.q.pop_front() {
                g.active += 1;
                return Some(job);
            }
            if g.closed {
                return None;
            }
            self.work.wait(&mut g);
        }
    }

    /// Marks a popped job complete.
    fn done(&self) {
        let mut g = self.inner.lock();
        g.active -= 1;
        if g.active == 0 && g.q.is_empty() {
            self.idle.notify_all();
        }
    }

    /// Blocks until no job is queued or executing (the barrier).
    fn quiesce(&self) {
        let mut g = self.inner.lock();
        while g.active > 0 || !g.q.is_empty() {
            self.idle.wait(&mut g);
        }
    }

    /// Wakes every worker to exit once the queue drains.
    fn close(&self) {
        self.inner.lock().closed = true;
        self.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_nvme::NvmeDevice;
    use solros_pcie::PcieCounters;

    fn setup(crosses_numa: bool) -> (FsProxy, Arc<FileSystem>, Arc<Window>, Arc<FsProxyStats>) {
        let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(8192), 256).unwrap());
        let window = Window::new(1 << 20, Side::Coproc, Arc::new(PcieCounters::new()));
        let stats = Arc::new(FsProxyStats::default());
        let proxy = FsProxy::new(
            Arc::clone(&fs),
            Arc::clone(&window),
            crosses_numa,
            Arc::clone(&stats),
        );
        (proxy, fs, window, stats)
    }

    fn window_write(w: &Arc<Window>, off: usize, data: &[u8]) {
        // SAFETY: exclusive test buffer.
        unsafe { w.map(Side::Coproc).write(off, data) };
    }

    fn window_read(w: &Arc<Window>, off: usize, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        // SAFETY: exclusive test buffer.
        unsafe { w.map(Side::Coproc).read(off, &mut v) };
        v
    }

    #[test]
    fn aligned_read_goes_p2p_and_coalesces() {
        let (proxy, fs, window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        let data: Vec<u8> = (0..4 * BLOCK_SIZE).map(|i| (i % 253) as u8).collect();
        fs.write(ino, 0, &data).unwrap();
        // Clear the write-through cache so the read cannot be a cache hit.
        fs.cache().invalidate_ino(ino);
        let ints0 = fs.device().stats().interrupts;

        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: 4 * BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(
            resp,
            FsResponse::Read {
                count: 4 * BLOCK_SIZE as u64
            }
        );
        assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 1);
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 0);
        assert_eq!(window_read(&window, 0, data.len()), data);
        // One vectored batch: exactly one interrupt for the whole read.
        assert_eq!(fs.device().stats().interrupts, ints0 + 1);
    }

    #[test]
    fn cross_numa_demotes_to_buffered() {
        let (proxy, fs, window, stats) = setup(true);
        let ino = fs.create("/f").unwrap();
        let data = vec![7u8; 2 * BLOCK_SIZE];
        fs.write(ino, 0, &data).unwrap();
        fs.cache().invalidate_ino(ino);
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: 2 * BLOCK_SIZE as u64,
            buf_addr: 4096,
        });
        assert_eq!(
            resp,
            FsResponse::Read {
                count: 2 * BLOCK_SIZE as u64
            }
        );
        assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 0);
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
        assert_eq!(window_read(&window, 4096, data.len()), data);
    }

    #[test]
    fn cache_hit_prefers_buffered() {
        let (proxy, fs, _window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        let data = vec![9u8; BLOCK_SIZE];
        fs.write(ino, 0, &data).unwrap(); // Write-through warms the cache.
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(
            resp,
            FsResponse::Read {
                count: BLOCK_SIZE as u64
            }
        );
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
        assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unaligned_read_demotes() {
        let (proxy, fs, window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        let data: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        fs.write(ino, 0, &data).unwrap();
        fs.cache().invalidate_ino(ino);
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 100,
            count: 500,
            buf_addr: 0,
        });
        assert_eq!(resp, FsResponse::Read { count: 500 });
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
        assert_eq!(window_read(&window, 0, 500), data[100..600]);
    }

    #[test]
    fn p2p_write_roundtrips_and_invalidates_cache() {
        let (proxy, fs, window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        // Seed stale data through the cache.
        fs.write(ino, 0, &vec![1u8; 2 * BLOCK_SIZE]).unwrap();
        // P2P write of fresh data directly from "co-processor memory".
        let fresh: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 249) as u8).collect();
        window_write(&window, 8192, &fresh);
        let resp = proxy.handle(FsRequest::Write {
            ino,
            offset: 0,
            count: 2 * BLOCK_SIZE as u64,
            buf_addr: 8192,
        });
        assert_eq!(
            resp,
            FsResponse::Write {
                count: 2 * BLOCK_SIZE as u64
            }
        );
        assert_eq!(stats.p2p_writes.load(Ordering::Relaxed), 1);
        // A buffered read now must see the new data, not the stale cache.
        let mut out = vec![0u8; 2 * BLOCK_SIZE];
        fs.read(ino, 0, &mut out).unwrap();
        assert_eq!(out, fresh);
    }

    #[test]
    fn p2p_write_extends_file() {
        let (proxy, fs, window, _stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        let data = vec![5u8; 1000]; // Partial tail, extending: P2P-safe.
        window_write(&window, 0, &data);
        let resp = proxy.handle(FsRequest::Write {
            ino,
            offset: 0,
            count: 1000,
            buf_addr: 0,
        });
        assert_eq!(resp, FsResponse::Write { count: 1000 });
        assert_eq!(fs.size_of(ino).unwrap(), 1000);
        let mut out = vec![0u8; 1000];
        fs.read(ino, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unaligned_overwrite_demotes_to_buffered() {
        let (proxy, fs, window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &vec![1u8; 2 * BLOCK_SIZE]).unwrap();
        // Overwrite 10 bytes mid-file: partial tail NOT extending => buffered.
        window_write(&window, 0, &[9u8; 10]);
        let resp = proxy.handle(FsRequest::Write {
            ino,
            offset: 4096,
            count: 10,
            buf_addr: 0,
        });
        assert_eq!(resp, FsResponse::Write { count: 10 });
        assert_eq!(stats.buffered_writes.load(Ordering::Relaxed), 1);
        let mut out = vec![0u8; 2 * BLOCK_SIZE];
        fs.read(ino, 0, &mut out).unwrap();
        assert_eq!(&out[4096..4106], &[9u8; 10]);
        assert_eq!(out[4106], 1, "bytes beyond the overwrite untouched");
    }

    #[test]
    fn o_buffer_forces_buffered_io() {
        let (proxy, fs, _window, stats) = setup(false);
        let resp = proxy.handle(FsRequest::Open {
            path: "/b".into(),
            create: true,
            truncate: false,
            buffered: true,
        });
        let ino = match resp {
            FsResponse::Open { ino, .. } => ino,
            other => panic!("unexpected {other:?}"),
        };
        fs.write(ino, 0, &vec![3u8; BLOCK_SIZE]).unwrap();
        fs.cache().invalidate_ino(ino);
        proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
        assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn read_beyond_eof_returns_zero() {
        let (proxy, fs, _window, _stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, b"xy").unwrap();
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 100,
            count: 10,
            buf_addr: 0,
        });
        assert_eq!(resp, FsResponse::Read { count: 0 });
    }

    #[test]
    fn metadata_rpcs_roundtrip() {
        let (proxy, _fs, _window, _stats) = setup(false);
        assert!(matches!(
            proxy.handle(FsRequest::Mkdir { path: "/d".into() }),
            FsResponse::Mkdir { .. }
        ));
        assert!(matches!(
            proxy.handle(FsRequest::Create {
                path: "/d/f".into()
            }),
            FsResponse::Create { .. }
        ));
        assert_eq!(
            proxy.handle(FsRequest::Readdir { path: "/d".into() }),
            FsResponse::Readdir {
                names: vec!["f".into()]
            }
        );
        assert_eq!(
            proxy.handle(FsRequest::Rename {
                from: "/d/f".into(),
                to: "/d/g".into()
            }),
            FsResponse::Ok
        );
        assert!(matches!(
            proxy.handle(FsRequest::Stat {
                path: "/d/g".into()
            }),
            FsResponse::Stat { is_dir: false, .. }
        ));
        assert_eq!(
            proxy.handle(FsRequest::Unlink {
                path: "/d/g".into()
            }),
            FsResponse::Ok
        );
        assert_eq!(
            proxy.handle(FsRequest::Unlink {
                path: "/d/g".into()
            }),
            FsResponse::Error {
                err: RpcErr::NotFound
            }
        );
        assert_eq!(proxy.handle(FsRequest::Fsync { ino: 0 }), FsResponse::Ok);
    }

    #[test]
    fn sequential_buffered_reads_trigger_readahead() {
        // Cross-NUMA proxy: everything is buffered, so the readahead path
        // is exercised by a sequential scan.
        let (proxy, fs, _window, stats) = setup(true);
        let ino = fs.create("/seq").unwrap();
        fs.write(ino, 0, &vec![7u8; 32 * BLOCK_SIZE]).unwrap();
        fs.cache().invalidate_ino(ino);
        for i in 0..4u64 {
            let resp = proxy.handle(FsRequest::Read {
                ino,
                offset: i * 2 * BLOCK_SIZE as u64,
                count: 2 * BLOCK_SIZE as u64,
                buf_addr: 0,
            });
            assert_eq!(
                resp,
                FsResponse::Read {
                    count: 2 * BLOCK_SIZE as u64
                }
            );
        }
        let warmed = stats.prefetched_pages.load(Ordering::Relaxed);
        assert!(warmed >= 8, "sequential scan should prefetch, got {warmed}");
        // A random (non-sequential) read does not prefetch further.
        let before = stats.prefetched_pages.load(Ordering::Relaxed);
        proxy.handle(FsRequest::Read {
            ino,
            offset: 20 * BLOCK_SIZE as u64,
            count: BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(stats.prefetched_pages.load(Ordering::Relaxed), before);
    }

    #[test]
    fn injected_worker_panic_is_contained() {
        let (proxy, fs, _window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        let ch = crate::transport::Channel::new(Arc::new(PcieCounters::new()));
        let client = crate::transport::RpcClient::new(ch.req_tx, ch.resp_rx);
        let shutdown = Arc::new(AtomicBool::new(false));
        proxy.inject_worker_panics(1);
        let (req_rx, resp_tx, sd) = (ch.req_rx, ch.resp_tx, Arc::clone(&shutdown));
        let server = std::thread::spawn(move || proxy.serve(req_rx, resp_tx, sd));

        // The armed panic fires inside a worker and comes back as Io.
        let tag = client.tag();
        let reply = client.call(tag, FsRequest::Fstat { ino }.encode(tag));
        let (_, resp) = FsResponse::decode(&reply).unwrap();
        assert_eq!(resp, FsResponse::Error { err: RpcErr::Io });

        // The pool survived: the next request is served normally.
        let tag = client.tag();
        let reply = client.call(tag, FsRequest::Fstat { ino }.encode(tag));
        let (_, resp) = FsResponse::decode(&reply).unwrap();
        assert!(matches!(resp, FsResponse::Stat { .. }), "got {resp:?}");

        shutdown.store(true, Ordering::Relaxed);
        server.join().unwrap();
        assert_eq!(stats.worker_panics.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn device_fault_recovery() {
        let (proxy, fs, _window, _stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
        fs.cache().invalidate_ino(ino);
        fs.device().inject_faults(1);
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(
            resp,
            FsResponse::Read {
                count: BLOCK_SIZE as u64
            }
        );
    }
}
