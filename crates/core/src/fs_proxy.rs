//! The control-plane file-system proxy (§4.3.2, §5).
//!
//! One proxy server runs per co-processor on a host thread, driven by the
//! shared [`crate::proxy_engine`]: the engine pulls file-system RPCs from
//! the request ring, decodes each frame once, runs the QoS gate, and
//! dispatches to the worker pool; this module supplies the FS semantics
//! through the [`OpHandler`] trait. For data transfers it chooses between:
//!
//! * **Peer-to-peer**: translate the file range to disk extents
//!   (`fiemap`), translate the co-processor buffer address to its
//!   system-mapped PCIe window, and submit *all* NVMe commands of the
//!   system call as one vectored batch — a single doorbell and a single
//!   interrupt (the §5 driver optimization).
//! * **Buffered**: stage through the host's shared page cache and push
//!   with host DMA. Chosen on a cache hit, when the P2P path would cross
//!   a NUMA boundary (Figure 1a), when the file was opened with
//!   `O_BUFFER`, or when the request is not block-aligned.
//!
//! Since the data plane pipelines submissions, the engine drains the
//! request ring in *waves*: every P2P-eligible read is staged (via
//! [`OpHandler::stage`]) into one combined vectored submission — a single
//! doorbell and a single interrupt across ops *from different calls*, the
//! cross-call generalisation of the §5 batching — while the remaining ops
//! go to the worker pool and complete out of order (the stub's tag table
//! reorders). A frame flagged `FLAG_BARRIER` quiesces both before it runs.

use std::collections::{HashMap, HashSet};
use std::ops::{Deref, Range};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_faults::EngineFaults;
use solros_fs::{CacheDirReplica, FileSystem, FsError};
use solros_lease::{LeaseError, LeaseKind, LeaseManager, SettledLease};
use solros_nvme::{DmaPtr, NvmeCommand, NvmeError, BLOCK_SIZE};
use solros_pcie::window::Window;
use solros_pcie::Side;
use solros_proto::codec::stamp_credit;
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_proto::rpc_error::RpcErr;
use solros_qos::{HostGate, QosClass, QosStats, TenantLedger};
use solros_ringbuf::{Consumer, Producer};

use crate::proxy_engine::{
    Access, EngineLane, ExternalHolds, GateJob, OpHandler, ProxyEngine, ProxyStats,
};
use crate::retry::RetryPolicy;

pub use crate::proxy_engine::DRAIN_BURST;

/// Worker threads per proxy executing non-coalesced operations.
pub const PROXY_WORKERS: usize = 3;

/// NVMe MDTS in blocks (mirrors `solros_nvme::device::MDTS_BLOCKS`).
const MDTS_BLOCKS: u64 = solros_nvme::device::MDTS_BLOCKS as u64;

/// Path-decision statistics for one FS proxy. Lifecycle counters (rpcs,
/// panics, sheds…) live in the engine-owned ledger; this struct derefs
/// into it, so `.rpcs` / `.worker_panics` call sites work unchanged.
#[derive(Debug, Default)]
pub struct FsProxyStats {
    /// The engine-owned request-lifecycle ledger.
    pub engine: Arc<ProxyStats>,
    /// Reads served peer-to-peer.
    pub p2p_reads: AtomicU64,
    /// Reads served through the host cache.
    pub buffered_reads: AtomicU64,
    /// Writes placed peer-to-peer.
    pub p2p_writes: AtomicU64,
    /// Writes staged through the host.
    pub buffered_writes: AtomicU64,
    /// Pages warmed by sequential readahead (§4.3.2).
    pub prefetched_pages: AtomicU64,
    /// RPC reads that arrived while the inode carried an extent lease —
    /// the stub fell back to the proxy path instead of going P2P direct.
    pub lease_fallback_reads: AtomicU64,
    /// RPC writes that arrived while the inode carried an extent lease.
    pub lease_fallback_writes: AtomicU64,
}

impl Deref for FsProxyStats {
    type Target = ProxyStats;

    fn deref(&self) -> &ProxyStats {
        &self.engine
    }
}

/// Maps file-system errors onto wire codes.
fn rpc_err(e: FsError) -> RpcErr {
    match e {
        FsError::NotFound => RpcErr::NotFound,
        FsError::Exists => RpcErr::Exists,
        FsError::NotDir => RpcErr::NotDir,
        FsError::IsDir => RpcErr::IsDir,
        FsError::NotEmpty => RpcErr::NotEmpty,
        FsError::NoSpace => RpcErr::NoSpace,
        FsError::TooLarge => RpcErr::TooLarge,
        FsError::InvalidPath => RpcErr::Invalid,
        FsError::Corrupt | FsError::Io(_) => RpcErr::Io,
    }
}

/// Data transfers above this size are classed best-effort (bulk) by the
/// QoS gate; smaller transfers ride the normal class.
pub const QOS_BULK_BYTES: u64 = 256 * 1024;

/// Maps an FS request onto a (flow index, payload bytes) pair for the
/// QoS gate. Flow indices follow [`QosClass::index`]: metadata is
/// latency-sensitive (the paper's proxies serve it inline), data moves
/// by size.
fn classify(req: &FsRequest) -> (usize, u64) {
    match req {
        FsRequest::Read { count, .. } | FsRequest::Write { count, .. } => {
            if *count > QOS_BULK_BYTES {
                (QosClass::BestEffort.index(), *count)
            } else {
                (QosClass::Normal.index(), *count)
            }
        }
        _ => (QosClass::High.index(), 0),
    }
}

/// One co-processor's proxy server.
///
/// Shared-state fields are lock-protected so the engine's worker pool can
/// execute independent operations concurrently through [`FsProxy::handle`].
pub struct FsProxy {
    fs: Arc<FileSystem>,
    coproc_window: Arc<Window>,
    crosses_numa: bool,
    stats: Arc<FsProxyStats>,
    /// Engine-level fault hooks (worker panics, dropped replies).
    faults: Arc<EngineFaults>,
    /// Inodes opened with `O_BUFFER` by this co-processor.
    buffered_open: Mutex<HashSet<u64>>,
    /// Per-inode end offset of the last read, for sequential detection.
    last_read_end: Mutex<HashMap<u64, u64>>,
    /// Pages to read ahead on a sequential buffered stream (0 disables).
    readahead_pages: u64,
    /// The current wave of coalesced P2P reads, staged via
    /// [`OpHandler::stage`] and settled at [`OpHandler::flush`].
    wave: Mutex<Wave>,
    /// The extent-lease control plane, shared across every proxy when
    /// the boot path wires one system (each proxy grants and recalls
    /// against the same books).
    lease_mgr: Arc<LeaseManager>,
    /// This engine's external-hold table; registered as a recall sink so
    /// every grant anywhere defers conflicting RPC traffic here.
    holds: Arc<ExternalHolds>,
    /// Co-processor id stamped on grants made through this proxy.
    coproc: u8,
    /// QoS ledger and flow leased bypass bytes are charged to.
    lease_charge: Mutex<Option<(Arc<QosStats>, usize)>>,
    /// Replicated per-tenant ledger this proxy's engine charges gated
    /// admissions to (shared log, domain-local replicas).
    tenant_ledger: Option<Arc<TenantLedger>>,
    /// This proxy's replica of the shared cache's residency directory:
    /// the P2P path decision probes it instead of the cache lock, so the
    /// decision stays domain-local as proxies multiply (§4.3.2).
    cache_dir: CacheDirReplica,
}

impl FsProxy {
    /// Creates a proxy for one co-processor.
    pub fn new(
        fs: Arc<FileSystem>,
        coproc_window: Arc<Window>,
        crosses_numa: bool,
        stats: Arc<FsProxyStats>,
    ) -> Self {
        let lease_mgr = Arc::new(LeaseManager::new());
        let holds = Arc::new(ExternalHolds::new());
        lease_mgr.attach_sink(Arc::clone(&holds) as Arc<dyn solros_lease::RecallSink>);
        let cache_dir = fs.cache().replica();
        Self {
            fs,
            cache_dir,
            coproc_window,
            crosses_numa,
            stats,
            faults: Arc::new(EngineFaults::new()),
            buffered_open: Mutex::new(HashSet::new()),
            last_read_end: Mutex::new(HashMap::new()),
            readahead_pages: 8,
            wave: Mutex::new(Wave::default()),
            lease_mgr,
            holds,
            coproc: 0,
            lease_charge: Mutex::new(None),
            tenant_ledger: None,
        }
    }

    /// Attaches the system-wide tenant ledger; the proxy's engine will
    /// charge every gated admission to the submitting frame's tenant.
    pub fn set_tenant_ledger(&mut self, ledger: Arc<TenantLedger>) {
        self.tenant_ledger = Some(ledger);
    }

    /// Overrides the sequential readahead depth (pages; 0 disables).
    pub fn set_readahead(&mut self, pages: u64) {
        self.readahead_pages = pages;
    }

    /// Shares a system-wide lease manager (boot path: one manager, N
    /// proxies) and records this proxy's co-processor id. The proxy's
    /// hold table re-registers with the shared manager so grants made by
    /// *any* proxy defer conflicting RPC traffic arriving here.
    pub fn set_lease_manager(&mut self, mgr: Arc<LeaseManager>, coproc: u8) {
        mgr.attach_sink(Arc::clone(&self.holds) as Arc<dyn solros_lease::RecallSink>);
        self.lease_mgr = mgr;
        self.coproc = coproc;
    }

    /// The lease control plane this proxy grants against.
    pub fn lease_manager(&self) -> Arc<LeaseManager> {
        Arc::clone(&self.lease_mgr)
    }

    /// Charges leased bypass bytes to a QoS flow (tenant accounting for
    /// traffic that never crosses the gate).
    pub fn set_lease_charge(&mut self, stats: Arc<QosStats>, flow: usize) {
        *self.lease_charge.lock() = Some((stats, flow));
    }

    /// The engine-level fault hooks this proxy serves with.
    pub fn faults(&self) -> Arc<EngineFaults> {
        Arc::clone(&self.faults)
    }

    /// Fault injection: makes the next `n` handled requests panic inside
    /// the handler, exercising the engine's containment path.
    pub fn inject_worker_panics(&self, n: u64) {
        self.faults.arm_worker_panics(n);
    }

    /// Serves requests until `shutdown` is set, through the shared proxy
    /// engine: FIFO admission, wave-coalesced P2P reads, and a
    /// [`PROXY_WORKERS`]-wide pool for everything else.
    pub fn serve(self, req_rx: Consumer, resp_tx: Producer, shutdown: Arc<AtomicBool>) {
        self.engine(req_rx, resp_tx, None).serve(shutdown)
    }

    /// Serves requests through a QoS gate until `shutdown` is set.
    ///
    /// Ring arrivals are admitted into per-class queues (metadata ops are
    /// [`QosClass::High`]; small data ops [`QosClass::Normal`]; bulk data
    /// [`QosClass::BestEffort`]; a non-zero frame tenant re-keys the flow
    /// via [`HostGate::flow_for_tenant`]) and drained in DWRR order.
    /// Shed requests — overload, full queue, or expired deadline — are
    /// answered immediately with [`RpcErr::Overloaded`]; nothing is
    /// dropped silently. Every reply carries the flow's current credit
    /// window so stubs feel backpressure before the rings fill. The
    /// engine also applies priority inheritance: metadata ops waiting on
    /// an inode held by a lower-weight writer promote that writer's flow
    /// until the write completes.
    pub fn serve_qos(
        self,
        req_rx: Consumer,
        resp_tx: Producer,
        shutdown: Arc<AtomicBool>,
        gate: HostGate<GateJob<FsRequest>>,
    ) {
        self.engine(req_rx, resp_tx, Some(gate)).serve(shutdown)
    }

    fn engine(
        self,
        req_rx: Consumer,
        resp_tx: Producer,
        gate: Option<HostGate<GateJob<FsRequest>>>,
    ) -> ProxyEngine<FsProxy> {
        let stats = Arc::clone(&self.stats.engine);
        let faults = Arc::clone(&self.faults);
        let ledger = self.tenant_ledger.clone();
        let mut eng = ProxyEngine::new(
            Arc::new(self),
            vec![EngineLane { req_rx, resp_tx }],
            stats,
            faults,
            gate,
        );
        if let Some(l) = ledger {
            eng.set_tenant_ledger(l);
        }
        eng
    }

    /// Executes one RPC.
    pub fn handle(&self, req: FsRequest) -> FsResponse {
        match req {
            FsRequest::Open {
                path,
                create,
                truncate,
                buffered,
            } => {
                let flags = solros_fs::OpenFlags {
                    create,
                    truncate,
                    buffered,
                };
                match self.fs.open(&path, flags) {
                    Ok(ino) => {
                        if buffered {
                            self.buffered_open.lock().insert(ino);
                        } else {
                            self.buffered_open.lock().remove(&ino);
                        }
                        let size = self.fs.size_of(ino).unwrap_or(0);
                        FsResponse::Open { ino, size }
                    }
                    Err(e) => FsResponse::Error { err: rpc_err(e) },
                }
            }
            FsRequest::Create { path } => match self.fs.create(&path) {
                Ok(ino) => FsResponse::Create { ino },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Read {
                ino,
                offset,
                count,
                buf_addr,
            } => match self.do_read(ino, offset, count, buf_addr) {
                Ok(n) => FsResponse::Read { count: n },
                Err(e) => FsResponse::Error { err: e },
            },
            FsRequest::Write {
                ino,
                offset,
                count,
                buf_addr,
            } => match self.do_write(ino, offset, count, buf_addr) {
                Ok(n) => FsResponse::Write { count: n },
                Err(e) => FsResponse::Error { err: e },
            },
            FsRequest::Stat { path } => match self.fs.stat(&path) {
                Ok(st) => FsResponse::Stat {
                    ino: st.ino,
                    is_dir: st.is_dir,
                    size: st.size,
                },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Fstat { ino } => match self.fs.stat_ino(ino) {
                Ok(st) => FsResponse::Stat {
                    ino: st.ino,
                    is_dir: st.is_dir,
                    size: st.size,
                },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Unlink { path } => {
                // Unlink names the file by path: bar new grants on the
                // victim, then settle every outstanding lease before its
                // blocks go back to the allocator. Without the bar a
                // LeaseAcquire racing through another proxy between the
                // recall and the unlink would leave a holder doing P2P
                // I/O against reused blocks.
                let _bar = self.fs.stat(&path).ok().map(|st| {
                    let bar = self.lease_mgr.bar_grants(st.ino);
                    while self.lease_mgr.has_lease(st.ino) {
                        self.recall_all_sync(st.ino);
                    }
                    bar
                });
                match self.fs.unlink(&path) {
                    Ok(()) => FsResponse::Ok,
                    Err(e) => FsResponse::Error { err: rpc_err(e) },
                }
            }
            FsRequest::Mkdir { path } => match self.fs.mkdir(&path) {
                Ok(ino) => FsResponse::Mkdir { ino },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Readdir { path } => match self.fs.readdir(&path) {
                Ok(names) => FsResponse::Readdir { names },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Rename { from, to } => match self.fs.rename(&from, &to) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Truncate { ino, size } => {
                // The engine parks truncates behind leased inodes, but
                // direct callers get the same coherence: bar new grants
                // and settle everything outstanding, so no stale extent
                // map outlives the shrink and no fresh grant maps blocks
                // the shrink is about to free.
                let _bar = self.lease_mgr.bar_grants(ino);
                while self.lease_mgr.has_lease(ino) {
                    self.recall_all_sync(ino);
                }
                match self.fs.truncate(ino, size) {
                    Ok(()) => FsResponse::Ok,
                    Err(e) => FsResponse::Error { err: rpc_err(e) },
                }
            }
            FsRequest::Fsync { ino } => match self.fs.fsync(ino) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::LeaseAcquire {
                ino,
                offset,
                len,
                write,
            } => self.do_lease_acquire(ino, offset, len, write),
            FsRequest::LeaseRelease { id, written_end } => {
                self.do_lease_settle(id, written_end, true)
            }
            FsRequest::LeaseRecallAck { id, written_end } => {
                self.do_lease_settle(id, written_end, false)
            }
        }
    }

    /// Grants an extent lease over `[offset, offset + len)` of `ino`.
    ///
    /// Placement comes first: when this proxy's P2P path crosses a NUMA
    /// boundary the whole point of the lease (direct NVMe DMA) is lost,
    /// so the grant is refused and the stub stays on the RPC path.
    /// Conflicting leases held elsewhere are recalled synchronously —
    /// the acquire is itself the "conflicting access" of the recall
    /// protocol — and the range is pre-resolved (write leases:
    /// preallocated) so the holder never needs another RPC.
    fn do_lease_acquire(&self, ino: u64, offset: u64, len: u64, write: bool) -> FsResponse {
        let bs = BLOCK_SIZE as u64;
        if self.crosses_numa {
            self.lease_mgr.note_placement_denied();
            return FsResponse::Error {
                err: RpcErr::WouldBlock,
            };
        }
        if len == 0 || !offset.is_multiple_of(bs) {
            return FsResponse::Error {
                err: RpcErr::Invalid,
            };
        }
        let len = len.div_ceil(bs) * bs;
        for s in self.lease_mgr.recall_range_sync(ino, offset, len, write) {
            self.apply_settled(&s);
        }
        let (extents, data_end) = match self.fs.resolve_lease_extents(ino, offset, len, write) {
            Ok(r) => r,
            Err(e) => return FsResponse::Error { err: rpc_err(e) },
        };
        let kind = if write {
            LeaseKind::Write
        } else {
            LeaseKind::Read
        };
        let charge = self.lease_charge.lock().clone();
        match self.lease_mgr.grant(
            self.coproc,
            ino,
            offset,
            len,
            kind,
            extents,
            data_end,
            charge,
        ) {
            Ok(st) => FsResponse::LeaseGrant {
                id: st.id(),
                generation: st.generation(),
                data_end: st.readable_end(),
                extents: st.extents().iter().map(|e| (e.start, e.len)).collect(),
            },
            Err(LeaseError::Busy) => FsResponse::Error {
                err: RpcErr::WouldBlock,
            },
            Err(_) => FsResponse::Error {
                err: RpcErr::Invalid,
            },
        }
    }

    /// Settles a lease the holder gave back — voluntarily
    /// (`LeaseRelease`) or as a recall ack (`LeaseRecallAck`). Both are
    /// idempotent against the sweep force-revoking first.
    fn do_lease_settle(&self, id: u64, written_end: u64, voluntary: bool) -> FsResponse {
        if let Some(s) = self.lease_mgr.settle_wire(id, written_end, voluntary) {
            self.apply_settled(&s);
        }
        FsResponse::Ok
    }

    /// Applies one settled lease to the control plane: leased writes
    /// become visible (size extension + cache invalidation over the
    /// bypassed range) and the external holds free, unparking deferred
    /// RPC jobs on every engine.
    fn apply_settled(&self, s: &SettledLease) {
        if s.kind == LeaseKind::Write && s.written_end > 0 {
            let _ = self.fs.extend_size(s.ino, s.written_end);
            let bs = BLOCK_SIZE as u64;
            for page in s.offset / bs..s.written_end.div_ceil(bs) {
                self.fs.cache().invalidate_page(s.ino, page);
            }
        }
        self.lease_mgr.free_holds(s.ino, s.kind);
    }

    /// Synchronously recalls every lease on `ino` and applies the
    /// settlements (barrier, truncate, and unlink coherence).
    fn recall_all_sync(&self, ino: u64) {
        for s in self.lease_mgr.recall_range_sync(ino, 0, u64::MAX, true) {
            self.apply_settled(&s);
        }
    }

    /// Chooses the data path for a read (§4.3.2).
    fn read_path_is_p2p(&self, ino: u64, offset: u64, count: u64) -> bool {
        if self.crosses_numa || self.buffered_open.lock().contains(&ino) {
            return false;
        }
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return false;
        }
        // Cache hit on the leading page: serve from the shared cache.
        // Probed through this proxy's directory replica, not the cache
        // lock — the residency answer is as of the replica's log
        // position, which the probe first syncs to the published tail.
        let first_page = offset / BLOCK_SIZE as u64;
        if self.cache_dir.resident(self.fs.cache(), ino, first_page) {
            return false;
        }
        count > 0
    }

    fn do_read(&self, ino: u64, offset: u64, count: u64, buf_addr: u64) -> Result<u64, RpcErr> {
        if self.lease_mgr.has_lease(ino) {
            // A buffered fallback on a leased inode: count it (the E6
            // bypass ratio) and settle any *write* lease covering the
            // range so this read cannot observe pre-lease bytes.
            self.stats
                .lease_fallback_reads
                .fetch_add(1, Ordering::Relaxed);
            for s in self.lease_mgr.recall_range_sync(ino, offset, count, false) {
                self.apply_settled(&s);
            }
        }
        let size = self.fs.size_of(ino).map_err(rpc_err)?;
        if offset >= size {
            return Ok(0);
        }
        let count = count.min(size - offset);
        let sequential = {
            let mut ends = self.last_read_end.lock();
            let sequential = ends.get(&ino) == Some(&offset);
            ends.insert(ino, offset + count);
            sequential
        };
        if self.read_path_is_p2p(ino, offset, count) {
            self.stats.p2p_reads.fetch_add(1, Ordering::Relaxed);
            self.p2p_read(ino, offset, count, buf_addr)?;
            Ok(count)
        } else {
            self.stats.buffered_reads.fetch_add(1, Ordering::Relaxed);
            let mut buf = vec![0u8; count as usize];
            let n = self.fs.read(ino, offset, &mut buf).map_err(rpc_err)? as u64;
            buf.truncate(n as usize);
            let h = self.coproc_window.map(Side::Host);
            // SAFETY: the stub owns [buf_addr, buf_addr+count) exclusively
            // for the duration of this call (driver contract).
            unsafe {
                h.adaptive_write(
                    &solros_pcie::cost::CostModel::paper_default(),
                    buf_addr as usize,
                    &buf,
                )
            };
            // Sequential stream on the buffered path: warm the shared
            // cache ahead of the next request (§4.3.2's prefetch).
            if sequential && self.readahead_pages > 0 {
                let warmed = self
                    .fs
                    .prefetch(ino, offset + count, self.readahead_pages)
                    .unwrap_or(0);
                self.stats
                    .prefetched_pages
                    .fetch_add(warmed, Ordering::Relaxed);
            }
            Ok(n)
        }
    }

    /// Builds and submits the vectored NVMe batch for a P2P read.
    fn p2p_read(&self, ino: u64, offset: u64, count: u64, buf_addr: u64) -> Result<(), RpcErr> {
        let extents = self.fs.fiemap(ino, offset, count).map_err(rpc_err)?;
        let cmds = Self::extent_cmds(&extents, &self.coproc_window, buf_addr, true);
        self.submit_with_retry(&cmds)
    }

    fn do_write(&self, ino: u64, offset: u64, count: u64, buf_addr: u64) -> Result<u64, RpcErr> {
        if count == 0 {
            return Ok(0);
        }
        if self.lease_mgr.has_lease(ino) {
            // An RPC write is conflicting access for every lease kind:
            // settle them all before the bytes land, so no leased
            // mapping ever reads around this write.
            self.stats
                .lease_fallback_writes
                .fetch_add(1, Ordering::Relaxed);
            for s in self.lease_mgr.recall_range_sync(ino, 0, u64::MAX, true) {
                self.apply_settled(&s);
            }
        }
        let size = self.fs.size_of(ino).map_err(rpc_err)?;
        let bs = BLOCK_SIZE as u64;
        let aligned = offset.is_multiple_of(bs);
        // A partial tail block is only safe P2P when it extends the file
        // (padding lands beyond EOF and is never read back).
        let tail_ok = count.is_multiple_of(bs) || offset + count >= size;
        let p2p =
            !self.crosses_numa && !self.buffered_open.lock().contains(&ino) && aligned && tail_ok;
        if p2p {
            self.stats.p2p_writes.fetch_add(1, Ordering::Relaxed);
            self.fs
                .ensure_allocated(ino, offset, count)
                .map_err(rpc_err)?;
            let map_len = count.div_ceil(bs) * bs;
            let extents = self
                .fs
                .fiemap_allocated(ino, offset, map_len)
                .map_err(rpc_err)?;
            let cmds = Self::extent_cmds(&extents, &self.coproc_window, buf_addr, false);
            self.submit_with_retry(&cmds)?;
            self.fs.extend_size(ino, offset + count).map_err(rpc_err)?;
            // Coherence: drop any cached pages the DMA just bypassed.
            for page in offset / bs..(offset + count).div_ceil(bs) {
                self.fs.cache().invalidate_page(ino, page);
            }
            Ok(count)
        } else {
            self.stats.buffered_writes.fetch_add(1, Ordering::Relaxed);
            let mut buf = vec![0u8; count as usize];
            let h = self.coproc_window.map(Side::Host);
            // SAFETY: the stub owns the source range exclusively for the
            // duration of this call.
            unsafe { h.dma_read(buf_addr as usize, &mut buf) };
            let n = self.fs.write(ino, offset, &buf).map_err(rpc_err)? as u64;
            Ok(n)
        }
    }

    /// Splits extents into MDTS-sized NVMe commands targeting consecutive
    /// window offsets.
    fn extent_cmds(
        extents: &[solros_fs::Extent],
        window: &Arc<Window>,
        buf_addr: u64,
        is_read: bool,
    ) -> Vec<NvmeCommand> {
        let mut cmds = Vec::new();
        let mut cursor = buf_addr;
        for e in extents {
            let mut lba = e.start;
            let mut left = e.len as u64;
            while left > 0 {
                let n = left.min(MDTS_BLOCKS);
                let ptr = DmaPtr::new(Arc::clone(window), cursor as usize);
                cmds.push(if is_read {
                    NvmeCommand::Read {
                        lba,
                        nblocks: n as u32,
                        dst: ptr,
                    }
                } else {
                    NvmeCommand::Write {
                        lba,
                        nblocks: n as u32,
                        src: ptr,
                    }
                });
                lba += n;
                left -= n;
                cursor += n * BLOCK_SIZE as u64;
            }
        }
        cmds
    }

    /// Submits one vectored batch; retries individual transient failures.
    fn submit_with_retry(&self, cmds: &[NvmeCommand]) -> Result<(), RpcErr> {
        let results = self.fs.device().submit_vectored(cmds);
        self.settle_span(cmds, &results, 0..cmds.len())
    }

    /// Checks one operation's slice of a combined batch's results,
    /// retrying individual transient failures through the shared
    /// exponential-backoff [`RetryPolicy`] so media/timeout/queue-full
    /// bursts are absorbed instead of surfacing after two blind retries.
    fn settle_span(
        &self,
        cmds: &[NvmeCommand],
        results: &[Result<(), NvmeError>],
        span: Range<usize>,
    ) -> Result<(), RpcErr> {
        for i in span {
            if results[i].is_err() {
                let settled = RetryPolicy::new().run(
                    |e: &NvmeError| e.is_transient(),
                    |_| {
                        self.fs
                            .device()
                            .submit_vectored(std::slice::from_ref(&cmds[i]))[0]
                    },
                );
                if let Err(e) = settled {
                    return Err(match e {
                        NvmeError::OutOfRange => RpcErr::Invalid,
                        _ => RpcErr::Io,
                    });
                }
            }
        }
        Ok(())
    }

    /// Stages a read into the wave's combined command list if it takes
    /// the P2P path; `None` falls the request through to the worker pool
    /// (buffered path, EOF handling, and errors all live in `do_read`).
    fn stage_p2p_read(
        &self,
        ino: u64,
        offset: u64,
        count: u64,
        buf_addr: u64,
        wave: &mut Wave,
    ) -> Option<(u64, Range<usize>)> {
        let size = self.fs.size_of(ino).ok()?;
        if offset >= size {
            return None;
        }
        let count = count.min(size - offset);
        if !self.read_path_is_p2p(ino, offset, count) {
            return None;
        }
        let extents = self.fs.fiemap(ino, offset, count).ok()?;
        self.last_read_end.lock().insert(ino, offset + count);
        self.stats.p2p_reads.fetch_add(1, Ordering::Relaxed);
        let start = wave.cmds.len();
        wave.cmds.extend(Self::extent_cmds(
            &extents,
            &self.coproc_window,
            buf_addr,
            true,
        ));
        Some((count, start..wave.cmds.len()))
    }
}

impl OpHandler for FsProxy {
    type Req = FsRequest;

    fn encode_err(&self, tag: u32, err: RpcErr) -> Vec<u8> {
        FsResponse::Error { err }.encode(tag)
    }

    fn classify(&self, _lane: usize, req: &FsRequest) -> (usize, u64) {
        classify(req)
    }

    fn exec(&self, _lane: usize, tag: u32, req: FsRequest) -> Vec<u8> {
        self.handle(req).encode(tag)
    }

    fn workers(&self) -> usize {
        PROXY_WORKERS
    }

    /// Data-mutating ops hold their inode exclusively; `fstat` and
    /// `read` touch it shared, so the engine can apply priority
    /// inheritance when a high-class metadata op waits on a best-effort
    /// writer — and so the external-holds check can park RPC traffic
    /// that conflicts with an extent lease. A write-lease acquire is an
    /// exclusive touch (it must displace every other lease); a
    /// read-lease acquire is shared (it coexists with read leases).
    fn touches(&self, req: &FsRequest) -> Option<(u64, Access)> {
        match req {
            FsRequest::Write { ino, .. }
            | FsRequest::Truncate { ino, .. }
            | FsRequest::Fsync { ino } => Some((*ino, Access::Exclusive)),
            FsRequest::Fstat { ino } | FsRequest::Read { ino, .. } => Some((*ino, Access::Shared)),
            FsRequest::LeaseAcquire { ino, write, .. } => Some((
                *ino,
                if *write {
                    Access::Exclusive
                } else {
                    Access::Shared
                },
            )),
            _ => None,
        }
    }

    /// Sweeps overdue recalls every cycle: a holder that never answers
    /// (crashed stub, lost recall) is force-revoked once the recall
    /// budget expires, and the settlement is applied exactly as an ack
    /// would have been.
    fn poll(&self) -> bool {
        let swept = self.lease_mgr.sweep();
        let progressed = !swept.is_empty();
        for s in &swept {
            self.apply_settled(s);
        }
        progressed
    }

    fn external_holds(&self) -> Option<&ExternalHolds> {
        Some(&self.holds)
    }

    /// Starts the recall protocol for the leases conflicting with a
    /// parked RPC job (fire-and-forget; the freed queue unparks it).
    fn recall(&self, res: u64, exclusive: bool) {
        self.lease_mgr.recall_range(res, 0, u64::MAX, exclusive);
    }

    /// Barrier/shutdown override: blocks until every lease on `res` is
    /// settled (ack or forced revoke) and applied.
    fn recall_sync(&self, res: u64) {
        self.recall_all_sync(res);
    }

    fn stage(
        &self,
        _lane: usize,
        tag: u32,
        credit: Option<u8>,
        tenant: u8,
        req: FsRequest,
    ) -> Option<FsRequest> {
        if let FsRequest::Read {
            ino,
            offset,
            count,
            buf_addr,
        } = &req
        {
            let charged = *count;
            let mut wave = self.wave.lock();
            if let Some((count, span)) =
                self.stage_p2p_read(*ino, *offset, *count, *buf_addr, &mut wave)
            {
                wave.reads.push(StagedRead {
                    tag,
                    count,
                    span,
                    credit,
                    tenant,
                    charged,
                });
                return None;
            }
        }
        Some(req)
    }

    /// Submits the wave's combined command list as one vectored batch —
    /// one doorbell, one interrupt for every staged read. The per-read
    /// replies emitted here land in the engine's [`ReplySettler`], which
    /// settles them as one batched response-ring enqueue per cycle: the
    /// request-side NVMe wave and the reply-side publish wave are the
    /// two halves of the same symmetric pipeline (DESIGN.md §12).
    ///
    /// [`ReplySettler`]: crate::proxy_engine::ReplySettler
    fn flush(&self, reply: &mut dyn FnMut(usize, Vec<u8>)) {
        let mut wave = self.wave.lock();
        if wave.reads.is_empty() {
            wave.cmds.clear();
            return;
        }
        let results = self.fs.device().submit_vectored(&wave.cmds);
        let Wave { cmds, reads } = &mut *wave;
        for r in reads.drain(..) {
            let resp = match self.settle_span(cmds, &results, r.span) {
                Ok(()) => FsResponse::Read { count: r.count },
                Err(e) => FsResponse::Error { err: e },
            };
            let mut frame = resp.encode(r.tag);
            if let Some(c) = r.credit {
                stamp_credit(&mut frame, c);
            }
            reply(0, frame);
        }
        cmds.clear();
    }

    /// Failover wreck dump: staged reads that will never be submitted
    /// surrender their tags (settled `Gone` by the supervisor) and
    /// their admission charges (refunded).
    fn abort_staged(&self) -> Vec<crate::proxy_engine::StagedPart> {
        let mut wave = self.wave.lock();
        wave.cmds.clear();
        wave.reads
            .drain(..)
            .map(|r| crate::proxy_engine::StagedPart {
                lane: 0,
                tag: r.tag,
                credit: r.credit,
                tenant: r.tenant,
                bytes: r.charged,
            })
            .collect()
    }
}

/// One read staged into a wave's combined NVMe batch.
struct StagedRead {
    tag: u32,
    /// Clamped byte count to report on success.
    count: u64,
    /// This read's commands within the wave's `cmds`.
    span: Range<usize>,
    /// Credit byte to stamp on the reply (QoS path only).
    credit: Option<u8>,
    /// Tenant charged at admission (refunded if the shard dies staged).
    tenant: u8,
    /// Bytes charged at admission (the pre-clamp request count).
    charged: u64,
}

/// One drain cycle's worth of coalesced P2P reads.
#[derive(Default)]
struct Wave {
    cmds: Vec<NvmeCommand>,
    reads: Vec<StagedRead>,
}
