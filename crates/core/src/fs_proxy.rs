//! The control-plane file-system proxy (§4.3.2, §5).
//!
//! One proxy server loop runs per co-processor on a host thread. It pulls
//! file-system RPCs from the request ring, executes them against
//! [`solros_fs::FileSystem`], and pushes replies. For data transfers it
//! chooses between:
//!
//! * **Peer-to-peer**: translate the file range to disk extents
//!   (`fiemap`), translate the co-processor buffer address to its
//!   system-mapped PCIe window, and submit *all* NVMe commands of the
//!   system call as one vectored batch — a single doorbell and a single
//!   interrupt (the §5 driver optimization).
//! * **Buffered**: stage through the host's shared page cache and push
//!   with host DMA. Chosen on a cache hit, when the P2P path would cross
//!   a NUMA boundary (Figure 1a), when the file was opened with
//!   `O_BUFFER`, or when the request is not block-aligned.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use solros_fs::{FileSystem, FsError};
use solros_nvme::{DmaPtr, NvmeCommand, NvmeError, BLOCK_SIZE};
use solros_pcie::window::Window;
use solros_pcie::Side;
use solros_proto::codec::stamp_credit;
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_proto::rpc_error::RpcErr;
use solros_qos::{Dispatch, DwrrScheduler, QosClass, Verdict};
use solros_ringbuf::{Consumer, Producer};

/// NVMe MDTS in blocks (mirrors `solros_nvme::device::MDTS_BLOCKS`).
const MDTS_BLOCKS: u64 = solros_nvme::device::MDTS_BLOCKS as u64;

/// Path-decision and traffic statistics for one proxy.
#[derive(Debug, Default)]
pub struct FsProxyStats {
    /// RPCs served.
    pub rpcs: AtomicU64,
    /// Reads served peer-to-peer.
    pub p2p_reads: AtomicU64,
    /// Reads served through the host cache.
    pub buffered_reads: AtomicU64,
    /// Writes placed peer-to-peer.
    pub p2p_writes: AtomicU64,
    /// Writes staged through the host.
    pub buffered_writes: AtomicU64,
    /// Pages warmed by sequential readahead (§4.3.2).
    pub prefetched_pages: AtomicU64,
}

/// Maps file-system errors onto wire codes.
fn rpc_err(e: FsError) -> RpcErr {
    match e {
        FsError::NotFound => RpcErr::NotFound,
        FsError::Exists => RpcErr::Exists,
        FsError::NotDir => RpcErr::NotDir,
        FsError::IsDir => RpcErr::IsDir,
        FsError::NotEmpty => RpcErr::NotEmpty,
        FsError::NoSpace => RpcErr::NoSpace,
        FsError::TooLarge => RpcErr::TooLarge,
        FsError::InvalidPath => RpcErr::Invalid,
        FsError::Corrupt | FsError::Io(_) => RpcErr::Io,
    }
}

/// Data transfers above this size are classed best-effort (bulk) by the
/// QoS gate; smaller transfers ride the normal class.
pub const QOS_BULK_BYTES: u64 = 256 * 1024;

/// Maps an FS request onto a (flow index, payload bytes) pair for the
/// QoS gate. Flow indices follow [`QosClass::index`]: metadata is
/// latency-sensitive (the paper's proxies serve it inline), data moves
/// by size.
fn classify(req: &FsRequest) -> (usize, u64) {
    match req {
        FsRequest::Read { count, .. } | FsRequest::Write { count, .. } => {
            if *count > QOS_BULK_BYTES {
                (QosClass::BestEffort.index(), *count)
            } else {
                (QosClass::Normal.index(), *count)
            }
        }
        _ => (QosClass::High.index(), 0),
    }
}

/// One co-processor's proxy server.
pub struct FsProxy {
    fs: Arc<FileSystem>,
    coproc_window: Arc<Window>,
    crosses_numa: bool,
    stats: Arc<FsProxyStats>,
    /// Inodes opened with `O_BUFFER` by this co-processor.
    buffered_open: HashSet<u64>,
    /// Per-inode end offset of the last read, for sequential detection.
    last_read_end: std::collections::HashMap<u64, u64>,
    /// Pages to read ahead on a sequential buffered stream (0 disables).
    readahead_pages: u64,
}

impl FsProxy {
    /// Creates a proxy for one co-processor.
    pub fn new(
        fs: Arc<FileSystem>,
        coproc_window: Arc<Window>,
        crosses_numa: bool,
        stats: Arc<FsProxyStats>,
    ) -> Self {
        Self {
            fs,
            coproc_window,
            crosses_numa,
            stats,
            buffered_open: HashSet::new(),
            last_read_end: std::collections::HashMap::new(),
            readahead_pages: 8,
        }
    }

    /// Overrides the sequential readahead depth (pages; 0 disables).
    pub fn set_readahead(&mut self, pages: u64) {
        self.readahead_pages = pages;
    }

    /// Serves requests until `shutdown` is set. Runs on a host thread.
    pub fn serve(mut self, req_rx: Consumer, resp_tx: Producer, shutdown: Arc<AtomicBool>) {
        while !shutdown.load(Ordering::Relaxed) {
            match req_rx.recv() {
                Ok(frame) => {
                    let reply = match FsRequest::decode(&frame) {
                        Ok((tag, req)) => {
                            self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
                            let resp = self.handle(req);
                            resp.encode(tag)
                        }
                        Err(_) => FsResponse::Error {
                            err: RpcErr::Invalid,
                        }
                        .encode(0),
                    };
                    let _ = resp_tx.send_blocking(&reply);
                }
                Err(_) => std::thread::yield_now(),
            }
        }
    }

    /// Serves requests through a QoS gate until `shutdown` is set.
    ///
    /// Ring arrivals are admitted into per-class queues (metadata ops are
    /// [`QosClass::High`]; small data ops [`QosClass::Normal`]; bulk data
    /// [`QosClass::BestEffort`]) and drained in DWRR order. Shed requests
    /// — overload, full queue, or expired deadline — are answered
    /// immediately with [`RpcErr::Overloaded`]; nothing is dropped
    /// silently. Every reply carries the flow's current credit window so
    /// stubs feel backpressure before the rings fill.
    pub fn serve_qos(
        mut self,
        req_rx: Consumer,
        resp_tx: Producer,
        shutdown: Arc<AtomicBool>,
        mut gate: DwrrScheduler<(u32, FsRequest)>,
    ) {
        let epoch = std::time::Instant::now();
        while !shutdown.load(Ordering::Relaxed) {
            let mut progressed = false;
            // Admit a bounded burst from the ring into the class queues.
            for _ in 0..32 {
                let Ok(frame) = req_rx.recv() else { break };
                progressed = true;
                match FsRequest::decode(&frame) {
                    Ok((tag, req)) => {
                        let (flow, bytes) = classify(&req);
                        let now = epoch.elapsed().as_nanos() as u64;
                        if let Verdict::Shed { item, .. } =
                            gate.submit(flow, bytes, now, (tag, req))
                        {
                            let mut reply = FsResponse::Error {
                                err: RpcErr::Overloaded,
                            }
                            .encode(item.0);
                            stamp_credit(&mut reply, gate.credit(flow));
                            let _ = resp_tx.send_blocking(&reply);
                        }
                    }
                    Err(_) => {
                        let _ = resp_tx.send_blocking(
                            &FsResponse::Error {
                                err: RpcErr::Invalid,
                            }
                            .encode(0),
                        );
                    }
                }
            }
            // Drain a bounded burst of scheduled work.
            for _ in 0..32 {
                let now = epoch.elapsed().as_nanos() as u64;
                match gate.dispatch(now) {
                    Dispatch::Run {
                        flow,
                        item: (tag, req),
                        ..
                    } => {
                        progressed = true;
                        self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
                        let mut reply = self.handle(req).encode(tag);
                        stamp_credit(&mut reply, gate.credit(flow));
                        let _ = resp_tx.send_blocking(&reply);
                    }
                    Dispatch::Shed {
                        flow,
                        item: (tag, _),
                        ..
                    } => {
                        progressed = true;
                        let mut reply = FsResponse::Error {
                            err: RpcErr::Overloaded,
                        }
                        .encode(tag);
                        stamp_credit(&mut reply, gate.credit(flow));
                        let _ = resp_tx.send_blocking(&reply);
                    }
                    Dispatch::Idle => break,
                }
            }
            if !progressed {
                std::thread::yield_now();
            }
        }
    }

    /// Executes one RPC.
    pub fn handle(&mut self, req: FsRequest) -> FsResponse {
        match req {
            FsRequest::Open {
                path,
                create,
                truncate,
                buffered,
            } => {
                let flags = solros_fs::OpenFlags {
                    create,
                    truncate,
                    buffered,
                };
                match self.fs.open(&path, flags) {
                    Ok(ino) => {
                        if buffered {
                            self.buffered_open.insert(ino);
                        } else {
                            self.buffered_open.remove(&ino);
                        }
                        let size = self.fs.size_of(ino).unwrap_or(0);
                        FsResponse::Open { ino, size }
                    }
                    Err(e) => FsResponse::Error { err: rpc_err(e) },
                }
            }
            FsRequest::Create { path } => match self.fs.create(&path) {
                Ok(ino) => FsResponse::Create { ino },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Read {
                ino,
                offset,
                count,
                buf_addr,
            } => match self.do_read(ino, offset, count, buf_addr) {
                Ok(n) => FsResponse::Read { count: n },
                Err(e) => FsResponse::Error { err: e },
            },
            FsRequest::Write {
                ino,
                offset,
                count,
                buf_addr,
            } => match self.do_write(ino, offset, count, buf_addr) {
                Ok(n) => FsResponse::Write { count: n },
                Err(e) => FsResponse::Error { err: e },
            },
            FsRequest::Stat { path } => match self.fs.stat(&path) {
                Ok(st) => FsResponse::Stat {
                    ino: st.ino,
                    is_dir: st.is_dir,
                    size: st.size,
                },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Fstat { ino } => match self.fs.stat_ino(ino) {
                Ok(st) => FsResponse::Stat {
                    ino: st.ino,
                    is_dir: st.is_dir,
                    size: st.size,
                },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Unlink { path } => match self.fs.unlink(&path) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Mkdir { path } => match self.fs.mkdir(&path) {
                Ok(ino) => FsResponse::Mkdir { ino },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Readdir { path } => match self.fs.readdir(&path) {
                Ok(names) => FsResponse::Readdir { names },
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Rename { from, to } => match self.fs.rename(&from, &to) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Truncate { ino, size } => match self.fs.truncate(ino, size) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
            FsRequest::Fsync { ino } => match self.fs.fsync(ino) {
                Ok(()) => FsResponse::Ok,
                Err(e) => FsResponse::Error { err: rpc_err(e) },
            },
        }
    }

    /// Chooses the data path for a read (§4.3.2).
    fn read_path_is_p2p(&self, ino: u64, offset: u64, count: u64) -> bool {
        if self.crosses_numa || self.buffered_open.contains(&ino) {
            return false;
        }
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return false;
        }
        // Cache hit on the leading page: serve from the shared cache.
        let first_page = offset / BLOCK_SIZE as u64;
        if self.fs.cache().peek(ino, first_page) {
            return false;
        }
        count > 0
    }

    fn do_read(&mut self, ino: u64, offset: u64, count: u64, buf_addr: u64) -> Result<u64, RpcErr> {
        let size = self.fs.size_of(ino).map_err(rpc_err)?;
        if offset >= size {
            return Ok(0);
        }
        let count = count.min(size - offset);
        let sequential = self.last_read_end.get(&ino) == Some(&offset);
        self.last_read_end.insert(ino, offset + count);
        if self.read_path_is_p2p(ino, offset, count) {
            self.stats.p2p_reads.fetch_add(1, Ordering::Relaxed);
            self.p2p_read(ino, offset, count, buf_addr)?;
            Ok(count)
        } else {
            self.stats.buffered_reads.fetch_add(1, Ordering::Relaxed);
            let mut buf = vec![0u8; count as usize];
            let n = self.fs.read(ino, offset, &mut buf).map_err(rpc_err)? as u64;
            buf.truncate(n as usize);
            let h = self.coproc_window.map(Side::Host);
            // SAFETY: the stub owns [buf_addr, buf_addr+count) exclusively
            // for the duration of this call (driver contract).
            unsafe {
                h.adaptive_write(
                    &solros_pcie::cost::CostModel::paper_default(),
                    buf_addr as usize,
                    &buf,
                )
            };
            // Sequential stream on the buffered path: warm the shared
            // cache ahead of the next request (§4.3.2's prefetch).
            if sequential && self.readahead_pages > 0 {
                let warmed = self
                    .fs
                    .prefetch(ino, offset + count, self.readahead_pages)
                    .unwrap_or(0);
                self.stats
                    .prefetched_pages
                    .fetch_add(warmed, Ordering::Relaxed);
            }
            Ok(n)
        }
    }

    /// Builds and submits the vectored NVMe batch for a P2P read.
    fn p2p_read(&self, ino: u64, offset: u64, count: u64, buf_addr: u64) -> Result<(), RpcErr> {
        let extents = self.fs.fiemap(ino, offset, count).map_err(rpc_err)?;
        let cmds = Self::extent_cmds(&extents, &self.coproc_window, buf_addr, true);
        self.submit_with_retry(&cmds)
    }

    fn do_write(
        &mut self,
        ino: u64,
        offset: u64,
        count: u64,
        buf_addr: u64,
    ) -> Result<u64, RpcErr> {
        if count == 0 {
            return Ok(0);
        }
        let size = self.fs.size_of(ino).map_err(rpc_err)?;
        let bs = BLOCK_SIZE as u64;
        let aligned = offset.is_multiple_of(bs);
        // A partial tail block is only safe P2P when it extends the file
        // (padding lands beyond EOF and is never read back).
        let tail_ok = count.is_multiple_of(bs) || offset + count >= size;
        let p2p = !self.crosses_numa && !self.buffered_open.contains(&ino) && aligned && tail_ok;
        if p2p {
            self.stats.p2p_writes.fetch_add(1, Ordering::Relaxed);
            self.fs
                .ensure_allocated(ino, offset, count)
                .map_err(rpc_err)?;
            let map_len = count.div_ceil(bs) * bs;
            let extents = self
                .fs
                .fiemap_allocated(ino, offset, map_len)
                .map_err(rpc_err)?;
            let cmds = Self::extent_cmds(&extents, &self.coproc_window, buf_addr, false);
            self.submit_with_retry(&cmds)?;
            self.fs.extend_size(ino, offset + count).map_err(rpc_err)?;
            // Coherence: drop any cached pages the DMA just bypassed.
            for page in offset / bs..(offset + count).div_ceil(bs) {
                self.fs.cache().invalidate_page(ino, page);
            }
            Ok(count)
        } else {
            self.stats.buffered_writes.fetch_add(1, Ordering::Relaxed);
            let mut buf = vec![0u8; count as usize];
            let h = self.coproc_window.map(Side::Host);
            // SAFETY: the stub owns the source range exclusively for the
            // duration of this call.
            unsafe { h.dma_read(buf_addr as usize, &mut buf) };
            let n = self.fs.write(ino, offset, &buf).map_err(rpc_err)? as u64;
            Ok(n)
        }
    }

    /// Splits extents into MDTS-sized NVMe commands targeting consecutive
    /// window offsets.
    fn extent_cmds(
        extents: &[solros_fs::Extent],
        window: &Arc<Window>,
        buf_addr: u64,
        is_read: bool,
    ) -> Vec<NvmeCommand> {
        let mut cmds = Vec::new();
        let mut cursor = buf_addr;
        for e in extents {
            let mut lba = e.start;
            let mut left = e.len as u64;
            while left > 0 {
                let n = left.min(MDTS_BLOCKS);
                let ptr = DmaPtr::new(Arc::clone(window), cursor as usize);
                cmds.push(if is_read {
                    NvmeCommand::Read {
                        lba,
                        nblocks: n as u32,
                        dst: ptr,
                    }
                } else {
                    NvmeCommand::Write {
                        lba,
                        nblocks: n as u32,
                        src: ptr,
                    }
                });
                lba += n;
                left -= n;
                cursor += n * BLOCK_SIZE as u64;
            }
        }
        cmds
    }

    /// Submits one vectored batch; retries individual transient failures.
    fn submit_with_retry(&self, cmds: &[NvmeCommand]) -> Result<(), RpcErr> {
        let results = self.fs.device().submit_vectored(cmds);
        for (cmd, res) in cmds.iter().zip(results) {
            if let Err(mut e) = res {
                let mut ok = false;
                for _ in 0..2 {
                    match self.fs.device().submit_vectored(std::slice::from_ref(cmd))[0] {
                        Ok(()) => {
                            ok = true;
                            break;
                        }
                        Err(e2) => e = e2,
                    }
                }
                if !ok {
                    return Err(match e {
                        NvmeError::OutOfRange => RpcErr::Invalid,
                        _ => RpcErr::Io,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solros_nvme::NvmeDevice;
    use solros_pcie::PcieCounters;

    fn setup(crosses_numa: bool) -> (FsProxy, Arc<FileSystem>, Arc<Window>, Arc<FsProxyStats>) {
        let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(8192), 256).unwrap());
        let window = Window::new(1 << 20, Side::Coproc, Arc::new(PcieCounters::new()));
        let stats = Arc::new(FsProxyStats::default());
        let proxy = FsProxy::new(
            Arc::clone(&fs),
            Arc::clone(&window),
            crosses_numa,
            Arc::clone(&stats),
        );
        (proxy, fs, window, stats)
    }

    fn window_write(w: &Arc<Window>, off: usize, data: &[u8]) {
        // SAFETY: exclusive test buffer.
        unsafe { w.map(Side::Coproc).write(off, data) };
    }

    fn window_read(w: &Arc<Window>, off: usize, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        // SAFETY: exclusive test buffer.
        unsafe { w.map(Side::Coproc).read(off, &mut v) };
        v
    }

    #[test]
    fn aligned_read_goes_p2p_and_coalesces() {
        let (mut proxy, fs, window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        let data: Vec<u8> = (0..4 * BLOCK_SIZE).map(|i| (i % 253) as u8).collect();
        fs.write(ino, 0, &data).unwrap();
        // Clear the write-through cache so the read cannot be a cache hit.
        fs.cache().invalidate_ino(ino);
        let ints0 = fs.device().stats().interrupts;

        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: 4 * BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(
            resp,
            FsResponse::Read {
                count: 4 * BLOCK_SIZE as u64
            }
        );
        assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 1);
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 0);
        assert_eq!(window_read(&window, 0, data.len()), data);
        // One vectored batch: exactly one interrupt for the whole read.
        assert_eq!(fs.device().stats().interrupts, ints0 + 1);
    }

    #[test]
    fn cross_numa_demotes_to_buffered() {
        let (mut proxy, fs, window, stats) = setup(true);
        let ino = fs.create("/f").unwrap();
        let data = vec![7u8; 2 * BLOCK_SIZE];
        fs.write(ino, 0, &data).unwrap();
        fs.cache().invalidate_ino(ino);
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: 2 * BLOCK_SIZE as u64,
            buf_addr: 4096,
        });
        assert_eq!(
            resp,
            FsResponse::Read {
                count: 2 * BLOCK_SIZE as u64
            }
        );
        assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 0);
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
        assert_eq!(window_read(&window, 4096, data.len()), data);
    }

    #[test]
    fn cache_hit_prefers_buffered() {
        let (mut proxy, fs, _window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        let data = vec![9u8; BLOCK_SIZE];
        fs.write(ino, 0, &data).unwrap(); // Write-through warms the cache.
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(
            resp,
            FsResponse::Read {
                count: BLOCK_SIZE as u64
            }
        );
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
        assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unaligned_read_demotes() {
        let (mut proxy, fs, window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        let data: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        fs.write(ino, 0, &data).unwrap();
        fs.cache().invalidate_ino(ino);
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 100,
            count: 500,
            buf_addr: 0,
        });
        assert_eq!(resp, FsResponse::Read { count: 500 });
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
        assert_eq!(window_read(&window, 0, 500), data[100..600]);
    }

    #[test]
    fn p2p_write_roundtrips_and_invalidates_cache() {
        let (mut proxy, fs, window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        // Seed stale data through the cache.
        fs.write(ino, 0, &vec![1u8; 2 * BLOCK_SIZE]).unwrap();
        // P2P write of fresh data directly from "co-processor memory".
        let fresh: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 249) as u8).collect();
        window_write(&window, 8192, &fresh);
        let resp = proxy.handle(FsRequest::Write {
            ino,
            offset: 0,
            count: 2 * BLOCK_SIZE as u64,
            buf_addr: 8192,
        });
        assert_eq!(
            resp,
            FsResponse::Write {
                count: 2 * BLOCK_SIZE as u64
            }
        );
        assert_eq!(stats.p2p_writes.load(Ordering::Relaxed), 1);
        // A buffered read now must see the new data, not the stale cache.
        let mut out = vec![0u8; 2 * BLOCK_SIZE];
        fs.read(ino, 0, &mut out).unwrap();
        assert_eq!(out, fresh);
    }

    #[test]
    fn p2p_write_extends_file() {
        let (mut proxy, fs, window, _stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        let data = vec![5u8; 1000]; // Partial tail, extending: P2P-safe.
        window_write(&window, 0, &data);
        let resp = proxy.handle(FsRequest::Write {
            ino,
            offset: 0,
            count: 1000,
            buf_addr: 0,
        });
        assert_eq!(resp, FsResponse::Write { count: 1000 });
        assert_eq!(fs.size_of(ino).unwrap(), 1000);
        let mut out = vec![0u8; 1000];
        fs.read(ino, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unaligned_overwrite_demotes_to_buffered() {
        let (mut proxy, fs, window, stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &vec![1u8; 2 * BLOCK_SIZE]).unwrap();
        // Overwrite 10 bytes mid-file: partial tail NOT extending => buffered.
        window_write(&window, 0, &[9u8; 10]);
        let resp = proxy.handle(FsRequest::Write {
            ino,
            offset: 4096,
            count: 10,
            buf_addr: 0,
        });
        assert_eq!(resp, FsResponse::Write { count: 10 });
        assert_eq!(stats.buffered_writes.load(Ordering::Relaxed), 1);
        let mut out = vec![0u8; 2 * BLOCK_SIZE];
        fs.read(ino, 0, &mut out).unwrap();
        assert_eq!(&out[4096..4106], &[9u8; 10]);
        assert_eq!(out[4106], 1, "bytes beyond the overwrite untouched");
    }

    #[test]
    fn o_buffer_forces_buffered_io() {
        let (mut proxy, fs, _window, stats) = setup(false);
        let resp = proxy.handle(FsRequest::Open {
            path: "/b".into(),
            create: true,
            truncate: false,
            buffered: true,
        });
        let ino = match resp {
            FsResponse::Open { ino, .. } => ino,
            other => panic!("unexpected {other:?}"),
        };
        fs.write(ino, 0, &vec![3u8; BLOCK_SIZE]).unwrap();
        fs.cache().invalidate_ino(ino);
        proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
        assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn read_beyond_eof_returns_zero() {
        let (mut proxy, fs, _window, _stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, b"xy").unwrap();
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 100,
            count: 10,
            buf_addr: 0,
        });
        assert_eq!(resp, FsResponse::Read { count: 0 });
    }

    #[test]
    fn metadata_rpcs_roundtrip() {
        let (mut proxy, _fs, _window, _stats) = setup(false);
        assert!(matches!(
            proxy.handle(FsRequest::Mkdir { path: "/d".into() }),
            FsResponse::Mkdir { .. }
        ));
        assert!(matches!(
            proxy.handle(FsRequest::Create {
                path: "/d/f".into()
            }),
            FsResponse::Create { .. }
        ));
        assert_eq!(
            proxy.handle(FsRequest::Readdir { path: "/d".into() }),
            FsResponse::Readdir {
                names: vec!["f".into()]
            }
        );
        assert_eq!(
            proxy.handle(FsRequest::Rename {
                from: "/d/f".into(),
                to: "/d/g".into()
            }),
            FsResponse::Ok
        );
        assert!(matches!(
            proxy.handle(FsRequest::Stat {
                path: "/d/g".into()
            }),
            FsResponse::Stat { is_dir: false, .. }
        ));
        assert_eq!(
            proxy.handle(FsRequest::Unlink {
                path: "/d/g".into()
            }),
            FsResponse::Ok
        );
        assert_eq!(
            proxy.handle(FsRequest::Unlink {
                path: "/d/g".into()
            }),
            FsResponse::Error {
                err: RpcErr::NotFound
            }
        );
        assert_eq!(proxy.handle(FsRequest::Fsync { ino: 0 }), FsResponse::Ok);
    }

    #[test]
    fn sequential_buffered_reads_trigger_readahead() {
        // Cross-NUMA proxy: everything is buffered, so the readahead path
        // is exercised by a sequential scan.
        let (mut proxy, fs, _window, stats) = setup(true);
        let ino = fs.create("/seq").unwrap();
        fs.write(ino, 0, &vec![7u8; 32 * BLOCK_SIZE]).unwrap();
        fs.cache().invalidate_ino(ino);
        for i in 0..4u64 {
            let resp = proxy.handle(FsRequest::Read {
                ino,
                offset: i * 2 * BLOCK_SIZE as u64,
                count: 2 * BLOCK_SIZE as u64,
                buf_addr: 0,
            });
            assert_eq!(
                resp,
                FsResponse::Read {
                    count: 2 * BLOCK_SIZE as u64
                }
            );
        }
        let warmed = stats.prefetched_pages.load(Ordering::Relaxed);
        assert!(warmed >= 8, "sequential scan should prefetch, got {warmed}");
        // A random (non-sequential) read does not prefetch further.
        let before = stats.prefetched_pages.load(Ordering::Relaxed);
        proxy.handle(FsRequest::Read {
            ino,
            offset: 20 * BLOCK_SIZE as u64,
            count: BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(stats.prefetched_pages.load(Ordering::Relaxed), before);
    }

    #[test]
    fn device_fault_recovery() {
        let (mut proxy, fs, _window, _stats) = setup(false);
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
        fs.cache().invalidate_ino(ino);
        fs.device().inject_faults(1);
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: 0,
            count: BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(
            resp,
            FsResponse::Read {
                count: BLOCK_SIZE as u64
            }
        );
    }
}
