//! The shared spin→yield→park wait policy.
//!
//! Both the RPC reply wait and the network stub's blocking `accept`/`recv`
//! loops face the same problem: the event they wait for usually arrives
//! within microseconds (the proxy answers fast), but can also be seconds
//! away (an idle listener). Spinning is right for the first case and
//! ruinous for the second; a fixed condvar timeout re-armed in a tight
//! loop degenerates into periodic busy-waiting.
//!
//! [`WaitPolicy`] escalates instead: spin briefly, then yield the CPU,
//! then park with a timeout that grows toward a cap. Callers that own a
//! condition variable park on it for the returned duration; callers
//! without one sleep.

use std::time::Duration;

/// Spin iterations before the policy starts yielding.
pub const SPIN_LIMIT: u32 = 64;
/// Yield iterations before the policy starts parking.
pub const YIELD_LIMIT: u32 = 16;
/// First park timeout, in microseconds.
pub const PARK_MIN_US: u64 = 50;
/// Park timeout cap, in microseconds.
pub const PARK_MAX_US: u64 = 1_000;

/// What the caller should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Issue a spin-loop hint and retry.
    Spin,
    /// Yield the CPU and retry.
    Yield,
    /// Park (condvar wait or sleep) for up to this long, then retry.
    Park(Duration),
}

/// An escalating wait policy for one blocking wait.
///
/// Create one per wait, call [`WaitPolicy::advance`] each time the awaited
/// condition is still false, and [`WaitPolicy::reset`] whenever progress
/// is observed (so a busy peer keeps the waiter in the cheap spin band).
#[derive(Debug, Default)]
pub struct WaitPolicy {
    attempts: u32,
}

impl WaitPolicy {
    /// A fresh policy, starting in the spin band.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewinds to the spin band after observed progress.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }

    /// Advances the policy and returns the next action.
    pub fn advance(&mut self) -> Wait {
        self.attempts = self.attempts.saturating_add(1);
        if self.attempts <= SPIN_LIMIT {
            Wait::Spin
        } else if self.attempts <= SPIN_LIMIT + YIELD_LIMIT {
            Wait::Yield
        } else {
            let over = (self.attempts - SPIN_LIMIT - YIELD_LIMIT) as u64;
            let park_us = (PARK_MIN_US * over).min(PARK_MAX_US);
            Wait::Park(Duration::from_micros(park_us))
        }
    }

    /// Convenience for waiters without a condition variable: executes the
    /// spin/yield step inline and returns `Some(timeout)` once the policy
    /// says to park, leaving the park itself (condvar wait or sleep) to
    /// the caller.
    pub fn pause(&mut self) -> Option<Duration> {
        match self.advance() {
            Wait::Spin => {
                std::hint::spin_loop();
                None
            }
            Wait::Yield => {
                std::thread::yield_now();
                None
            }
            Wait::Park(d) => Some(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_spin_yield_park() {
        let mut p = WaitPolicy::new();
        for _ in 0..SPIN_LIMIT {
            assert_eq!(p.advance(), Wait::Spin);
        }
        for _ in 0..YIELD_LIMIT {
            assert_eq!(p.advance(), Wait::Yield);
        }
        assert_eq!(p.advance(), Wait::Park(Duration::from_micros(PARK_MIN_US)));
        assert_eq!(
            p.advance(),
            Wait::Park(Duration::from_micros(2 * PARK_MIN_US))
        );
    }

    #[test]
    fn park_timeout_caps() {
        let mut p = WaitPolicy::new();
        let mut last = Duration::ZERO;
        for _ in 0..10_000 {
            if let Wait::Park(d) = p.advance() {
                last = d;
            }
        }
        assert_eq!(last, Duration::from_micros(PARK_MAX_US));
    }

    #[test]
    fn reset_rewinds_to_spin() {
        let mut p = WaitPolicy::new();
        for _ in 0..(SPIN_LIMIT + YIELD_LIMIT + 5) {
            let _ = p.advance();
        }
        assert!(matches!(p.advance(), Wait::Park(_)));
        p.reset();
        assert_eq!(p.advance(), Wait::Spin);
    }
}
