//! The control-plane TCP proxy (§4.4), sharded per NUMA domain.
//!
//! One [`TcpProxy`] engine shard runs per NUMA domain, serving the ten
//! socket RPCs for the co-processors attached to that domain (one engine
//! lane per co-processor) and polling the NIC fabric for the ports it is
//! *home* to. What the shards genuinely share — the shared-listening-
//! socket registry (§4.4.3) and the balancer's load view — is a single
//! logical state machine replicated per shard and driven by a
//! [`TcpControl`] operation log (NRK-style): mutations append, each
//! shard's replica applies the log through its private cursor, and reads
//! (routing a new connection, looking up a port's listeners) stay
//! domain-local with no cross-shard lock.
//!
//! Determinism of the paper's connection-based round-robin is preserved
//! by *home-shard polling*: the shard whose `ListenerAdd` created a port
//! record is the only one that polls the NIC for that port, so every
//! balancer pick for a port is made by one policy replica in arrival
//! order. Connections routed to a listener owned by another shard are
//! handed off through that shard's inbox queue.

use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_faults::EngineFaults;
use solros_netdev::{ConnId, EndKind, Network, NetworkError};
use solros_oplog::{LogConfig, LogStats, OpLog, ReplicaCursor, SyncOutcome};
use solros_proto::codec::stamp_credit;
use solros_proto::net_msg::{NetEvent, NetRequest, NetResponse, SockId};
use solros_proto::rpc_error::RpcErr;
use solros_qos::{
    FlowSpec, HostGate, HostScheduler, QosClass, QosConfig, QosStats, Service, TenantLedger,
};
use solros_ringbuf::{Consumer, Producer};

use crate::proxy_engine::{
    EngineLane, GateJob, OpHandler, ProxyEngine, ProxyStats, ShardHealth, StagedPart,
};

pub use crate::balancer::{AddrHash, ConnMeta, LeastLoaded, LoadBalancer, RoundRobin};

/// Socket option: event-driven delivery (1 = events, 0 = RPC polling).
pub const SOCKOPT_EVENTED: u32 = 1;

/// Per-co-processor proxy-side channel endpoints. Clonable so the shard
/// supervisor can keep a set and hand fresh copies to a replacement
/// shard serving the same co-processors (ring endpoints are shared
/// handles over the same ring).
#[derive(Clone)]
pub struct NetChannelHost {
    /// Drains the co-processor's requests.
    pub req_rx: Consumer,
    /// Pushes replies.
    pub resp_tx: Producer,
    /// Pushes inbound events.
    pub evt_tx: Producer,
}

/// TCP-specific statistics (per co-processor accepted counts drive the
/// LB tests). Lifecycle counters live in the engine-owned ledger; this
/// struct derefs into it, so `.rpcs` / `.worker_panics` call sites work
/// unchanged. `events` and `accepted` are machine-global (shared by all
/// shards, indexed by global co-processor id); `engine` is per shard.
#[derive(Debug, Default)]
pub struct TcpProxyStats {
    /// This shard's engine-owned request-lifecycle ledger.
    pub engine: Arc<ProxyStats>,
    /// Events pushed (machine-global).
    pub events: Arc<AtomicU64>,
    /// Events that failed to enqueue on an event ring and were lost
    /// (machine-global). Must stay zero; E8 trips on any drop.
    pub event_drops: Arc<AtomicU64>,
    /// Connections accepted, indexed by global co-processor (shared).
    pub accepted: Arc<Vec<AtomicU64>>,
    /// Small `Send`s coalesced through the staging table (per shard).
    pub staged_sends: AtomicU64,
    /// Coalesced backend writes issued — one per `(lane, socket)` run
    /// per flush (per shard).
    pub send_waves: AtomicU64,
}

impl Deref for TcpProxyStats {
    type Target = ProxyStats;

    fn deref(&self) -> &ProxyStats {
        &self.engine
    }
}

/// One mutation of the shared TCP control state. Everything a shard must
/// agree on with its peers goes through the log; socket tables and
/// pending-accept queues stay shard-local.
#[derive(Clone, Debug)]
enum TcpCtrlOp {
    /// `sock` (owned by `shard`) joined the shared listening socket on
    /// `port`. The first add for a port makes `shard` the port's home.
    ListenerAdd {
        port: u16,
        sock: SockId,
        shard: usize,
    },
    /// `sock` left `port`'s shared listening socket.
    ListenerDel { port: u16, sock: SockId },
    /// The home shard routed a connection to balancer slot `slot`; the
    /// connection socket lives on `shard` (the listener's owner), so a
    /// fence of that shard can release the charge wholesale.
    ConnAssigned { slot: usize, shard: usize },
    /// A connection counted against balancer slot `slot` (charged to
    /// `shard`) closed.
    ConnClosed { slot: usize, shard: usize },
    /// The supervisor fenced `shard`: every replica removes its
    /// listeners, re-homes its ports to `heir`, and releases its
    /// outstanding balancer charges — exactly once, at one log position.
    ShardFenced { shard: usize, heir: usize },
    /// `shard`'s replacement is live; its id leaves the fenced set.
    ShardRejoined { shard: usize },
}

/// Applies one control operation to a replica's state. `lb` is absent on
/// the pure observer replica; `local` carries `(this shard, fabric)` for
/// the NIC-side effects exactly one replica performs per operation.
fn apply_ctrl_op(
    op: &TcpCtrlOp,
    registry: &mut HashMap<u16, PortRec>,
    conn_counts: &mut HashMap<(usize, usize), u64>,
    fenced: &mut HashSet<usize>,
    lb: Option<&dyn LoadBalancer>,
    local: Option<(usize, &Network)>,
) {
    match op {
        TcpCtrlOp::ListenerAdd { port, sock, shard } => {
            registry
                .entry(*port)
                .or_insert_with(|| PortRec {
                    listeners: Vec::new(),
                    home: *shard,
                })
                .listeners
                .push((*sock, *shard));
        }
        TcpCtrlOp::ListenerDel { port, sock } => {
            if let Some(rec) = registry.get_mut(port) {
                rec.listeners.retain(|(s, _)| s != sock);
                if rec.listeners.is_empty() {
                    // Exactly one shard releases the NIC listener: the
                    // record's home (every replica removes its local
                    // record at the same log position).
                    if let Some((me, network)) = local {
                        if rec.home == me {
                            network.unlisten(*port);
                        }
                    }
                    registry.remove(port);
                }
            }
        }
        TcpCtrlOp::ConnAssigned { slot, shard } => {
            // An assignment to an already-fenced shard (a lagging home
            // shard routed to its listeners before applying the fence)
            // is void: the handoff will be refused at delivery, and its
            // matching close is void by the count guard below.
            if fenced.contains(shard) {
                return;
            }
            if let Some(lb) = lb {
                lb.conn_assigned(*slot);
            }
            *conn_counts.entry((*shard, *slot)).or_insert(0) += 1;
        }
        TcpCtrlOp::ConnClosed { slot, shard } => {
            // Count-guarded: a close whose charge was already released
            // wholesale by a `ShardFenced` must not release it twice.
            match conn_counts.get_mut(&(*shard, *slot)) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    if *n == 0 {
                        conn_counts.remove(&(*shard, *slot));
                    }
                    if let Some(lb) = lb {
                        lb.conn_closed(*slot);
                    }
                }
                _ => {}
            }
        }
        TcpCtrlOp::ShardFenced { shard: dead, heir } => {
            fenced.insert(*dead);
            let mut emptied = Vec::new();
            for (port, rec) in registry.iter_mut() {
                rec.listeners.retain(|(_, s)| s != dead);
                if rec.listeners.is_empty() {
                    emptied.push(*port);
                } else if rec.home == *dead {
                    // Listener ownership moves: the heir polls the NIC
                    // for this port from here on.
                    rec.home = *heir;
                }
            }
            for port in emptied {
                let rec = registry.remove(&port).expect("emptied port present");
                let releaser = if rec.home == *dead { *heir } else { rec.home };
                if let Some((me, network)) = local {
                    if releaser == me {
                        network.unlisten(port);
                    }
                }
            }
            let dead_keys: Vec<(usize, usize)> = conn_counts
                .keys()
                .filter(|(s, _)| s == dead)
                .copied()
                .collect();
            for key in dead_keys {
                let n = conn_counts.remove(&key).unwrap_or(0);
                if let Some(lb) = lb {
                    for _ in 0..n {
                        lb.conn_closed(key.1);
                    }
                }
            }
        }
        TcpCtrlOp::ShardRejoined { shard } => {
            fenced.remove(shard);
        }
    }
}

/// FNV-1a digest of a replica's control view, order-normalised so any
/// two replicas holding equal state hash equal regardless of map
/// iteration order. Balancer tie-break cursors are deliberately excluded
/// (shard-local by design; see [`TcpProxy::rebuild_replica`]).
fn fingerprint(
    registry: &HashMap<u16, PortRec>,
    conn_counts: &HashMap<(usize, usize), u64>,
    fenced: &HashSet<usize>,
) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
    };
    let mut ports: Vec<&u16> = registry.keys().collect();
    ports.sort_unstable();
    for port in ports {
        let rec = &registry[port];
        mix(*port as u64);
        mix(rec.home as u64);
        // Listener order is semantic (balancer slots index into it), so
        // it is hashed as-is: an order divergence is a real divergence.
        for &(sock, shard) in &rec.listeners {
            mix(sock);
            mix(shard as u64);
        }
    }
    let mut counts: Vec<(&(usize, usize), &u64)> = conn_counts.iter().collect();
    counts.sort_unstable();
    for (&(shard, slot), &n) in counts {
        mix(shard as u64);
        mix(slot as u64);
        mix(n);
    }
    let mut dead: Vec<&usize> = fenced.iter().collect();
    dead.sort_unstable();
    for shard in dead {
        mix(*shard as u64);
    }
    h
}

/// A connection routed by a port's home shard to a listener owned by
/// another shard, waiting in the owner's inbox.
struct Handoff {
    conn: ConnId,
    client_addr: u64,
    listener: SockId,
    /// Balancer slot the connection was charged to at pick time.
    slot: usize,
}

/// Entries a control-log replica may lag before compaction advances
/// past it. Finite since the failover PR: a replica *can* now rebuild —
/// from the shared observer snapshot — so a stalled shard no longer
/// holds the log hostage. Generous enough that an overrun is an
/// injected-fault ([`solros_faults::FaultKind::OplogReplicaLag`]) path,
/// never a steady-state event.
pub const CTRL_MAX_LAG: u64 = 8192;

/// The control plane's snapshot source: a pure replica (no balancer, no
/// NIC side effects) of the log-driven state, synced opportunistically
/// by every shard's poll. Replicas that overrun the log, and replacement
/// shards born mid-stream, rebuild by cloning this state and resuming
/// from its cursor position.
struct CtrlObserver {
    cursor: ReplicaCursor,
    registry: HashMap<u16, PortRec>,
    conn_counts: HashMap<(usize, usize), u64>,
    fenced: HashSet<usize>,
}

/// The shared spine of the sharded TCP control plane: the operation log
/// plus the machine-global counters and cross-shard handoff inboxes.
pub struct TcpControl {
    log: Arc<OpLog<TcpCtrlOp>>,
    inboxes: Vec<Mutex<VecDeque<Handoff>>>,
    observer: Mutex<CtrlObserver>,
    /// Replica overruns recovered by an `install_snapshot` rebuild from
    /// the observer (the OplogReplicaLag recovery path).
    overruns_recovered: AtomicU64,
    events: Arc<AtomicU64>,
    event_drops: Arc<AtomicU64>,
    accepted: Arc<Vec<AtomicU64>>,
    nshards: usize,
}

impl TcpControl {
    /// Creates the control spine for `nshards` proxy shards serving
    /// `ncoprocs` co-processors in total.
    pub fn new(nshards: usize, ncoprocs: usize) -> Arc<Self> {
        Self::with_max_lag(nshards, ncoprocs, CTRL_MAX_LAG)
    }

    /// [`TcpControl::new`] with an explicit replica lag bound. A tiny
    /// bound lets tests and the E9 lag rig force the overrun → rebuild
    /// path with realistic traffic volumes.
    pub fn with_max_lag(nshards: usize, ncoprocs: usize, max_lag: u64) -> Arc<Self> {
        let log = OpLog::new(LogConfig {
            high_water: 4096,
            max_lag,
        });
        // The observer registers before any shard, so it sees every
        // operation from sequence zero.
        let observer = Mutex::new(CtrlObserver {
            cursor: log.register(),
            registry: HashMap::new(),
            conn_counts: HashMap::new(),
            fenced: HashSet::new(),
        });
        Arc::new(Self {
            log,
            inboxes: (0..nshards).map(|_| Mutex::new(VecDeque::new())).collect(),
            observer,
            overruns_recovered: AtomicU64::new(0),
            events: Arc::new(AtomicU64::new(0)),
            event_drops: Arc::new(AtomicU64::new(0)),
            accepted: Arc::new((0..ncoprocs).map(|_| AtomicU64::new(0)).collect()),
            nshards,
        })
    }

    /// Number of shards sharing this control plane.
    pub fn shards(&self) -> usize {
        self.nshards
    }

    /// Operation-log counters (depth, combine factor, overrun tripwire).
    pub fn log_stats(&self) -> LogStats {
        self.log.stats()
    }

    /// Events discarded because an event ring was full. Must stay zero;
    /// E8/E9 trip on any drop.
    pub fn event_drops(&self) -> u64 {
        self.event_drops.load(Ordering::Relaxed)
    }

    /// Replica overruns recovered via an observer-snapshot rebuild.
    pub fn overruns_recovered(&self) -> u64 {
        self.overruns_recovered.load(Ordering::Relaxed)
    }

    /// Applies every outstanding operation to the observer replica.
    /// Called opportunistically (try-lock) from each shard's poll and
    /// authoritatively (locked) when a replica rebuilds from it.
    fn sync_observer_locked(&self, obs: &mut CtrlObserver) {
        let CtrlObserver {
            cursor,
            registry,
            conn_counts,
            fenced,
        } = obs;
        let outcome = self.log.sync(cursor, |_, op| {
            apply_ctrl_op(op, registry, conn_counts, fenced, None, None);
        });
        debug_assert_ne!(
            outcome,
            SyncOutcome::Overrun,
            "the observer is synced on every shard poll and must never lag past max_lag"
        );
    }

    /// Publishes the fencing of `shard` (listener removal, port
    /// re-homing to `heir`, wholesale balancer-charge release).
    pub(crate) fn append_fence(&self, shard: usize, heir: usize) {
        self.log.append(TcpCtrlOp::ShardFenced { shard, heir });
    }

    /// Publishes that `shard`'s replacement is live again.
    pub(crate) fn append_rejoin(&self, shard: usize) {
        self.log.append(TcpCtrlOp::ShardRejoined { shard });
    }

    /// Refuses every handoff still parked in a dead shard's inbox: the
    /// connections close on the fabric; their balancer charges are
    /// released wholesale by the `ShardFenced` operation. Returns how
    /// many were refused.
    pub(crate) fn drain_dead_inbox(&self, shard: usize, network: &Network) -> usize {
        let mut n = 0;
        while let Some(h) = self.inboxes[shard].lock().pop_front() {
            let _ = network.close(h.conn, EndKind::Server);
            n += 1;
        }
        n
    }
}

enum SockState {
    Fresh,
    Bound(u16),
    Listening(u16),
    Conn { id: ConnId, end: EndKind },
    Closed,
}

struct SockRec {
    /// Global co-processor id owning the socket.
    coproc: usize,
    state: SockState,
    evented: bool,
    /// For evented conns: a Closed event has been delivered.
    close_sent: bool,
    /// For accepted conns: the balancer slot this connection counts
    /// against, so a `ConnClosed` is logged exactly once.
    lb_slot: Option<usize>,
}

/// Replicated view of one shared listening socket.
#[derive(Clone)]
struct PortRec {
    /// `(sock, owning shard)` in registration (log) order.
    listeners: Vec<(SockId, usize)>,
    /// The shard that polls the NIC for this port: the shard of the
    /// first `ListenerAdd`, fixed for the record's lifetime.
    home: usize,
}

/// Socket-table state, lock-protected so the engine can drive the proxy
/// through `&self` ([`OpHandler`] methods take shared references). The
/// `registry` + `lb` pair is this shard's replica of the log-driven
/// state machine; everything else is shard-local.
struct TcpState {
    lb: Box<dyn LoadBalancer>,
    registry: HashMap<u16, PortRec>,
    cursor: ReplicaCursor,
    /// Outstanding connections per `(owning shard, balancer slot)`,
    /// replicated so a `ShardFenced` can release a dead shard's charges
    /// wholesale and count-guard its straggling closes.
    conn_counts: HashMap<(usize, usize), u64>,
    /// Shards fenced and not yet rejoined; their assignments are void.
    fenced: HashSet<usize>,
    socks: HashMap<SockId, SockRec>,
    /// Live connections owned by evented sockets, polled for data.
    evented_conns: Vec<SockId>,
    /// Pending accepts for non-evented (RPC-polling) listeners.
    pending_accepts: HashMap<SockId, VecDeque<(SockId, u64)>>,
    next_sock: SockId,
}

/// One staged small `Send` awaiting its run's coalesced backend write.
struct StagedSend {
    tag: u32,
    credit: Option<u8>,
    /// Tenant charged at admission; refunded if the shard dies with the
    /// run un-flushed.
    tenant: u8,
    len: usize,
}

/// Contiguous small `Send`s on one `(lane, socket)`, coalesced into one
/// backend write and one reply wave.
struct SendRun {
    data: Vec<u8>,
    parts: Vec<StagedSend>,
}

/// The shard's send-coalescing table: arrival-ordered runs plus replies
/// already settled by a cap-triggered early flush, drained at the
/// engine's next wave flush.
#[derive(Default)]
struct SendStage {
    runs: Vec<((usize, SockId), SendRun)>,
    done: Vec<(usize, Vec<u8>)>,
}

/// One NUMA domain's TCP proxy shard.
pub struct TcpProxy {
    network: Arc<Network>,
    control: Arc<TcpControl>,
    shard: usize,
    /// Lane index -> global co-processor id.
    coprocs: Vec<usize>,
    stats: Arc<TcpProxyStats>,
    /// Engine-level fault hooks (worker panics, dropped replies).
    faults: Arc<EngineFaults>,
    /// Inbound event producers, indexed by lane.
    evt_tx: Vec<Producer>,
    /// Request/response lanes, taken by [`TcpProxy::run`].
    lanes: Vec<EngineLane>,
    state: Mutex<TcpState>,
    /// Small-`Send` coalescing table (see [`SendStage`]). Lock order:
    /// `send_stage` before `state`; no path takes them in reverse.
    send_stage: Mutex<SendStage>,
    /// QoS gate over per-(co-processor, class) flows; None = FIFO.
    /// Behind a lock only so the engine can take it through the shared
    /// handle at [`TcpProxy::run_shared`] time.
    qos: Mutex<Option<HostGate<GateJob<NetRequest>>>>,
    /// Replicated per-tenant ledger the engine charges gated admissions
    /// to (shared log, domain-local replicas).
    tenant_ledger: Option<Arc<TenantLedger>>,
    /// Failover handshake cell installed by the shard supervisor.
    health: Option<Arc<ShardHealth>>,
}

/// Max bytes pulled from the fabric per connection per poll round.
const RECV_CHUNK: usize = 64 * 1024;

/// `Send`s at or below this size coalesce through the staging table;
/// larger sends flush the socket's staged run and execute immediately
/// (the Fig 1b/Fig 14 small-message regime is what coalescing targets).
pub const STAGE_SEND_MAX: usize = 4096;

/// Byte cap per staged run: once a `(lane, socket)` run accumulates this
/// much, its backend write happens immediately rather than waiting for
/// the cycle flush, bounding both memory and added latency.
pub const STAGE_BYTES_CAP: usize = 64 * 1024;

/// Bounded wait for a previous home shard to apply a pending unlisten
/// before a fresh `listen` on the same port is declared AddrInUse.
const LISTEN_RETRIES: usize = 1024;

/// Maps a net request to (class offset within a co-processor's flow
/// pair, payload bytes): data movement is normal class (offset 1),
/// connection management is high (offset 0).
fn classify_net(req: &NetRequest) -> (usize, u64) {
    match req {
        NetRequest::Send { data, .. } => (1, data.len() as u64),
        NetRequest::Recv { max, .. } => (1, *max as u64),
        _ => (0, 0),
    }
}

impl TcpProxy {
    /// Creates a single-shard proxy over the NIC fabric and
    /// per-co-processor channels — the unsharded (one NUMA domain)
    /// convenience used by handler-level tests; [`Solros::boot`]
    /// assembles one shard per domain via [`TcpProxy::shard`].
    ///
    /// [`Solros::boot`]: crate::control::Solros::boot
    pub fn new(
        network: Arc<Network>,
        channels: Vec<NetChannelHost>,
        lb: Box<dyn LoadBalancer>,
    ) -> (Self, Arc<TcpProxyStats>) {
        let control = TcpControl::new(1, channels.len());
        let coprocs = (0..channels.len()).collect();
        Self::shard(network, control, 0, coprocs, channels, lb)
    }

    /// Creates shard `shard` of a sharded proxy: it serves `channels`
    /// (one lane per entry, owned by the global co-processor ids in
    /// `coprocs`, same order) and holds its own balancer replica `lb`
    /// (see [`LoadBalancer::fork`]).
    pub fn shard(
        network: Arc<Network>,
        control: Arc<TcpControl>,
        shard: usize,
        coprocs: Vec<usize>,
        channels: Vec<NetChannelHost>,
        lb: Box<dyn LoadBalancer>,
    ) -> (Self, Arc<TcpProxyStats>) {
        assert_eq!(coprocs.len(), channels.len());
        let stats = Arc::new(TcpProxyStats {
            engine: Arc::new(ProxyStats::default()),
            events: Arc::clone(&control.events),
            event_drops: Arc::clone(&control.event_drops),
            accepted: Arc::clone(&control.accepted),
            staged_sends: AtomicU64::new(0),
            send_waves: AtomicU64::new(0),
        });
        let cursor = control.log.register();
        let mut evt_tx = Vec::new();
        let mut lanes = Vec::new();
        for ch in channels {
            lanes.push(EngineLane {
                req_rx: ch.req_rx,
                resp_tx: ch.resp_tx,
            });
            evt_tx.push(ch.evt_tx);
        }
        (
            Self {
                network,
                control,
                shard,
                coprocs,
                stats: Arc::clone(&stats),
                faults: Arc::new(EngineFaults::new()),
                evt_tx,
                lanes,
                state: Mutex::new(TcpState {
                    lb,
                    registry: HashMap::new(),
                    cursor,
                    conn_counts: HashMap::new(),
                    fenced: HashSet::new(),
                    socks: HashMap::new(),
                    evented_conns: Vec::new(),
                    pending_accepts: HashMap::new(),
                    // Stride allocation keeps sock ids globally unique
                    // without cross-shard coordination.
                    next_sock: shard as SockId + 1,
                }),
                send_stage: Mutex::new(SendStage::default()),
                qos: Mutex::new(None),
                tenant_ledger: None,
                health: None,
            },
            stats,
        )
    }

    /// Attaches the system-wide tenant ledger; this shard's engine will
    /// charge every gated admission to the submitting frame's tenant.
    pub fn set_tenant_ledger(&mut self, ledger: Arc<TenantLedger>) {
        self.tenant_ledger = Some(ledger);
    }

    /// Installs a QoS gate with one (high, normal) flow pair per lane,
    /// built from `cfg` (flow names carry the global co-processor id) as
    /// this domain's TCP shard of the host tenant hierarchy.
    /// Returns the gate's stats ledger. Must be called before
    /// [`TcpProxy::run`].
    pub fn enable_qos(&mut self, cfg: &QosConfig, host: &Arc<HostScheduler>) -> Arc<QosStats> {
        let mut specs = Vec::new();
        for &c in &self.coprocs {
            for class in [QosClass::High, QosClass::Normal] {
                specs.push(FlowSpec::from_class(
                    format!("net{c}/{}", class.label()),
                    class,
                    cfg.class(class),
                ));
            }
        }
        let gate = HostGate::new(
            specs,
            cfg.quantum_bytes,
            cfg.overload_threshold,
            host,
            Service::Tcp,
            self.shard,
        );
        let stats = gate.stats();
        *self.qos.get_mut() = Some(gate);
        stats
    }

    /// Installs the supervisor's health cell: the engine beats it every
    /// cycle and dumps a wreck into it on an armed domain fault. Must be
    /// called before [`TcpProxy::run`].
    pub fn set_health(&mut self, health: Arc<ShardHealth>) {
        self.health = Some(health);
    }

    /// The engine-level fault hooks this proxy serves with.
    pub fn faults(&self) -> Arc<EngineFaults> {
        Arc::clone(&self.faults)
    }

    /// Global co-processor ids served by this shard, in lane order.
    pub fn served_coprocs(&self) -> &[usize] {
        &self.coprocs
    }

    /// Cloned per-lane ring endpoints `(request consumer, response
    /// producer)`, used by the supervisor to publish a dead shard's
    /// wreck on the same rings the shard served.
    pub(crate) fn lane_endpoints(&self) -> Vec<(Consumer, Producer)> {
        self.lanes
            .iter()
            .map(|l| (l.req_rx.clone(), l.resp_tx.clone()))
            .collect()
    }

    /// Fault injection: makes the next `n` handled requests panic inside
    /// the handler, exercising the engine's containment path.
    pub fn inject_worker_panics(&self, n: u64) {
        self.faults.arm_worker_panics(n);
    }

    /// Runs the proxy shard through the shared engine until `shutdown`:
    /// FIFO admission by default, DWRR scheduling when
    /// [`TcpProxy::enable_qos`] was called. Each admitted frame is
    /// decoded exactly once; the scheduler item carries the parsed
    /// request through to execution.
    pub fn run(self, shutdown: Arc<AtomicBool>) {
        Arc::new(self).run_shared(shutdown)
    }

    /// Like [`TcpProxy::run`], but through a shared handle: the caller
    /// (the shard supervisor) keeps a clone of the `Arc`, so when an
    /// armed domain fault kills the serve loop it can still perform the
    /// post-mortem — take the wreck, scrub the socket table, retire the
    /// log cursor. Lane endpoints are cloned, not consumed, so the
    /// supervisor can publish the wreck on the very rings the shard
    /// served, and a replacement can serve the same rings afterwards.
    pub fn run_shared(self: Arc<Self>, shutdown: Arc<AtomicBool>) {
        let lanes: Vec<EngineLane> = self
            .lanes
            .iter()
            .map(|l| EngineLane {
                req_rx: l.req_rx.clone(),
                resp_tx: l.resp_tx.clone(),
            })
            .collect();
        let gate = self.qos.lock().take();
        let stats = Arc::clone(&self.stats.engine);
        let faults = Arc::clone(&self.faults);
        let ledger = self.tenant_ledger.clone();
        let health = self.health.clone();
        let mut eng = ProxyEngine::new(self, lanes, stats, faults, gate);
        if let Some(l) = ledger {
            eng.set_tenant_ledger(l);
        }
        if let Some(h) = health {
            eng.set_health(h);
        }
        eng.serve(shutdown)
    }

    /// Applies every outstanding log operation to this shard's replica
    /// (registry + balancer + charge counts). Cheap when already at the
    /// tail. An overrun (possible since `max_lag` went finite) rebuilds
    /// the replica from the observer snapshot, under live traffic.
    fn apply_log(&self, st: &mut TcpState) {
        if self.faults.take_sync_stall() {
            // Injected replica lag (OplogReplicaLag): skip this sync
            // pass. Enough consecutive skips and the lag-bounded
            // compactor advances past this cursor, forcing the snapshot
            // rebuild below on the next real sync.
            return;
        }
        let TcpState {
            lb,
            registry,
            cursor,
            conn_counts,
            fenced,
            ..
        } = st;
        let outcome = self.control.log.sync(cursor, |_, op| {
            apply_ctrl_op(
                op,
                registry,
                conn_counts,
                fenced,
                Some(&**lb),
                Some((self.shard, &self.network)),
            );
        });
        if outcome == SyncOutcome::Overrun {
            self.rebuild_replica(st);
            self.control
                .overruns_recovered
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Rebuilds this shard's replica (registry, charge counts, fenced
    /// set, balancer load view) from the shared observer snapshot, then
    /// points the cursor at the snapshot position so syncs resume
    /// in-order from there — the ScaleFS/Corfu checkpoint move.
    fn rebuild_replica(&self, st: &mut TcpState) {
        let (registry, conn_counts, fenced, at) = {
            let mut obs = self.control.observer.lock();
            self.control.sync_observer_locked(&mut obs);
            (
                obs.registry.clone(),
                obs.conn_counts.clone(),
                obs.fenced.clone(),
                obs.cursor.position(),
            )
        };
        // NIC-side releases this shard owed during the missed window
        // (best effort): any port it was home to that no longer exists
        // in the authoritative view is unlistened now.
        for (port, rec) in &st.registry {
            if rec.home == self.shard && !registry.contains_key(port) {
                self.network.unlisten(*port);
            }
        }
        st.registry = registry;
        st.conn_counts = conn_counts;
        st.fenced = fenced;
        // The balancer replica restarts zeroed; replaying the surviving
        // charge counts converges its load view (tie-break cursors are
        // shard-local by design and may reset).
        let lb = st.lb.fork();
        for (&(_, slot), &n) in &st.conn_counts {
            for _ in 0..n {
                lb.conn_assigned(slot);
            }
        }
        st.lb = lb;
        self.control.log.install_snapshot(&mut st.cursor, at);
    }

    /// Seeds a replacement shard's replica from the observer snapshot.
    /// Runs under live traffic: the log keeps appending while the clone
    /// is taken, and syncs resume from the snapshot position.
    pub fn rebuild_from_observer(&self) {
        let mut st = self.state.lock();
        self.rebuild_replica(&mut st);
    }

    /// Deterministic digest of this shard's replicated control view
    /// (registry, charge counts, fenced set), synced to the log tail
    /// first. Replicas that applied the same log prefix produce the same
    /// digest; the failover property test gates on survivors converging
    /// to one value.
    pub fn replica_fingerprint(&self) -> u64 {
        let mut st = self.state.lock();
        let st = &mut *st;
        self.apply_log(st);
        fingerprint(&st.registry, &st.conn_counts, &st.fenced)
    }

    /// Supervisor-side post-mortem of a fenced shard: closes every
    /// connection it owned (peers observe the close on the fabric),
    /// clears its event/accept queues, retires its log cursor so the
    /// dead replica neither pins compaction nor counts as lag, and —
    /// when no heir exists — releases its NIC listeners directly.
    /// Returns the shard's sock-id allocation point; the replacement
    /// must resume the stride from there so ids are never reused.
    pub fn scrub_after_fence(&self) -> SockId {
        let mut st = self.state.lock();
        let socks: Vec<SockId> = st.socks.keys().copied().collect();
        for sock in socks {
            if let Some(rec) = st.socks.get_mut(&sock) {
                if let SockState::Conn { id, end } = rec.state {
                    let _ = self.network.close(id, end);
                    rec.state = SockState::Closed;
                }
            }
        }
        st.evented_conns.clear();
        st.pending_accepts.clear();
        if self.control.nshards == 1 {
            // Solo-shard machine: `ShardFenced` has no live replica to
            // perform the emptied-port unlisten side effect.
            for port in st.registry.keys() {
                self.network.unlisten(*port);
            }
        }
        self.control.log.retire(&st.cursor);
        st.next_sock
    }

    /// Seeds the sock-id allocator (replacements resume the fenced
    /// incarnation's stride; see [`TcpProxy::scrub_after_fence`]).
    pub fn set_next_sock(&self, next: SockId) {
        self.state.lock().next_sock = next;
    }

    /// Executes one RPC from lane `lane`.
    pub fn handle(&self, lane: usize, req: NetRequest) -> NetResponse {
        let coproc = self.coprocs.get(lane).copied().unwrap_or(lane);
        let mut st = self.state.lock();
        let st = &mut *st;
        match req {
            NetRequest::Socket => {
                let id = st.next_sock;
                st.next_sock += self.control.nshards as SockId;
                st.socks.insert(
                    id,
                    SockRec {
                        coproc,
                        state: SockState::Fresh,
                        evented: true,
                        close_sent: false,
                        lb_slot: None,
                    },
                );
                NetResponse::Socket { sock: id }
            }
            NetRequest::Bind { sock, port } => match st.socks.get_mut(&sock) {
                Some(rec) if matches!(rec.state, SockState::Fresh) => {
                    rec.state = SockState::Bound(port);
                    NetResponse::Ok
                }
                Some(_) => NetResponse::Error {
                    err: RpcErr::Invalid,
                },
                None => NetResponse::Error {
                    err: RpcErr::NotFound,
                },
            },
            NetRequest::Listen { sock, backlog } => {
                let port = match st.socks.get(&sock) {
                    Some(SockRec {
                        state: SockState::Bound(p),
                        ..
                    }) => *p,
                    Some(_) => {
                        return NetResponse::Error {
                            err: RpcErr::Invalid,
                        }
                    }
                    None => {
                        return NetResponse::Error {
                            err: RpcErr::NotFound,
                        }
                    }
                };
                self.apply_log(st);
                if !st.registry.contains_key(&port) {
                    // First listener (as far as this replica can see):
                    // register the NIC-side listener before publishing
                    // the add, so the port is live when the RPC returns.
                    // A previous home may still owe the fabric an
                    // unlisten (it runs during that shard's own sync),
                    // and a racing shard may have just become home —
                    // re-sync and retry before giving up.
                    let mut ok = false;
                    for _ in 0..LISTEN_RETRIES {
                        if self
                            .network
                            .listen(port, (backlog as usize).max(64))
                            .is_ok()
                        {
                            ok = true;
                            break;
                        }
                        self.apply_log(st);
                        if st.registry.contains_key(&port) {
                            // Someone else became home; join their port.
                            ok = true;
                            break;
                        }
                        std::thread::yield_now();
                    }
                    if !ok {
                        return NetResponse::Error {
                            err: RpcErr::AddrInUse,
                        };
                    }
                }
                self.control.log.append(TcpCtrlOp::ListenerAdd {
                    port,
                    sock,
                    shard: self.shard,
                });
                self.apply_log(st);
                let Some(rec) = st.socks.get_mut(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                rec.state = SockState::Listening(port);
                NetResponse::Ok
            }
            NetRequest::Accept { sock } => {
                match st
                    .pending_accepts
                    .get_mut(&sock)
                    .and_then(|q| q.pop_front())
                {
                    Some((conn_sock, peer_addr)) => NetResponse::Accepted {
                        conn: conn_sock,
                        peer_addr,
                    },
                    None => match st.socks.get(&sock) {
                        Some(SockRec {
                            state: SockState::Listening(_),
                            ..
                        }) => NetResponse::Error {
                            err: RpcErr::WouldBlock,
                        },
                        Some(_) => NetResponse::Error {
                            err: RpcErr::NotListening,
                        },
                        None => NetResponse::Error {
                            err: RpcErr::NotFound,
                        },
                    },
                }
            }
            NetRequest::Connect { sock, addr, port } => {
                let Some(rec) = st.socks.get_mut(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                if !matches!(rec.state, SockState::Fresh) {
                    return NetResponse::Error {
                        err: RpcErr::Invalid,
                    };
                }
                match self.network.client_connect(port, addr) {
                    Ok(id) => {
                        rec.state = SockState::Conn {
                            id,
                            end: EndKind::Client,
                        };
                        if rec.evented {
                            st.evented_conns.push(sock);
                        }
                        NetResponse::Ok
                    }
                    Err(_) => NetResponse::Error {
                        err: RpcErr::ConnRefused,
                    },
                }
            }
            NetRequest::Send { sock, data } => {
                let Some(rec) = st.socks.get(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                let SockState::Conn { id, end } = rec.state else {
                    return NetResponse::Error {
                        err: RpcErr::NotConnected,
                    };
                };
                match self.network.send(id, end, &data) {
                    Ok(n) => NetResponse::Sent { count: n as u64 },
                    Err(NetworkError::Closed) => NetResponse::Error { err: RpcErr::Reset },
                    Err(_) => NetResponse::Error {
                        err: RpcErr::NotConnected,
                    },
                }
            }
            NetRequest::Recv { sock, max } => {
                let Some(rec) = st.socks.get(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                let SockState::Conn { id, end } = rec.state else {
                    return NetResponse::Error {
                        err: RpcErr::NotConnected,
                    };
                };
                match self.network.recv(id, end, max as usize) {
                    Ok(data) => NetResponse::Data { data },
                    Err(NetworkError::Closed) => NetResponse::Error { err: RpcErr::Reset },
                    Err(_) => NetResponse::Error {
                        err: RpcErr::NotConnected,
                    },
                }
            }
            NetRequest::Close { sock } => self.close_sock(st, sock),
            NetRequest::Setsockopt { sock, opt, val } => {
                let Some(rec) = st.socks.get_mut(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                if opt == SOCKOPT_EVENTED {
                    rec.evented = val != 0;
                    NetResponse::Ok
                } else {
                    NetResponse::Error {
                        err: RpcErr::Invalid,
                    }
                }
            }
            NetRequest::Shutdown { sock, how } => {
                let Some(rec) = st.socks.get(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                let SockState::Conn { id, end } = rec.state else {
                    return NetResponse::Error {
                        err: RpcErr::NotConnected,
                    };
                };
                if how >= 1 {
                    let _ = self.network.close(id, end);
                }
                NetResponse::Ok
            }
        }
    }

    fn close_sock(&self, st: &mut TcpState, sock: SockId) -> NetResponse {
        let Some(rec) = st.socks.get_mut(&sock) else {
            return NetResponse::Error {
                err: RpcErr::NotFound,
            };
        };
        match rec.state {
            SockState::Conn { id, end } => {
                let _ = self.network.close(id, end);
                rec.state = SockState::Closed;
                if let Some(slot) = rec.lb_slot.take() {
                    self.control.log.append(TcpCtrlOp::ConnClosed {
                        slot,
                        shard: self.shard,
                    });
                    self.apply_log(st);
                }
                st.evented_conns.retain(|s| *s != sock);
            }
            SockState::Listening(port) => {
                rec.state = SockState::Closed;
                self.control
                    .log
                    .append(TcpCtrlOp::ListenerDel { port, sock });
                self.apply_log(st);
                // Refuse the un-accepted backlog: each queued connection
                // already holds an open fabric conn and a balancer slot,
                // and no accept will ever reach it through the closed
                // listener. Close the fabric side (the peer observes a
                // severance, never a hang) and release the slot.
                for (conn_sock, _) in st.pending_accepts.remove(&sock).unwrap_or_default() {
                    let Some(crec) = st.socks.get_mut(&conn_sock) else {
                        continue;
                    };
                    if let SockState::Conn { id, end } = crec.state {
                        let _ = self.network.close(id, end);
                        crec.state = SockState::Closed;
                    }
                    if let Some(slot) = crec.lb_slot.take() {
                        self.control.log.append(TcpCtrlOp::ConnClosed {
                            slot,
                            shard: self.shard,
                        });
                        self.apply_log(st);
                    }
                }
            }
            _ => rec.state = SockState::Closed,
        }
        NetResponse::Ok
    }

    /// Accepts incoming connections on ports this shard is home to and
    /// routes them via the balancer replica. Returns true when any work
    /// happened.
    fn poll_accepts(&self, st: &mut TcpState) -> bool {
        let ports: Vec<u16> = st
            .registry
            .iter()
            .filter(|(_, rec)| rec.home == self.shard)
            .map(|(p, _)| *p)
            .collect();
        let mut worked = false;
        for port in ports {
            while let Ok(Some((conn, client_addr))) = self.network.poll_accept(port) {
                worked = true;
                // A port can lose its last proxy-side listener between the
                // NIC accept and routing; refuse the orphan connection
                // instead of panicking on an empty listener set.
                let (listener, owner, slot) = {
                    let listeners = match st.registry.get(&port) {
                        Some(p) if !p.listeners.is_empty() => &p.listeners,
                        _ => {
                            let _ = self.network.close(conn, EndKind::Server);
                            continue;
                        }
                    };
                    let meta = ConnMeta { client_addr, port };
                    let idx = st.lb.pick(listeners.len(), &meta) % listeners.len();
                    let (sock, owner) = listeners[idx];
                    (sock, owner, idx)
                };
                self.control
                    .log
                    .append(TcpCtrlOp::ConnAssigned { slot, shard: owner });
                self.apply_log(st);
                let h = Handoff {
                    conn,
                    client_addr,
                    listener,
                    slot,
                };
                if owner == self.shard {
                    self.deliver(st, h);
                } else {
                    self.control.inboxes[owner].lock().push_back(h);
                }
            }
        }
        worked
    }

    /// Installs one routed connection under its local listener (the
    /// delivery half of an accept: inline when this shard is both home
    /// and owner, via the inbox otherwise).
    fn deliver(&self, st: &mut TcpState, h: Handoff) {
        // The listener may have closed while the handoff was in flight —
        // either its record is gone entirely (a replaced shard's fresh
        // state) or it lingers in `Closed` state (a normal close; the
        // stub still holds the handle). Both ways no accept can ever
        // reach the connection: refuse it and release its balancer slot.
        let lrec = match st.socks.get(&h.listener) {
            Some(rec) if matches!(rec.state, SockState::Listening(_)) => rec,
            _ => {
                let _ = self.network.close(h.conn, EndKind::Server);
                self.control.log.append(TcpCtrlOp::ConnClosed {
                    slot: h.slot,
                    shard: self.shard,
                });
                self.apply_log(st);
                return;
            }
        };
        let coproc = lrec.coproc;
        let evented = lrec.evented;
        // Create the connection socket owned by the same coproc.
        let conn_sock = st.next_sock;
        st.next_sock += self.control.nshards as SockId;
        st.socks.insert(
            conn_sock,
            SockRec {
                coproc,
                state: SockState::Conn {
                    id: h.conn,
                    end: EndKind::Server,
                },
                evented,
                close_sent: false,
                lb_slot: Some(h.slot),
            },
        );
        self.stats.accepted[coproc].fetch_add(1, Ordering::Relaxed);
        if evented {
            st.evented_conns.push(conn_sock);
            let ev = NetEvent::Accepted {
                listen: h.listener,
                conn: conn_sock,
                peer_addr: h.client_addr,
            };
            self.push_event(coproc, &ev);
        } else {
            st.pending_accepts
                .entry(h.listener)
                .or_default()
                .push_back((conn_sock, h.client_addr));
        }
    }

    /// Drains connections other shards routed to this shard's listeners.
    fn drain_inbox(&self, st: &mut TcpState) -> bool {
        let mut worked = false;
        loop {
            let h = self.control.inboxes[self.shard].lock().pop_front();
            let Some(h) = h else { break };
            worked = true;
            self.deliver(st, h);
        }
        worked
    }

    /// Pulls inbound data for evented connections into event rings.
    fn poll_data(&self, st: &mut TcpState) -> bool {
        let mut worked = false;
        let conns: Vec<SockId> = st.evented_conns.clone();
        for sock in conns {
            let Some(rec) = st.socks.get(&sock) else {
                continue;
            };
            let SockState::Conn { id, end } = rec.state else {
                continue;
            };
            let coproc = rec.coproc;
            match self.network.recv(id, end, RECV_CHUNK) {
                Ok(data) if data.is_empty() => {}
                Ok(data) => {
                    worked = true;
                    self.push_event(coproc, &NetEvent::Data { sock, data });
                }
                Err(NetworkError::Closed) => {
                    let mut closed_slot = None;
                    if let Some(rec) = st.socks.get_mut(&sock) {
                        closed_slot = rec.lb_slot.take();
                        if !rec.close_sent {
                            rec.close_sent = true;
                            worked = true;
                            self.push_event(coproc, &NetEvent::Closed { sock });
                        }
                    }
                    if let Some(slot) = closed_slot {
                        self.control.log.append(TcpCtrlOp::ConnClosed {
                            slot,
                            shard: self.shard,
                        });
                        self.apply_log(st);
                    }
                    st.evented_conns.retain(|s| *s != sock);
                }
                Err(_) => {
                    st.evented_conns.retain(|s| *s != sock);
                }
            }
        }
        worked
    }

    fn push_event(&self, coproc: usize, ev: &NetEvent) {
        self.stats.events.fetch_add(1, Ordering::Relaxed);
        let lane = self
            .coprocs
            .iter()
            .position(|&c| c == coproc)
            .unwrap_or(coproc.min(self.evt_tx.len().saturating_sub(1)));
        if self.evt_tx[lane].send_blocking(&ev.encode()).is_err() {
            // The only enqueue failure left after the blocking retry is
            // an event larger than the ring accepts; the co-processor
            // never sees it. Count the loss instead of hiding it — E8
            // trips on any nonzero drop count.
            self.stats.event_drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Executes one coalesced run's backend write and encodes its reply
    /// wave — each part answered exactly as the unbatched `Send` arm of
    /// [`TcpProxy::handle`] would have (the fabric accepts whole writes,
    /// so per-part `Sent` counts are byte-identical to one-at-a-time).
    fn run_out(&self, lane: usize, sock: SockId, run: SendRun) -> Vec<(usize, Vec<u8>)> {
        let outcome = {
            let mut st = self.state.lock();
            match st.socks.get_mut(&sock) {
                None => Err(RpcErr::NotFound),
                Some(rec) => match rec.state {
                    SockState::Conn { id, end } => match self.network.send(id, end, &run.data) {
                        Ok(_) => Ok(()),
                        Err(NetworkError::Closed) => Err(RpcErr::Reset),
                        Err(_) => Err(RpcErr::NotConnected),
                    },
                    _ => Err(RpcErr::NotConnected),
                },
            }
        };
        self.stats.send_waves.fetch_add(1, Ordering::Relaxed);
        self.stats
            .staged_sends
            .fetch_add(run.parts.len() as u64, Ordering::Relaxed);
        run.parts
            .iter()
            .map(|p| {
                let mut frame = match outcome {
                    Ok(()) => NetResponse::Sent {
                        count: p.len as u64,
                    }
                    .encode(p.tag),
                    Err(err) => NetResponse::Error { err }.encode(p.tag),
                };
                if let Some(c) = p.credit {
                    stamp_credit(&mut frame, c);
                }
                (lane, frame)
            })
            .collect()
    }

    /// Settles every staged run touching `sock` right now, preserving
    /// program order ahead of an about-to-execute large send, `Close`,
    /// or `Shutdown` on the same socket. Replies park in `done` and ride
    /// the next wave flush.
    fn flush_sock(&self, sock: SockId) {
        let mut stage = self.send_stage.lock();
        let mut extracted = Vec::new();
        let mut i = 0;
        while i < stage.runs.len() {
            if stage.runs[i].0 .1 == sock {
                extracted.push(stage.runs.remove(i));
            } else {
                i += 1;
            }
        }
        for ((lane, s), run) in extracted {
            let replies = self.run_out(lane, s, run);
            stage.done.extend(replies);
        }
    }
}

impl OpHandler for TcpProxy {
    type Req = NetRequest;

    fn encode_err(&self, tag: u32, err: RpcErr) -> Vec<u8> {
        NetResponse::Error { err }.encode(tag)
    }

    /// Flow index `lane * 2 + class offset`, matching the per-co-processor
    /// (high, normal) flow pairs laid out by [`TcpProxy::enable_qos`].
    fn classify(&self, lane: usize, req: &NetRequest) -> (usize, u64) {
        let (off, bytes) = classify_net(req);
        (lane * 2 + off, bytes)
    }

    fn exec(&self, lane: usize, tag: u32, req: NetRequest) -> Vec<u8> {
        self.handle(lane, req).encode(tag)
    }

    /// Coalesces small `Send`s: consecutive sub-[`STAGE_SEND_MAX`] sends
    /// on one `(lane, socket)` append to a staged run that settles as
    /// one backend write and one reply wave at the cycle flush (or
    /// immediately at [`STAGE_BYTES_CAP`]). Large sends, `Close`, and
    /// `Shutdown` first flush the socket's staged run — program order on
    /// a socket is preserved — then execute normally. This proxy runs
    /// workerless, so staging sees each lane's requests in admission
    /// order. Barrier frames flush ahead of execution in the engine.
    fn stage(
        &self,
        lane: usize,
        tag: u32,
        credit: Option<u8>,
        tenant: u8,
        req: NetRequest,
    ) -> Option<NetRequest> {
        match req {
            NetRequest::Send { sock, data } if data.len() <= STAGE_SEND_MAX => {
                let mut stage = self.send_stage.lock();
                let key = (lane, sock);
                let run = match stage.runs.iter_mut().position(|(k, _)| *k == key) {
                    Some(i) => &mut stage.runs[i].1,
                    None => {
                        stage.runs.push((
                            key,
                            SendRun {
                                data: Vec::new(),
                                parts: Vec::new(),
                            },
                        ));
                        &mut stage.runs.last_mut().expect("just pushed").1
                    }
                };
                run.parts.push(StagedSend {
                    tag,
                    credit,
                    tenant,
                    len: data.len(),
                });
                run.data.extend_from_slice(&data);
                if run.data.len() >= STAGE_BYTES_CAP {
                    let i = stage
                        .runs
                        .iter()
                        .position(|(k, _)| *k == key)
                        .expect("run present");
                    let (_, run) = stage.runs.remove(i);
                    let replies = self.run_out(lane, sock, run);
                    stage.done.extend(replies);
                }
                None
            }
            NetRequest::Send { sock, .. }
            | NetRequest::Close { sock }
            | NetRequest::Shutdown { sock, .. } => {
                self.flush_sock(sock);
                Some(req)
            }
            _ => Some(req),
        }
    }

    /// Settles the staging table: cap-flushed replies first, then one
    /// coalesced backend write + reply wave per remaining run.
    fn flush(&self, reply: &mut dyn FnMut(usize, Vec<u8>)) {
        let mut stage = self.send_stage.lock();
        if stage.done.is_empty() && stage.runs.is_empty() {
            return;
        }
        for (lane, frame) in stage.done.drain(..) {
            reply(lane, frame);
        }
        let runs = std::mem::take(&mut stage.runs);
        drop(stage);
        for ((lane, sock), run) in runs {
            for (l, f) in self.run_out(lane, sock, run) {
                reply(l, f);
            }
        }
    }

    /// Abandons staged-but-unexecuted send runs for the failover wreck:
    /// their parts become [`StagedPart`]s the supervisor answers as
    /// `Gone` and refunds. Already-executed cap-flush replies in
    /// `stage.done` are left in place — the engine's wreck dump flushes
    /// them into the settler so they ship verbatim (the sends happened).
    fn abort_staged(&self) -> Vec<StagedPart> {
        let mut stage = self.send_stage.lock();
        let runs = std::mem::take(&mut stage.runs);
        runs.into_iter()
            .flat_map(|((lane, _), run)| {
                run.parts.into_iter().map(move |p| StagedPart {
                    lane,
                    tag: p.tag,
                    credit: p.credit,
                    tenant: p.tenant,
                    bytes: p.len as u64,
                })
            })
            .collect()
    }

    fn poll(&self) -> bool {
        let worked = {
            let mut st = self.state.lock();
            let st = &mut *st;
            self.apply_log(st);
            let drained = self.drain_inbox(st);
            let accepted = self.poll_accepts(st);
            let data = self.poll_data(st);
            drained || accepted || data
        };
        // Keep the shared observer fresh so an overrun rebuild (or a
        // replacement shard seeding itself) snapshots near the tail.
        // try_lock: never stall the data path on a contended observer.
        if let Some(mut obs) = self.control.observer.try_lock() {
            self.control.sync_observer_locked(&mut obs);
        }
        worked
    }
}
