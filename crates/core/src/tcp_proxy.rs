//! The control-plane TCP proxy (§4.4).
//!
//! A single host thread terminates all TCP activity: driven by the shared
//! [`crate::proxy_engine`], it serves the ten socket RPCs from every
//! co-processor (one engine lane per co-processor), polls the NIC fabric
//! via [`OpHandler::poll`], and pushes inbound events (new connection,
//! data arrival, peer close) into each co-processor's inbound event ring.
//!
//! The *shared listening socket* (§4.4.3) is implemented here: multiple
//! co-processors may listen on the same port; each incoming connection is
//! assigned to one of them by a pluggable [`LoadBalancer`] (the paper
//! implements connection-based round-robin; a content/address-hash policy
//! is provided as the pluggable example — see [`crate::balancer`]).

use std::collections::{HashMap, VecDeque};
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use solros_faults::EngineFaults;
use solros_netdev::{ConnId, EndKind, Network, NetworkError};
use solros_proto::net_msg::{NetEvent, NetRequest, NetResponse, SockId};
use solros_proto::rpc_error::RpcErr;
use solros_qos::{DwrrScheduler, FlowSpec, QosClass, QosConfig, QosStats};
use solros_ringbuf::{Consumer, Producer};

use crate::proxy_engine::{EngineLane, GateJob, OpHandler, ProxyEngine, ProxyStats};

pub use crate::balancer::{AddrHash, ConnMeta, LeastLoaded, LoadBalancer, RoundRobin};

/// Socket option: event-driven delivery (1 = events, 0 = RPC polling).
pub const SOCKOPT_EVENTED: u32 = 1;

/// Per-co-processor proxy-side channel endpoints.
pub struct NetChannelHost {
    /// Drains the co-processor's requests.
    pub req_rx: Consumer,
    /// Pushes replies.
    pub resp_tx: Producer,
    /// Pushes inbound events.
    pub evt_tx: Producer,
}

/// TCP-specific statistics (per co-processor accepted counts drive the
/// LB tests). Lifecycle counters live in the engine-owned ledger; this
/// struct derefs into it, so `.rpcs` / `.worker_panics` call sites work
/// unchanged.
#[derive(Debug, Default)]
pub struct TcpProxyStats {
    /// The engine-owned request-lifecycle ledger.
    pub engine: Arc<ProxyStats>,
    /// Events pushed.
    pub events: AtomicU64,
    /// Connections accepted, indexed by co-processor.
    pub accepted: Vec<AtomicU64>,
}

impl Deref for TcpProxyStats {
    type Target = ProxyStats;

    fn deref(&self) -> &ProxyStats {
        &self.engine
    }
}

enum SockState {
    Fresh,
    Bound(u16),
    Listening(u16),
    Conn { id: ConnId, end: EndKind },
    Closed,
}

struct SockRec {
    coproc: usize,
    state: SockState,
    evented: bool,
    /// For evented conns: a Closed event has been delivered.
    close_sent: bool,
    /// For accepted conns: the balancer slot this connection counts
    /// against, so [`LoadBalancer::conn_closed`] fires exactly once.
    lb_slot: Option<usize>,
}

struct PortRec {
    /// Listener sockets in registration order.
    listeners: Vec<SockId>,
}

/// Socket-table state, lock-protected so the engine can drive the proxy
/// through `&self` ([`OpHandler`] methods take shared references).
struct TcpState {
    lb: Box<dyn LoadBalancer>,
    socks: HashMap<SockId, SockRec>,
    ports: HashMap<u16, PortRec>,
    /// Live connections owned by evented sockets, polled for data.
    evented_conns: Vec<SockId>,
    /// Pending accepts for non-evented (RPC-polling) listeners.
    pending_accepts: HashMap<SockId, VecDeque<(SockId, u64)>>,
    next_sock: SockId,
}

/// The TCP proxy server.
pub struct TcpProxy {
    network: Arc<Network>,
    stats: Arc<TcpProxyStats>,
    /// Engine-level fault hooks (worker panics, dropped replies).
    faults: Arc<EngineFaults>,
    /// Inbound event producers, indexed by co-processor.
    evt_tx: Vec<Producer>,
    /// Request/response lanes, taken by [`TcpProxy::run`].
    lanes: Vec<EngineLane>,
    state: Mutex<TcpState>,
    /// QoS gate over per-(co-processor, class) flows; None = FIFO.
    qos: Option<DwrrScheduler<GateJob<NetRequest>>>,
}

/// Max bytes pulled from the fabric per connection per poll round.
const RECV_CHUNK: usize = 64 * 1024;

/// Maps a net request to (class offset within a co-processor's flow
/// pair, payload bytes): data movement is normal class (offset 1),
/// connection management is high (offset 0).
fn classify_net(req: &NetRequest) -> (usize, u64) {
    match req {
        NetRequest::Send { data, .. } => (1, data.len() as u64),
        NetRequest::Recv { max, .. } => (1, *max as u64),
        _ => (0, 0),
    }
}

impl TcpProxy {
    /// Creates a proxy over the NIC fabric and per-co-processor channels.
    pub fn new(
        network: Arc<Network>,
        channels: Vec<NetChannelHost>,
        lb: Box<dyn LoadBalancer>,
    ) -> (Self, Arc<TcpProxyStats>) {
        let stats = Arc::new(TcpProxyStats {
            engine: Arc::new(ProxyStats::default()),
            events: AtomicU64::new(0),
            accepted: (0..channels.len()).map(|_| AtomicU64::new(0)).collect(),
        });
        let mut evt_tx = Vec::new();
        let mut lanes = Vec::new();
        for ch in channels {
            lanes.push(EngineLane {
                req_rx: ch.req_rx,
                resp_tx: ch.resp_tx,
            });
            evt_tx.push(ch.evt_tx);
        }
        (
            Self {
                network,
                stats: Arc::clone(&stats),
                faults: Arc::new(EngineFaults::new()),
                evt_tx,
                lanes,
                state: Mutex::new(TcpState {
                    lb,
                    socks: HashMap::new(),
                    ports: HashMap::new(),
                    evented_conns: Vec::new(),
                    pending_accepts: HashMap::new(),
                    next_sock: 1,
                }),
                qos: None,
            },
            stats,
        )
    }

    /// Installs a QoS gate with one (high, normal) flow pair per
    /// co-processor, built from `cfg`. Returns the gate's stats ledger.
    /// Must be called before [`TcpProxy::run`].
    pub fn enable_qos(&mut self, cfg: &QosConfig) -> Arc<QosStats> {
        let mut specs = Vec::new();
        for c in 0..self.evt_tx.len() {
            for class in [QosClass::High, QosClass::Normal] {
                specs.push(FlowSpec::from_class(
                    format!("net{c}/{}", class.label()),
                    class,
                    cfg.class(class),
                ));
            }
        }
        let gate = DwrrScheduler::new(specs, cfg.quantum_bytes, cfg.overload_threshold);
        let stats = gate.stats();
        self.qos = Some(gate);
        stats
    }

    /// The engine-level fault hooks this proxy serves with.
    pub fn faults(&self) -> Arc<EngineFaults> {
        Arc::clone(&self.faults)
    }

    /// Fault injection: makes the next `n` handled requests panic inside
    /// the handler, exercising the engine's containment path.
    pub fn inject_worker_panics(&self, n: u64) {
        self.faults.arm_worker_panics(n);
    }

    /// Runs the proxy through the shared engine until `shutdown`: FIFO
    /// admission by default, DWRR scheduling with per-tenant flow keying
    /// when [`TcpProxy::enable_qos`] was called. Each admitted frame is
    /// decoded exactly once; the scheduler item carries the parsed
    /// request through to execution.
    pub fn run(mut self, shutdown: Arc<AtomicBool>) {
        let lanes = std::mem::take(&mut self.lanes);
        let gate = self.qos.take();
        let stats = Arc::clone(&self.stats.engine);
        let faults = Arc::clone(&self.faults);
        ProxyEngine::new(Arc::new(self), lanes, stats, faults, gate).serve(shutdown)
    }

    /// Executes one RPC from co-processor `coproc`.
    pub fn handle(&self, coproc: usize, req: NetRequest) -> NetResponse {
        let mut st = self.state.lock();
        match req {
            NetRequest::Socket => {
                let id = st.next_sock;
                st.next_sock += 1;
                st.socks.insert(
                    id,
                    SockRec {
                        coproc,
                        state: SockState::Fresh,
                        evented: true,
                        close_sent: false,
                        lb_slot: None,
                    },
                );
                NetResponse::Socket { sock: id }
            }
            NetRequest::Bind { sock, port } => match st.socks.get_mut(&sock) {
                Some(rec) if matches!(rec.state, SockState::Fresh) => {
                    rec.state = SockState::Bound(port);
                    NetResponse::Ok
                }
                Some(_) => NetResponse::Error {
                    err: RpcErr::Invalid,
                },
                None => NetResponse::Error {
                    err: RpcErr::NotFound,
                },
            },
            NetRequest::Listen { sock, backlog } => {
                let port = match st.socks.get(&sock) {
                    Some(SockRec {
                        state: SockState::Bound(p),
                        ..
                    }) => *p,
                    Some(_) => {
                        return NetResponse::Error {
                            err: RpcErr::Invalid,
                        }
                    }
                    None => {
                        return NetResponse::Error {
                            err: RpcErr::NotFound,
                        }
                    }
                };
                let first = !st.ports.contains_key(&port);
                if first {
                    // Register the NIC-side listener once; later listeners
                    // join the shared listening socket (§4.4.3).
                    if self
                        .network
                        .listen(port, (backlog as usize).max(64))
                        .is_err()
                    {
                        return NetResponse::Error {
                            err: RpcErr::AddrInUse,
                        };
                    }
                    st.ports.insert(
                        port,
                        PortRec {
                            listeners: Vec::new(),
                        },
                    );
                }
                let Some(prec) = st.ports.get_mut(&port) else {
                    return NetResponse::Error { err: RpcErr::Io };
                };
                prec.listeners.push(sock);
                let Some(rec) = st.socks.get_mut(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                rec.state = SockState::Listening(port);
                NetResponse::Ok
            }
            NetRequest::Accept { sock } => {
                match st
                    .pending_accepts
                    .get_mut(&sock)
                    .and_then(|q| q.pop_front())
                {
                    Some((conn_sock, peer_addr)) => NetResponse::Accepted {
                        conn: conn_sock,
                        peer_addr,
                    },
                    None => match st.socks.get(&sock) {
                        Some(SockRec {
                            state: SockState::Listening(_),
                            ..
                        }) => NetResponse::Error {
                            err: RpcErr::WouldBlock,
                        },
                        Some(_) => NetResponse::Error {
                            err: RpcErr::NotListening,
                        },
                        None => NetResponse::Error {
                            err: RpcErr::NotFound,
                        },
                    },
                }
            }
            NetRequest::Connect { sock, addr, port } => {
                let Some(rec) = st.socks.get_mut(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                if !matches!(rec.state, SockState::Fresh) {
                    return NetResponse::Error {
                        err: RpcErr::Invalid,
                    };
                }
                match self.network.client_connect(port, addr) {
                    Ok(id) => {
                        rec.state = SockState::Conn {
                            id,
                            end: EndKind::Client,
                        };
                        if rec.evented {
                            st.evented_conns.push(sock);
                        }
                        NetResponse::Ok
                    }
                    Err(_) => NetResponse::Error {
                        err: RpcErr::ConnRefused,
                    },
                }
            }
            NetRequest::Send { sock, data } => {
                let Some(rec) = st.socks.get(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                let SockState::Conn { id, end } = rec.state else {
                    return NetResponse::Error {
                        err: RpcErr::NotConnected,
                    };
                };
                match self.network.send(id, end, &data) {
                    Ok(n) => NetResponse::Sent { count: n as u64 },
                    Err(NetworkError::Closed) => NetResponse::Error { err: RpcErr::Reset },
                    Err(_) => NetResponse::Error {
                        err: RpcErr::NotConnected,
                    },
                }
            }
            NetRequest::Recv { sock, max } => {
                let Some(rec) = st.socks.get(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                let SockState::Conn { id, end } = rec.state else {
                    return NetResponse::Error {
                        err: RpcErr::NotConnected,
                    };
                };
                match self.network.recv(id, end, max as usize) {
                    Ok(data) => NetResponse::Data { data },
                    Err(NetworkError::Closed) => NetResponse::Error { err: RpcErr::Reset },
                    Err(_) => NetResponse::Error {
                        err: RpcErr::NotConnected,
                    },
                }
            }
            NetRequest::Close { sock } => self.close_sock(&mut st, sock),
            NetRequest::Setsockopt { sock, opt, val } => {
                let Some(rec) = st.socks.get_mut(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                if opt == SOCKOPT_EVENTED {
                    rec.evented = val != 0;
                    NetResponse::Ok
                } else {
                    NetResponse::Error {
                        err: RpcErr::Invalid,
                    }
                }
            }
            NetRequest::Shutdown { sock, how } => {
                let Some(rec) = st.socks.get(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                let SockState::Conn { id, end } = rec.state else {
                    return NetResponse::Error {
                        err: RpcErr::NotConnected,
                    };
                };
                if how >= 1 {
                    let _ = self.network.close(id, end);
                }
                NetResponse::Ok
            }
        }
    }

    fn close_sock(&self, st: &mut TcpState, sock: SockId) -> NetResponse {
        let Some(rec) = st.socks.get_mut(&sock) else {
            return NetResponse::Error {
                err: RpcErr::NotFound,
            };
        };
        match rec.state {
            SockState::Conn { id, end } => {
                let _ = self.network.close(id, end);
                rec.state = SockState::Closed;
                if let Some(slot) = rec.lb_slot.take() {
                    st.lb.conn_closed(slot);
                }
                st.evented_conns.retain(|s| *s != sock);
            }
            SockState::Listening(port) => {
                rec.state = SockState::Closed;
                if let Some(p) = st.ports.get_mut(&port) {
                    p.listeners.retain(|s| *s != sock);
                    if p.listeners.is_empty() {
                        st.ports.remove(&port);
                        self.network.unlisten(port);
                    }
                }
                st.pending_accepts.remove(&sock);
            }
            _ => rec.state = SockState::Closed,
        }
        NetResponse::Ok
    }

    /// Accepts incoming connections and routes them via the balancer.
    /// Returns true when any work happened.
    fn poll_accepts(&self) -> bool {
        let mut st = self.state.lock();
        let st = &mut *st;
        let ports: Vec<u16> = st.ports.keys().copied().collect();
        let mut worked = false;
        for port in ports {
            while let Ok(Some((conn, client_addr))) = self.network.poll_accept(port) {
                worked = true;
                // A port can lose its last proxy-side listener between the
                // NIC accept and routing; refuse the orphan connection
                // instead of panicking on an empty listener set.
                let listeners = match st.ports.get(&port) {
                    Some(p) if !p.listeners.is_empty() => &p.listeners,
                    _ => {
                        let _ = self.network.close(conn, EndKind::Server);
                        continue;
                    }
                };
                let meta = ConnMeta { client_addr, port };
                let idx = st.lb.pick(listeners.len(), &meta) % listeners.len();
                let listener = listeners[idx];
                st.lb.conn_assigned(idx);
                let Some(lrec) = st.socks.get(&listener) else {
                    let _ = self.network.close(conn, EndKind::Server);
                    continue;
                };
                let coproc = lrec.coproc;
                let evented = lrec.evented;
                // Create the connection socket owned by the same coproc.
                let conn_sock = st.next_sock;
                st.next_sock += 1;
                st.socks.insert(
                    conn_sock,
                    SockRec {
                        coproc,
                        state: SockState::Conn {
                            id: conn,
                            end: EndKind::Server,
                        },
                        evented,
                        close_sent: false,
                        lb_slot: Some(idx),
                    },
                );
                self.stats.accepted[coproc].fetch_add(1, Ordering::Relaxed);
                if evented {
                    st.evented_conns.push(conn_sock);
                    let ev = NetEvent::Accepted {
                        listen: listener,
                        conn: conn_sock,
                        peer_addr: client_addr,
                    };
                    self.push_event(coproc, &ev);
                } else {
                    st.pending_accepts
                        .entry(listener)
                        .or_default()
                        .push_back((conn_sock, client_addr));
                }
            }
        }
        worked
    }

    /// Pulls inbound data for evented connections into event rings.
    fn poll_data(&self) -> bool {
        let mut st = self.state.lock();
        let mut worked = false;
        let conns: Vec<SockId> = st.evented_conns.clone();
        for sock in conns {
            let Some(rec) = st.socks.get(&sock) else {
                continue;
            };
            let SockState::Conn { id, end } = rec.state else {
                continue;
            };
            let coproc = rec.coproc;
            match self.network.recv(id, end, RECV_CHUNK) {
                Ok(data) if data.is_empty() => {}
                Ok(data) => {
                    worked = true;
                    self.push_event(coproc, &NetEvent::Data { sock, data });
                }
                Err(NetworkError::Closed) => {
                    if let Some(rec) = st.socks.get_mut(&sock) {
                        let slot = rec.lb_slot.take();
                        if !rec.close_sent {
                            rec.close_sent = true;
                            worked = true;
                            self.push_event(coproc, &NetEvent::Closed { sock });
                        }
                        if let Some(slot) = slot {
                            st.lb.conn_closed(slot);
                        }
                    }
                    st.evented_conns.retain(|s| *s != sock);
                }
                Err(_) => {
                    st.evented_conns.retain(|s| *s != sock);
                }
            }
        }
        worked
    }

    fn push_event(&self, coproc: usize, ev: &NetEvent) {
        self.stats.events.fetch_add(1, Ordering::Relaxed);
        let _ = self.evt_tx[coproc].send_blocking(&ev.encode());
    }
}

impl OpHandler for TcpProxy {
    type Req = NetRequest;

    fn encode_err(&self, tag: u32, err: RpcErr) -> Vec<u8> {
        NetResponse::Error { err }.encode(tag)
    }

    /// Flow index `lane * 2 + class offset`, matching the per-co-processor
    /// (high, normal) flow pairs laid out by [`TcpProxy::enable_qos`].
    fn classify(&self, lane: usize, req: &NetRequest) -> (usize, u64) {
        let (off, bytes) = classify_net(req);
        (lane * 2 + off, bytes)
    }

    fn exec(&self, lane: usize, tag: u32, req: NetRequest) -> Vec<u8> {
        self.handle(lane, req).encode(tag)
    }

    fn poll(&self) -> bool {
        let accepted = self.poll_accepts();
        let data = self.poll_data();
        accepted || data
    }
}
