//! The control-plane TCP proxy (§4.4).
//!
//! A single host thread terminates all TCP activity: it serves the ten
//! socket RPCs from every co-processor, polls the NIC fabric, and pushes
//! inbound events (new connection, data arrival, peer close) into each
//! co-processor's inbound event ring.
//!
//! The *shared listening socket* (§4.4.3) is implemented here: multiple
//! co-processors may listen on the same port; each incoming connection is
//! assigned to one of them by a pluggable [`LoadBalancer`] (the paper
//! implements connection-based round-robin; a content/address-hash policy
//! is provided as the pluggable example).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use solros_netdev::{ConnId, EndKind, Network, NetworkError};
use solros_proto::codec::stamp_credit;
use solros_proto::net_msg::{NetEvent, NetRequest, NetResponse, SockId};
use solros_proto::rpc_error::RpcErr;
use solros_qos::{Dispatch, DwrrScheduler, FlowSpec, QosClass, QosConfig, QosStats, Verdict};
use solros_ringbuf::{Consumer, Producer};

/// Socket option: event-driven delivery (1 = events, 0 = RPC polling).
pub const SOCKOPT_EVENTED: u32 = 1;

/// Metadata about an incoming connection, fed to the balancer.
#[derive(Debug, Clone, Copy)]
pub struct ConnMeta {
    /// Remote client identifier.
    pub client_addr: u64,
    /// Listening port.
    pub port: u16,
}

/// A pluggable forwarding policy for shared listening sockets (§4.4.3).
pub trait LoadBalancer: Send {
    /// Picks the index of the listener (among `n` candidates, in
    /// registration order) that receives this connection.
    fn pick(&mut self, n: usize, meta: &ConnMeta) -> usize;

    /// Informs the policy that the connection went to listener `idx`
    /// (the value returned by [`LoadBalancer::pick`]). Default: ignored.
    fn conn_assigned(&mut self, idx: usize) {
        let _ = idx;
    }

    /// Informs the policy that a connection previously assigned to
    /// listener `idx` has closed. Default: ignored.
    fn conn_closed(&mut self, idx: usize) {
        let _ = idx;
    }
}

/// The paper's connection-based round-robin policy.
#[derive(Default)]
pub struct RoundRobin {
    next: usize,
}

impl LoadBalancer for RoundRobin {
    fn pick(&mut self, n: usize, _meta: &ConnMeta) -> usize {
        let i = self.next % n;
        self.next = self.next.wrapping_add(1);
        i
    }
}

/// A content-based policy: hash the client address, so one client always
/// lands on the same co-processor (example of a user-provided rule).
#[derive(Default)]
pub struct AddrHash;

impl LoadBalancer for AddrHash {
    fn pick(&mut self, n: usize, meta: &ConnMeta) -> usize {
        (meta.client_addr as usize).wrapping_mul(0x9E37_79B9) % n
    }
}

/// Routes each connection to the listener with the fewest in-flight
/// connections, so a co-processor stuck on long-lived transfers stops
/// receiving new work while its siblings stay busy. Ties break with a
/// rotating cursor, which degrades to round-robin under uniform load.
#[derive(Default)]
pub struct LeastLoaded {
    in_flight: Vec<u64>,
    next: usize,
}

impl LoadBalancer for LeastLoaded {
    fn pick(&mut self, n: usize, _meta: &ConnMeta) -> usize {
        if self.in_flight.len() < n {
            self.in_flight.resize(n, 0);
        }
        let winner = (0..n)
            .map(|k| (self.next + k) % n)
            .min_by_key(|&i| self.in_flight[i])
            .unwrap_or(0);
        self.next = (winner + 1) % n.max(1);
        winner
    }

    fn conn_assigned(&mut self, idx: usize) {
        if self.in_flight.len() <= idx {
            self.in_flight.resize(idx + 1, 0);
        }
        self.in_flight[idx] += 1;
    }

    fn conn_closed(&mut self, idx: usize) {
        if let Some(c) = self.in_flight.get_mut(idx) {
            *c = c.saturating_sub(1);
        }
    }
}

/// Per-co-processor proxy-side channel endpoints.
pub struct NetChannelHost {
    /// Drains the co-processor's requests.
    pub req_rx: Consumer,
    /// Pushes replies.
    pub resp_tx: Producer,
    /// Pushes inbound events.
    pub evt_tx: Producer,
}

/// Proxy statistics (per co-processor accepted counts drive the LB tests).
#[derive(Debug, Default)]
pub struct TcpProxyStats {
    /// RPCs served.
    pub rpcs: AtomicU64,
    /// Events pushed.
    pub events: AtomicU64,
    /// Connections accepted, indexed by co-processor.
    pub accepted: Vec<AtomicU64>,
    /// Handler panics contained and converted into `Io` error replies.
    pub worker_panics: AtomicU64,
}

enum SockState {
    Fresh,
    Bound(u16),
    Listening(u16),
    Conn { id: ConnId, end: EndKind },
    Closed,
}

struct SockRec {
    coproc: usize,
    state: SockState,
    evented: bool,
    /// For evented conns: a Closed event has been delivered.
    close_sent: bool,
    /// For accepted conns: the balancer slot this connection counts
    /// against, so [`LoadBalancer::conn_closed`] fires exactly once.
    lb_slot: Option<usize>,
}

struct PortRec {
    /// Listener sockets in registration order.
    listeners: Vec<SockId>,
}

/// The TCP proxy server.
pub struct TcpProxy {
    network: Arc<Network>,
    lb: Box<dyn LoadBalancer>,
    channels: Vec<NetChannelHost>,
    stats: Arc<TcpProxyStats>,
    socks: HashMap<SockId, SockRec>,
    ports: HashMap<u16, PortRec>,
    /// Live connections owned by evented sockets, polled for data.
    evented_conns: Vec<SockId>,
    /// Pending accepts for non-evented (RPC-polling) listeners.
    pending_accepts: HashMap<SockId, VecDeque<(SockId, u64)>>,
    next_sock: SockId,
    /// QoS gate over per-(co-processor, class) flows; None = FIFO.
    qos: Option<DwrrScheduler<(usize, u32, NetRequest)>>,
    /// Fault injection: the next N handled requests panic mid-execution.
    inject_worker_panics: u64,
}

/// Max bytes pulled from the fabric per connection per poll round.
const RECV_CHUNK: usize = 64 * 1024;

/// Maps a net request to (class offset within a co-processor's flow
/// pair, payload bytes): data movement is normal class (offset 1),
/// connection management is high (offset 0).
fn classify_net(req: &NetRequest) -> (usize, u64) {
    match req {
        NetRequest::Send { data, .. } => (1, data.len() as u64),
        NetRequest::Recv { max, .. } => (1, *max as u64),
        _ => (0, 0),
    }
}

impl TcpProxy {
    /// Creates a proxy over the NIC fabric and per-co-processor channels.
    pub fn new(
        network: Arc<Network>,
        channels: Vec<NetChannelHost>,
        lb: Box<dyn LoadBalancer>,
    ) -> (Self, Arc<TcpProxyStats>) {
        let stats = Arc::new(TcpProxyStats {
            rpcs: AtomicU64::new(0),
            events: AtomicU64::new(0),
            accepted: (0..channels.len()).map(|_| AtomicU64::new(0)).collect(),
            worker_panics: AtomicU64::new(0),
        });
        (
            Self {
                network,
                lb,
                channels,
                stats: Arc::clone(&stats),
                socks: HashMap::new(),
                ports: HashMap::new(),
                evented_conns: Vec::new(),
                pending_accepts: HashMap::new(),
                next_sock: 1,
                qos: None,
                inject_worker_panics: 0,
            },
            stats,
        )
    }

    /// Installs a QoS gate with one (high, normal) flow pair per
    /// co-processor, built from `cfg`. Returns the gate's stats ledger.
    /// Must be called before [`TcpProxy::run`].
    pub fn enable_qos(&mut self, cfg: &QosConfig) -> Arc<QosStats> {
        let mut specs = Vec::new();
        for c in 0..self.channels.len() {
            for class in [QosClass::High, QosClass::Normal] {
                specs.push(FlowSpec::from_class(
                    format!("net{c}/{}", class.label()),
                    class,
                    cfg.class(class),
                ));
            }
        }
        let gate = DwrrScheduler::new(specs, cfg.quantum_bytes, cfg.overload_threshold);
        let stats = gate.stats();
        self.qos = Some(gate);
        stats
    }

    /// Runs the proxy loop until `shutdown`.
    pub fn run(mut self, shutdown: Arc<AtomicBool>) {
        match self.qos.take() {
            Some(gate) => self.run_qos(shutdown, gate),
            None => self.run_fifo(shutdown),
        }
    }

    fn run_fifo(mut self, shutdown: Arc<AtomicBool>) {
        while !shutdown.load(Ordering::Relaxed) {
            let mut idle = true;
            for c in 0..self.channels.len() {
                // Drain a bounded burst of requests per co-processor.
                for _ in 0..32 {
                    match self.channels[c].req_rx.recv() {
                        Ok(frame) => {
                            idle = false;
                            self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
                            let reply = match NetRequest::decode(&frame) {
                                Ok((tag, req)) => self.handle_contained(c, req).encode(tag),
                                Err(_) => NetResponse::Error {
                                    err: RpcErr::Invalid,
                                }
                                .encode(0),
                            };
                            let _ = self.channels[c].resp_tx.send_blocking(&reply);
                        }
                        Err(_) => break,
                    }
                }
            }
            if self.poll_accepts() {
                idle = false;
            }
            if self.poll_data() {
                idle = false;
            }
            if idle {
                std::thread::yield_now();
            }
        }
    }

    /// The QoS service loop: admit ring arrivals into per-(coproc, class)
    /// flows — re-keyed per tenant via
    /// [`DwrrScheduler::flow_for_tenant`] when the frame carries a
    /// non-zero tenant id — serve in DWRR order, answer shed requests
    /// with [`RpcErr::Overloaded`], and piggyback credit windows on
    /// replies.
    fn run_qos(
        mut self,
        shutdown: Arc<AtomicBool>,
        mut gate: DwrrScheduler<(usize, u32, NetRequest)>,
    ) {
        let epoch = std::time::Instant::now();
        while !shutdown.load(Ordering::Relaxed) {
            let mut idle = true;
            for c in 0..self.channels.len() {
                for _ in 0..32 {
                    let Ok(frame) = self.channels[c].req_rx.recv() else {
                        break;
                    };
                    idle = false;
                    match NetRequest::decode(&frame) {
                        Ok((tag, req)) => {
                            let tenant = solros_proto::codec::decode_frame(&frame)
                                .map(|f| f.tenant)
                                .unwrap_or(0);
                            let (class_off, bytes) = classify_net(&req);
                            let flow = gate.flow_for_tenant(tenant, c * 2 + class_off);
                            let now = epoch.elapsed().as_nanos() as u64;
                            if let Verdict::Shed {
                                item: (_, tag, _), ..
                            } = gate.submit(flow, bytes, now, (c, tag, req))
                            {
                                let mut reply = NetResponse::Error {
                                    err: RpcErr::Overloaded,
                                }
                                .encode(tag);
                                stamp_credit(&mut reply, gate.credit(flow));
                                let _ = self.channels[c].resp_tx.send_blocking(&reply);
                            }
                        }
                        Err(_) => {
                            let _ = self.channels[c].resp_tx.send_blocking(
                                &NetResponse::Error {
                                    err: RpcErr::Invalid,
                                }
                                .encode(0),
                            );
                        }
                    }
                }
            }
            for _ in 0..64 {
                let now = epoch.elapsed().as_nanos() as u64;
                match gate.dispatch(now) {
                    Dispatch::Run {
                        flow,
                        item: (c, tag, req),
                        ..
                    } => {
                        idle = false;
                        self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
                        let mut reply = self.handle_contained(c, req).encode(tag);
                        stamp_credit(&mut reply, gate.credit(flow));
                        let _ = self.channels[c].resp_tx.send_blocking(&reply);
                    }
                    Dispatch::Shed {
                        flow,
                        item: (c, tag, _),
                        ..
                    } => {
                        idle = false;
                        let mut reply = NetResponse::Error {
                            err: RpcErr::Overloaded,
                        }
                        .encode(tag);
                        stamp_credit(&mut reply, gate.credit(flow));
                        let _ = self.channels[c].resp_tx.send_blocking(&reply);
                    }
                    Dispatch::Idle => break,
                }
            }
            if self.poll_accepts() {
                idle = false;
            }
            if self.poll_data() {
                idle = false;
            }
            if idle {
                std::thread::yield_now();
            }
        }
    }

    /// Fault injection: makes the next `n` handled requests panic inside
    /// the handler, exercising the containment path.
    pub fn inject_worker_panics(&mut self, n: u64) {
        self.inject_worker_panics += n;
    }

    /// Runs [`TcpProxy::handle`] with panic containment: a panicking
    /// handler (a proxy bug or an injected fault) yields an [`RpcErr::Io`]
    /// error reply instead of taking down the service loop.
    fn handle_contained(&mut self, coproc: usize, req: NetRequest) -> NetResponse {
        let armed = self.inject_worker_panics > 0;
        if armed {
            self.inject_worker_panics -= 1;
        }
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if armed {
                panic!("injected tcp proxy worker panic");
            }
            self.handle(coproc, req)
        }));
        out.unwrap_or_else(|_| {
            self.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            NetResponse::Error { err: RpcErr::Io }
        })
    }

    /// Executes one RPC from co-processor `coproc`.
    pub fn handle(&mut self, coproc: usize, req: NetRequest) -> NetResponse {
        match req {
            NetRequest::Socket => {
                let id = self.next_sock;
                self.next_sock += 1;
                self.socks.insert(
                    id,
                    SockRec {
                        coproc,
                        state: SockState::Fresh,
                        evented: true,
                        close_sent: false,
                        lb_slot: None,
                    },
                );
                NetResponse::Socket { sock: id }
            }
            NetRequest::Bind { sock, port } => match self.socks.get_mut(&sock) {
                Some(rec) if matches!(rec.state, SockState::Fresh) => {
                    rec.state = SockState::Bound(port);
                    NetResponse::Ok
                }
                Some(_) => NetResponse::Error {
                    err: RpcErr::Invalid,
                },
                None => NetResponse::Error {
                    err: RpcErr::NotFound,
                },
            },
            NetRequest::Listen { sock, backlog } => {
                let port = match self.socks.get(&sock) {
                    Some(SockRec {
                        state: SockState::Bound(p),
                        ..
                    }) => *p,
                    Some(_) => {
                        return NetResponse::Error {
                            err: RpcErr::Invalid,
                        }
                    }
                    None => {
                        return NetResponse::Error {
                            err: RpcErr::NotFound,
                        }
                    }
                };
                let first = !self.ports.contains_key(&port);
                if first {
                    // Register the NIC-side listener once; later listeners
                    // join the shared listening socket (§4.4.3).
                    if self
                        .network
                        .listen(port, (backlog as usize).max(64))
                        .is_err()
                    {
                        return NetResponse::Error {
                            err: RpcErr::AddrInUse,
                        };
                    }
                    self.ports.insert(
                        port,
                        PortRec {
                            listeners: Vec::new(),
                        },
                    );
                }
                let Some(prec) = self.ports.get_mut(&port) else {
                    return NetResponse::Error { err: RpcErr::Io };
                };
                prec.listeners.push(sock);
                let Some(rec) = self.socks.get_mut(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                rec.state = SockState::Listening(port);
                NetResponse::Ok
            }
            NetRequest::Accept { sock } => {
                match self
                    .pending_accepts
                    .get_mut(&sock)
                    .and_then(|q| q.pop_front())
                {
                    Some((conn_sock, peer_addr)) => NetResponse::Accepted {
                        conn: conn_sock,
                        peer_addr,
                    },
                    None => match self.socks.get(&sock) {
                        Some(SockRec {
                            state: SockState::Listening(_),
                            ..
                        }) => NetResponse::Error {
                            err: RpcErr::WouldBlock,
                        },
                        Some(_) => NetResponse::Error {
                            err: RpcErr::NotListening,
                        },
                        None => NetResponse::Error {
                            err: RpcErr::NotFound,
                        },
                    },
                }
            }
            NetRequest::Connect { sock, addr, port } => {
                let Some(rec) = self.socks.get_mut(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                if !matches!(rec.state, SockState::Fresh) {
                    return NetResponse::Error {
                        err: RpcErr::Invalid,
                    };
                }
                match self.network.client_connect(port, addr) {
                    Ok(id) => {
                        rec.state = SockState::Conn {
                            id,
                            end: EndKind::Client,
                        };
                        if rec.evented {
                            self.evented_conns.push(sock);
                        }
                        NetResponse::Ok
                    }
                    Err(_) => NetResponse::Error {
                        err: RpcErr::ConnRefused,
                    },
                }
            }
            NetRequest::Send { sock, data } => {
                let Some(rec) = self.socks.get(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                let SockState::Conn { id, end } = rec.state else {
                    return NetResponse::Error {
                        err: RpcErr::NotConnected,
                    };
                };
                match self.network.send(id, end, &data) {
                    Ok(n) => NetResponse::Sent { count: n as u64 },
                    Err(NetworkError::Closed) => NetResponse::Error { err: RpcErr::Reset },
                    Err(_) => NetResponse::Error {
                        err: RpcErr::NotConnected,
                    },
                }
            }
            NetRequest::Recv { sock, max } => {
                let Some(rec) = self.socks.get(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                let SockState::Conn { id, end } = rec.state else {
                    return NetResponse::Error {
                        err: RpcErr::NotConnected,
                    };
                };
                match self.network.recv(id, end, max as usize) {
                    Ok(data) => NetResponse::Data { data },
                    Err(NetworkError::Closed) => NetResponse::Error { err: RpcErr::Reset },
                    Err(_) => NetResponse::Error {
                        err: RpcErr::NotConnected,
                    },
                }
            }
            NetRequest::Close { sock } => self.close_sock(sock),
            NetRequest::Setsockopt { sock, opt, val } => {
                let Some(rec) = self.socks.get_mut(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                if opt == SOCKOPT_EVENTED {
                    rec.evented = val != 0;
                    NetResponse::Ok
                } else {
                    NetResponse::Error {
                        err: RpcErr::Invalid,
                    }
                }
            }
            NetRequest::Shutdown { sock, how } => {
                let Some(rec) = self.socks.get(&sock) else {
                    return NetResponse::Error {
                        err: RpcErr::NotFound,
                    };
                };
                let SockState::Conn { id, end } = rec.state else {
                    return NetResponse::Error {
                        err: RpcErr::NotConnected,
                    };
                };
                if how >= 1 {
                    let _ = self.network.close(id, end);
                }
                NetResponse::Ok
            }
        }
    }

    fn close_sock(&mut self, sock: SockId) -> NetResponse {
        let Some(rec) = self.socks.get_mut(&sock) else {
            return NetResponse::Error {
                err: RpcErr::NotFound,
            };
        };
        match rec.state {
            SockState::Conn { id, end } => {
                let _ = self.network.close(id, end);
                rec.state = SockState::Closed;
                if let Some(slot) = rec.lb_slot.take() {
                    self.lb.conn_closed(slot);
                }
                self.evented_conns.retain(|s| *s != sock);
            }
            SockState::Listening(port) => {
                rec.state = SockState::Closed;
                if let Some(p) = self.ports.get_mut(&port) {
                    p.listeners.retain(|s| *s != sock);
                    if p.listeners.is_empty() {
                        self.ports.remove(&port);
                        self.network.unlisten(port);
                    }
                }
                self.pending_accepts.remove(&sock);
            }
            _ => rec.state = SockState::Closed,
        }
        NetResponse::Ok
    }

    /// Accepts incoming connections and routes them via the balancer.
    /// Returns true when any work happened.
    fn poll_accepts(&mut self) -> bool {
        let ports: Vec<u16> = self.ports.keys().copied().collect();
        let mut worked = false;
        for port in ports {
            while let Ok(Some((conn, client_addr))) = self.network.poll_accept(port) {
                worked = true;
                // A port can lose its last proxy-side listener between the
                // NIC accept and routing; refuse the orphan connection
                // instead of panicking on an empty listener set.
                let listeners = match self.ports.get(&port) {
                    Some(p) if !p.listeners.is_empty() => &p.listeners,
                    _ => {
                        let _ = self.network.close(conn, EndKind::Server);
                        continue;
                    }
                };
                let meta = ConnMeta { client_addr, port };
                let idx = self.lb.pick(listeners.len(), &meta) % listeners.len();
                let listener = listeners[idx];
                self.lb.conn_assigned(idx);
                let Some(lrec) = self.socks.get(&listener) else {
                    let _ = self.network.close(conn, EndKind::Server);
                    continue;
                };
                let coproc = lrec.coproc;
                let evented = lrec.evented;
                // Create the connection socket owned by the same coproc.
                let conn_sock = self.next_sock;
                self.next_sock += 1;
                self.socks.insert(
                    conn_sock,
                    SockRec {
                        coproc,
                        state: SockState::Conn {
                            id: conn,
                            end: EndKind::Server,
                        },
                        evented,
                        close_sent: false,
                        lb_slot: Some(idx),
                    },
                );
                self.stats.accepted[coproc].fetch_add(1, Ordering::Relaxed);
                if evented {
                    self.evented_conns.push(conn_sock);
                    let ev = NetEvent::Accepted {
                        listen: listener,
                        conn: conn_sock,
                        peer_addr: client_addr,
                    };
                    self.push_event(coproc, &ev);
                } else {
                    self.pending_accepts
                        .entry(listener)
                        .or_default()
                        .push_back((conn_sock, client_addr));
                }
            }
        }
        worked
    }

    /// Pulls inbound data for evented connections into event rings.
    fn poll_data(&mut self) -> bool {
        let mut worked = false;
        let conns: Vec<SockId> = self.evented_conns.clone();
        for sock in conns {
            let Some(rec) = self.socks.get(&sock) else {
                continue;
            };
            let SockState::Conn { id, end } = rec.state else {
                continue;
            };
            let coproc = rec.coproc;
            match self.network.recv(id, end, RECV_CHUNK) {
                Ok(data) if data.is_empty() => {}
                Ok(data) => {
                    worked = true;
                    self.push_event(coproc, &NetEvent::Data { sock, data });
                }
                Err(NetworkError::Closed) => {
                    if let Some(rec) = self.socks.get_mut(&sock) {
                        let slot = rec.lb_slot.take();
                        if !rec.close_sent {
                            rec.close_sent = true;
                            worked = true;
                            self.push_event(coproc, &NetEvent::Closed { sock });
                        }
                        if let Some(slot) = slot {
                            self.lb.conn_closed(slot);
                        }
                    }
                    self.evented_conns.retain(|s| *s != sock);
                }
                Err(_) => {
                    self.evented_conns.retain(|s| *s != sock);
                }
            }
        }
        worked
    }

    fn push_event(&self, coproc: usize, ev: &NetEvent) {
        self.stats.events.fetch_add(1, Ordering::Relaxed);
        let _ = self.channels[coproc].evt_tx.send_blocking(&ev.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proxy_with(n: usize) -> (TcpProxy, Arc<solros_netdev::Network>) {
        use crate::transport::{event_ring, Channel};
        use solros_pcie::PcieCounters;
        let network = solros_netdev::Network::new();
        let mut channels = Vec::new();
        for _ in 0..n {
            let counters = Arc::new(PcieCounters::new());
            let ch = Channel::new(Arc::clone(&counters));
            let (evt_tx, _evt_rx) = event_ring(counters);
            channels.push(NetChannelHost {
                req_rx: ch.req_rx,
                resp_tx: ch.resp_tx,
                evt_tx,
            });
        }
        let (proxy, _stats) = TcpProxy::new(
            Arc::clone(&network),
            channels,
            Box::new(RoundRobin::default()),
        );
        (proxy, network)
    }

    fn new_sock(p: &mut TcpProxy) -> SockId {
        match p.handle(0, NetRequest::Socket) {
            NetResponse::Socket { sock } => sock,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn injected_handler_panic_is_contained() {
        let (mut p, _net) = proxy_with(1);
        p.inject_worker_panics(1);
        assert!(matches!(
            p.handle_contained(0, NetRequest::Socket),
            NetResponse::Error { err: RpcErr::Io }
        ));
        assert_eq!(p.stats.worker_panics.load(Ordering::Relaxed), 1);
        // The loop survives: the next request is served normally.
        assert!(matches!(
            p.handle_contained(0, NetRequest::Socket),
            NetResponse::Socket { .. }
        ));
    }

    #[test]
    fn socket_state_machine_rejects_bad_transitions() {
        let (mut p, _net) = proxy_with(1);
        let s = new_sock(&mut p);
        // Listen before bind.
        assert!(matches!(
            p.handle(
                0,
                NetRequest::Listen {
                    sock: s,
                    backlog: 4
                }
            ),
            NetResponse::Error {
                err: RpcErr::Invalid
            }
        ));
        // Bind works once; double bind rejected.
        assert!(matches!(
            p.handle(0, NetRequest::Bind { sock: s, port: 80 }),
            NetResponse::Ok
        ));
        assert!(matches!(
            p.handle(0, NetRequest::Bind { sock: s, port: 81 }),
            NetResponse::Error {
                err: RpcErr::Invalid
            }
        ));
        // Send on a non-connection.
        assert!(matches!(
            p.handle(
                0,
                NetRequest::Send {
                    sock: s,
                    data: vec![1]
                }
            ),
            NetResponse::Error {
                err: RpcErr::NotConnected
            }
        ));
        // Unknown socket ids.
        assert!(matches!(
            p.handle(0, NetRequest::Close { sock: 9999 }),
            NetResponse::Error {
                err: RpcErr::NotFound
            }
        ));
        // Accept on a non-listening socket.
        assert!(matches!(
            p.handle(0, NetRequest::Accept { sock: s }),
            NetResponse::Error {
                err: RpcErr::NotListening
            }
        ));
        // Unknown socket option.
        assert!(matches!(
            p.handle(
                0,
                NetRequest::Setsockopt {
                    sock: s,
                    opt: 99,
                    val: 1
                }
            ),
            NetResponse::Error {
                err: RpcErr::Invalid
            }
        ));
    }

    #[test]
    fn shared_port_closes_cleanly() {
        let (mut p, net) = proxy_with(2);
        // Two co-processors listen on the same port (shared socket).
        let a = new_sock(&mut p);
        assert!(matches!(
            p.handle(0, NetRequest::Bind { sock: a, port: 90 }),
            NetResponse::Ok
        ));
        assert!(matches!(
            p.handle(
                0,
                NetRequest::Listen {
                    sock: a,
                    backlog: 4
                }
            ),
            NetResponse::Ok
        ));
        let b = match p.handle(1, NetRequest::Socket) {
            NetResponse::Socket { sock } => sock,
            other => panic!("unexpected {other:?}"),
        };
        assert!(matches!(
            p.handle(1, NetRequest::Bind { sock: b, port: 90 }),
            NetResponse::Ok
        ));
        assert!(matches!(
            p.handle(
                1,
                NetRequest::Listen {
                    sock: b,
                    backlog: 4
                }
            ),
            NetResponse::Ok
        ));
        // Closing one listener keeps the port open for the other.
        assert!(matches!(
            p.handle(0, NetRequest::Close { sock: a }),
            NetResponse::Ok
        ));
        assert!(net.client_connect(90, 1).is_ok(), "port still listening");
        // Closing the last listener releases the NIC port.
        assert!(matches!(
            p.handle(1, NetRequest::Close { sock: b }),
            NetResponse::Ok
        ));
        assert!(net.client_connect(90, 2).is_err(), "port released");
    }

    #[test]
    fn connect_send_recv_shutdown_via_rpc() {
        let (mut p, net) = proxy_with(1);
        // An "external server" listens on the fabric.
        net.listen(7000, 4).unwrap();
        let s = new_sock(&mut p);
        assert!(matches!(
            p.handle(
                0,
                NetRequest::Connect {
                    sock: s,
                    addr: 55,
                    port: 7000
                }
            ),
            NetResponse::Ok
        ));
        let (conn, addr) = net.poll_accept(7000).unwrap().expect("pending");
        assert_eq!(addr, 55);
        // Outbound data flows from the machine's Client end.
        assert!(matches!(
            p.handle(
                0,
                NetRequest::Send {
                    sock: s,
                    data: b"out".to_vec()
                }
            ),
            NetResponse::Sent { count: 3 }
        ));
        assert_eq!(
            net.recv(conn, solros_netdev::EndKind::Server, 16).unwrap(),
            b"out"
        );
        // Inbound via the Recv RPC.
        net.send(conn, solros_netdev::EndKind::Server, b"in!")
            .unwrap();
        match p.handle(0, NetRequest::Recv { sock: s, max: 16 }) {
            NetResponse::Data { data } => assert_eq!(data, b"in!"),
            other => panic!("unexpected {other:?}"),
        }
        // Shutdown(write) sends FIN; the server observes EOF.
        assert!(matches!(
            p.handle(0, NetRequest::Shutdown { sock: s, how: 1 }),
            NetResponse::Ok
        ));
        assert!(matches!(
            net.recv(conn, solros_netdev::EndKind::Server, 16),
            Err(solros_netdev::NetworkError::Closed)
        ));
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let meta = ConnMeta {
            client_addr: 1,
            port: 80,
        };
        let picks: Vec<_> = (0..6).map(|_| rr.pick(3, &meta)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn addr_hash_is_sticky() {
        let mut h = AddrHash;
        for addr in 0..50u64 {
            let meta = ConnMeta {
                client_addr: addr,
                port: 80,
            };
            let a = h.pick(4, &meta);
            let b = h.pick(4, &meta);
            assert_eq!(a, b, "same client must land on the same coproc");
            assert!(a < 4);
        }
    }

    #[test]
    fn least_loaded_stays_fair_under_skewed_lifetimes() {
        // Connections landing on co-processor 0 are long-lived (never
        // close); everywhere else they close immediately. Round-robin
        // keeps feeding the overloaded co-processor; least-loaded must
        // divert new work away from it.
        let run = |lb: &mut dyn LoadBalancer, n: usize, arrivals: u64| -> Vec<u64> {
            let mut assigned = vec![0u64; n];
            for addr in 0..arrivals {
                let meta = ConnMeta {
                    client_addr: addr,
                    port: 80,
                };
                let idx = lb.pick(n, &meta);
                lb.conn_assigned(idx);
                assigned[idx] += 1;
                if idx != 0 {
                    lb.conn_closed(idx);
                }
            }
            assigned
        };

        let mut ll = LeastLoaded::default();
        let fair = run(&mut ll, 3, 300);
        // Co-processor 0 accumulates in-flight connections, so it should
        // receive almost nothing beyond its first few picks while the
        // siblings absorb the rest of the skewed arrival stream.
        assert!(
            fair[0] <= 3,
            "least-loaded kept feeding the loaded coproc: {fair:?}"
        );
        assert!(
            fair[1] >= 100 && fair[2] >= 100,
            "siblings starved: {fair:?}"
        );

        let mut rr = RoundRobin::default();
        let skewed = run(&mut rr, 3, 300);
        assert_eq!(
            skewed[0], 100,
            "round-robin should ignore load, proving the contrast: {skewed:?}"
        );
    }
}
