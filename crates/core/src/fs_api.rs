//! The data-plane file-system stub and application API (§4.3.1).
//!
//! The stub transforms each file-system call into exactly one RPC (the
//! paper's one-to-one mapping) and manages the zero-copy I/O buffers: it
//! carves them out of the co-processor's exported window, puts their
//! addresses into `Tread`/`Twrite`, and — because the buffers live in
//! *local* co-processor memory — the final copy between the window buffer
//! and the caller's slice is an ordinary local `memcpy`.
//!
//! Besides the synchronous API, the stub exposes the submission half of
//! the RPC pipeline: [`CoprocFs::submit_read_at`] /
//! [`CoprocFs::submit_write_at`] enqueue an operation and return a
//! pending handle, and the [`Batch`] builder keeps N operations in flight
//! at once — the queue depth the host proxy converts into coalesced NVMe
//! doorbells (Fig 11 of the paper).

use std::sync::Arc;

use solros_lease::{BatchIo, LeaseIo, LeaseTable};
use solros_machine::WindowAlloc;
use solros_nvme::BLOCK_SIZE;
use solros_pcie::window::{Window, WindowHandle};
use solros_pcie::Side;
use solros_proto::codec::FLAG_BARRIER;
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_proto::rpc_error::RpcErr;

use crate::transport::{RpcClient, Token};

/// A file handle on the data plane (an inode number under the hood).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHandle(pub u64);

/// File metadata as seen from the co-processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub ino: u64,
    /// Directory flag.
    pub is_dir: bool,
    /// Size in bytes.
    pub size: u64,
}

/// The co-processor file-system API.
pub struct CoprocFs {
    client: Arc<RpcClient>,
    window: Arc<Window>,
    alloc: Arc<WindowAlloc>,
    /// The extent-lease fast path: when a valid lease covers a range,
    /// `read_at`/`write_at` go straight to the NVMe queues — zero RPCs.
    lease: Option<Arc<LeaseTable>>,
}

impl CoprocFs {
    /// Builds the stub over an RPC client and the co-processor's exported
    /// window + allocator.
    pub fn new(client: Arc<RpcClient>, window: Arc<Window>, alloc: Arc<WindowAlloc>) -> Self {
        Self {
            client,
            window,
            alloc,
            lease: None,
        }
    }

    /// Installs the stub-side lease table (boot path).
    pub fn set_lease_table(&mut self, table: Arc<LeaseTable>) {
        self.lease = Some(table);
    }

    /// The stub-side lease table, when the boot path installed one.
    pub fn lease_table(&self) -> Option<&Arc<LeaseTable>> {
        self.lease.as_ref()
    }

    /// Acquires an extent lease over `[offset, offset + len)` of `f` so
    /// subsequent `read_at`/`write_at` in the range bypass the proxy
    /// entirely. Returns `Ok(true)` when the lease is live, `Ok(false)`
    /// when the proxy declined (bad placement, conflicting holder) or no
    /// lease table is installed — the caller keeps working through the
    /// RPC path either way.
    pub fn lease_range(
        &self,
        f: FileHandle,
        offset: u64,
        len: u64,
        write: bool,
    ) -> Result<bool, RpcErr> {
        let Some(table) = &self.lease else {
            return Ok(false);
        };
        // One lease per inode on the stub: give back the old mapping
        // before asking for a new one (self-recall would stall 5 ms).
        if let Some((id, written_end)) = table.take_release(f.0) {
            self.call(FsRequest::LeaseRelease { id, written_end });
        }
        match self.call(FsRequest::LeaseAcquire {
            ino: f.0,
            offset,
            len,
            write,
        }) {
            FsResponse::LeaseGrant { id, generation, .. } => Ok(table.adopt(id, f.0, generation)),
            FsResponse::Error {
                err: RpcErr::WouldBlock | RpcErr::Overloaded,
            } => Ok(false),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Voluntarily releases the lease on `f`, reporting the write
    /// high-water mark so the proxy makes leased writes visible.
    pub fn lease_release(&self, f: FileHandle) -> Result<(), RpcErr> {
        let Some(table) = &self.lease else {
            return Ok(());
        };
        if let Some((id, written_end)) = table.take_release(f.0) {
            match self.call(FsRequest::LeaseRelease { id, written_end }) {
                FsResponse::Ok => Ok(()),
                FsResponse::Error { err } => Err(err),
                _ => Err(RpcErr::Io),
            }
        } else {
            Ok(())
        }
    }

    /// Acknowledges a recall the lease table detected, giving the lease
    /// back over the wire before the conflicting operation proceeds.
    fn ack_recall(&self, id: u64, written_end: u64) {
        self.call(FsRequest::LeaseRecallAck { id, written_end });
    }

    fn local(&self) -> WindowHandle {
        self.window.map(Side::Coproc)
    }

    fn call(&self, req: FsRequest) -> FsResponse {
        let tag = self.client.tag();
        let reply = self.client.call(tag, req.encode(tag));
        match FsResponse::decode(&reply) {
            Ok((_, resp)) => resp,
            Err(_) => FsResponse::Error { err: RpcErr::Io },
        }
    }

    /// Creates a file.
    pub fn create(&self, path: &str) -> Result<FileHandle, RpcErr> {
        match self.call(FsRequest::Create { path: path.into() }) {
            FsResponse::Create { ino } => Ok(FileHandle(ino)),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Opens a file; `create`/`truncate`/`buffered` mirror the proxy
    /// flags (`buffered` is the paper's `O_BUFFER`).
    pub fn open(
        &self,
        path: &str,
        create: bool,
        truncate: bool,
        buffered: bool,
    ) -> Result<(FileHandle, u64), RpcErr> {
        match self.call(FsRequest::Open {
            path: path.into(),
            create,
            truncate,
            buffered,
        }) {
            FsResponse::Open { ino, size } => Ok((FileHandle(ino), size)),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Reads into `buf` at `offset`; returns bytes read (short at EOF).
    ///
    /// When a valid lease covers the range the read is serviced directly
    /// against the NVMe queues with zero RPCs; a recalled or stale lease
    /// is acked and the read falls back to the proxy path.
    pub fn read_at(&self, f: FileHandle, offset: u64, buf: &mut [u8]) -> Result<usize, RpcErr> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(table) = &self.lease {
            match table.read_at(f.0, offset, buf) {
                LeaseIo::Done(n) => return Ok(n),
                LeaseIo::RecallAck { id, written_end } => self.ack_recall(id, written_end),
                LeaseIo::Fallback => {}
            }
        }
        // Round up so a block-granular P2P transfer cannot overrun.
        let alloc_len = buf.len().div_ceil(BLOCK_SIZE) * BLOCK_SIZE + BLOCK_SIZE;
        let off = self.alloc.alloc(alloc_len).ok_or(RpcErr::NoSpace)?;
        let resp = self.call(FsRequest::Read {
            ino: f.0,
            offset,
            count: buf.len() as u64,
            buf_addr: off as u64,
        });
        let result = match resp {
            FsResponse::Read { count } => {
                let n = (count as usize).min(buf.len());
                // Local copy out of the window buffer (free on real HW).
                // SAFETY: the window range was exclusively allocated to
                // this call and the proxy has completed its transfer.
                unsafe { self.local().read(off, &mut buf[..n]) };
                Ok(n)
            }
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        };
        self.alloc.free(off, alloc_len);
        result
    }

    /// Convenience: read `len` bytes at `offset` into a vector.
    pub fn read_to_vec(&self, f: FileHandle, offset: u64, len: usize) -> Result<Vec<u8>, RpcErr> {
        let mut v = vec![0u8; len];
        let n = self.read_at(f, offset, &mut v)?;
        v.truncate(n);
        Ok(v)
    }

    /// Reads several `(offset, len)` ranges of one file at once.
    ///
    /// Under a valid lease the whole batch becomes a single vectored
    /// NVMe submission — one doorbell, one interrupt, zero RPCs;
    /// otherwise the ranges go through the RPC pipeline as one in-flight
    /// [`Batch`]. Results are in request order, short at EOF.
    pub fn read_at_batch(
        &self,
        f: FileHandle,
        reqs: &[(u64, usize)],
    ) -> Result<Vec<Vec<u8>>, RpcErr> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(table) = &self.lease {
            match table.read_batch(f.0, reqs) {
                BatchIo::Done(out) => return Ok(out),
                BatchIo::RecallAck { id, written_end } => self.ack_recall(id, written_end),
                BatchIo::Fallback => {}
            }
        }
        let mut b = self.batch();
        for &(offset, len) in reqs {
            b = b.read(f, offset, len);
        }
        b.run()
            .into_iter()
            .map(|r| match r {
                BatchResult::Read(r) => r,
                BatchResult::Write(_) => Err(RpcErr::Io),
            })
            .collect()
    }

    /// Writes `data` at `offset`; returns bytes written.
    ///
    /// A valid *write* lease covering the range places the bytes into
    /// the preallocated extents directly — zero RPCs; the proxy learns
    /// the new size when the lease settles.
    pub fn write_at(&self, f: FileHandle, offset: u64, data: &[u8]) -> Result<usize, RpcErr> {
        if data.is_empty() {
            return Ok(0);
        }
        if let Some(table) = &self.lease {
            match table.write_at(f.0, offset, data) {
                LeaseIo::Done(n) => return Ok(n),
                LeaseIo::RecallAck { id, written_end } => self.ack_recall(id, written_end),
                LeaseIo::Fallback => {}
            }
        }
        let alloc_len = data.len().div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
        let off = self.alloc.alloc(alloc_len).ok_or(RpcErr::NoSpace)?;
        // Zero the padding tail so a block-granular P2P write lands zeroes
        // beyond the payload, then stage the payload (both local copies).
        // SAFETY: exclusively allocated range.
        unsafe {
            if alloc_len > data.len() {
                self.local()
                    .write(off + data.len(), &vec![0u8; alloc_len - data.len()]);
            }
            self.local().write(off, data);
        }
        let resp = self.call(FsRequest::Write {
            ino: f.0,
            offset,
            count: data.len() as u64,
            buf_addr: off as u64,
        });
        let result = match resp {
            FsResponse::Write { count } => Ok(count as usize),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        };
        self.alloc.free(off, alloc_len);
        result
    }

    /// Stats a path.
    pub fn stat(&self, path: &str) -> Result<FileStat, RpcErr> {
        match self.call(FsRequest::Stat { path: path.into() }) {
            FsResponse::Stat { ino, is_dir, size } => Ok(FileStat { ino, is_dir, size }),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Stats an open handle.
    pub fn fstat(&self, f: FileHandle) -> Result<FileStat, RpcErr> {
        match self.call(FsRequest::Fstat { ino: f.0 }) {
            FsResponse::Stat { ino, is_dir, size } => Ok(FileStat { ino, is_dir, size }),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Removes a file or empty directory.
    pub fn unlink(&self, path: &str) -> Result<(), RpcErr> {
        match self.call(FsRequest::Unlink { path: path.into() }) {
            FsResponse::Ok => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Creates a directory.
    pub fn mkdir(&self, path: &str) -> Result<(), RpcErr> {
        match self.call(FsRequest::Mkdir { path: path.into() }) {
            FsResponse::Mkdir { .. } => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Lists a directory.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, RpcErr> {
        match self.call(FsRequest::Readdir { path: path.into() }) {
            FsResponse::Readdir { names } => Ok(names),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Renames.
    pub fn rename(&self, from: &str, to: &str) -> Result<(), RpcErr> {
        match self.call(FsRequest::Rename {
            from: from.into(),
            to: to.into(),
        }) {
            FsResponse::Ok => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Truncates to `size`.
    pub fn truncate(&self, f: FileHandle, size: u64) -> Result<(), RpcErr> {
        match self.call(FsRequest::Truncate { ino: f.0, size }) {
            FsResponse::Ok => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Flushes metadata.
    pub fn fsync(&self, f: FileHandle) -> Result<(), RpcErr> {
        match self.call(FsRequest::Fsync { ino: f.0 }) {
            FsResponse::Ok => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// The RPC client under this stub (for draining completions or tenant
    /// configuration).
    pub fn client(&self) -> &Arc<RpcClient> {
        &self.client
    }

    /// A fresh [`Batch`] builder over this stub.
    pub fn batch(&self) -> Batch<'_> {
        Batch {
            fs: self,
            ops: Vec::new(),
            barrier_next: false,
        }
    }

    fn submit_read_flags(
        &self,
        f: FileHandle,
        offset: u64,
        len: usize,
        flags: u8,
    ) -> Result<PendingRead, RpcErr> {
        if len == 0 {
            return Err(RpcErr::Invalid);
        }
        let alloc_len = len.div_ceil(BLOCK_SIZE) * BLOCK_SIZE + BLOCK_SIZE;
        let off = self.alloc.alloc(alloc_len).ok_or(RpcErr::NoSpace)?;
        let tag = self.client.tag();
        let frame = FsRequest::Read {
            ino: f.0,
            offset,
            count: len as u64,
            buf_addr: off as u64,
        }
        .encode(tag);
        match self.client.submit_with_flags(tag, frame, flags) {
            Ok(token) => Ok(PendingRead {
                token,
                off,
                alloc_len,
                want: len,
            }),
            Err(e) => {
                // Nothing was enqueued, so the window range is ours again.
                self.alloc.free(off, alloc_len);
                Err(e)
            }
        }
    }

    /// Enqueues a read of `len` bytes at `offset` without waiting.
    ///
    /// The returned [`PendingRead`] owns a window buffer for the transfer;
    /// redeem it with [`PendingRead::wait`] or [`PendingRead::wait_into`].
    /// Fails with [`RpcErr::WouldBlock`] / [`RpcErr::Overloaded`] when the
    /// request ring or the flow-control window is full — the caller should
    /// harvest a completion and retry (the [`Batch`] builder does this
    /// automatically).
    pub fn submit_read_at(
        &self,
        f: FileHandle,
        offset: u64,
        len: usize,
    ) -> Result<PendingRead, RpcErr> {
        self.submit_read_flags(f, offset, len, 0)
    }

    fn submit_write_flags(
        &self,
        f: FileHandle,
        offset: u64,
        data: &[u8],
        flags: u8,
    ) -> Result<PendingWrite, RpcErr> {
        if data.is_empty() {
            return Err(RpcErr::Invalid);
        }
        let alloc_len = data.len().div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
        let off = self.alloc.alloc(alloc_len).ok_or(RpcErr::NoSpace)?;
        // SAFETY: exclusively allocated range (see `write_at`).
        unsafe {
            if alloc_len > data.len() {
                self.local()
                    .write(off + data.len(), &vec![0u8; alloc_len - data.len()]);
            }
            self.local().write(off, data);
        }
        let tag = self.client.tag();
        let frame = FsRequest::Write {
            ino: f.0,
            offset,
            count: data.len() as u64,
            buf_addr: off as u64,
        }
        .encode(tag);
        match self.client.submit_with_flags(tag, frame, flags) {
            Ok(token) => Ok(PendingWrite {
                token,
                off,
                alloc_len,
            }),
            Err(e) => {
                self.alloc.free(off, alloc_len);
                Err(e)
            }
        }
    }

    /// Enqueues a write of `data` at `offset` without waiting. The payload
    /// is staged into a window buffer up front, so `data` need not outlive
    /// the returned [`PendingWrite`].
    pub fn submit_write_at(
        &self,
        f: FileHandle,
        offset: u64,
        data: &[u8],
    ) -> Result<PendingWrite, RpcErr> {
        self.submit_write_flags(f, offset, data, 0)
    }
}

/// An in-flight read submitted with [`CoprocFs::submit_read_at`].
///
/// Owns the window buffer the proxy transfers into. Redeeming the handle
/// frees the buffer; dropping it unredeemed abandons the RPC and leaks
/// the buffer intentionally — the proxy may still be DMA-ing into it, so
/// returning the range to the allocator would hand a racing transfer to
/// the next caller.
#[must_use = "a submitted read completes only when waited on"]
pub struct PendingRead {
    token: Token,
    off: usize,
    alloc_len: usize,
    want: usize,
}

impl PendingRead {
    /// The wire tag of this submission.
    pub fn tag(&self) -> u32 {
        self.token.tag()
    }

    /// Blocks until the read completes and copies the payload into `buf`
    /// (which should be at least the submitted length); returns bytes
    /// read (short at EOF).
    pub fn wait_into(self, fs: &CoprocFs, buf: &mut [u8]) -> Result<usize, RpcErr> {
        let reply = fs.client.wait(self.token);
        let result = match FsResponse::decode(&reply) {
            Ok((_, FsResponse::Read { count })) => {
                let n = (count as usize).min(self.want).min(buf.len());
                // SAFETY: the proxy's transfer into this exclusively
                // allocated range completed before the reply was sent.
                unsafe { fs.local().read(self.off, &mut buf[..n]) };
                Ok(n)
            }
            Ok((_, FsResponse::Error { err })) => Err(err),
            _ => Err(RpcErr::Io),
        };
        fs.alloc.free(self.off, self.alloc_len);
        result
    }

    /// Blocks until the read completes and returns the payload.
    pub fn wait(self, fs: &CoprocFs) -> Result<Vec<u8>, RpcErr> {
        let want = self.want;
        let mut v = vec![0u8; want];
        let n = self.wait_into(fs, &mut v)?;
        v.truncate(n);
        Ok(v)
    }
}

/// An in-flight write submitted with [`CoprocFs::submit_write_at`].
///
/// Owns the window buffer holding the staged payload until completion;
/// the same drop semantics as [`PendingRead`] apply.
#[must_use = "a submitted write completes only when waited on"]
pub struct PendingWrite {
    token: Token,
    off: usize,
    alloc_len: usize,
}

impl PendingWrite {
    /// The wire tag of this submission.
    pub fn tag(&self) -> u32 {
        self.token.tag()
    }

    /// Blocks until the write completes; returns bytes written.
    pub fn wait(self, fs: &CoprocFs) -> Result<usize, RpcErr> {
        let reply = fs.client.wait(self.token);
        let result = match FsResponse::decode(&reply) {
            Ok((_, FsResponse::Write { count })) => Ok(count as usize),
            Ok((_, FsResponse::Error { err })) => Err(err),
            _ => Err(RpcErr::Io),
        };
        fs.alloc.free(self.off, self.alloc_len);
        result
    }
}

enum BatchOp {
    Read {
        f: FileHandle,
        offset: u64,
        len: usize,
    },
    Write {
        f: FileHandle,
        offset: u64,
        data: Vec<u8>,
    },
}

enum PendingOp {
    Read(PendingRead),
    Write(PendingWrite),
}

/// The outcome of one [`Batch`] operation, in submission order.
#[derive(Debug)]
pub enum BatchResult {
    /// A read's payload (short at EOF) or error.
    Read(Result<Vec<u8>, RpcErr>),
    /// A write's byte count or error.
    Write(Result<usize, RpcErr>),
}

impl BatchResult {
    /// The read payload; panics on a write result or an error.
    pub fn into_read(self) -> Vec<u8> {
        match self {
            BatchResult::Read(r) => r.expect("batched read failed"),
            BatchResult::Write(_) => panic!("batch slot holds a write result"),
        }
    }

    /// The written byte count; panics on a read result or an error.
    pub fn into_write(self) -> usize {
        match self {
            BatchResult::Write(r) => r.expect("batched write failed"),
            BatchResult::Read(_) => panic!("batch slot holds a read result"),
        }
    }
}

/// A builder that submits N file operations and waits for all of them,
/// keeping the whole set in flight so the proxy sees real queue depth.
///
/// Operations between barriers are independent and may complete in any
/// order; [`Batch::barrier`] marks the *next* operation so the proxy
/// finishes everything already drained before starting it. When the ring,
/// credit window, or buffer space fills mid-submission, the builder
/// harvests its oldest in-flight operation and retries — depth degrades
/// gracefully instead of deadlocking.
pub struct Batch<'a> {
    fs: &'a CoprocFs,
    ops: Vec<(BatchOp, bool)>,
    barrier_next: bool,
}

impl Batch<'_> {
    /// Queues a read of `len` bytes at `offset`.
    pub fn read(mut self, f: FileHandle, offset: u64, len: usize) -> Self {
        let barrier = std::mem::take(&mut self.barrier_next);
        self.ops.push((BatchOp::Read { f, offset, len }, barrier));
        self
    }

    /// Queues a write of `data` at `offset`.
    pub fn write(mut self, f: FileHandle, offset: u64, data: &[u8]) -> Self {
        let barrier = std::mem::take(&mut self.barrier_next);
        self.ops.push((
            BatchOp::Write {
                f,
                offset,
                data: data.to_vec(),
            },
            barrier,
        ));
        self
    }

    /// Marks the next queued operation as a barrier: the proxy completes
    /// every earlier operation it has drained before executing it.
    pub fn barrier(mut self) -> Self {
        self.barrier_next = true;
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Submits every queued operation and waits for all completions.
    /// Results are in queue order even though completions may arrive out
    /// of order.
    pub fn run(self) -> Vec<BatchResult> {
        let fs = self.fs;
        let mut results: Vec<Option<BatchResult>> = Vec::new();
        results.resize_with(self.ops.len(), || None);
        let mut inflight: Vec<(usize, PendingOp)> = Vec::new();

        let harvest = |slot: (usize, PendingOp), results: &mut Vec<Option<BatchResult>>| {
            let (idx, op) = slot;
            results[idx] = Some(match op {
                PendingOp::Read(p) => BatchResult::Read(p.wait(fs)),
                PendingOp::Write(p) => BatchResult::Write(p.wait(fs)),
            });
        };

        for (idx, (op, barrier)) in self.ops.into_iter().enumerate() {
            let flags = if barrier { FLAG_BARRIER } else { 0 };
            loop {
                let attempt = match &op {
                    BatchOp::Read { f, offset, len } => fs
                        .submit_read_flags(*f, *offset, *len, flags)
                        .map(PendingOp::Read),
                    BatchOp::Write { f, offset, data } => fs
                        .submit_write_flags(*f, *offset, data, flags)
                        .map(PendingOp::Write),
                };
                match attempt {
                    Ok(p) => {
                        inflight.push((idx, p));
                        break;
                    }
                    Err(RpcErr::WouldBlock | RpcErr::Overloaded | RpcErr::NoSpace)
                        if !inflight.is_empty() =>
                    {
                        // Free ring space / credits / window buffers by
                        // completing the oldest in-flight operation.
                        harvest(inflight.remove(0), &mut results);
                    }
                    Err(e) => {
                        results[idx] = Some(match op {
                            BatchOp::Read { .. } => BatchResult::Read(Err(e)),
                            BatchOp::Write { .. } => BatchResult::Write(Err(e)),
                        });
                        break;
                    }
                }
            }
        }
        for slot in inflight {
            harvest(slot, &mut results);
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot is filled"))
            .collect()
    }
}
