//! The data-plane file-system stub and application API (§4.3.1).
//!
//! The stub transforms each file-system call into exactly one RPC (the
//! paper's one-to-one mapping) and manages the zero-copy I/O buffers: it
//! carves them out of the co-processor's exported window, puts their
//! addresses into `Tread`/`Twrite`, and — because the buffers live in
//! *local* co-processor memory — the final copy between the window buffer
//! and the caller's slice is an ordinary local `memcpy`.

use std::sync::Arc;

use solros_machine::WindowAlloc;
use solros_nvme::BLOCK_SIZE;
use solros_pcie::window::{Window, WindowHandle};
use solros_pcie::Side;
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_proto::rpc_error::RpcErr;

use crate::transport::RpcClient;

/// A file handle on the data plane (an inode number under the hood).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHandle(pub u64);

/// File metadata as seen from the co-processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub ino: u64,
    /// Directory flag.
    pub is_dir: bool,
    /// Size in bytes.
    pub size: u64,
}

/// The co-processor file-system API.
pub struct CoprocFs {
    client: Arc<RpcClient>,
    window: Arc<Window>,
    alloc: Arc<WindowAlloc>,
}

impl CoprocFs {
    /// Builds the stub over an RPC client and the co-processor's exported
    /// window + allocator.
    pub fn new(client: Arc<RpcClient>, window: Arc<Window>, alloc: Arc<WindowAlloc>) -> Self {
        Self {
            client,
            window,
            alloc,
        }
    }

    fn local(&self) -> WindowHandle {
        self.window.map(Side::Coproc)
    }

    fn call(&self, req: FsRequest) -> FsResponse {
        let tag = self.client.tag();
        let reply = self.client.call(tag, req.encode(tag));
        match FsResponse::decode(&reply) {
            Ok((_, resp)) => resp,
            Err(_) => FsResponse::Error { err: RpcErr::Io },
        }
    }

    /// Creates a file.
    pub fn create(&self, path: &str) -> Result<FileHandle, RpcErr> {
        match self.call(FsRequest::Create { path: path.into() }) {
            FsResponse::Create { ino } => Ok(FileHandle(ino)),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Opens a file; `create`/`truncate`/`buffered` mirror the proxy
    /// flags (`buffered` is the paper's `O_BUFFER`).
    pub fn open(
        &self,
        path: &str,
        create: bool,
        truncate: bool,
        buffered: bool,
    ) -> Result<(FileHandle, u64), RpcErr> {
        match self.call(FsRequest::Open {
            path: path.into(),
            create,
            truncate,
            buffered,
        }) {
            FsResponse::Open { ino, size } => Ok((FileHandle(ino), size)),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Reads into `buf` at `offset`; returns bytes read (short at EOF).
    pub fn read_at(&self, f: FileHandle, offset: u64, buf: &mut [u8]) -> Result<usize, RpcErr> {
        if buf.is_empty() {
            return Ok(0);
        }
        // Round up so a block-granular P2P transfer cannot overrun.
        let alloc_len = buf.len().div_ceil(BLOCK_SIZE) * BLOCK_SIZE + BLOCK_SIZE;
        let off = self.alloc.alloc(alloc_len).ok_or(RpcErr::NoSpace)?;
        let resp = self.call(FsRequest::Read {
            ino: f.0,
            offset,
            count: buf.len() as u64,
            buf_addr: off as u64,
        });
        let result = match resp {
            FsResponse::Read { count } => {
                let n = (count as usize).min(buf.len());
                // Local copy out of the window buffer (free on real HW).
                // SAFETY: the window range was exclusively allocated to
                // this call and the proxy has completed its transfer.
                unsafe { self.local().read(off, &mut buf[..n]) };
                Ok(n)
            }
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        };
        self.alloc.free(off, alloc_len);
        result
    }

    /// Convenience: read `len` bytes at `offset` into a vector.
    pub fn read_to_vec(&self, f: FileHandle, offset: u64, len: usize) -> Result<Vec<u8>, RpcErr> {
        let mut v = vec![0u8; len];
        let n = self.read_at(f, offset, &mut v)?;
        v.truncate(n);
        Ok(v)
    }

    /// Writes `data` at `offset`; returns bytes written.
    pub fn write_at(&self, f: FileHandle, offset: u64, data: &[u8]) -> Result<usize, RpcErr> {
        if data.is_empty() {
            return Ok(0);
        }
        let alloc_len = data.len().div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
        let off = self.alloc.alloc(alloc_len).ok_or(RpcErr::NoSpace)?;
        // Zero the padding tail so a block-granular P2P write lands zeroes
        // beyond the payload, then stage the payload (both local copies).
        // SAFETY: exclusively allocated range.
        unsafe {
            if alloc_len > data.len() {
                self.local()
                    .write(off + data.len(), &vec![0u8; alloc_len - data.len()]);
            }
            self.local().write(off, data);
        }
        let resp = self.call(FsRequest::Write {
            ino: f.0,
            offset,
            count: data.len() as u64,
            buf_addr: off as u64,
        });
        let result = match resp {
            FsResponse::Write { count } => Ok(count as usize),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        };
        self.alloc.free(off, alloc_len);
        result
    }

    /// Stats a path.
    pub fn stat(&self, path: &str) -> Result<FileStat, RpcErr> {
        match self.call(FsRequest::Stat { path: path.into() }) {
            FsResponse::Stat { ino, is_dir, size } => Ok(FileStat { ino, is_dir, size }),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Stats an open handle.
    pub fn fstat(&self, f: FileHandle) -> Result<FileStat, RpcErr> {
        match self.call(FsRequest::Fstat { ino: f.0 }) {
            FsResponse::Stat { ino, is_dir, size } => Ok(FileStat { ino, is_dir, size }),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Removes a file or empty directory.
    pub fn unlink(&self, path: &str) -> Result<(), RpcErr> {
        match self.call(FsRequest::Unlink { path: path.into() }) {
            FsResponse::Ok => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Creates a directory.
    pub fn mkdir(&self, path: &str) -> Result<(), RpcErr> {
        match self.call(FsRequest::Mkdir { path: path.into() }) {
            FsResponse::Mkdir { .. } => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Lists a directory.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, RpcErr> {
        match self.call(FsRequest::Readdir { path: path.into() }) {
            FsResponse::Readdir { names } => Ok(names),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Renames.
    pub fn rename(&self, from: &str, to: &str) -> Result<(), RpcErr> {
        match self.call(FsRequest::Rename {
            from: from.into(),
            to: to.into(),
        }) {
            FsResponse::Ok => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Truncates to `size`.
    pub fn truncate(&self, f: FileHandle, size: u64) -> Result<(), RpcErr> {
        match self.call(FsRequest::Truncate { ino: f.0, size }) {
            FsResponse::Ok => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }

    /// Flushes metadata.
    pub fn fsync(&self, f: FileHandle) -> Result<(), RpcErr> {
        match self.call(FsRequest::Fsync { ino: f.0 }) {
            FsResponse::Ok => Ok(()),
            FsResponse::Error { err } => Err(err),
            _ => Err(RpcErr::Io),
        }
    }
}
