//! Domain failover: the shard supervisor.
//!
//! One supervisor watches every per-NUMA TCP engine shard through its
//! [`ShardHealth`] cell. Each engine cycle bumps the cell's heartbeat;
//! the supervisor samples on a fixed tick and declares a shard dead on
//! either signal:
//!
//! * **crash** — the serve loop exited abruptly and flagged itself down
//!   ([`ShardHealth::is_down`]), or
//! * **wedge** — the heartbeat froze for [`WEDGE_TICKS`] consecutive
//!   ticks while the loop still spins (detection by stall, the only
//!   evidence a wedge leaves).
//!
//! Failover is a fixed sequence whose order carries the exactly-once
//! guarantee (every admitted tag resolves exactly once, no credit or
//! tenant charge leaks):
//!
//! 1. **Fence** the cell and join the shard thread. A wedged loop exits
//!    on seeing the fence; a live-but-suspected loop complies at its
//!    next cycle boundary with a complete wreck (forcible fence), so a
//!    false positive costs churn, never correctness. After the join, no
//!    further appends from the dead shard can race the scrub.
//! 2. **Publish the wreck** verbatim on the very response rings the
//!    shard served: already-computed replies first-class, one `Gone`
//!    per admitted-but-unserved tag. Tags queued in the request rings
//!    but never admitted are *left in place* — the replacement serves
//!    them — so nothing is answered twice and nothing is lost.
//! 3. **Scrub**: close every connection the dead shard owned, refuse
//!    the handoffs parked in its inbox, retire its log cursor so the
//!    corpse neither pins compaction nor counts as a laggard.
//! 4. **Re-steer** through the control log: one `ShardFenced` append
//!    strips the dead shard's listeners, re-homes its ports to an heir,
//!    and releases its balancer charges — applied exactly once by every
//!    surviving replica at one log position.
//! 5. **Reclaim leases** anchored on the dead shard's co-processors
//!    (force-recall; holders fall back to the RPC path) and append
//!    tenant-ledger refunds for the wreck's never-served admissions.
//! 6. **Replace**: spawn a fresh shard over the same rings, its replica
//!    seeded from the observer snapshot under live traffic
//!    ([`TcpProxy::rebuild_from_observer`]), its sock-id stride resumed
//!    past the dead incarnation's allocations, its rejoin appended
//!    before the seed so it never sees itself fenced.
//!
//! The blackout window — fence to replacement serving — is bounded by
//! detection (≤ `WEDGE_TICKS`·tick for a wedge, ≤ 1 tick for a crash)
//! plus the scrub, which is O(connections owned by the dead shard).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use solros_faults::{EngineFaults, RecoveryReport};
use solros_lease::LeaseManager;
use solros_netdev::Network;
use solros_qos::{HostScheduler, QosConfig, TenantLedger};

use crate::proxy_engine::ShardHealth;
use crate::tcp_proxy::{LoadBalancer, NetChannelHost, TcpControl, TcpProxy, TcpProxyStats};

/// Supervisor sampling period.
pub const TICK: Duration = Duration::from_millis(2);

/// Consecutive ticks a heartbeat may stand still before the shard is
/// declared wedged. Generous relative to an engine cycle (sub-µs) so a
/// descheduled-but-healthy shard is unlikely to be suspected; if it is,
/// the forcible fence keeps the failover correct anyway.
pub const WEDGE_TICKS: u32 = 8;

/// Everything the supervisor needs to watch, kill, and resurrect one
/// engine shard.
struct ShardSlot {
    proxy: Arc<TcpProxy>,
    health: Arc<ShardHealth>,
    handle: Option<JoinHandle<()>>,
    stats: Arc<TcpProxyStats>,
    /// Global co-processor ids this slot serves (lease anchors).
    coprocs: Vec<usize>,
    /// Ring endpoints to hand a replacement (shared handles).
    channels: Vec<NetChannelHost>,
    /// Heartbeat sampled at the previous tick.
    last_beats: u64,
    /// Ticks the heartbeat has stood still.
    stalled_ticks: u32,
}

/// Health-checks every engine shard and fails crashed/wedged ones over
/// to replacements rebuilt from the control log (see module docs).
pub struct ShardSupervisor {
    network: Arc<Network>,
    control: Arc<TcpControl>,
    lease_mgr: Arc<LeaseManager>,
    tenant_ledger: Arc<TenantLedger>,
    qos: QosConfig,
    /// Host-global QoS hierarchy replacement shards re-register under.
    host_qos: Arc<HostScheduler>,
    /// Prototype the replacement shards' balancer replicas fork from.
    lb_proto: Box<dyn LoadBalancer>,
    shutdown: Arc<AtomicBool>,
    slots: Mutex<Vec<ShardSlot>>,
    /// Accumulated failover bookkeeping (merged into [`Self::report`]).
    tally: Mutex<RecoveryReport>,
}

impl ShardSupervisor {
    /// A supervisor over no shards yet; [`ShardSupervisor::adopt`] each
    /// spawned shard during boot.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        network: Arc<Network>,
        control: Arc<TcpControl>,
        lease_mgr: Arc<LeaseManager>,
        tenant_ledger: Arc<TenantLedger>,
        qos: QosConfig,
        host_qos: Arc<HostScheduler>,
        lb_proto: Box<dyn LoadBalancer>,
        shutdown: Arc<AtomicBool>,
    ) -> Self {
        Self {
            network,
            control,
            lease_mgr,
            tenant_ledger,
            qos,
            host_qos,
            lb_proto,
            shutdown,
            slots: Mutex::new(Vec::new()),
            tally: Mutex::new(RecoveryReport::default()),
        }
    }

    /// Forks a fresh balancer replica from the boot prototype (used for
    /// the initial shards as well as replacements, so every incarnation
    /// descends from the same policy).
    pub(crate) fn fork_lb(&self) -> Box<dyn LoadBalancer> {
        self.lb_proto.fork()
    }

    /// Registers a booted shard (slot index == domain id == shard id).
    pub(crate) fn adopt(
        &self,
        proxy: Arc<TcpProxy>,
        health: Arc<ShardHealth>,
        handle: JoinHandle<()>,
        stats: Arc<TcpProxyStats>,
        channels: Vec<NetChannelHost>,
    ) {
        let coprocs = proxy.served_coprocs().to_vec();
        self.slots.lock().push(ShardSlot {
            proxy,
            health,
            handle: Some(handle),
            stats,
            coprocs,
            channels,
            last_beats: 0,
            stalled_ticks: 0,
        });
    }

    /// One health-check pass over every shard: crash detection by the
    /// down flag, wedge detection by heartbeat stall. Runs on the
    /// supervisor thread every [`TICK`]; tests may call it directly to
    /// drive detection deterministically.
    pub fn tick(&self) {
        let mut slots = self.slots.lock();
        for d in 0..slots.len() {
            let slot = &mut slots[d];
            if slot.handle.is_none() {
                continue;
            }
            if slot.health.is_down() {
                self.fail_over(d, slot);
                continue;
            }
            let beats = slot.health.beats();
            if beats == slot.last_beats {
                slot.stalled_ticks += 1;
                if slot.stalled_ticks >= WEDGE_TICKS {
                    self.fail_over(d, slot);
                }
            } else {
                slot.last_beats = beats;
                slot.stalled_ticks = 0;
            }
        }
    }

    /// The full failover sequence for shard `d` (see module docs for why
    /// the order is load-bearing). On return the slot holds a live
    /// replacement serving the same rings.
    fn fail_over(&self, d: usize, slot: &mut ShardSlot) {
        let t0 = Instant::now();
        // 1. Fence and join: after this, the dead shard appends nothing.
        slot.health.fence();
        if let Some(handle) = slot.handle.take() {
            let _ = handle.join();
        }
        let wreck = slot.health.take_wreck().unwrap_or_default();

        // 2. Publish the wreck on the shard's own response rings.
        let lanes = slot.proxy.lane_endpoints();
        for (lane, frame) in wreck.replies {
            if let Some((_, resp_tx)) = lanes.get(lane) {
                if frame.len() <= resp_tx.max_element() {
                    let _ = resp_tx.send_blocking(&frame);
                }
            }
        }

        // 3. Scrub the corpse: close its connections, refuse its parked
        //    handoffs, retire its cursor. The sock-id stride resumes in
        //    the replacement so no id is ever reused.
        let next_sock = slot.proxy.scrub_after_fence();
        self.control.drain_dead_inbox(d, &self.network);

        // 4. Re-steer listeners through the log, exactly once per
        //    replica. The heir is the next slot cyclically; with no
        //    other shard the scrub already released the NIC listeners.
        let nshards = self.control.shards();
        let heir = if nshards > 1 { (d + 1) % nshards } else { d };
        self.control.append_fence(d, heir);

        // 5. Reclaim leases anchored on the dead domain's co-processors
        //    and refund the wreck's never-served admission charges.
        for &c in &slot.coprocs {
            let _ = self.lease_mgr.revoke_coproc(c as u8);
        }
        for (tenant, ops, bytes) in wreck.refunds {
            self.tenant_ledger.refund(tenant, ops, bytes);
        }

        // 6. Replacement: same rings, fresh replica seeded from the
        //    observer snapshot. Rejoin is appended *before* the seed so
        //    the replacement never observes itself fenced.
        let (mut repl, stats) = TcpProxy::shard(
            Arc::clone(&self.network),
            Arc::clone(&self.control),
            d,
            slot.coprocs.clone(),
            slot.channels.clone(),
            self.lb_proto.fork(),
        );
        repl.set_tenant_ledger(Arc::clone(&self.tenant_ledger));
        if self.qos.enabled {
            let _ = repl.enable_qos(&self.qos, &self.host_qos);
        }
        let health = Arc::new(ShardHealth::new());
        repl.set_health(Arc::clone(&health));
        let repl = Arc::new(repl);
        self.control.append_rejoin(d);
        repl.rebuild_from_observer();
        repl.set_next_sock(next_sock);
        let sd = Arc::clone(&self.shutdown);
        let runner = Arc::clone(&repl);
        let handle = std::thread::Builder::new()
            .name(format!("solros-tcp-proxy-{d}"))
            .spawn(move || runner.run_shared(sd))
            .expect("spawn replacement shard");

        slot.proxy = repl;
        slot.health = health;
        slot.handle = Some(handle);
        slot.stats = stats;
        slot.last_beats = 0;
        slot.stalled_ticks = 0;

        let mut tally = self.tally.lock();
        tally.domains_failed_over += 1;
        tally.blackout_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Runs the sampling loop until shutdown (the supervisor thread).
    pub(crate) fn watch(&self) {
        while !self.shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(TICK);
            self.tick();
        }
    }

    /// Joins every shard thread (shutdown path; the flag must already be
    /// set so wedge-held loops exit).
    pub(crate) fn join_all(&self) {
        let mut slots = self.slots.lock();
        for slot in slots.iter_mut() {
            if let Some(handle) = slot.handle.take() {
                let _ = handle.join();
            }
        }
    }

    /// Number of supervised shards.
    pub fn shards(&self) -> usize {
        self.slots.lock().len()
    }

    /// Engine fault hooks of shard `d`'s *current* incarnation (arming
    /// point for [`solros_faults::FaultKind::DomainCrash`] /
    /// [`solros_faults::FaultKind::DomainWedge`] /
    /// [`solros_faults::FaultKind::OplogReplicaLag`]).
    pub fn shard_faults(&self, d: usize) -> Arc<EngineFaults> {
        self.slots.lock()[d].proxy.faults()
    }

    /// Statistics handle of shard `d`'s current incarnation (the boot
    /// handle goes stale after a failover).
    pub fn shard_stats(&self, d: usize) -> Arc<TcpProxyStats> {
        Arc::clone(&self.slots.lock()[d].stats)
    }

    /// Control-replica fingerprint of every live shard, each synced to
    /// the log tail first. Convergence (all equal) is the replicated
    /// control plane's correctness gate after a failover storm.
    pub fn replica_fingerprints(&self) -> Vec<u64> {
        self.slots
            .lock()
            .iter()
            .filter(|s| s.handle.is_some() && s.health.is_live())
            .map(|s| s.proxy.replica_fingerprint())
            .collect()
    }

    /// Failovers completed so far.
    pub fn failovers(&self) -> u64 {
        self.tally.lock().domains_failed_over
    }

    /// The supervisor's accumulated recovery bookkeeping, merged with
    /// the control plane's counters: overrun rebuilds, reply-wave
    /// resubmits across every lane, and dropped TCP events.
    pub fn report(&self) -> RecoveryReport {
        let mut r = *self.tally.lock();
        r.oplog_overruns_recovered = self.control.overruns_recovered();
        r.event_drops = self.control.event_drops();
        let slots = self.slots.lock();
        r.reply_wave_resubmits = slots
            .iter()
            .flat_map(|s| s.channels.iter())
            .map(|ch| ch.resp_tx.wave_resubmits())
            .sum();
        r
    }
}
