//! Wire-compatibility regression: replies produced through the shared
//! proxy engine must be byte-identical to the pre-engine proxies for the
//! default tenant. The expected frames are built by hand from the wire
//! layout — `[u32 body_len LE][u8 msg_type][u32 tag LE][u8 credit]
//! [u8 flags][u8 tenant][body]` — never through the codec, so a codec or
//! engine change that moves a byte fails here even if encode/decode stay
//! mutually consistent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use solros::fs_proxy::{FsProxy, FsProxyStats};
use solros::tcp_proxy::{NetChannelHost, TcpProxy};
use solros::transport::{event_ring, Channel, RpcClient};
use solros::RoundRobin;
use solros_fs::FileSystem;
use solros_nvme::NvmeDevice;
use solros_pcie::window::Window;
use solros_pcie::{PcieCounters, Side};
use solros_proto::fs_msg::FsRequest;
use solros_proto::net_msg::NetRequest;
use solros_qos::{FlowSpec, HostConfig, HostGate, HostScheduler, QosClass, Service};

// Reply type discriminators, restated from the wire spec (not imported:
// the point is to catch the constants drifting).
const R_WRITE: u8 = 113;
const R_STAT: u8 = 114;
const R_OK: u8 = 120;
const R_LEASE: u8 = 121;
const R_ERROR: u8 = 127;
const R_SOCKET: u8 = 140;
const R_SENT: u8 = 145;
const R_NOK: u8 = 150;
const R_NERROR: u8 = 157;
const ERR_NOT_FOUND: u32 = 1;
const ERR_INVALID: u32 = 8;

/// Accepts the pending fabric connection on `port`, reporting which
/// listener died instead of unwrapping blind.
fn accept_on(network: &solros_netdev::Network, port: u16) -> (solros_netdev::ConnId, u64) {
    match network.poll_accept(port) {
        Ok(Some(pending)) => pending,
        Ok(None) => panic!("accept on port {port}: connect never reached the listener"),
        Err(e) => panic!("accept on port {port} failed: {e:?}"),
    }
}

/// Hand-builds one reply frame from the wire layout.
fn golden(msg_type: u8, tag: u32, credit: u8, body: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(12 + body.len());
    f.extend_from_slice(&(body.len() as u32).to_le_bytes());
    f.push(msg_type);
    f.extend_from_slice(&tag.to_le_bytes());
    f.push(credit);
    f.push(0); // flags: replies never carry submission flags
    f.push(0); // tenant: default tenant echoes as zero
    f.extend_from_slice(body);
    f
}

/// Hand-builds the `R_LEASE` body: id, generation, readable end, then a
/// `u32` extent count followed by `(start_lba u64, blocks u32)` pairs.
fn lease_grant_body(id: u64, generation: u64, data_end: u64, extents: &[(u64, u32)]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&id.to_le_bytes());
    b.extend_from_slice(&generation.to_le_bytes());
    b.extend_from_slice(&data_end.to_le_bytes());
    b.extend_from_slice(&(extents.len() as u32).to_le_bytes());
    for (start, blocks) in extents {
        b.extend_from_slice(&start.to_le_bytes());
        b.extend_from_slice(&blocks.to_le_bytes());
    }
    b
}

fn stat_body(ino: u64, size: u64) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&ino.to_le_bytes());
    b.push(0); // is_dir
    b.extend_from_slice(&size.to_le_bytes());
    b
}

struct FsRig {
    fs: Arc<FileSystem>,
    client: Arc<RpcClient>,
    shutdown: Arc<AtomicBool>,
    server: std::thread::JoinHandle<()>,
}

impl FsRig {
    fn stop(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.server.join().unwrap();
    }
}

/// Boots an FS proxy over a real channel; `gated` adds the default
/// three-class DWRR gate with 1024-deep queues.
fn fs_rig(gated: bool) -> FsRig {
    let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(8192), 256).unwrap());
    let window = Window::new(1 << 20, Side::Coproc, Arc::new(PcieCounters::new()));
    let proxy = FsProxy::new(
        Arc::clone(&fs),
        window,
        false,
        Arc::new(FsProxyStats::default()),
    );
    let ch = Channel::new(Arc::new(PcieCounters::new()));
    let client = RpcClient::new(ch.req_tx, ch.resp_rx);
    let shutdown = Arc::new(AtomicBool::new(false));
    let sd = Arc::clone(&shutdown);
    let server = std::thread::spawn(move || {
        if gated {
            let spec = |name: &str, class: QosClass| FlowSpec {
                name: name.into(),
                class,
                weight: 4,
                ops_per_sec: 0,
                bytes_per_sec: 0,
                burst_ops: 0,
                burst_bytes: 0,
                queue_cap: 1024,
                deadline_ns: 0,
                sheddable: false,
                tenant: 0,
            };
            let host = HostScheduler::new(HostConfig::default());
            let gate = HostGate::new(
                vec![
                    spec("wc/high", QosClass::High),
                    spec("wc/normal", QosClass::Normal),
                    spec("wc/best", QosClass::BestEffort),
                ],
                4096,
                usize::MAX,
                &host,
                Service::Fs,
                0,
            );
            proxy.serve_qos(ch.req_rx, ch.resp_tx, sd, gate);
        } else {
            proxy.serve(ch.req_rx, ch.resp_tx, sd);
        }
    });
    FsRig {
        fs,
        client,
        shutdown,
        server,
    }
}

#[test]
fn fs_ungated_replies_match_golden_frames() {
    let rig = fs_rig(false);
    let ino = rig.fs.create("/f").unwrap();
    rig.fs.write(ino, 0, &[7u8; 5]).unwrap();

    // Fstat: R_STAT with ino/is_dir/size, zero credit on the FIFO path.
    let reply = rig.client.call(7, FsRequest::Fstat { ino }.encode(7));
    assert_eq!(reply, golden(R_STAT, 7, 0, &stat_body(ino, 5)));

    // Write: R_WRITE echoing the byte count.
    let reply = rig.client.call(
        8,
        FsRequest::Write {
            ino,
            offset: 0,
            count: 4096,
            buf_addr: 0,
        }
        .encode(8),
    );
    assert_eq!(reply, golden(R_WRITE, 8, 0, &4096u64.to_le_bytes()));

    // Fsync: bare R_OK, empty body.
    let reply = rig.client.call(9, FsRequest::Fsync { ino }.encode(9));
    assert_eq!(reply, golden(R_OK, 9, 0, &[]));

    // Missing path: R_ERROR carrying the NotFound code.
    let reply = rig.client.call(
        10,
        FsRequest::Stat {
            path: "/missing".into(),
        }
        .encode(10),
    );
    assert_eq!(reply, golden(R_ERROR, 10, 0, &ERR_NOT_FOUND.to_le_bytes()));
    rig.stop();
}

#[test]
fn fs_lease_replies_match_golden_frames() {
    let rig = fs_rig(false);
    let bs = solros_nvme::BLOCK_SIZE as u64;
    let ino = rig.fs.create("/hot").unwrap();
    rig.fs.write(ino, 0, &vec![9u8; 2 * bs as usize]).unwrap();
    // The extent map comes from the fs (like `ino` above); the frame
    // bytes around it are still built by hand from the wire layout.
    let extents: Vec<(u64, u32)> = rig
        .fs
        .fiemap(ino, 0, 2 * bs)
        .unwrap()
        .iter()
        .map(|e| (e.start, e.len))
        .collect();

    // First grant from a fresh manager: lease id 0, generation 1, the
    // readable end at the two written blocks.
    let reply = rig.client.call(
        20,
        FsRequest::LeaseAcquire {
            ino,
            offset: 0,
            len: 2 * bs,
            write: false,
        }
        .encode(20),
    );
    assert_eq!(
        reply,
        golden(R_LEASE, 20, 0, &lease_grant_body(0, 1, 2 * bs, &extents))
    );

    // Voluntary release: bare R_OK, empty body.
    let reply = rig.client.call(
        21,
        FsRequest::LeaseRelease {
            id: 0,
            written_end: 0,
        }
        .encode(21),
    );
    assert_eq!(reply, golden(R_OK, 21, 0, &[]));

    // Recall ack for an already-settled lease is idempotent R_OK.
    let reply = rig.client.call(
        22,
        FsRequest::LeaseRecallAck {
            id: 0,
            written_end: 0,
        }
        .encode(22),
    );
    assert_eq!(reply, golden(R_OK, 22, 0, &[]));

    // Misaligned acquire: R_ERROR carrying the Invalid code.
    let reply = rig.client.call(
        23,
        FsRequest::LeaseAcquire {
            ino,
            offset: 1,
            len: bs,
            write: false,
        }
        .encode(23),
    );
    assert_eq!(reply, golden(R_ERROR, 23, 0, &ERR_INVALID.to_le_bytes()));
    rig.stop();
}

#[test]
fn fs_gated_replies_match_golden_frames_with_credit() {
    let rig = fs_rig(true);
    let ino = rig.fs.create("/f").unwrap();
    rig.fs.write(ino, 0, &[7u8; 3]).unwrap();

    // One paced request at a time leaves its queue empty at dispatch, so
    // every reply advertises the full (clamped) credit window of 255.
    let reply = rig.client.call(11, FsRequest::Fstat { ino }.encode(11));
    assert_eq!(reply, golden(R_STAT, 11, 255, &stat_body(ino, 3)));

    let reply = rig.client.call(
        12,
        FsRequest::Write {
            ino,
            offset: 0,
            count: 4096,
            buf_addr: 0,
        }
        .encode(12),
    );
    assert_eq!(reply, golden(R_WRITE, 12, 255, &4096u64.to_le_bytes()));
    rig.stop();
}

#[test]
fn tcp_replies_match_golden_frames() {
    let network = solros_netdev::Network::new();
    let counters = Arc::new(PcieCounters::new());
    let ch = Channel::new(Arc::clone(&counters));
    let (evt_tx, _evt_rx) = event_ring(counters);
    let client = RpcClient::new(ch.req_tx, ch.resp_rx);
    let (proxy, _stats) = TcpProxy::new(
        network,
        vec![NetChannelHost {
            req_rx: ch.req_rx,
            resp_tx: ch.resp_tx,
            evt_tx,
        }],
        Box::new(RoundRobin::default()),
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    let sd = Arc::clone(&shutdown);
    let server = std::thread::spawn(move || proxy.run(sd));

    // First socket id is 1 by construction: R_SOCKET body is the u64 id.
    let reply = client.call(1, NetRequest::Socket.encode(1));
    assert_eq!(reply, golden(R_SOCKET, 1, 0, &1u64.to_le_bytes()));

    // Bind: bare R_NOK.
    let reply = client.call(2, NetRequest::Bind { sock: 1, port: 80 }.encode(2));
    assert_eq!(reply, golden(R_NOK, 2, 0, &[]));

    // Unknown socket: R_NERROR carrying the NotFound code.
    let reply = client.call(3, NetRequest::Close { sock: 9999 }.encode(3));
    assert_eq!(reply, golden(R_NERROR, 3, 0, &ERR_NOT_FOUND.to_le_bytes()));

    shutdown.store(true, Ordering::Relaxed);
    server.join().unwrap();
}

/// A coalesced reply wave is a transport optimization, not a wire
/// change: small `Send`s that merge into one backend write and settle
/// through one batched reply enqueue must still produce, per part, the
/// exact bytes the unbatched path produced — `R_SENT` with the part's
/// own tag and its own count.
#[test]
fn coalesced_send_wave_replies_match_golden_frames() {
    let network = solros_netdev::Network::new();
    let counters = Arc::new(PcieCounters::new());
    let ch = Channel::new(Arc::clone(&counters));
    let (evt_tx, _evt_rx) = event_ring(counters);
    let client = RpcClient::new(ch.req_tx, ch.resp_rx);
    let (proxy, _stats) = TcpProxy::new(
        Arc::clone(&network),
        vec![NetChannelHost {
            req_rx: ch.req_rx,
            resp_tx: ch.resp_tx,
            evt_tx,
        }],
        Box::new(RoundRobin::default()),
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    let sd = Arc::clone(&shutdown);
    let server = std::thread::spawn(move || proxy.run(sd));

    // An external server on the fabric; the stub connects out.
    network.listen(6000, 16).unwrap();
    let reply = client.call(1, NetRequest::Socket.encode(1));
    assert_eq!(reply, golden(R_SOCKET, 1, 0, &1u64.to_le_bytes()));
    let reply = client.call(
        2,
        NetRequest::Connect {
            sock: 1,
            addr: 9,
            port: 6000,
        }
        .encode(2),
    );
    assert_eq!(reply, golden(R_NOK, 2, 0, &[]));
    let (conn, _) = accept_on(&network, 6000);

    // Pipeline a wave of small sends of distinct sizes so each golden
    // count differs; the proxy coalesces them into one backend write and
    // one settlement wave.
    let sizes = [5usize, 64, 7, 256, 1];
    let tokens: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let tag = 10 + i as u32;
            client
                .submit(
                    tag,
                    NetRequest::Send {
                        sock: 1,
                        data: vec![i as u8; n],
                    }
                    .encode(tag),
                )
                .unwrap()
        })
        .collect();
    for (i, token) in tokens.into_iter().enumerate() {
        let reply = client.wait(token);
        assert_eq!(
            reply,
            golden(R_SENT, 10 + i as u32, 0, &(sizes[i] as u64).to_le_bytes()),
            "part {i} drifted from the unbatched wire bytes"
        );
    }

    // The fabric stream carries the concatenation in program order.
    let total: usize = sizes.iter().sum();
    let mut stream = Vec::new();
    while stream.len() < total {
        let data = network
            .recv(conn, solros_netdev::EndKind::Server, 1 << 16)
            .unwrap();
        assert!(!data.is_empty(), "stream ended short");
        stream.extend_from_slice(&data);
    }
    let mut want = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        want.extend(std::iter::repeat_n(i as u8, n));
    }
    assert_eq!(stream, want, "coalescing reordered or corrupted payload");

    shutdown.store(true, Ordering::Relaxed);
    server.join().unwrap();
}
