//! Property-based tests for the sharded control plane's replication
//! contract: every replica of an operation log applies every entry
//! exactly once and in order, regardless of how appends from concurrent
//! mutators interleave with syncs — so balancer connection counts never
//! go negative and tenant-ledger charges are never double-counted.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use proptest::collection::vec;
use proptest::prelude::*;
use solros::balancer::{ConnMeta, LeastLoaded, LoadBalancer};
use solros_oplog::{LogConfig, OpLog, SyncOutcome};
use solros_qos::TenantLedger;

/// A replica's materialized view for the generic convergence property:
/// the full per-mutator sequence of values it applied, in apply order.
type View = HashMap<u8, Vec<u32>>;

fn apply(view: &mut View, op: &(u8, u32)) {
    view.entry(op.0).or_default().push(op.1);
}

/// Exactly-once, in-order delivery: after all mutators finish, every
/// replica — whether it synced live alongside the appends or only once
/// at the end — holds each mutator's full sequence in order, with no
/// entry missing, duplicated, or reordered. Compaction runs throughout
/// (small high-water), so this also proves trimming never outruns a
/// registered cursor.
fn run_convergence(streams: Vec<Vec<u32>>) {
    let log: Arc<OpLog<(u8, u32)>> = OpLog::new(LogConfig {
        high_water: 32,
        max_lag: u64::MAX,
    });
    let mut live = log.register();
    let mut lazy = log.register();
    let mut live_view = View::new();

    thread::scope(|s| {
        for (id, stream) in streams.iter().enumerate() {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for &v in stream {
                    log.append((id as u8, v));
                }
            });
        }
        // The live replica races the mutators; interleaved partial syncs
        // must still observe each stream as a prefix in order.
        for _ in 0..64 {
            let outcome = log.sync(&mut live, |_, op| apply(&mut live_view, op));
            assert!(!matches!(outcome, SyncOutcome::Overrun));
            for (id, seen) in &live_view {
                let want = &streams[*id as usize];
                assert!(
                    seen.len() <= want.len() && seen[..] == want[..seen.len()],
                    "mid-run view is not an in-order prefix"
                );
            }
            thread::yield_now();
        }
    });

    log.sync(&mut live, |_, op| apply(&mut live_view, op));
    let mut lazy_view = View::new();
    log.sync(&mut lazy, |_, op| apply(&mut lazy_view, op));

    let want: View = streams
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(id, s)| (id as u8, s.clone()))
        .collect();
    assert_eq!(live_view, want, "live replica diverged");
    assert_eq!(lazy_view, want, "lazy replica diverged");
    assert_eq!(log.lag(&live), 0);
    assert_eq!(log.lag(&lazy), 0);
}

/// A lag-bounded log overruns a straggler instead of retaining unbounded
/// history; after the straggler reinstalls at the tail, later entries
/// apply exactly once.
fn run_overrun_recovery(burst: u32, max_lag: u64) {
    let log: Arc<OpLog<u32>> = OpLog::new(LogConfig {
        high_water: 8,
        max_lag,
    });
    let mut fresh = log.register();
    let mut straggler = log.register();
    // Sync the straggler once so compaction can proceed past it, then
    // let it fall behind a full burst.
    log.sync(&mut straggler, |_, _| {});
    let mut fresh_sum: u64 = 0;
    for v in 0..burst {
        log.append(v);
        log.sync(&mut fresh, |_, &op| fresh_sum += u64::from(op));
    }
    assert_eq!(fresh_sum, (0..u64::from(burst)).sum::<u64>());

    let outcome = log.sync(&mut straggler, |_, _| {});
    if matches!(outcome, SyncOutcome::Overrun) {
        // The straggler lost history it can no longer read; a real
        // replica rebuilds from an authoritative snapshot and resumes.
        log.install_snapshot(&mut straggler, log.tail());
    }
    let mut tail_seen = Vec::new();
    log.append(7_000_000);
    log.append(7_000_001);
    log.sync(&mut straggler, |_, &op| tail_seen.push(op));
    assert_eq!(
        tail_seen,
        vec![7_000_000, 7_000_001],
        "post-recovery entries must apply exactly once"
    );
}

/// Balancer ops as they ride the TCP control log.
#[derive(Debug, Clone, Copy)]
enum LbOp {
    Assign(usize),
    Close(usize),
}

/// Replays a valid assign/close workload (every close matches a prior
/// assign, as the TCP proxy guarantees: `ConnClosed` is only appended
/// for a sock that was accepted) through two forked LeastLoaded
/// replicas via a shared log. Counts must never go negative on either
/// replica, the negative-excursion tripwire must stay zero, and both
/// replicas converge to assigned-minus-closed.
fn run_balancer_replay(interleave: Vec<(u8, bool)>, slots: usize) {
    // Turn the generated schedule into a valid op stream: `bool` picks
    // assign vs close; closes with nothing open become assigns.
    let mut open: Vec<usize> = Vec::new();
    let mut ops: Vec<LbOp> = Vec::new();
    let mut expected = vec![0i64; slots];
    for (slot_seed, close) in interleave {
        let slot = slot_seed as usize % slots;
        if close && !open.is_empty() {
            let victim = open.swap_remove(slot_seed as usize % open.len());
            ops.push(LbOp::Close(victim));
            expected[victim] -= 1;
        } else {
            open.push(slot);
            ops.push(LbOp::Assign(slot));
            expected[slot] += 1;
        }
    }

    let log: Arc<OpLog<LbOp>> = OpLog::new(LogConfig {
        high_water: 16,
        max_lag: u64::MAX,
    });
    // `LoadBalancer::fork` hands each shard a clean replica; concrete
    // `LeastLoaded` values model the same thing while keeping the
    // inspection methods (`in_flight`, `negative_excursions`) reachable.
    let shards: Vec<LeastLoaded> = vec![LeastLoaded::default(), LeastLoaded::default()];
    let mut cursors: Vec<_> = (0..shards.len()).map(|_| log.register()).collect();

    for chunk in ops.chunks(3) {
        for &op in chunk {
            log.append(op);
        }
        // Shards sync at different cadences; each must stay non-negative
        // at every intermediate step because closes follow assigns in
        // log order.
        for (shard, cursor) in shards.iter().zip(cursors.iter_mut()) {
            log.sync(cursor, |_, op| match *op {
                LbOp::Assign(s) => shard.conn_assigned(s),
                LbOp::Close(s) => shard.conn_closed(s),
            });
        }
    }
    for (shard, cursor) in shards.iter().zip(cursors.iter_mut()) {
        log.sync(cursor, |_, op| match *op {
            LbOp::Assign(s) => shard.conn_assigned(s),
            LbOp::Close(s) => shard.conn_closed(s),
        });
    }

    for ll in &shards {
        assert_eq!(ll.negative_excursions(), 0, "count went negative");
        for (slot, &want) in expected.iter().enumerate() {
            assert!(want >= 0);
            assert_eq!(ll.in_flight(slot), want, "slot {slot} diverged");
        }
        // With identical replicated state, every replica makes the same
        // load-based decision: it must prefer a minimum-load slot.
        let pick = ll.pick(
            slots,
            &ConnMeta {
                client_addr: 1,
                port: 80,
            },
        );
        let min = (0..slots).map(|s| ll.in_flight(s)).min().unwrap();
        assert_eq!(ll.in_flight(pick), min, "picked a non-minimum slot");
    }
}

/// The tenant ledger never double-applies a charge: with mutator
/// threads charging concurrently and replicas syncing mid-storm, every
/// replica's totals equal the exact generated sums.
fn run_ledger_storm(charges: Vec<(u8, u8, u16)>, mutators: usize) {
    let ledger = TenantLedger::new();
    let observer = ledger.replica();
    let chunks: Vec<&[(u8, u8, u16)]> = charges.chunks(charges.len() / mutators + 1).collect();
    thread::scope(|s| {
        for chunk in &chunks {
            let ledger = Arc::clone(&ledger);
            s.spawn(move || {
                for &(tenant, ops, bytes) in *chunk {
                    ledger.charge(tenant % 4, u64::from(ops), u64::from(bytes));
                }
            });
        }
        // Observer races the mutators; partial sums only ever grow.
        let mut last = (0, 0);
        for _ in 0..32 {
            let now = observer.total();
            assert!(now.0 >= last.0 && now.1 >= last.1, "totals regressed");
            last = now;
            thread::yield_now();
        }
    });

    // The scope joined every mutator, so `late` registers at the final
    // tail and owns only future charges.
    let late = ledger.replica();
    let want_ops: u64 = charges.iter().map(|&(_, o, _)| u64::from(o)).sum();
    let want_bytes: u64 = charges.iter().map(|&(_, _, b)| u64::from(b)).sum();
    assert_eq!(observer.total(), (want_ops, want_bytes));
    assert_eq!(late.total(), (0, 0), "late replica starts at the tail");
    assert_eq!(observer.lag(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replicas_converge_under_concurrent_mutators(
        streams in vec(vec(any::<u32>(), 0..40), 1..4)
    ) {
        run_convergence(streams);
    }

    #[test]
    fn stragglers_recover_from_overrun_exactly_once(
        burst in 1u32..200,
        max_lag in 1u64..32,
    ) {
        run_overrun_recovery(burst, max_lag);
    }

    #[test]
    fn balancer_counts_never_negative_across_replicas(
        interleave in vec((any::<u8>(), any::<bool>()), 0..100),
        slots in 1usize..6,
    ) {
        run_balancer_replay(interleave, slots);
    }

    #[test]
    fn ledger_charges_apply_exactly_once_per_replica(
        charges in vec((any::<u8>(), any::<u8>(), any::<u16>()), 0..120),
        mutators in 1usize..4,
    ) {
        run_ledger_storm(charges, mutators);
    }
}
