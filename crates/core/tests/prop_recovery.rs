//! Property-based test for transport recovery: across arbitrary
//! interleavings of submissions, dropped tokens, stub service, response
//! poisoning, and link resets, every submitted token resolves (a real
//! reply or a synthesized error completion — never a hang), no
//! flow-control credit leaks, and no tag is ever reused before the
//! routing table is scrubbed.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use solros::transport::{Channel, RpcClient, Token};
use solros_pcie::counter::PcieCounters;
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_proto::rpc_error::RpcErr;
use solros_qos::CreditPool;

/// One step of a generated fault schedule, applied in order on a single
/// thread so the interleaving is exactly the generated sequence.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Submit one request and keep its token for settlement.
    Submit,
    /// Submit one request and drop the token immediately (abandon path).
    SubmitDrop,
    /// The stub serves up to `n` queued requests.
    Serve(u8),
    /// The stub's next published reply carries a poisoned header.
    Corrupt,
    /// Detect-and-recover: drain, scrub, reset, respawn the stub's
    /// endpoints from the re-initialized rings.
    Reset,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Submit),
        1 => Just(Op::SubmitDrop),
        3 => (1u8..6).prop_map(Op::Serve),
        1 => Just(Op::Corrupt),
        1 => Just(Op::Reset),
    ]
}

fn run_case(ops: Vec<Op>) {
    let counters = Arc::new(PcieCounters::new());
    let ch = Channel::new(counters);
    let pool = Arc::new(CreditPool::new(8));
    let client = RpcClient::with_link(
        ch.req_tx,
        ch.resp_rx,
        Some(Arc::clone(&pool)),
        Arc::clone(&ch.req_ring),
        Arc::clone(&ch.resp_ring),
    );
    client.set_error_encoder(|tag, err| FsResponse::Error { err }.encode(tag));

    // The stub runs inline: this test drives both ends of the link so
    // the fault interleaving is deterministic per generated case.
    let mut stub_rx = ch.req_rx;
    let mut stub_tx = ch.resp_tx;
    let mut live: Vec<Token> = Vec::new();
    let mut seen_tags: HashSet<u32> = HashSet::new();
    let mut ino = 0u64;

    for op in ops {
        match op {
            Op::Submit | Op::SubmitDrop => {
                let tag = client.tag();
                assert!(seen_tags.insert(tag), "tag {tag} reused before scrub");
                ino += 1;
                match client.submit(tag, FsRequest::Fstat { ino }.encode(tag)) {
                    Ok(token) => {
                        if matches!(op, Op::Submit) {
                            live.push(token);
                        }
                    }
                    // A full ring or closed credit window must surface as
                    // a transient, retryable refusal — fully scrubbed.
                    Err(e) => assert!(e.is_transient(), "unexpected submit error {e:?}"),
                }
            }
            Op::Serve(k) => {
                for _ in 0..k {
                    match stub_rx.recv() {
                        Ok(frame) => {
                            let (tag, _) = FsRequest::decode(&frame).unwrap();
                            // A full reply ring drops the reply — the
                            // settlement reset must still resolve its tag.
                            let _ = stub_tx.send(&FsResponse::Ok.encode(tag));
                        }
                        Err(_) => break,
                    }
                }
                client.drain_now();
            }
            Op::Corrupt => stub_tx.corrupt_next(1),
            Op::Reset => {
                let report = client.link_reset(RpcErr::Gone);
                assert!(report.ring_reset, "with_link resets must touch rings");
                // The old stub endpoints hold stale replicated state; a
                // respawned stub mints fresh ones from the rings.
                stub_rx = ch.req_ring.consumer();
                stub_tx = ch.resp_ring.producer();
            }
        }
    }

    // Settlement: serve what is still queued, then one final recovery
    // pass resolves whatever a poisoned or wedged link kept back.
    while let Ok(frame) = stub_rx.recv() {
        let (tag, _) = FsRequest::decode(&frame).unwrap();
        let _ = stub_tx.send(&FsResponse::Ok.encode(tag));
    }
    client.drain_now();
    let _ = client.link_reset(RpcErr::Gone);

    for token in live {
        let reply = client.wait(token);
        let (_, resp) = FsResponse::decode(&reply).expect("undecodable completion");
        match resp {
            FsResponse::Ok | FsResponse::Error { .. } => {}
            other => panic!("unexpected completion {other:?}"),
        }
    }
    assert_eq!(client.pending_len(), 0, "hung tags after recovery");
    assert_eq!(pool.levels().0, 0, "leaked credits after recovery");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_resolves_every_token(ops in vec(op_strategy(), 1..80)) {
        run_case(ops.clone());
    }
}

/// One generated request against the shared proxy engine: a valid FS or
/// TCP op, or a frame too short to carry a header (the malformed path).
#[derive(Debug, Clone)]
enum EngOp {
    Fstat(u64),
    Write(u16),
    BadFsFrame,
    Socket,
    NetClose(u64),
    BadNetFrame,
}

fn eng_op_strategy() -> impl Strategy<Value = EngOp> {
    prop_oneof![
        3 => (1u64..8).prop_map(EngOp::Fstat),
        3 => (1u16..4096).prop_map(EngOp::Write),
        1 => Just(EngOp::BadFsFrame),
        3 => Just(EngOp::Socket),
        2 => (1u64..8).prop_map(EngOp::NetClose),
        1 => Just(EngOp::BadNetFrame),
    ]
}

/// Liveness + accounting through the shared engine, for both proxies at
/// once: every submitted frame — valid or malformed — produces exactly
/// one decodable reply, and the engine's ledger (`rpcs` + `malformed`)
/// accounts for every arrival with nothing shed on the FIFO path.
fn run_engine_case(ops: Vec<EngOp>) {
    use solros::fs_proxy::{FsProxy, FsProxyStats};
    use solros::tcp_proxy::{NetChannelHost, TcpProxy};
    use solros::transport::event_ring;
    use solros::RoundRobin;
    use solros_fs::FileSystem;
    use solros_nvme::NvmeDevice;
    use solros_pcie::window::Window;
    use solros_pcie::Side;
    use solros_proto::net_msg::{NetRequest, NetResponse};

    let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(1024), 64).unwrap());
    let ino = fs.create("/f").unwrap();
    let window = Window::new(1 << 16, Side::Coproc, Arc::new(PcieCounters::new()));
    let fs_stats = Arc::new(FsProxyStats::default());
    let proxy = FsProxy::new(fs, window, false, Arc::clone(&fs_stats));
    let fs_ch = Channel::new(Arc::new(PcieCounters::new()));
    let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sd = Arc::clone(&shutdown);
    let fs_thread = std::thread::spawn(move || proxy.serve(fs_ch.req_rx, fs_ch.resp_tx, sd));

    let counters = Arc::new(PcieCounters::new());
    let net_ch = Channel::new(Arc::clone(&counters));
    let (evt_tx, _evt_rx) = event_ring(counters);
    let (tcp, tcp_stats) = TcpProxy::new(
        solros_netdev::Network::new(),
        vec![NetChannelHost {
            req_rx: net_ch.req_rx,
            resp_tx: net_ch.resp_tx,
            evt_tx,
        }],
        Box::new(RoundRobin::default()),
    );
    let sd = Arc::clone(&shutdown);
    let tcp_thread = std::thread::spawn(move || tcp.run(sd));

    let (mut fs_sent, mut fs_bad, mut net_sent, mut net_bad) = (0u64, 0u64, 0u64, 0u64);
    let mut tag = 0u32;
    for op in &ops {
        tag += 1;
        match op {
            EngOp::Fstat(delta) => {
                fs_sent += 1;
                let req = FsRequest::Fstat { ino: ino + delta }.encode(tag);
                fs_ch.req_tx.send_blocking(&req).unwrap();
            }
            EngOp::Write(count) => {
                fs_sent += 1;
                let req = FsRequest::Write {
                    ino,
                    offset: 0,
                    count: *count as u64,
                    buf_addr: 0,
                }
                .encode(tag);
                fs_ch.req_tx.send_blocking(&req).unwrap();
            }
            EngOp::BadFsFrame => {
                fs_bad += 1;
                fs_ch.req_tx.send_blocking(&[0xde, 0xad]).unwrap();
            }
            EngOp::Socket => {
                net_sent += 1;
                net_ch
                    .req_tx
                    .send_blocking(&NetRequest::Socket.encode(tag))
                    .unwrap();
            }
            EngOp::NetClose(sock) => {
                net_sent += 1;
                let req = NetRequest::Close { sock: *sock }.encode(tag);
                net_ch.req_tx.send_blocking(&req).unwrap();
            }
            EngOp::BadNetFrame => {
                net_bad += 1;
                net_ch.req_tx.send_blocking(&[0xbe]).unwrap();
            }
        }
    }

    // Every frame resolves to exactly one decodable reply — no hangs, no
    // drops, malformed included.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let (mut fs_got, mut net_got) = (0u64, 0u64);
    while (fs_got < fs_sent + fs_bad || net_got < net_sent + net_bad)
        && std::time::Instant::now() < deadline
    {
        let mut idle = true;
        if let Ok(frame) = fs_ch.resp_rx.recv() {
            FsResponse::decode(&frame).expect("undecodable fs reply");
            fs_got += 1;
            idle = false;
        }
        if let Ok(frame) = net_ch.resp_rx.recv() {
            NetResponse::decode(&frame).expect("undecodable net reply");
            net_got += 1;
            idle = false;
        }
        if idle {
            std::thread::yield_now();
        }
    }
    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    fs_thread.join().unwrap();
    tcp_thread.join().unwrap();

    assert_eq!((fs_got, net_got), (fs_sent + fs_bad, net_sent + net_bad));
    let o = std::sync::atomic::Ordering::Relaxed;
    assert_eq!(fs_stats.rpcs.load(o), fs_sent, "fs ledger");
    assert_eq!(fs_stats.malformed.load(o), fs_bad, "fs malformed ledger");
    assert_eq!(tcp_stats.rpcs.load(o), net_sent, "net ledger");
    assert_eq!(tcp_stats.malformed.load(o), net_bad, "net malformed ledger");
    assert_eq!(fs_stats.sheds.load(o) + tcp_stats.sheds.load(o), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_resolves_every_frame(ops in vec(eng_op_strategy(), 1..40)) {
        run_engine_case(ops.clone());
    }
}
