//! Property-based test for transport recovery: across arbitrary
//! interleavings of submissions, dropped tokens, stub service, response
//! poisoning, and link resets, every submitted token resolves (a real
//! reply or a synthesized error completion — never a hang), no
//! flow-control credit leaks, and no tag is ever reused before the
//! routing table is scrubbed.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use solros::transport::{Channel, RpcClient, Token};
use solros_pcie::counter::PcieCounters;
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_proto::rpc_error::RpcErr;
use solros_qos::CreditPool;

/// One step of a generated fault schedule, applied in order on a single
/// thread so the interleaving is exactly the generated sequence.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Submit one request and keep its token for settlement.
    Submit,
    /// Submit one request and drop the token immediately (abandon path).
    SubmitDrop,
    /// The stub serves up to `n` queued requests.
    Serve(u8),
    /// The stub's next published reply carries a poisoned header.
    Corrupt,
    /// Detect-and-recover: drain, scrub, reset, respawn the stub's
    /// endpoints from the re-initialized rings.
    Reset,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Submit),
        1 => Just(Op::SubmitDrop),
        3 => (1u8..6).prop_map(Op::Serve),
        1 => Just(Op::Corrupt),
        1 => Just(Op::Reset),
    ]
}

fn run_case(ops: Vec<Op>) {
    let counters = Arc::new(PcieCounters::new());
    let ch = Channel::new(counters);
    let pool = Arc::new(CreditPool::new(8));
    let client = RpcClient::with_link(
        ch.req_tx,
        ch.resp_rx,
        Some(Arc::clone(&pool)),
        Arc::clone(&ch.req_ring),
        Arc::clone(&ch.resp_ring),
    );
    client.set_error_encoder(|tag, err| FsResponse::Error { err }.encode(tag));

    // The stub runs inline: this test drives both ends of the link so
    // the fault interleaving is deterministic per generated case.
    let mut stub_rx = ch.req_rx;
    let mut stub_tx = ch.resp_tx;
    let mut live: Vec<Token> = Vec::new();
    let mut seen_tags: HashSet<u32> = HashSet::new();
    let mut ino = 0u64;

    for op in ops {
        match op {
            Op::Submit | Op::SubmitDrop => {
                let tag = client.tag();
                assert!(seen_tags.insert(tag), "tag {tag} reused before scrub");
                ino += 1;
                match client.submit(tag, FsRequest::Fstat { ino }.encode(tag)) {
                    Ok(token) => {
                        if matches!(op, Op::Submit) {
                            live.push(token);
                        }
                    }
                    // A full ring or closed credit window must surface as
                    // a transient, retryable refusal — fully scrubbed.
                    Err(e) => assert!(e.is_transient(), "unexpected submit error {e:?}"),
                }
            }
            Op::Serve(k) => {
                for _ in 0..k {
                    match stub_rx.recv() {
                        Ok(frame) => {
                            let (tag, _) = FsRequest::decode(&frame).unwrap();
                            // A full reply ring drops the reply — the
                            // settlement reset must still resolve its tag.
                            let _ = stub_tx.send(&FsResponse::Ok.encode(tag));
                        }
                        Err(_) => break,
                    }
                }
                client.drain_now();
            }
            Op::Corrupt => stub_tx.corrupt_next(1),
            Op::Reset => {
                let report = client.link_reset(RpcErr::Gone);
                assert!(report.ring_reset, "with_link resets must touch rings");
                // The old stub endpoints hold stale replicated state; a
                // respawned stub mints fresh ones from the rings.
                stub_rx = ch.req_ring.consumer();
                stub_tx = ch.resp_ring.producer();
            }
        }
    }

    // Settlement: serve what is still queued, then one final recovery
    // pass resolves whatever a poisoned or wedged link kept back.
    while let Ok(frame) = stub_rx.recv() {
        let (tag, _) = FsRequest::decode(&frame).unwrap();
        let _ = stub_tx.send(&FsResponse::Ok.encode(tag));
    }
    client.drain_now();
    let _ = client.link_reset(RpcErr::Gone);

    for token in live {
        let reply = client.wait(token);
        let (_, resp) = FsResponse::decode(&reply).expect("undecodable completion");
        match resp {
            FsResponse::Ok | FsResponse::Error { .. } => {}
            other => panic!("unexpected completion {other:?}"),
        }
    }
    assert_eq!(client.pending_len(), 0, "hung tags after recovery");
    assert_eq!(pool.levels().0, 0, "leaked credits after recovery");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_resolves_every_token(ops in vec(op_strategy(), 1..80)) {
        run_case(ops.clone());
    }
}
