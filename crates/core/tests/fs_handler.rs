//! FS proxy handler semantics: data-path choice (P2P vs buffered),
//! coalescing, readahead, fault containment. These drive the proxy
//! through its public [`FsProxy::handle`] entry and through the shared
//! proxy engine via [`FsProxy::serve`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use solros::fs_proxy::{FsProxy, FsProxyStats};
use solros::transport::{Channel, RpcClient};
use solros_fs::FileSystem;
use solros_nvme::{NvmeDevice, BLOCK_SIZE};
use solros_pcie::window::Window;
use solros_pcie::{PcieCounters, Side};
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_proto::rpc_error::RpcErr;

fn setup(crosses_numa: bool) -> (FsProxy, Arc<FileSystem>, Arc<Window>, Arc<FsProxyStats>) {
    let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(8192), 256).unwrap());
    let window = Window::new(1 << 20, Side::Coproc, Arc::new(PcieCounters::new()));
    let stats = Arc::new(FsProxyStats::default());
    let proxy = FsProxy::new(
        Arc::clone(&fs),
        Arc::clone(&window),
        crosses_numa,
        Arc::clone(&stats),
    );
    (proxy, fs, window, stats)
}

fn window_write(w: &Arc<Window>, off: usize, data: &[u8]) {
    // SAFETY: exclusive test buffer.
    unsafe { w.map(Side::Coproc).write(off, data) };
}

fn window_read(w: &Arc<Window>, off: usize, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    // SAFETY: exclusive test buffer.
    unsafe { w.map(Side::Coproc).read(off, &mut v) };
    v
}

#[test]
fn aligned_read_goes_p2p_and_coalesces() {
    let (proxy, fs, window, stats) = setup(false);
    let ino = fs.create("/f").unwrap();
    let data: Vec<u8> = (0..4 * BLOCK_SIZE).map(|i| (i % 253) as u8).collect();
    fs.write(ino, 0, &data).unwrap();
    // Clear the write-through cache so the read cannot be a cache hit.
    fs.cache().invalidate_ino(ino);
    let ints0 = fs.device().stats().interrupts;

    let resp = proxy.handle(FsRequest::Read {
        ino,
        offset: 0,
        count: 4 * BLOCK_SIZE as u64,
        buf_addr: 0,
    });
    assert_eq!(
        resp,
        FsResponse::Read {
            count: 4 * BLOCK_SIZE as u64
        }
    );
    assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 1);
    assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 0);
    assert_eq!(window_read(&window, 0, data.len()), data);
    // One vectored batch: exactly one interrupt for the whole read.
    assert_eq!(fs.device().stats().interrupts, ints0 + 1);
}

#[test]
fn cross_numa_demotes_to_buffered() {
    let (proxy, fs, window, stats) = setup(true);
    let ino = fs.create("/f").unwrap();
    let data = vec![7u8; 2 * BLOCK_SIZE];
    fs.write(ino, 0, &data).unwrap();
    fs.cache().invalidate_ino(ino);
    let resp = proxy.handle(FsRequest::Read {
        ino,
        offset: 0,
        count: 2 * BLOCK_SIZE as u64,
        buf_addr: 4096,
    });
    assert_eq!(
        resp,
        FsResponse::Read {
            count: 2 * BLOCK_SIZE as u64
        }
    );
    assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 0);
    assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
    assert_eq!(window_read(&window, 4096, data.len()), data);
}

#[test]
fn cache_hit_prefers_buffered() {
    let (proxy, fs, _window, stats) = setup(false);
    let ino = fs.create("/f").unwrap();
    let data = vec![9u8; BLOCK_SIZE];
    fs.write(ino, 0, &data).unwrap(); // Write-through warms the cache.
    let resp = proxy.handle(FsRequest::Read {
        ino,
        offset: 0,
        count: BLOCK_SIZE as u64,
        buf_addr: 0,
    });
    assert_eq!(
        resp,
        FsResponse::Read {
            count: BLOCK_SIZE as u64
        }
    );
    assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
    assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 0);
}

#[test]
fn unaligned_read_demotes() {
    let (proxy, fs, window, stats) = setup(false);
    let ino = fs.create("/f").unwrap();
    let data: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
    fs.write(ino, 0, &data).unwrap();
    fs.cache().invalidate_ino(ino);
    let resp = proxy.handle(FsRequest::Read {
        ino,
        offset: 100,
        count: 500,
        buf_addr: 0,
    });
    assert_eq!(resp, FsResponse::Read { count: 500 });
    assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
    assert_eq!(window_read(&window, 0, 500), data[100..600]);
}

#[test]
fn p2p_write_roundtrips_and_invalidates_cache() {
    let (proxy, fs, window, stats) = setup(false);
    let ino = fs.create("/f").unwrap();
    // Seed stale data through the cache.
    fs.write(ino, 0, &vec![1u8; 2 * BLOCK_SIZE]).unwrap();
    // P2P write of fresh data directly from "co-processor memory".
    let fresh: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 249) as u8).collect();
    window_write(&window, 8192, &fresh);
    let resp = proxy.handle(FsRequest::Write {
        ino,
        offset: 0,
        count: 2 * BLOCK_SIZE as u64,
        buf_addr: 8192,
    });
    assert_eq!(
        resp,
        FsResponse::Write {
            count: 2 * BLOCK_SIZE as u64
        }
    );
    assert_eq!(stats.p2p_writes.load(Ordering::Relaxed), 1);
    // A buffered read now must see the new data, not the stale cache.
    let mut out = vec![0u8; 2 * BLOCK_SIZE];
    fs.read(ino, 0, &mut out).unwrap();
    assert_eq!(out, fresh);
}

#[test]
fn p2p_write_extends_file() {
    let (proxy, fs, window, _stats) = setup(false);
    let ino = fs.create("/f").unwrap();
    let data = vec![5u8; 1000]; // Partial tail, extending: P2P-safe.
    window_write(&window, 0, &data);
    let resp = proxy.handle(FsRequest::Write {
        ino,
        offset: 0,
        count: 1000,
        buf_addr: 0,
    });
    assert_eq!(resp, FsResponse::Write { count: 1000 });
    assert_eq!(fs.size_of(ino).unwrap(), 1000);
    let mut out = vec![0u8; 1000];
    fs.read(ino, 0, &mut out).unwrap();
    assert_eq!(out, data);
}

#[test]
fn unaligned_overwrite_demotes_to_buffered() {
    let (proxy, fs, window, stats) = setup(false);
    let ino = fs.create("/f").unwrap();
    fs.write(ino, 0, &vec![1u8; 2 * BLOCK_SIZE]).unwrap();
    // Overwrite 10 bytes mid-file: partial tail NOT extending => buffered.
    window_write(&window, 0, &[9u8; 10]);
    let resp = proxy.handle(FsRequest::Write {
        ino,
        offset: 4096,
        count: 10,
        buf_addr: 0,
    });
    assert_eq!(resp, FsResponse::Write { count: 10 });
    assert_eq!(stats.buffered_writes.load(Ordering::Relaxed), 1);
    let mut out = vec![0u8; 2 * BLOCK_SIZE];
    fs.read(ino, 0, &mut out).unwrap();
    assert_eq!(&out[4096..4106], &[9u8; 10]);
    assert_eq!(out[4106], 1, "bytes beyond the overwrite untouched");
}

#[test]
fn o_buffer_forces_buffered_io() {
    let (proxy, fs, _window, stats) = setup(false);
    let resp = proxy.handle(FsRequest::Open {
        path: "/b".into(),
        create: true,
        truncate: false,
        buffered: true,
    });
    let ino = match resp {
        FsResponse::Open { ino, .. } => ino,
        other => panic!("unexpected {other:?}"),
    };
    fs.write(ino, 0, &vec![3u8; BLOCK_SIZE]).unwrap();
    fs.cache().invalidate_ino(ino);
    proxy.handle(FsRequest::Read {
        ino,
        offset: 0,
        count: BLOCK_SIZE as u64,
        buf_addr: 0,
    });
    assert_eq!(stats.buffered_reads.load(Ordering::Relaxed), 1);
    assert_eq!(stats.p2p_reads.load(Ordering::Relaxed), 0);
}

#[test]
fn read_beyond_eof_returns_zero() {
    let (proxy, fs, _window, _stats) = setup(false);
    let ino = fs.create("/f").unwrap();
    fs.write(ino, 0, b"xy").unwrap();
    let resp = proxy.handle(FsRequest::Read {
        ino,
        offset: 100,
        count: 10,
        buf_addr: 0,
    });
    assert_eq!(resp, FsResponse::Read { count: 0 });
}

#[test]
fn metadata_rpcs_roundtrip() {
    let (proxy, _fs, _window, _stats) = setup(false);
    assert!(matches!(
        proxy.handle(FsRequest::Mkdir { path: "/d".into() }),
        FsResponse::Mkdir { .. }
    ));
    assert!(matches!(
        proxy.handle(FsRequest::Create {
            path: "/d/f".into()
        }),
        FsResponse::Create { .. }
    ));
    assert_eq!(
        proxy.handle(FsRequest::Readdir { path: "/d".into() }),
        FsResponse::Readdir {
            names: vec!["f".into()]
        }
    );
    assert_eq!(
        proxy.handle(FsRequest::Rename {
            from: "/d/f".into(),
            to: "/d/g".into()
        }),
        FsResponse::Ok
    );
    assert!(matches!(
        proxy.handle(FsRequest::Stat {
            path: "/d/g".into()
        }),
        FsResponse::Stat { is_dir: false, .. }
    ));
    assert_eq!(
        proxy.handle(FsRequest::Unlink {
            path: "/d/g".into()
        }),
        FsResponse::Ok
    );
    assert_eq!(
        proxy.handle(FsRequest::Unlink {
            path: "/d/g".into()
        }),
        FsResponse::Error {
            err: RpcErr::NotFound
        }
    );
    assert_eq!(proxy.handle(FsRequest::Fsync { ino: 0 }), FsResponse::Ok);
}

#[test]
fn sequential_buffered_reads_trigger_readahead() {
    // Cross-NUMA proxy: everything is buffered, so the readahead path
    // is exercised by a sequential scan.
    let (proxy, fs, _window, stats) = setup(true);
    let ino = fs.create("/seq").unwrap();
    fs.write(ino, 0, &vec![7u8; 32 * BLOCK_SIZE]).unwrap();
    fs.cache().invalidate_ino(ino);
    for i in 0..4u64 {
        let resp = proxy.handle(FsRequest::Read {
            ino,
            offset: i * 2 * BLOCK_SIZE as u64,
            count: 2 * BLOCK_SIZE as u64,
            buf_addr: 0,
        });
        assert_eq!(
            resp,
            FsResponse::Read {
                count: 2 * BLOCK_SIZE as u64
            }
        );
    }
    let warmed = stats.prefetched_pages.load(Ordering::Relaxed);
    assert!(warmed >= 8, "sequential scan should prefetch, got {warmed}");
    // A random (non-sequential) read does not prefetch further.
    let before = stats.prefetched_pages.load(Ordering::Relaxed);
    proxy.handle(FsRequest::Read {
        ino,
        offset: 20 * BLOCK_SIZE as u64,
        count: BLOCK_SIZE as u64,
        buf_addr: 0,
    });
    assert_eq!(stats.prefetched_pages.load(Ordering::Relaxed), before);
}

#[test]
fn injected_worker_panic_is_contained() {
    let (proxy, fs, _window, stats) = setup(false);
    let ino = fs.create("/f").unwrap();
    let ch = Channel::new(Arc::new(PcieCounters::new()));
    let client = RpcClient::new(ch.req_tx, ch.resp_rx);
    let shutdown = Arc::new(AtomicBool::new(false));
    proxy.inject_worker_panics(1);
    let (req_rx, resp_tx, sd) = (ch.req_rx, ch.resp_tx, Arc::clone(&shutdown));
    let server = std::thread::spawn(move || proxy.serve(req_rx, resp_tx, sd));

    // The armed panic fires inside a worker and comes back as Io.
    let tag = client.tag();
    let reply = client.call(tag, FsRequest::Fstat { ino }.encode(tag));
    let (_, resp) = FsResponse::decode(&reply).unwrap();
    assert_eq!(resp, FsResponse::Error { err: RpcErr::Io });

    // The pool survived: the next request is served normally.
    let tag = client.tag();
    let reply = client.call(tag, FsRequest::Fstat { ino }.encode(tag));
    let (_, resp) = FsResponse::decode(&reply).unwrap();
    assert!(matches!(resp, FsResponse::Stat { .. }), "got {resp:?}");

    shutdown.store(true, Ordering::Relaxed);
    server.join().unwrap();
    assert_eq!(stats.worker_panics.load(Ordering::Relaxed), 1);
}

#[test]
fn device_fault_recovery() {
    let (proxy, fs, _window, _stats) = setup(false);
    let ino = fs.create("/f").unwrap();
    fs.write(ino, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
    fs.cache().invalidate_ino(ino);
    fs.device().inject_faults(1);
    let resp = proxy.handle(FsRequest::Read {
        ino,
        offset: 0,
        count: BLOCK_SIZE as u64,
        buf_addr: 0,
    });
    assert_eq!(
        resp,
        FsResponse::Read {
            count: BLOCK_SIZE as u64
        }
    );
}
