//! TCP proxy handler semantics: the socket state machine, the shared
//! listening socket, and fault containment through the shared proxy
//! engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use solros::proxy_engine::OpHandler;
use solros::tcp_proxy::{NetChannelHost, TcpProxy, TcpProxyStats, SOCKOPT_EVENTED};
use solros::transport::{event_ring, Channel, RpcClient};
use solros::RoundRobin;
use solros_pcie::PcieCounters;
use solros_proto::net_msg::{NetRequest, NetResponse, SockId};
use solros_proto::rpc_error::RpcErr;

/// Accepts the pending fabric connection on `port`, reporting which
/// listener died instead of unwrapping blind.
fn accept_on(network: &solros_netdev::Network, port: u16) -> (solros_netdev::ConnId, u64) {
    match network.poll_accept(port) {
        Ok(Some(pending)) => pending,
        Ok(None) => panic!("accept on port {port}: connect never reached the listener"),
        Err(e) => panic!("accept on port {port} failed: {e:?}"),
    }
}

struct Rig {
    proxy: TcpProxy,
    stats: Arc<TcpProxyStats>,
    network: Arc<solros_netdev::Network>,
    clients: Vec<Arc<RpcClient>>,
}

fn proxy_with(n: usize) -> Rig {
    let network = solros_netdev::Network::new();
    let mut channels = Vec::new();
    let mut clients = Vec::new();
    for _ in 0..n {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(Arc::clone(&counters));
        let (evt_tx, _evt_rx) = event_ring(counters);
        channels.push(NetChannelHost {
            req_rx: ch.req_rx,
            resp_tx: ch.resp_tx,
            evt_tx,
        });
        clients.push(RpcClient::new(ch.req_tx, ch.resp_rx));
    }
    let (proxy, stats) = TcpProxy::new(
        Arc::clone(&network),
        channels,
        Box::new(RoundRobin::default()),
    );
    Rig {
        proxy,
        stats,
        network,
        clients,
    }
}

fn new_sock(p: &TcpProxy) -> SockId {
    match p.handle(0, NetRequest::Socket) {
        NetResponse::Socket { sock } => sock,
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn injected_handler_panic_is_contained() {
    // Drive the proxy through the shared engine over a real channel: the
    // armed panic must come back as an Io error reply and the serve loop
    // must keep going.
    let rig = proxy_with(1);
    rig.proxy.inject_worker_panics(1);
    let shutdown = Arc::new(AtomicBool::new(false));
    let sd = Arc::clone(&shutdown);
    let proxy = rig.proxy;
    let server = std::thread::spawn(move || proxy.run(sd));
    let client = &rig.clients[0];

    let tag = client.tag();
    let reply = client.call(tag, NetRequest::Socket.encode(tag));
    let (_, resp) = NetResponse::decode(&reply).unwrap();
    assert_eq!(resp, NetResponse::Error { err: RpcErr::Io });

    // The loop survives: the next request is served normally.
    let tag = client.tag();
    let reply = client.call(tag, NetRequest::Socket.encode(tag));
    let (_, resp) = NetResponse::decode(&reply).unwrap();
    assert!(matches!(resp, NetResponse::Socket { .. }), "got {resp:?}");

    shutdown.store(true, Ordering::Relaxed);
    server.join().unwrap();
    assert_eq!(rig.stats.worker_panics.load(Ordering::Relaxed), 1);
    assert_eq!(rig.stats.rpcs.load(Ordering::Relaxed), 2);
}

#[test]
fn socket_state_machine_rejects_bad_transitions() {
    let rig = proxy_with(1);
    let p = &rig.proxy;
    let s = new_sock(p);
    // Listen before bind.
    assert!(matches!(
        p.handle(
            0,
            NetRequest::Listen {
                sock: s,
                backlog: 4
            }
        ),
        NetResponse::Error {
            err: RpcErr::Invalid
        }
    ));
    // Bind works once; double bind rejected.
    assert!(matches!(
        p.handle(0, NetRequest::Bind { sock: s, port: 80 }),
        NetResponse::Ok
    ));
    assert!(matches!(
        p.handle(0, NetRequest::Bind { sock: s, port: 81 }),
        NetResponse::Error {
            err: RpcErr::Invalid
        }
    ));
    // Send on a non-connection.
    assert!(matches!(
        p.handle(
            0,
            NetRequest::Send {
                sock: s,
                data: vec![1]
            }
        ),
        NetResponse::Error {
            err: RpcErr::NotConnected
        }
    ));
    // Unknown socket ids.
    assert!(matches!(
        p.handle(0, NetRequest::Close { sock: 9999 }),
        NetResponse::Error {
            err: RpcErr::NotFound
        }
    ));
    // Accept on a non-listening socket.
    assert!(matches!(
        p.handle(0, NetRequest::Accept { sock: s }),
        NetResponse::Error {
            err: RpcErr::NotListening
        }
    ));
    // Unknown socket option.
    assert!(matches!(
        p.handle(
            0,
            NetRequest::Setsockopt {
                sock: s,
                opt: 99,
                val: 1
            }
        ),
        NetResponse::Error {
            err: RpcErr::Invalid
        }
    ));
}

#[test]
fn shared_port_closes_cleanly() {
    let rig = proxy_with(2);
    let p = &rig.proxy;
    let net = &rig.network;
    // Two co-processors listen on the same port (shared socket).
    let a = new_sock(p);
    assert!(matches!(
        p.handle(0, NetRequest::Bind { sock: a, port: 90 }),
        NetResponse::Ok
    ));
    assert!(matches!(
        p.handle(
            0,
            NetRequest::Listen {
                sock: a,
                backlog: 4
            }
        ),
        NetResponse::Ok
    ));
    let b = match p.handle(1, NetRequest::Socket) {
        NetResponse::Socket { sock } => sock,
        other => panic!("unexpected {other:?}"),
    };
    assert!(matches!(
        p.handle(1, NetRequest::Bind { sock: b, port: 90 }),
        NetResponse::Ok
    ));
    assert!(matches!(
        p.handle(
            1,
            NetRequest::Listen {
                sock: b,
                backlog: 4
            }
        ),
        NetResponse::Ok
    ));
    // Closing one listener keeps the port open for the other.
    assert!(matches!(
        p.handle(0, NetRequest::Close { sock: a }),
        NetResponse::Ok
    ));
    assert!(net.client_connect(90, 1).is_ok(), "port still listening");
    // Closing the last listener releases the NIC port.
    assert!(matches!(
        p.handle(1, NetRequest::Close { sock: b }),
        NetResponse::Ok
    ));
    assert!(net.client_connect(90, 2).is_err(), "port released");
}

#[test]
fn closing_a_listener_refuses_its_unaccepted_backlog() {
    // A connection delivered to a listener but never accepted must be
    // refused when the listener closes — the peer observes a severance,
    // never a hang, and the fabric conn is reaped once the peer closes
    // its own end.
    let rig = proxy_with(1);
    let p = &rig.proxy;
    let net = &rig.network;
    let s = new_sock(p);
    assert!(matches!(
        p.handle(0, NetRequest::Bind { sock: s, port: 95 }),
        NetResponse::Ok
    ));
    assert!(matches!(
        p.handle(
            0,
            NetRequest::Listen {
                sock: s,
                backlog: 4
            }
        ),
        NetResponse::Ok
    ));
    // Polling delivery: the accepted conn queues engine-side until the
    // co-processor claims it with an Accept RPC (which never comes).
    assert!(matches!(
        p.handle(
            0,
            NetRequest::Setsockopt {
                sock: s,
                opt: SOCKOPT_EVENTED,
                val: 0
            }
        ),
        NetResponse::Ok
    ));
    let conn = net.client_connect(95, 7).expect("port listening");
    p.poll();
    assert!(matches!(
        p.handle(0, NetRequest::Close { sock: s }),
        NetResponse::Ok
    ));
    assert!(matches!(
        net.recv(conn, solros_netdev::EndKind::Client, 16),
        Err(solros_netdev::NetworkError::Closed)
    ));
    // The peer closes its own end and observes the severance once more;
    // the fabric reaps the fully-closed, drained connection.
    net.close(conn, solros_netdev::EndKind::Client).unwrap();
    assert!(matches!(
        net.recv(conn, solros_netdev::EndKind::Client, 16),
        Err(solros_netdev::NetworkError::Closed)
    ));
    assert_eq!(net.live_connections(), 0, "refused conn fully reaped");
}

#[test]
fn connect_send_recv_shutdown_via_rpc() {
    let rig = proxy_with(1);
    let p = &rig.proxy;
    let net = &rig.network;
    // An "external server" listens on the fabric.
    net.listen(7000, 4).unwrap();
    let s = new_sock(p);
    assert!(matches!(
        p.handle(
            0,
            NetRequest::Connect {
                sock: s,
                addr: 55,
                port: 7000
            }
        ),
        NetResponse::Ok
    ));
    let (conn, addr) = accept_on(net, 7000);
    assert_eq!(addr, 55);
    // Outbound data flows from the machine's Client end.
    assert!(matches!(
        p.handle(
            0,
            NetRequest::Send {
                sock: s,
                data: b"out".to_vec()
            }
        ),
        NetResponse::Sent { count: 3 }
    ));
    assert_eq!(
        net.recv(conn, solros_netdev::EndKind::Server, 16).unwrap(),
        b"out"
    );
    // Inbound via the Recv RPC.
    net.send(conn, solros_netdev::EndKind::Server, b"in!")
        .unwrap();
    match p.handle(0, NetRequest::Recv { sock: s, max: 16 }) {
        NetResponse::Data { data } => assert_eq!(data, b"in!"),
        other => panic!("unexpected {other:?}"),
    }
    // Shutdown(write) sends FIN; the server observes EOF.
    assert!(matches!(
        p.handle(0, NetRequest::Shutdown { sock: s, how: 1 }),
        NetResponse::Ok
    ));
    assert!(matches!(
        net.recv(conn, solros_netdev::EndKind::Server, 16),
        Err(solros_netdev::NetworkError::Closed)
    ));
}
