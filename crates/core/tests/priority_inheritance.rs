//! Priority inheritance acceptance: a high-class `Fstat` waiting on an
//! inode exclusively held by a best-effort writer must complete ahead of
//! the rest of the best-effort burst, because the engine promotes the
//! holder's flow to the waiter's weight until the hold is released.
//!
//! The test drives the shared proxy engine deterministically with
//! [`ProxyEngine::step`] on a virtual clock and compares two identical
//! runs: inheritance on (default) vs off ([`ProxyEngine::set_inherit`]).
//! With inheritance the promoted best-effort flow banks deficit at the
//! waiter's weight, so the locked writes — and with them the fstat —
//! finish in a handful of cycles; without it the weight-1 flow crawls and
//! the fstat trails the whole normal-class stream by an order of
//! magnitude in cycles.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use solros::fs_proxy::{FsProxy, FsProxyStats, QOS_BULK_BYTES};
use solros::transport::Channel;
use solros::{EngineLane, ProxyEngine};
use solros_fs::FileSystem;
use solros_nvme::NvmeDevice;
use solros_pcie::window::Window;
use solros_pcie::{PcieCounters, Side};
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_qos::{FlowSpec, HostConfig, HostGate, HostScheduler, QosClass, Service};

/// Bulk write size: safely above the best-effort classification cutoff
/// and block-aligned so the write takes the P2P path.
const BULK: u64 = QOS_BULK_BYTES + 44 * 1024;
/// Best-effort writes trailing the locked pair (the "burst" the fstat
/// must beat).
const TRAILING_BE: u32 = 10;
/// Normal-class small writes competing for DWRR turns.
const NORMAL_WRITES: u32 = 24;

const FSTAT_TAG: u32 = 3;

struct Outcome {
    /// Engine cycles until the fstat reply surfaced.
    cycles: u64,
    /// Reply tags observed before the fstat reply, in completion order.
    before_fstat: Vec<u32>,
    stats: Arc<FsProxyStats>,
}

/// Builds a proxy + gate, enqueues the contended workload, and steps the
/// engine until the fstat answer arrives.
fn run(inherit: bool) -> Outcome {
    let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(8192), 256).unwrap());
    let window = Window::new(1 << 20, Side::Coproc, Arc::new(PcieCounters::new()));
    let stats = Arc::new(FsProxyStats::default());
    let proxy = FsProxy::new(
        Arc::clone(&fs),
        Arc::clone(&window),
        false,
        Arc::clone(&stats),
    );

    let spec = |name: &str, class: QosClass, weight: u32| FlowSpec {
        name: name.into(),
        class,
        weight,
        ops_per_sec: 0,
        bytes_per_sec: 0,
        burst_ops: 0,
        burst_bytes: 0,
        queue_cap: 1024,
        deadline_ns: 0,
        sheddable: false,
        tenant: 0,
    };
    // Flow indices follow QosClass::index, matching the proxy's classify.
    let host = HostScheduler::new(HostConfig::default());
    let gate = HostGate::new(
        vec![
            spec("pi/high", QosClass::High, 16),
            spec("pi/normal", QosClass::Normal, 4),
            spec("pi/best", QosClass::BestEffort, 1),
        ],
        4096,
        usize::MAX,
        &host,
        Service::Fs,
        0,
    );

    let locked = fs.create("/locked").unwrap();
    let write = |ino: u64, count: u64, tag: u32| {
        FsRequest::Write {
            ino,
            offset: 0,
            count,
            buf_addr: 0,
        }
        .encode(tag)
    };

    let ch = Channel::new(Arc::new(PcieCounters::new()));
    // Two bulk writes hold the contended inode, then the high-class
    // fstat arrives behind them, then the rest of the best-effort burst
    // and a stream of normal-class writes.
    ch.req_tx.send_blocking(&write(locked, BULK, 1)).unwrap();
    ch.req_tx.send_blocking(&write(locked, BULK, 2)).unwrap();
    ch.req_tx
        .send_blocking(&FsRequest::Fstat { ino: locked }.encode(FSTAT_TAG))
        .unwrap();
    let mut tag = FSTAT_TAG;
    for i in 0..TRAILING_BE {
        tag += 1;
        let ino = fs.create(&format!("/be{i}")).unwrap();
        ch.req_tx.send_blocking(&write(ino, BULK, tag)).unwrap();
    }
    for i in 0..NORMAL_WRITES {
        tag += 1;
        let ino = fs.create(&format!("/n{i}")).unwrap();
        ch.req_tx.send_blocking(&write(ino, 4096, tag)).unwrap();
    }

    let faults = proxy.faults();
    let mut engine = ProxyEngine::new(
        Arc::new(proxy),
        vec![EngineLane {
            req_rx: ch.req_rx,
            resp_tx: ch.resp_tx,
        }],
        Arc::clone(&stats.engine),
        faults,
        Some(gate),
    );
    engine.set_inherit(inherit);

    let mut before_fstat = Vec::new();
    for cycle in 1..=2000u64 {
        engine.step(cycle * 1000);
        while let Ok(frame) = ch.resp_rx.recv() {
            let (tag, resp) = FsResponse::decode(&frame).unwrap();
            if tag == FSTAT_TAG {
                assert!(
                    matches!(resp, FsResponse::Stat { .. }),
                    "fstat answered {resp:?}"
                );
                return Outcome {
                    cycles: cycle,
                    before_fstat,
                    stats,
                };
            }
            before_fstat.push(tag);
        }
    }
    panic!("fstat never answered; saw {before_fstat:?}");
}

#[test]
fn fstat_beats_best_effort_burst_via_inheritance() {
    let on = run(true);

    // The waiter deferred behind the exclusive holders and promoted them.
    assert!(on.stats.inherit_deferred.load(Ordering::Relaxed) >= 1);
    assert!(on.stats.promotions.load(Ordering::Relaxed) >= 1);

    // Only the two locked writes may precede the fstat from the
    // best-effort flow: the trailing burst must not overtake it.
    let trailing: Vec<u32> = (FSTAT_TAG + 1..=FSTAT_TAG + TRAILING_BE).collect();
    assert!(
        !on.before_fstat.iter().any(|t| trailing.contains(t)),
        "best-effort burst overtook the fstat: {:?}",
        on.before_fstat
    );
    // Both holding writes did complete first (the release path ran).
    assert!(on.before_fstat.contains(&1) && on.before_fstat.contains(&2));
}

#[test]
fn inheritance_shortens_the_wait_by_cycles() {
    let on = run(true);
    let off = run(false);

    // Deferral happens either way; promotion only with inheritance on.
    assert!(off.stats.inherit_deferred.load(Ordering::Relaxed) >= 1);
    assert_eq!(off.stats.promotions.load(Ordering::Relaxed), 0);

    // The promoted holder banks deficit at weight 16 instead of 1, so
    // the locked writes (and the waiting fstat) finish far sooner.
    assert!(
        on.cycles * 4 < off.cycles,
        "inheritance gave no speedup: {} vs {} cycles",
        on.cycles,
        off.cycles
    );
}
