//! Property-based tests for the symmetric reply wave: across random
//! wave sizes, shed/error mixes, and lane counts, every admitted tag
//! gets exactly one reply routed back to it, credits settle exactly
//! once (the pool drains to zero in-flight), and frames that ride a
//! batched wave decode byte-identically to frames sent one at a time.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use solros::fs_proxy::{FsProxy, FsProxyStats};
use solros::tcp_proxy::{NetChannelHost, TcpProxy};
use solros::transport::{event_ring, Channel, RpcClient};
use solros::RoundRobin;
use solros_fs::FileSystem;
use solros_nvme::NvmeDevice;
use solros_pcie::window::Window;
use solros_pcie::{PcieCounters, Side};
use solros_proto::fs_msg::FsRequest;
use solros_proto::net_msg::NetRequest;
use solros_qos::{CreditPool, FlowSpec, HostConfig, HostGate, HostScheduler, QosClass, Service};

/// Accepts the pending fabric connection on `port`, reporting which
/// listener died instead of unwrapping blind.
fn accept_on(network: &solros_netdev::Network, port: u16) -> (solros_netdev::ConnId, u64) {
    match network.poll_accept(port) {
        Ok(Some(pending)) => pending,
        Ok(None) => panic!("accept on port {port}: connect never reached the listener"),
        Err(e) => panic!("accept on port {port} failed: {e:?}"),
    }
}

/// Reply tag from the wire layout `[u32 len][u8 type][u32 tag]...`.
fn tag_of(frame: &[u8]) -> u32 {
    u32::from_le_bytes(frame[5..9].try_into().unwrap())
}

// ---------------------------------------------------------------------
// Property 1: a batched wave is byte-identical to the per-frame path.
// ---------------------------------------------------------------------

fn run_ring_wave(waves: Vec<Vec<Vec<u8>>>) {
    let batched = Channel::new(Arc::new(PcieCounters::new()));
    let unbatched = Channel::new(Arc::new(PcieCounters::new()));
    for wave in waves {
        for frame in &wave {
            unbatched.req_tx.send_blocking(frame).unwrap();
        }
        let n = wave.len();
        batched.req_tx.send_batch_blocking(wave).unwrap();
        for _ in 0..n {
            assert_eq!(
                batched.req_rx.recv_blocking(),
                unbatched.req_rx.recv_blocking(),
                "batched frame diverged from the per-frame path"
            );
        }
    }
    // The vectored path must not cost *more* publishes than per-frame.
    assert!(batched.req_tx.publishes() <= unbatched.req_tx.publishes());
}

// ---------------------------------------------------------------------
// Property 2: gated fs engine — shed/error/malformed mixes account.
// ---------------------------------------------------------------------

/// One generated fs operation and the reply class it may produce.
#[derive(Debug, Clone, Copy)]
enum FsOp {
    /// Valid metadata op (High class): normal reply.
    Stat,
    /// Stat of a missing path: error reply.
    Missing,
    /// Frame with a corrupted msg-type byte: malformed-error reply.
    Malformed,
    /// Bulk read (BestEffort class, queue_cap 2): sheds under flood,
    /// otherwise a normal read reply.
    BigRead,
}

fn fs_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        Just(FsOp::Stat),
        Just(FsOp::Missing),
        Just(FsOp::Malformed),
        Just(FsOp::BigRead),
    ]
}

fn run_fs_case(waves: Vec<Vec<FsOp>>) {
    let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(8192), 256).unwrap());
    let ino = fs.create("/f").unwrap();
    fs.write(ino, 0, &vec![3u8; 512 * 1024]).unwrap();
    let window = Window::new(1 << 20, Side::Coproc, Arc::new(PcieCounters::new()));
    let proxy = FsProxy::new(
        Arc::clone(&fs),
        window,
        false,
        Arc::new(FsProxyStats::default()),
    );
    let ch = Channel::new(Arc::new(PcieCounters::new()));
    let pool = Arc::new(CreditPool::new(64));
    let client = RpcClient::with_credits(ch.req_tx, ch.resp_rx, Some(Arc::clone(&pool)));
    let shutdown = Arc::new(AtomicBool::new(false));
    let sd = Arc::clone(&shutdown);
    let server = std::thread::spawn(move || {
        // Every class sheddable; the bulk class's 2-deep queue forces
        // sheds whenever a wave floods it.
        let spec = |name: &str, class: QosClass, cap: usize| FlowSpec {
            name: name.into(),
            class,
            weight: 4,
            ops_per_sec: 0,
            bytes_per_sec: 0,
            burst_ops: 0,
            burst_bytes: 0,
            queue_cap: cap,
            deadline_ns: 0,
            sheddable: true,
            tenant: 0,
        };
        let host = HostScheduler::new(HostConfig::default());
        let gate = HostGate::new(
            vec![
                spec("rw/high", QosClass::High, 1024),
                spec("rw/normal", QosClass::Normal, 1024),
                spec("rw/best", QosClass::BestEffort, 2),
            ],
            4096,
            usize::MAX,
            &host,
            Service::Fs,
            0,
        );
        proxy.serve_qos(ch.req_rx, ch.resp_tx, sd, gate);
    });

    let mut tag = 0u32;
    for wave in waves {
        let mut expect = Vec::new();
        for op in wave {
            tag += 1;
            let frame = match op {
                FsOp::Stat => FsRequest::Fstat { ino }.encode(tag),
                FsOp::Missing => FsRequest::Stat {
                    path: "/missing".into(),
                }
                .encode(tag),
                FsOp::Malformed => {
                    let mut f = FsRequest::Fstat { ino }.encode(tag);
                    f[4] = 0xEE;
                    f
                }
                FsOp::BigRead => FsRequest::Read {
                    ino,
                    offset: 0,
                    count: 512 * 1024,
                    buf_addr: 0,
                }
                .encode(tag),
            };
            expect.push((client.submit_blocking(tag, frame).unwrap(), tag));
        }
        for (token, want) in expect {
            let reply = client.wait(token);
            assert_eq!(tag_of(&reply), want, "reply routed to the wrong tag");
        }
    }

    shutdown.store(true, Ordering::Relaxed);
    server.join().unwrap();
    assert_eq!(client.pending_len(), 0, "tag leaked in the pending map");
    assert_eq!(pool.levels().0, 0, "credit settled twice or never");
}

// ---------------------------------------------------------------------
// Property 3: multi-lane TCP engine with send coalescing in the mix.
// ---------------------------------------------------------------------

/// One generated TCP operation per lane.
#[derive(Debug, Clone, Copy)]
enum NetOp {
    /// Small `Send` (64 B): rides the coalescing stage.
    SmallSend,
    /// Large `Send` (> STAGE_SEND_MAX): pre-flushes and runs alone.
    BigSend,
    /// Fresh socket: plain inline reply.
    Socket,
    /// Close of an unknown socket: error reply.
    BadClose,
    /// Frame with a corrupted msg-type byte: malformed-error reply.
    Malformed,
}

fn net_op() -> impl Strategy<Value = NetOp> {
    prop_oneof![
        3 => Just(NetOp::SmallSend),
        1 => Just(NetOp::BigSend),
        1 => Just(NetOp::Socket),
        1 => Just(NetOp::BadClose),
        1 => Just(NetOp::Malformed),
    ]
}

fn run_tcp_case(lanes: Vec<Vec<Vec<NetOp>>>) {
    const PORT: u16 = 4_000;
    const R_SENT: u8 = 145;

    let network = solros_netdev::Network::new();
    let nlanes = lanes.len();
    let mut hosts = Vec::new();
    let mut clients = Vec::new();
    let mut pools = Vec::new();
    for _ in 0..nlanes {
        let counters = Arc::new(PcieCounters::new());
        let ch = Channel::new(Arc::clone(&counters));
        let (evt_tx, _evt_rx) = event_ring(counters);
        hosts.push(NetChannelHost {
            req_rx: ch.req_rx,
            resp_tx: ch.resp_tx,
            evt_tx,
        });
        let pool = Arc::new(CreditPool::new(64));
        clients.push(RpcClient::with_credits(
            ch.req_tx,
            ch.resp_rx,
            Some(Arc::clone(&pool)),
        ));
        pools.push(pool);
    }
    let (proxy, stats) =
        TcpProxy::new(Arc::clone(&network), hosts, Box::new(RoundRobin::default()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let sd = Arc::clone(&shutdown);
    let server = std::thread::spawn(move || proxy.run(sd));

    network.listen(PORT, 1024).unwrap();
    // Each lane gets its own connected socket; the payload byte encodes
    // the lane so cross-lane coalescing would corrupt detectably.
    let mut socks = Vec::new();
    let mut conns = Vec::new();
    for (lane, client) in clients.iter().enumerate() {
        let reply = client.call(1, NetRequest::Socket.encode(1));
        let sock = u64::from_le_bytes(reply[12..20].try_into().unwrap());
        let reply = client.call(
            2,
            NetRequest::Connect {
                sock,
                addr: lane as u64,
                port: PORT,
            }
            .encode(2),
        );
        assert_eq!(reply[4], 150, "connect failed");
        let (conn, peer) = accept_on(&network, PORT);
        assert_eq!(peer, lane as u64);
        socks.push(sock);
        conns.push(conn);
    }

    let sent_bytes: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .iter()
            .enumerate()
            .map(|(lane, waves)| {
                let client = Arc::clone(&clients[lane]);
                let sock = socks[lane];
                scope.spawn(move || {
                    let mut tag = 2u32;
                    let mut acked = 0u64;
                    for wave in waves {
                        let mut expect = Vec::new();
                        for op in wave {
                            tag += 1;
                            let frame = match op {
                                NetOp::SmallSend => NetRequest::Send {
                                    sock,
                                    data: vec![lane as u8; 64],
                                }
                                .encode(tag),
                                NetOp::BigSend => NetRequest::Send {
                                    sock,
                                    data: vec![lane as u8; 6000],
                                }
                                .encode(tag),
                                NetOp::Socket => NetRequest::Socket.encode(tag),
                                NetOp::BadClose => NetRequest::Close { sock: 99_999 }.encode(tag),
                                NetOp::Malformed => {
                                    let mut f = NetRequest::Socket.encode(tag);
                                    f[4] = 0xEE;
                                    f
                                }
                            };
                            expect.push((client.submit_blocking(tag, frame).unwrap(), tag, *op));
                        }
                        for (token, want, op) in expect {
                            let reply = client.wait(token);
                            assert_eq!(tag_of(&reply), want, "reply routed to wrong tag");
                            if matches!(op, NetOp::SmallSend | NetOp::BigSend) {
                                assert_eq!(reply[4], R_SENT, "send must be acknowledged");
                                acked += u64::from_le_bytes(reply[12..20].try_into().unwrap());
                            }
                        }
                    }
                    acked
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Coalescing merges writes, never bytes: each lane's fabric stream
    // carries exactly the acknowledged payload, all in the lane's color.
    for (lane, &conn) in conns.iter().enumerate() {
        let mut got = 0u64;
        loop {
            let data = network
                .recv(conn, solros_netdev::EndKind::Server, 1 << 20)
                .unwrap();
            if data.is_empty() {
                break;
            }
            assert!(
                data.iter().all(|&b| b == lane as u8),
                "lane {lane} stream carries foreign bytes"
            );
            got += data.len() as u64;
        }
        assert_eq!(got, sent_bytes[lane], "lane {lane} lost or grew bytes");
    }

    shutdown.store(true, Ordering::Relaxed);
    server.join().unwrap();
    for (lane, (client, pool)) in clients.iter().zip(&pools).enumerate() {
        assert_eq!(client.pending_len(), 0, "lane {lane} leaked a tag");
        assert_eq!(pool.levels().0, 0, "lane {lane} leaked a credit");
    }
    assert_eq!(
        stats.event_drops.load(Ordering::Relaxed),
        0,
        "events were dropped"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_waves_decode_byte_identical(
        waves in vec(vec(vec(any::<u8>(), 1..96), 1..24), 1..4),
    ) {
        run_ring_wave(waves);
    }

    #[test]
    fn fs_shed_error_mix_accounts_exactly_once(
        waves in vec(vec(fs_op(), 1..24), 1..4),
    ) {
        run_fs_case(waves);
    }

    #[test]
    fn tcp_lanes_account_exactly_once_under_coalescing(
        lanes in vec(vec(vec(net_op(), 1..16), 1..3), 1..3),
    ) {
        run_tcp_case(lanes);
    }
}
