//! Property-based tests for domain failover: under random crash/wedge
//! schedules against a real booted system, every submitted RPC resolves
//! exactly once (calls return; nothing hangs), the stub credit window
//! refills completely after every storm (no credit leaks through a
//! wreck), no extent-lease generation is ever reused across a
//! reclamation, and every surviving control replica converges to one
//! fingerprint.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use solros::control::Solros;
use solros_machine::MachineConfig;
use solros_proto::net_msg::NetRequest;
use solros_qos::QosConfig;

const DOMAINS: usize = 2;
/// Must match `QosConfig::enforcing().credit_window`: the refill check
/// below proves the whole window came back after the storm.
const WINDOW: usize = 64;

/// One injected death in the schedule.
#[derive(Debug, Clone)]
struct KillEvent {
    /// Wedge (frozen heartbeat) instead of crash (down flag).
    wedge: bool,
    /// Domain to kill.
    domain: usize,
    /// Traffic rounds to run before pulling the trigger.
    rounds: u8,
}

fn kill_schedule() -> impl Strategy<Value = Vec<KillEvent>> {
    proptest::collection::vec(
        (any::<bool>(), 0..DOMAINS, 1..4u8).prop_map(|(wedge, domain, rounds)| KillEvent {
            wedge,
            domain,
            rounds,
        }),
        1..4,
    )
}

/// Spins until `cond` or `timeout`; true when the condition was met.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// Runs `f` on a watcher thread and panics with `what` if it does not
/// finish in `timeout` — turns a would-be hang (a lost reply, a leaked
/// credit) into a diagnosed failure.
fn bounded(what: &str, timeout: Duration, f: impl FnOnce() + Send + 'static) {
    let worker = std::thread::spawn(f);
    let done = wait_until(timeout, || worker.is_finished());
    assert!(done, "{what} did not finish within {timeout:?}");
    worker
        .join()
        .unwrap_or_else(|e| std::panic::resume_unwind(e));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_kill_schedules_keep_the_failover_invariants(events in kill_schedule()) {
        run_storm(events);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Failover under multi-tenant overload: a domain dies while every
    /// stub floods TCP through churning wire-tenant ids, so its QoS
    /// shard is full of live dynamic flows at the moment it is fenced.
    /// The wreck path must retire that shard (its flow-table entries
    /// stop counting against host occupancy), refund the in-flight
    /// tenant charges, and leave the host flow-table ledger exact; the
    /// replacement shard then serves a full credit-window burst.
    #[test]
    fn failover_under_overload_retires_the_fenced_qos_shard(
        wedge in any::<bool>(),
        victim in 0..DOMAINS,
    ) {
        run_overload_failover(wedge, victim);
    }
}

fn run_overload_failover(wedge: bool, victim: usize) {
    /// Wire-tenant ids the flood cycles through on each domain.
    const TENANTS: u8 = 5;

    let sys = Solros::boot_qos(
        MachineConfig {
            sockets: DOMAINS as u8,
            coprocs: DOMAINS,
            ssd_blocks: 4_096,
            coproc_window_bytes: 4 << 20,
            host_cache_pages: 64,
        },
        QosConfig::enforcing(),
    );
    let supervisor = Arc::clone(sys.supervisor());
    let host = Arc::clone(sys.host_qos());

    // Tenant-churning TCP flood from every stub: each round stamps a
    // different wire tenant, so the gates populate dynamic per-tenant
    // flows (the lazily admitted level-3 entries) on every domain.
    let stop = Arc::new(AtomicBool::new(false));
    let flood: Vec<_> = (0..DOMAINS)
        .map(|i| {
            let net = sys.data_plane(i).net().clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut per_tenant = [0u64; TENANTS as usize + 1];
                let mut round = 0u64;
                while !stop.load(Relaxed) {
                    round += 1;
                    let tenant = 1 + (round % u64::from(TENANTS)) as u8;
                    net.client().set_tenant(tenant);
                    per_tenant[tenant as usize] += 1;
                    // A dead domain answers with a clean error (`Gone`
                    // surfaces as an error response) — never a hang.
                    if let solros_proto::net_msg::NetResponse::Socket { sock } =
                        net.raw_call(NetRequest::Socket)
                    {
                        per_tenant[tenant as usize] += 1;
                        let _ = net.raw_call(NetRequest::Close { sock });
                    }
                }
                net.client().set_tenant(0);
                per_tenant
            })
        })
        .collect();

    // The flood must be visibly shaping the flow tables before the kill.
    assert!(
        wait_until(Duration::from_secs(10), || host.snapshot().live_flows
            >= DOMAINS),
        "flood never populated dynamic tenant flows: {:?}",
        host.snapshot()
    );
    let reclaimed_before = host.snapshot().reclaimed_flows;

    let faults = supervisor.shard_faults(victim);
    if wedge {
        faults.arm_domain_wedges(1);
    } else {
        faults.arm_domain_crashes(1);
    }
    assert!(
        wait_until(Duration::from_secs(10), || supervisor.failovers() >= 1),
        "failover under overload was never detected"
    );

    // Let the replacement take load for a moment, then quiesce.
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Relaxed);
    let mut submitted = [0u64; TENANTS as usize + 1];
    for t in flood {
        let per_tenant = t.join().expect("flood threads resolve every call");
        for (sum, n) in submitted.iter_mut().zip(per_tenant) {
            *sum += n;
        }
    }

    // The fenced shard was retired: its dynamic flows were reclaimed
    // even though they held queued work when the domain died.
    let snap = host.snapshot();
    assert!(
        snap.reclaimed_flows > reclaimed_before,
        "fencing reclaimed no flow-table entries: {snap:?}"
    );
    // With the flood stopped, the epoch GC drains every surviving
    // dynamic flow and the occupancy ledger balances exactly.
    assert!(
        wait_until(Duration::from_secs(10), || {
            let s = host.snapshot();
            s.live_flows == 0 && s.admitted_flows == s.reclaimed_flows
        }),
        "flow tables did not drain to the static skeleton: {:?}",
        host.snapshot()
    );

    // Charge sanity: a tenant's replicated usage can never exceed what
    // the stubs actually submitted — the wreck refunded charges for
    // admitted-but-never-served work instead of leaking them.
    for tenant in 1..=TENANTS {
        let usage = sys.tenant_usage(tenant);
        assert!(
            usage.ops <= submitted[tenant as usize],
            "tenant {tenant} charged {} ops but submitted {}: wreck charges leaked",
            usage.ops,
            submitted[tenant as usize]
        );
    }

    // The replacement shard serves a full credit-window burst: no
    // credit or flow-table state died with the fenced shard.
    for i in 0..DOMAINS {
        let net = sys.data_plane(i).net().clone();
        bounded(
            &format!("coproc {i} post-failover full-window burst"),
            Duration::from_secs(20),
            move || {
                let pending: Vec<_> = (0..WINDOW)
                    .map(|_| loop {
                        match net.submit_call(NetRequest::Socket) {
                            Ok(p) => break p,
                            Err(_) => std::thread::yield_now(),
                        }
                    })
                    .collect();
                let socks: Vec<u64> = pending
                    .into_iter()
                    .map(|p| match p.wait(&net) {
                        solros_proto::net_msg::NetResponse::Socket { sock } => sock,
                        other => panic!("burst socket call failed: {other:?}"),
                    })
                    .collect();
                for sock in socks {
                    let _ = net.raw_call(NetRequest::Close { sock });
                }
            },
        );
    }

    let fps = supervisor.replica_fingerprints();
    assert_eq!(fps.len(), DOMAINS, "every domain must end live");
    assert!(
        fps.windows(2).all(|w| w[0] == w[1]),
        "surviving replicas diverged: {fps:x?}"
    );
    let report = sys.recovery_report();
    assert_eq!(report.domains_failed_over, 1);
    assert!(report.clean(), "recovery report must be clean: {report:?}");

    sys.shutdown();
}

fn run_storm(events: Vec<KillEvent>) {
    let sys = Solros::boot_qos(
        MachineConfig {
            sockets: DOMAINS as u8,
            coprocs: DOMAINS,
            ssd_blocks: 4_096,
            coproc_window_bytes: 4 << 20,
            host_cache_pages: 64,
        },
        QosConfig::enforcing(),
    );
    let supervisor = Arc::clone(sys.supervisor());
    let lease_mgr = Arc::clone(sys.lease_manager());

    // One leased hot file per co-processor; its grant generation may
    // only ever rise, and must strictly rise across a reclamation.
    let files: Vec<_> = (0..DOMAINS)
        .map(|i| {
            let fs = Arc::clone(sys.data_plane(i).fs());
            let f = fs.create(&format!("/hot{i}")).expect("create");
            fs.write_at(f, 0, &[0xabu8; 4096]).expect("seed");
            (fs, f)
        })
        .collect();
    // The lease plane refuses grants on co-processors whose P2P path
    // crosses a NUMA boundary (placement first); only NUMA-local stubs
    // can hold a lease, so the generation invariant is theirs alone.
    let grantable: Vec<bool> = (0..DOMAINS)
        .map(|i| !sys.machine().ssd_p2p_crosses_numa(i as u8))
        .collect();
    let mut last_gen = [0u64; DOMAINS];
    let acquire = |i: usize, must_exceed: Option<u64>| -> u64 {
        let (fs, f) = &files[i];
        let live = fs.lease_range(*f, 0, 4096, false).expect("lease rpc");
        if !grantable[i] {
            // Cross-NUMA stubs are refused by design (surfaced as a
            // clean `false`); the read path must still work over plain
            // RPC (checked in the rounds loop), and there is no
            // generation to track.
            assert!(!live, "cross-NUMA coproc {i} must never hold a lease");
            return 0;
        }
        assert!(live, "coproc {i} must get a lease grant");
        let gen = lease_mgr
            .lease_for(f.0, i as u8)
            .expect("granted lease is registered")
            .generation();
        if let Some(floor) = must_exceed {
            assert!(
                gen > floor,
                "coproc {i}: generation {gen} reused across a reclamation (held {floor})"
            );
        }
        gen
    };

    // Background listener churn on every stub keeps RPC tags in flight
    // across each kill; a blackout resolves them as `Gone`, never leaves
    // them hanging (the join below is the proof).
    let stop = Arc::new(AtomicBool::new(false));
    let churn: Vec<_> = (0..DOMAINS)
        .map(|i| {
            let net = sys.data_plane(i).net().clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Relaxed) {
                    match net.listen(7_300 + i as u16, 8) {
                        Ok(l) => {
                            let _ = l.close();
                        }
                        Err(_) => std::thread::yield_now(),
                    }
                }
            })
        })
        .collect();

    for (i, slot) in last_gen.iter_mut().enumerate() {
        *slot = acquire(i, None);
    }

    let mut killed = 0u64;
    for ev in &events {
        for _ in 0..ev.rounds {
            for (fs, f) in &files {
                // Leased fast-path reads between kills; a revoked lease
                // degrades to RPC and re-arms on the next acquire.
                let _ = fs.read_to_vec(*f, 0, 512);
            }
        }
        let held = last_gen[ev.domain];
        let faults = supervisor.shard_faults(ev.domain);
        if ev.wedge {
            faults.arm_domain_wedges(1);
        } else {
            faults.arm_domain_crashes(1);
        }
        killed += 1;
        assert!(
            wait_until(Duration::from_secs(10), || supervisor.failovers() >= killed),
            "failover {killed} ({:?}) was never detected",
            if ev.wedge { "wedge" } else { "crash" }
        );
        // Reclamation: the replacement re-grants with a fresh generation.
        last_gen[ev.domain] = acquire(ev.domain, Some(held));
    }

    stop.store(true, Relaxed);
    for t in churn {
        t.join().expect("churn thread resolves every submitted tag");
    }

    // Credit balance: the full stub window must refill after the storm.
    // A credit that died with a wreck (granted but never settled) would
    // cap the in-flight depth below the window forever.
    for i in 0..DOMAINS {
        let net = sys.data_plane(i).net().clone();
        bounded(
            &format!("coproc {i} full-window burst"),
            Duration::from_secs(20),
            move || {
                let pending: Vec<_> = (0..WINDOW)
                    .map(|_| loop {
                        match net.submit_call(NetRequest::Socket) {
                            Ok(p) => break p,
                            Err(_) => std::thread::yield_now(),
                        }
                    })
                    .collect();
                let socks: Vec<u64> = pending
                    .into_iter()
                    .map(|p| match p.wait(&net) {
                        solros_proto::net_msg::NetResponse::Socket { sock } => sock,
                        other => panic!("burst socket call failed: {other:?}"),
                    })
                    .collect();
                for sock in socks {
                    let _ = net.raw_call(NetRequest::Close { sock });
                }
            },
        );
    }

    // Replicated control plane: every live shard ends on one fingerprint.
    let fps = supervisor.replica_fingerprints();
    assert_eq!(fps.len(), DOMAINS, "every domain must end live");
    assert!(
        fps.windows(2).all(|w| w[0] == w[1]),
        "surviving replicas diverged: {fps:x?}"
    );

    let report = sys.recovery_report();
    assert_eq!(report.domains_failed_over, killed);
    assert_eq!(report.event_drops, 0, "no TCP event may be dropped");
    assert!(report.clean(), "recovery report must be clean: {report:?}");

    sys.shutdown();
}
