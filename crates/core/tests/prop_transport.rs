//! Property-based test for the submission/completion pipeline's tag
//! lifecycle: across threads interleaving `submit`/`wait`/`wait_any`/
//! `poll` against a proxy that replies out of order, every token
//! completes exactly once with its own payload (no cross-tag delivery),
//! and tokens dropped before redemption leak nothing.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use solros::transport::{Channel, RpcClient};
use solros_pcie::counter::PcieCounters;
use solros_proto::fs_msg::{FsRequest, FsResponse};
use solros_simkit::DetRng;

/// How one generated operation redeems its token(s).
#[derive(Debug, Clone, Copy)]
enum Redeem {
    /// `wait(submit(..))` — the blocking path.
    Wait,
    /// Busy `poll` until the reply lands.
    Poll,
    /// Drop the token without redeeming; the reply must be discarded
    /// without leaking a pending-map entry.
    Drop,
    /// Submit a small burst and harvest it with `wait_any`.
    AnyBurst,
}

fn redeem_strategy() -> impl Strategy<Value = Redeem> {
    prop_oneof![
        Just(Redeem::Wait),
        Just(Redeem::Poll),
        Just(Redeem::Drop),
        Just(Redeem::AnyBurst),
    ]
}

const MAGIC: u64 = 0x5013;

fn check(reply: &[u8], want_tag: u32, want_ino: u64) {
    let (rtag, resp) = FsResponse::decode(reply).unwrap();
    assert_eq!(rtag, want_tag, "reply routed to the wrong tag");
    match resp {
        FsResponse::Stat { ino, size, .. } => {
            assert_eq!(ino, want_ino, "cross-tag payload delivery");
            assert_eq!(size, want_ino ^ MAGIC);
        }
        other => panic!("unexpected response {other:?}"),
    }
}

fn run_case(plans: Vec<Vec<Redeem>>, shuffle_seed: u64) {
    let counters = Arc::new(PcieCounters::new());
    let ch = Channel::new(counters);
    let client = RpcClient::new(ch.req_tx, ch.resp_rx);

    // Each op issues one request, except AnyBurst which issues three.
    let total: usize = plans
        .iter()
        .flatten()
        .map(|r| if matches!(r, Redeem::AnyBurst) { 3 } else { 1 })
        .sum();

    // The proxy stashes requests and flushes them in a shuffled order to
    // force out-of-order completion on every flush.
    let req_rx = ch.req_rx;
    let resp_tx = ch.resp_tx;
    let proxy = std::thread::spawn(move || {
        let mut rng = DetRng::seed(shuffle_seed);
        let mut served = 0usize;
        let mut stash: Vec<(u32, u64)> = Vec::new();
        while served < total {
            match req_rx.recv() {
                Ok(frame) => {
                    let (tag, req) = FsRequest::decode(&frame).unwrap();
                    let ino = match req {
                        FsRequest::Fstat { ino } => ino,
                        other => panic!("unexpected request {other:?}"),
                    };
                    stash.push((tag, ino));
                }
                Err(_) if stash.is_empty() => std::thread::yield_now(),
                Err(_) => {
                    // Fisher-Yates shuffle, then flush the whole stash.
                    for i in (1..stash.len()).rev() {
                        stash.swap(i, rng.below(i as u64 + 1) as usize);
                    }
                    for (tag, ino) in stash.drain(..) {
                        let resp = FsResponse::Stat {
                            ino,
                            is_dir: false,
                            size: ino ^ MAGIC,
                        };
                        resp_tx.send_blocking(&resp.encode(tag)).unwrap();
                        served += 1;
                    }
                }
            }
        }
    });

    std::thread::scope(|scope| {
        for (t, plan) in plans.iter().enumerate() {
            let client = Arc::clone(&client);
            scope.spawn(move || {
                for (i, redeem) in plan.iter().enumerate() {
                    let ino = (t * 10_000 + i) as u64;
                    match redeem {
                        Redeem::Wait => {
                            let tag = client.tag();
                            let token = client
                                .submit_blocking(tag, FsRequest::Fstat { ino }.encode(tag))
                                .unwrap();
                            check(&client.wait(token), tag, ino);
                        }
                        Redeem::Poll => {
                            let tag = client.tag();
                            let token = client
                                .submit_blocking(tag, FsRequest::Fstat { ino }.encode(tag))
                                .unwrap();
                            let reply = loop {
                                if let Some(r) = client.poll(&token) {
                                    break r;
                                }
                                std::thread::yield_now();
                            };
                            check(&reply, tag, ino);
                        }
                        Redeem::Drop => {
                            let tag = client.tag();
                            let token = client
                                .submit_blocking(tag, FsRequest::Fstat { ino }.encode(tag))
                                .unwrap();
                            drop(token);
                        }
                        Redeem::AnyBurst => {
                            let mut tokens = Vec::new();
                            let mut meta = Vec::new();
                            for b in 0..3u64 {
                                let bi = ino + 1_000 * (b + 1);
                                let tag = client.tag();
                                tokens.push(
                                    client
                                        .submit_blocking(
                                            tag,
                                            FsRequest::Fstat { ino: bi }.encode(tag),
                                        )
                                        .unwrap(),
                                );
                                meta.push((tag, bi));
                            }
                            for _ in 0..tokens.len() {
                                let (idx, reply) = client.wait_any(&tokens);
                                check(&reply, meta[idx].0, meta[idx].1);
                            }
                        }
                    }
                }
            });
        }
    });

    proxy.join().unwrap();
    // Replies to dropped tokens may still sit in the reply ring; draining
    // them must clear every abandoned pending-map entry.
    let mut spins = 0;
    while client.pending_len() != 0 {
        client.drain_now();
        std::thread::yield_now();
        spins += 1;
        assert!(spins < 1_000_000, "pending map never emptied (leak)");
    }
    assert_eq!(client.pending_len(), 0, "tag leaked in the pending map");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tag_lifecycle_survives_interleaving(
        plans in vec(vec(redeem_strategy(), 1..24), 1..4),
        shuffle_seed in any::<u64>(),
    ) {
        run_case(plans.clone(), shuffle_seed);
    }
}
