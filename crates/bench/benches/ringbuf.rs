//! Criterion benchmarks for the transport service (Figure 8 flavour),
//! plus ablations for the design decisions DESIGN.md calls out:
//! combining threshold (D1) and copy mode (D3).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use solros_pcie::{PcieCounters, Side};
use solros_ringbuf::locks::{McsLock, TicketLock};
use solros_ringbuf::ring::{CopyMode, RingBuf, RingConfig};
use solros_ringbuf::TwoLockQueue;

fn ring_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("enqueue_dequeue_pair");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));

    let counters = Arc::new(PcieCounters::new());
    let ring = RingBuf::new(RingConfig::local(1 << 16, Side::Host), counters);
    let (tx, rx) = ring.endpoints();
    let payload = [7u8; 64];
    g.bench_function("solros_ring", |b| {
        b.iter(|| {
            tx.send(&payload).unwrap();
            rx.recv().unwrap()
        })
    });

    let q = TwoLockQueue::<TicketLock>::new();
    g.bench_function("two_lock_ticket", |b| {
        b.iter(|| {
            q.enqueue(payload.to_vec());
            q.dequeue().unwrap()
        })
    });

    let q = TwoLockQueue::<McsLock>::new();
    g.bench_function("two_lock_mcs", |b| {
        b.iter(|| {
            q.enqueue(payload.to_vec());
            q.dequeue().unwrap()
        })
    });
    g.finish();
}

/// D1 ablation: combining threshold.
fn combining_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("combining_threshold");
    g.sample_size(15);
    for threshold in [1usize, 8, 64, 256] {
        let counters = Arc::new(PcieCounters::new());
        let ring = RingBuf::new(
            RingConfig::local(1 << 16, Side::Host).with_threshold(threshold),
            counters,
        );
        let (tx, rx) = ring.endpoints();
        let payload = [7u8; 64];
        g.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, _| {
                b.iter(|| {
                    tx.send(&payload).unwrap();
                    rx.recv().unwrap()
                })
            },
        );
    }
    g.finish();
}

/// D3 ablation: copy mechanism over a (simulated) PCIe ring.
fn copy_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("copy_mode_4k");
    g.sample_size(15);
    g.throughput(Throughput::Bytes(4096));
    for (name, mode) in [
        ("memcpy", CopyMode::Memcpy),
        ("dma", CopyMode::Dma),
        ("adaptive", CopyMode::Adaptive),
    ] {
        let counters = Arc::new(PcieCounters::new());
        let ring = RingBuf::new(
            RingConfig::over_pcie(1 << 18, Side::Coproc, Side::Coproc, Side::Host)
                .with_copy_mode(mode),
            counters,
        );
        let (tx, rx) = ring.endpoints();
        let payload = vec![5u8; 4096];
        g.bench_function(name, |b| {
            b.iter(|| {
                tx.send(&payload).unwrap();
                rx.recv().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, ring_pair, combining_threshold, copy_modes);
criterion_main!(benches);
