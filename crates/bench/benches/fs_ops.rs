//! Criterion benchmarks for the file system and the end-to-end Solros
//! RPC path (functional-mode costs of the real implementation).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use solros::control::Solros;
use solros_fs::FileSystem;
use solros_machine::MachineConfig;
use solros_nvme::NvmeDevice;

fn fs_data_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fs_data_path");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(64 * 1024));

    let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(262_144), 4096).unwrap());
    let ino = fs.create("/bench").unwrap();
    let data = vec![7u8; 64 * 1024];
    fs.write(ino, 0, &data).unwrap();

    g.bench_function("write_64k", |b| b.iter(|| fs.write(ino, 0, &data).unwrap()));
    let mut buf = vec![0u8; 64 * 1024];
    g.bench_function("read_64k_cached", |b| {
        b.iter(|| fs.read(ino, 0, &mut buf).unwrap())
    });
    g.bench_function("read_64k_uncached", |b| {
        b.iter(|| {
            fs.cache().invalidate_ino(ino);
            fs.read(ino, 0, &mut buf).unwrap()
        })
    });
    g.finish();
}

fn fs_metadata(c: &mut Criterion) {
    let mut g = c.benchmark_group("fs_metadata");
    g.sample_size(20);
    let fs = Arc::new(FileSystem::mkfs(NvmeDevice::new(262_144), 4096).unwrap());
    let mut i = 0u64;
    g.bench_function("create_unlink", |b| {
        b.iter(|| {
            let path = format!("/m{i}");
            i += 1;
            fs.create(&path).unwrap();
            fs.unlink(&path).unwrap();
        })
    });
    let ino = fs.create("/map").unwrap();
    fs.write(ino, 0, &vec![1u8; 1 << 20]).unwrap();
    g.bench_function("fiemap_1m", |b| {
        b.iter(|| fs.fiemap(ino, 0, 1 << 20).unwrap())
    });
    g.finish();
}

fn solros_rpc_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("solros_rpc_path");
    g.sample_size(15);
    g.throughput(Throughput::Bytes(64 * 1024));

    let sys = Solros::boot(MachineConfig::small());
    let fs = Arc::clone(sys.data_plane(0).fs());
    let f = fs.create("/bench").unwrap();
    let data = vec![9u8; 64 * 1024];
    fs.write_at(f, 0, &data).unwrap();
    let mut buf = vec![0u8; 64 * 1024];

    g.bench_function("read_64k_via_stub", |b| {
        b.iter(|| fs.read_at(f, 0, &mut buf).unwrap())
    });
    g.bench_function("write_64k_via_stub", |b| {
        b.iter(|| fs.write_at(f, 0, &data).unwrap())
    });
    g.finish();
    sys.shutdown();
}

criterion_group!(benches, fs_data_path, fs_metadata, solros_rpc_path);
criterion_main!(benches);
