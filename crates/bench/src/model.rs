//! Timed-mode composition of the file-system stacks.
//!
//! Combines the calibrated device/CPU/transport models into end-to-end
//! operation latencies and steady-state throughputs for the five stacks
//! the paper compares (Figures 1a, 11, 12, 13a).

use solros_baseline::{NfsPerf, PhiFsCpu, VirtioPerf};
use solros_nvme::NvmePerf;
use solros_pcie::cost::CostModel;
use solros_simkit::time::transfer_time;
use solros_simkit::SimTime;

/// The I/O stack under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsStack {
    /// Host application on the host file system (the upper bound the
    /// paper uses, which Solros can beat thanks to command coalescing).
    Host,
    /// Solros: data-plane stub → control-plane proxy → vectored P2P NVMe.
    Solros,
    /// Solros' P2P path *forced* across the QPI boundary — the ~300 MB/s
    /// cliff of Figure 1a that motivates the buffered demotion.
    SolrosCrossNuma,
    /// Stock Xeon Phi over virtio-blk.
    Virtio,
    /// Stock Xeon Phi over NFS.
    Nfs,
}

/// All stacks, for sweep loops.
pub const ALL_STACKS: [FsStack; 5] = [
    FsStack::Host,
    FsStack::Solros,
    FsStack::SolrosCrossNuma,
    FsStack::Virtio,
    FsStack::Nfs,
];

impl FsStack {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            FsStack::Host => "Host",
            FsStack::Solros => "Phi-Solros",
            FsStack::SolrosCrossNuma => "Phi-Solros (cross NUMA)",
            FsStack::Virtio => "Phi-Linux (virtio)",
            FsStack::Nfs => "Phi-Linux (NFS)",
        }
    }
}

/// The composed model.
#[derive(Debug, Clone)]
pub struct FsModel {
    /// Device model.
    pub nvme: NvmePerf,
    /// Per-processor FS CPU costs.
    pub cpu: PhiFsCpu,
    /// Virtio baseline.
    pub virtio: VirtioPerf,
    /// NFS baseline.
    pub nfs: NfsPerf,
    /// PCIe transfer model (cross-NUMA cap).
    pub cost: CostModel,
    /// RPC ring round trip (request enqueue, host pull, reply push, pull).
    pub rpc_overhead: SimTime,
}

/// Bytes per NVMe command (MDTS).
const MDTS_BYTES: u64 = 128 * 1024;

impl FsModel {
    /// Paper calibration.
    pub fn paper_default() -> Self {
        FsModel {
            nvme: NvmePerf::paper_default(),
            cpu: PhiFsCpu::paper_default(),
            virtio: VirtioPerf::paper_default(),
            nfs: NfsPerf::paper_default(),
            cost: CostModel::paper_default(),
            rpc_overhead: SimTime::from_us(20),
        }
    }

    fn cmds(bytes: u64) -> u64 {
        bytes.div_ceil(MDTS_BYTES).max(1)
    }

    /// Host-style device access: per-command doorbells and interrupts,
    /// device work overlapped across channels.
    fn host_storage_time(&self, is_read: bool, bytes: u64) -> SimTime {
        let n = Self::cmds(bytes);
        let bw = if is_read {
            self.nvme.read_bw
        } else {
            self.nvme.write_bw
        };
        let waves = n.div_ceil(self.nvme.channels as u64);
        let device = (self.nvme.cmd_latency * waves).max(transfer_time(bytes, bw));
        (self.nvme.doorbell_cost + self.nvme.interrupt_cost) * n + device
    }

    /// Solros storage: one vectored batch (single doorbell + interrupt).
    fn solros_storage_time(&self, is_read: bool, bytes: u64) -> SimTime {
        self.nvme
            .vectored_batch_time(is_read, Self::cmds(bytes), bytes / Self::cmds(bytes))
    }

    /// Cross-NUMA P2P storage: same protocol, transfer capped by QPI relay.
    fn cross_numa_storage_time(&self, is_read: bool, bytes: u64) -> SimTime {
        let n = Self::cmds(bytes);
        let bw = if is_read {
            self.nvme.read_bw
        } else {
            self.nvme.write_bw
        };
        let bw = bw.min(self.cost.cross_numa_p2p_bw);
        let waves = n.div_ceil(self.nvme.channels as u64);
        let device = (self.nvme.cmd_latency * waves).max(transfer_time(bytes, bw));
        self.nvme.doorbell_cost + device + self.nvme.interrupt_cost + self.cost.cross_numa_latency
    }

    /// End-to-end latency of one random read/write of `bytes`.
    pub fn op_latency(&self, stack: FsStack, is_read: bool, bytes: u64) -> SimTime {
        let pages = bytes.div_ceil(4096);
        match stack {
            FsStack::Host => self.cpu.host_fs_time(pages) + self.host_storage_time(is_read, bytes),
            FsStack::Solros => {
                self.cpu.stub_time(pages)
                    + self.rpc_overhead
                    + self.solros_storage_time(is_read, bytes)
            }
            FsStack::SolrosCrossNuma => {
                self.cpu.stub_time(pages)
                    + self.rpc_overhead
                    + self.cross_numa_storage_time(is_read, bytes)
            }
            FsStack::Virtio => self.virtio.op_time(is_read, bytes),
            FsStack::Nfs => self.nfs.op_time(is_read, bytes),
        }
    }

    /// Steady-state aggregate throughput (bytes/s) with `threads`
    /// concurrent submitters.
    pub fn throughput(&self, stack: FsStack, is_read: bool, threads: usize, bytes: u64) -> f64 {
        let dev_bw = if is_read {
            self.nvme.read_bw
        } else {
            self.nvme.write_bw
        };
        match stack {
            FsStack::Virtio => self.virtio.steady_throughput(is_read, threads, bytes),
            FsStack::Nfs => self.nfs.steady_throughput(is_read, threads, bytes),
            _ => {
                let per = bytes as f64 / self.op_latency(stack, is_read, bytes).as_secs_f64();
                let cap = match stack {
                    FsStack::SolrosCrossNuma => dev_bw.min(self.cost.cross_numa_p2p_bw),
                    _ => dev_bw,
                };
                (per * threads as f64).min(cap)
            }
        }
    }

    /// Solros component breakdown for Figure 13a:
    /// `(file system stub, block/transport, storage)`.
    pub fn solros_breakdown(&self, is_read: bool, bytes: u64) -> (SimTime, SimTime, SimTime) {
        (
            self.cpu.stub_time(bytes.div_ceil(4096)),
            self.rpc_overhead,
            self.solros_storage_time(is_read, bytes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> FsModel {
        FsModel::paper_default()
    }

    #[test]
    fn solros_matches_or_beats_host_at_large_blocks() {
        let m = m();
        for bytes in [512 * 1024u64, 1 << 20, 4 << 20] {
            let host = m.op_latency(FsStack::Host, true, bytes);
            let solros = m.op_latency(FsStack::Solros, true, bytes);
            // Within 10% or better (the coalescing effect of Figure 1a).
            assert!(
                solros.as_secs_f64() <= host.as_secs_f64() * 1.1,
                "{bytes}: solros {solros} vs host {host}"
            );
        }
    }

    #[test]
    fn saturation_caps_match_device() {
        let m = m();
        assert_eq!(m.throughput(FsStack::Solros, true, 61, 1 << 20), 2.4e9);
        assert_eq!(m.throughput(FsStack::Host, true, 61, 1 << 20), 2.4e9);
        assert_eq!(m.throughput(FsStack::Solros, false, 61, 1 << 20), 1.2e9);
    }

    #[test]
    fn cross_numa_capped_at_300mbs() {
        let m = m();
        let t = m.throughput(FsStack::SolrosCrossNuma, true, 61, 4 << 20);
        assert!(
            (0.25e9..=0.3e9).contains(&t),
            "cross-NUMA cap {t} (Figure 1a: ~300 MB/s)"
        );
    }

    #[test]
    fn solros_vs_stock_phi_factors() {
        let m = m();
        // Figure 1a / §6.1.2: ~19x over virtio, ~14x over NFS at the
        // saturating block sizes.
        let solros = m.throughput(FsStack::Solros, true, 61, 1 << 20);
        let virtio = m.throughput(FsStack::Virtio, true, 61, 1 << 20);
        let nfs = m.throughput(FsStack::Nfs, true, 61, 1 << 20);
        let rv = solros / virtio;
        let rn = solros / nfs;
        assert!(
            (9.0..=25.0).contains(&rv),
            "vs virtio {rv} (paper ~19x at peak)"
        );
        assert!((9.0..=25.0).contains(&rn), "vs NFS {rn} (paper ~14x)");
    }

    #[test]
    fn single_thread_small_block_shapes() {
        let m = m();
        // All stacks are latency-bound at 32 KB single-thread; Solros sits
        // below Host (extra RPC+stub) but far above the stock stacks.
        let host = m.throughput(FsStack::Host, true, 1, 32 * 1024);
        let solros = m.throughput(FsStack::Solros, true, 1, 32 * 1024);
        let virtio = m.throughput(FsStack::Virtio, true, 1, 32 * 1024);
        assert!(host > solros, "host {host} vs solros {solros}");
        assert!(solros > 1.8 * virtio, "solros {solros} vs virtio {virtio}");
    }

    #[test]
    fn breakdown_matches_figure_13a() {
        let m = m();
        let (stub, transport, storage) = m.solros_breakdown(true, 512 * 1024);
        let total = stub + transport + storage;
        // Paper: Solros total ~0.5 ms for a 512 KB random read, with the
        // stub ~5x cheaper than the full FS on the Phi.
        assert!((0.3..=0.8).contains(&total.as_ms_f64()), "total {total}");
        let phi_fs = m.cpu.phi_fs_time(128);
        let ratio = phi_fs.as_secs_f64() / stub.as_secs_f64();
        assert!((4.0..=7.0).contains(&ratio), "stub ratio {ratio}");
        // Zero-copy storage dominates the transport component.
        assert!(storage > transport);
    }
}
