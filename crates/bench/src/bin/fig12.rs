//! Regenerates one experiment; see `solros_bench::figs::fig12`.

fn main() {
    print!("{}", solros_bench::figs::fig12::run());
}
