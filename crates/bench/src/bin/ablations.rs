//! Regenerates the design-decision ablations (DESIGN.md §4).

fn main() {
    print!("{}", solros_bench::ablations::run_all());
}
