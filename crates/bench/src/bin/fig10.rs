//! Regenerates one experiment; see `solros_bench::figs::fig10`.

fn main() {
    print!("{}", solros_bench::figs::fig10::run());
}
