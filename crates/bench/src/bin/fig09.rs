//! Regenerates one experiment; see `solros_bench::figs::fig09`.

fn main() {
    print!("{}", solros_bench::figs::fig09::run());
}
