//! Regenerates one experiment; see `solros_bench::figs::fig04`.

fn main() {
    print!("{}", solros_bench::figs::fig04::run());
}
