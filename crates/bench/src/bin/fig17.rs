//! Regenerates one experiment; see `solros_bench::figs::fig17`.

fn main() {
    print!("{}", solros_bench::figs::fig17::run());
}
