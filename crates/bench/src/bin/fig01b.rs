//! Regenerates one experiment; see `solros_bench::figs::fig01b`.

fn main() {
    print!("{}", solros_bench::figs::fig01b::run());
}
