//! Regenerates one experiment; see `solros_bench::figs::fig01a`.

fn main() {
    print!("{}", solros_bench::figs::fig01a::run());
}
