//! Regenerates one experiment; see `solros_bench::figs::fig13`.

fn main() {
    print!("{}", solros_bench::figs::fig13::run());
}
