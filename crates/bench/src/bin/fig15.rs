//! Regenerates one experiment; see `solros_bench::figs::fig15`.

fn main() {
    print!("{}", solros_bench::figs::fig15::run());
}
