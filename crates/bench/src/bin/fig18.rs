//! Regenerates one experiment; see `solros_bench::figs::fig18`.

fn main() {
    print!("{}", solros_bench::figs::fig18::run());
}
