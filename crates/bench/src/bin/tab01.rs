//! Regenerates one experiment; see `solros_bench::figs::tab01`.

fn main() {
    print!("{}", solros_bench::figs::tab01::run());
}
