//! Regenerates one experiment; see `solros_bench::figs::fig08`.

fn main() {
    print!("{}", solros_bench::figs::fig08::run());
}
