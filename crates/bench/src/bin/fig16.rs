//! Regenerates one experiment; see `solros_bench::figs::fig16`.

fn main() {
    print!("{}", solros_bench::figs::fig16::run());
}
