//! Regenerates one experiment; see `solros_bench::figs::fig14`.

fn main() {
    print!("{}", solros_bench::figs::fig14::run());
}
