//! Regenerates one experiment; see `solros_bench::figs::fig11`.

fn main() {
    print!("{}", solros_bench::figs::fig11::run());
}
