//! Regenerates the extension experiments (beyond the paper's figures).

fn main() {
    print!("{}", solros_bench::extensions::run_all());
}
