//! Regenerates the extension experiments (beyond the paper's figures).
//!
//! With no arguments, renders every extension. `extensions e3` renders
//! only the QoS overload experiment — the cheap deterministic one CI
//! runs as a smoke test.

fn main() {
    let only = std::env::args().nth(1);
    match only.as_deref() {
        Some("e3") => print!(
            "## E3 — QoS gate under overload\n\n{}",
            solros_bench::extensions::qos_overload()
        ),
        Some(other) => {
            eprintln!("unknown experiment {other:?}; expected `e3` or no argument");
            std::process::exit(2);
        }
        None => print!("{}", solros_bench::extensions::run_all()),
    }
}
