//! Regenerates the extension experiments (beyond the paper's figures).
//!
//! With no arguments, renders every extension. `extensions e3` renders
//! only the QoS overload experiment and `extensions e4` only the
//! queue-depth sweep — the cheap ones CI runs as smoke tests.

fn main() {
    let only = std::env::args().nth(1);
    match only.as_deref() {
        Some("e3") => print!(
            "## E3 — QoS gate under overload\n\n{}",
            solros_bench::extensions::qos_overload()
        ),
        Some("e4") => print!(
            "## E4 — submission pipeline vs queue depth\n\n{}",
            solros_bench::extensions::queue_depth()
        ),
        Some(other) => {
            eprintln!("unknown experiment {other:?}; expected `e3`, `e4`, or no argument");
            std::process::exit(2);
        }
        None => print!("{}", solros_bench::extensions::run_all()),
    }
}
